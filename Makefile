# Developer entry points.  `make check` is the gate a change must pass:
# the tier-1 suite (fast; `slow`-marked sweeps excluded by pyproject
# addopts) followed by the opt-in wide conformance sweep.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test slow check bench bench-batched demo

test:
	$(PYTHON) -m pytest tests/

slow:
	$(PYTHON) -m pytest tests/ -m slow

check: test slow

bench:
	PYTHONPATH=src:benchmarks $(PYTHON) -m pytest benchmarks/ --benchmark-only -s

bench-batched:
	PYTHONPATH=src:benchmarks $(PYTHON) -m pytest benchmarks/bench_batched.py -p no:cacheprovider -q -s

demo:
	$(PYTHON) examples/election_demo.py
