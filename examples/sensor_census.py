#!/usr/bin/env python3
"""The paper's sensor-network motivation, end to end.

A field of sensors of unknown size: (1) estimate the population with the
Flajolet–Martin census; (2) build distance labels to the data sinks and
route packets along shortest paths; (3) kill edges and nodes mid-run and
watch both 0-sensitive algorithms re-balance — the 'balancing algorithm'
behaviour of Section 1 (P1-P3).

Run:  python examples/sensor_census.py
"""

import numpy as np

from repro.algorithms import census, shortest_paths
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan


def main() -> None:
    rng = np.random.default_rng(7)
    net = generators.connected_gnp_graph(80, 0.06, rng)
    print(f"sensor field: n={net.num_nodes}, m={net.num_edges}")

    # --- 1. census ------------------------------------------------------
    # rule-based (semi-lattice OR), so run() falls back to the reference
    # interpreter.
    res = census.run_census(net, rng=rng)
    est = census.estimate(res.final_state[0])
    print(
        f"census: diffused in {res.steps} rounds ({res.engine} engine); "
        f"estimate ≈ {est:.0f} (true 80)"
    )

    # --- 2. routing to sinks ---------------------------------------------
    # program-based, so run() auto-selects the vectorized engine.
    sinks = [0, 40]
    res = shortest_paths.run_labels(net, sinks)
    print(f"labels: converged in {res.steps} rounds ({res.engine} engine)")
    for source in (11, 33, 77):
        path = shortest_paths.route_packet(net, res.final_state, source, rng=rng)
        print(f"routing: packet {source} -> sink {path[-1]} in {len(path) - 1} hops")

    # --- 3. faults strike -------------------------------------------------
    # a fault plan forces the reference engine (the only one supporting
    # mid-run topology changes) — run() handles the fallback.
    victims = [e for e in net.edges() if 0 not in e and 40 not in e][:6]
    plan = FaultPlan(
        [FaultEvent(2 + i, "edge", e) for i, e in enumerate(victims[:4])]
        + [FaultEvent(8, "node", 55)]
    )
    res = shortest_paths.run_labels(net, sinks, fault_plan=plan, max_steps=500)
    ok = shortest_paths.stabilized(net, res.final_state, sinks, net.num_nodes)
    print(
        f"faults: applied {len(plan.applied)} deletions ({res.engine} engine); "
        f"labels re-balanced to survivor distances = {ok}"
    )
    path = shortest_paths.route_packet(net, res.final_state, 77, rng=rng)
    print(f"routing after faults: packet 77 -> sink {path[-1]} in {len(path) - 1} hops")


if __name__ == "__main__":
    main()
