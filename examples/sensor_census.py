#!/usr/bin/env python3
"""The paper's sensor-network motivation, end to end.

A field of sensors of unknown size: (1) estimate the population with the
Flajolet–Martin census; (2) build distance labels to the data sinks and
route packets along shortest paths; (3) kill edges and nodes mid-run and
watch both 0-sensitive algorithms re-balance — the 'balancing algorithm'
behaviour of Section 1 (P1-P3).

Run:  python examples/sensor_census.py
"""

import numpy as np

from repro import SynchronousSimulator
from repro.algorithms import census, shortest_paths
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan


def main() -> None:
    rng = np.random.default_rng(7)
    net = generators.connected_gnp_graph(80, 0.06, rng)
    print(f"sensor field: n={net.num_nodes}, m={net.num_edges}")

    # --- 1. census ------------------------------------------------------
    automaton, init = census.build(net, rng=rng)
    sim = SynchronousSimulator(net, automaton, init, rng=rng)
    rounds = sim.run_until_stable()
    est = census.estimate(sim.state[0])
    print(f"census: diffused in {rounds} rounds; estimate ≈ {est:.0f} (true 80)")

    # --- 2. routing to sinks ---------------------------------------------
    sinks = [0, 40]
    automaton, init = shortest_paths.build(net, sinks)
    sim = SynchronousSimulator(net, automaton, init)
    sim.run_until_stable()
    for source in (11, 33, 77):
        path = shortest_paths.route_packet(net, sim.state, source, rng=rng)
        print(f"routing: packet {source} -> sink {path[-1]} in {len(path) - 1} hops")

    # --- 3. faults strike -------------------------------------------------
    victims = [e for e in net.edges() if 0 not in e and 40 not in e][:6]
    plan = FaultPlan(
        [FaultEvent(2 + i, "edge", e) for i, e in enumerate(victims[:4])]
        + [FaultEvent(8, "node", 55)]
    )
    automaton, init = shortest_paths.build(net, sinks)
    sim = SynchronousSimulator(net, automaton, init, fault_plan=plan)
    sim.run_until_stable(max_steps=500)
    ok = shortest_paths.stabilized(net, sim.state, sinks, net.num_nodes)
    print(
        f"faults: applied {len(plan.applied)} deletions; "
        f"labels re-balanced to survivor distances = {ok}"
    )
    path = shortest_paths.route_packet(net, sim.state, 77, rng=rng)
    print(f"routing after faults: packet 77 -> sink {path[-1]} in {len(path) - 1} hops")


if __name__ == "__main__":
    main()
