#!/usr/bin/env python3
"""Quickstart: run an FSSGA algorithm on a network in ~20 lines.

We 2-colour an even cycle (success) and an odd cycle (failure detection),
then show the same automaton running asynchronously through the α
synchronizer — the core workflow of the library.

Run:  python examples/quickstart.py
"""

from repro import AsynchronousSimulator, run
from repro.algorithms import synchronizer as alpha
from repro.algorithms import two_coloring
from repro.network import generators


def main() -> None:
    # --- synchronous run on a bipartite graph -------------------------
    # run() picks the fastest engine (here: vectorized, since the
    # 2-colouring automaton is built from mod-thresh programs) and runs
    # to the fixed point.
    net = generators.cycle_graph(8)
    automaton, init = two_coloring.build(net, origin=0)
    res = run(automaton, net, init)
    print(
        f"C8 : stabilized in {res.steps} rounds on the {res.engine} engine "
        f"-> {dict(res.final_state.items())}"
    )
    assert two_coloring.succeeded(net, res.final_state)

    # --- synchronous run on an odd cycle: FAILED floods ----------------
    net = generators.cycle_graph(7)
    automaton, init = two_coloring.build(net, origin=0)
    res = run(automaton, net, init)
    verdict = "failed" if two_coloring.failed(res.final_state) else "coloured"
    print(f"C7 : non-bipartite detected -> every node reports {verdict!r}")

    # --- the same algorithm, asynchronously, via the α synchronizer ----
    net = generators.grid_graph(3, 4)
    inner, init = two_coloring.build(net, origin=0)
    wrapped = alpha.wrap(inner)
    asim = AsynchronousSimulator(net, wrapped, alpha.initial_state(init), rng=42)
    asim.run_fair_rounds(30)
    colours = {v: asim.state[v][0] for v in net}
    print(f"grid: asynchronous 2-colouring -> {colours}")
    ok = all(
        colours[u] != colours[v] for u, v in net.edges()
    )
    print(f"grid: proper colouring = {ok}")


if __name__ == "__main__":
    main()
