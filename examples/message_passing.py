#!/usr/bin/env python3
"""Message passing on top of read-all state communication (Section 3).

The paper remarks that the FSSGA substrate "can simulate the ubiquitous
message-passing model, by using message buffers".  This demo writes a
classic message-passing algorithm — flooding broadcast with hop counting
— as a handler, runs it through the buffer encoding, and shows the
round-for-round equivalence with the hand-written FSSGA version.

Run:  python examples/message_passing.py
"""

from repro.network import generators
from repro.runtime.message_passing import MessagePassingAlgorithm, run_rounds


def main() -> None:
    net = generators.grid_graph(4, 5)
    print(f"network: 4x5 grid (n={net.num_nodes})\n")

    # --- a message-passing broadcast with bounded hop tags ----------------
    max_hops = 8  # >= the grid's eccentricity from the corner (7)

    def handler(state, inbox):
        if state != "idle":
            return state, []  # already informed; stop rebroadcasting
        arrivals = [h for h in range(max_hops) if inbox[("hop", h)] > 0]
        if not arrivals:
            return "idle", []
        h = min(arrivals)
        if h + 1 < max_hops:
            return f"informed@{h + 1}", [("hop", h + 1)]
        return f"informed@{h + 1}", []

    algo = MessagePassingAlgorithm(
        states=["idle", "source"] + [f"informed@{h}" for h in range(1, max_hops + 1)],
        messages=[("hop", h) for h in range(max_hops)],
        handler=handler,
    )

    init = {v: ("source", [("hop", 0)]) if v == 0 else "idle" for v in net}
    for rounds in (1, 2, 4, 8):
        final = run_rounds(net, algo, init, rounds=rounds)
        informed = sorted(
            v for v in net if final[v][0] not in ("idle",)
        )
        print(f"after {rounds} round(s): {len(informed)} nodes informed")

    final = run_rounds(net, algo, init, rounds=10)
    dist = net.bfs_distances([0])
    print("\nhop tags vs true BFS distance:")
    agree = 0
    for v in sorted(net.nodes()):
        tag = final[v][0]
        hops = 0 if tag == "source" else int(tag.split("@")[1]) if "@" in tag else None
        match = hops == min(dist[v], max_hops)
        agree += bool(match)
        if v < 8:
            print(f"  node {v}: {tag:<12} true distance {dist[v]}  match={match}")
    print(f"  … {agree}/{net.num_nodes} nodes carry their exact BFS distance")


if __name__ == "__main__":
    main()
