#!/usr/bin/env python3
"""A tour of Theorem 3.7: one function, three machines.

We take the symmetric function "are at least two neighbours RED, and is
the number of BLUE neighbours even?" and express it as a sequential
program, convert it to a mod-thresh cascade (Lemma 3.9), convert that to a
parallel divide-and-conquer program (Lemma 3.8), and fold back to
sequential (Lemma 3.5) — checking agreement at every corner and rendering
the Figure 1 combination tree.

Run:  python examples/equivalence_tour.py
"""

import itertools

from repro.core.convert import (
    modthresh_to_parallel,
    parallel_to_sequential,
    sequential_to_modthresh,
)
from repro.core.multiset import iter_multisets
from repro.core.sequential import SequentialProgram
from repro.core.trees import balanced_tree, left_comb, render_tree

ALPHABET = ["red", "blue", "blank"]


def build_sequential() -> SequentialProgram:
    """(reds >= 2) and (blues even), with a saturating/mod working state."""

    def process(w, q):
        reds, blue_parity = w
        if q == "red":
            reds = min(reds + 1, 2)
        elif q == "blue":
            blue_parity ^= 1
        return (reds, blue_parity)

    working = frozenset((r, b) for r in (0, 1, 2) for b in (0, 1))
    return SequentialProgram(
        working_states=working,
        start=(0, 0),
        process=process,
        output=lambda w: w[0] >= 2 and w[1] == 0,
        name="two-reds-even-blues",
    )


def main() -> None:
    seq = build_sequential()
    print(f"sequential program: {seq.name}")
    print(f"  valid SM function (exhaustive check): {seq.is_sm(ALPHABET, 4)}")

    # --- Lemma 3.9: sequential -> mod-thresh ----------------------------
    mt = sequential_to_modthresh(seq, ALPHABET)
    print(f"\nmod-thresh cascade: {len(mt.clauses)} clauses + default")
    for prop, result in mt.clauses[:4]:
        print(f"  if {prop} -> {result}")
    print("  …")

    # --- Lemma 3.8: mod-thresh -> parallel ------------------------------
    par = modthresh_to_parallel(mt, ALPHABET)
    print(f"\nparallel program: |W| = {len(par.working_states)} counter states")
    inputs = ["red", "blue", "red", "blue", "blank"]
    print(f"  inputs: {inputs}")
    print(f"  balanced tree: {render_tree(balanced_tree(5), labels=inputs)}")
    print(f"  left comb    : {render_tree(left_comb(5), labels=inputs)}")
    a = par.evaluate(inputs, tree=balanced_tree(5))
    b = par.evaluate(inputs, tree=left_comb(5))
    print(f"  both trees agree: {a} == {b} -> {a == b}")

    # --- Lemma 3.5: parallel -> sequential --------------------------------
    back = parallel_to_sequential(par)
    print("\nround trip seq -> mt -> par -> seq:")
    mismatches = 0
    checked = 0
    for ms in iter_multisets(ALPHABET, 5):
        checked += 1
        if back.evaluate(ms) != seq.evaluate(ms):
            mismatches += 1
    print(f"  {checked} multisets checked, {mismatches} mismatches")

    # --- the three machines, side by side ---------------------------------
    print("\nspot checks (reds, blues, blanks) -> value:")
    for reds, blues in itertools.product((1, 2, 3), (0, 1, 2)):
        ms = {"red": reds, "blue": blues, "blank": 1}
        from repro.core.multiset import Multiset

        vals = (
            seq.evaluate(Multiset(ms)),
            mt.evaluate(Multiset(ms)),
            par.evaluate(Multiset(ms)),
        )
        print(f"  ({reds}, {blues}, 1) -> {vals[0]}   (all agree: {len(set(vals)) == 1})")


if __name__ == "__main__":
    main()
