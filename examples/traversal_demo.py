#!/usr/bin/env python3
"""Agents on graphs: random walk, Milgram traversal, greedy tourist.

Three ways to move a single locus of activity around an FSSGA network
(Sections 4.4-4.6), with the paper's trade-off on display: Milgram's
arm/hand traversal uses exactly 2n-2 moves but keeps a Θ(n) arm critical;
the greedy tourist pays extra moves for sensitivity 1.

Run:  python examples/traversal_demo.py
"""

from collections import Counter

from repro.algorithms.greedy_traversal import run_greedy_traversal
from repro.algorithms.random_walk import run_walk
from repro.algorithms.traversal import run_traversal
from repro.network import generators


def main() -> None:
    net = generators.petersen_graph()
    n = net.num_nodes
    print(f"stage: the Petersen graph (n={n}, 3-regular)\n")

    # --- emergent random walk ------------------------------------------
    obs = run_walk(net, 0, moves=60, rng=1)
    occupancy = Counter(obs.positions)
    mean_rounds = sum(obs.steps_per_move) / len(obs.steps_per_move)
    print("random walk (Algorithm 4.2):")
    print(f"  60 moves, mean {mean_rounds:.1f} synchronous rounds per move")
    print(f"  occupancy: {dict(sorted(occupancy.items()))}\n")

    # --- Milgram traversal ----------------------------------------------
    run = run_traversal(net, 0, rng=1)
    print("Milgram traversal (Algorithm 4.3):")
    print(f"  hand moves: {run.hand_moves} (paper: exactly 2n-2 = {2 * n - 2})")
    print(f"  total synchronous steps: {run.steps}")
    print(f"  itinerary: {' -> '.join(map(str, run.hand_positions))}\n")

    # --- greedy tourist ---------------------------------------------------
    tourist = run_greedy_traversal(net, 0, rng=1)
    print("greedy tourist (Section 4.6):")
    print(f"  agent steps: {tourist.agent_steps} (>= n-1 = {n - 1})")
    print(f"  modeled FSSGA time: {tourist.fssga_time} rounds")
    print(f"  itinerary: {' -> '.join(map(str, tourist.itinerary))}\n")

    print("trade-off: Milgram wins on moves; the tourist's only critical")
    print("node is the agent itself (sensitivity 1 vs Θ(n)).")


if __name__ == "__main__":
    main()
