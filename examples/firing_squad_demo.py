#!/usr/bin/env python3
"""Firing squad synchronization on a path (Section 5.2 extension).

Prints the full space-time diagram of the Minsky-style divide-and-conquer
solution: the general (cell 0) launches a fast signal (>) and a slow
signal (s); the reflected fast signal (<) meets the slow one mid-segment,
spawning new generals (G); the recursion halves segments until every cell
is a general and all fire (F) simultaneously at time ≈ 3n.

Run:  python examples/firing_squad_demo.py [n]
"""

import sys

from repro.algorithms.firing_squad import run_firing_squad, space_time_diagram


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 14
    print(f"firing squad on a path of {n} cells "
          f"(legend: G general, >/< fast, s slow, * both, F fired)\n")
    for t, frame in enumerate(space_time_diagram(n)):
        print(f"  t={t:3d}  {frame}")

    print("\nfiring time vs 3n:")
    for m in (8, 16, 32, 64, 128):
        t, simultaneous = run_firing_squad(m)
        print(f"  n={m:4d}: t={t:4d}  t/n={t / m:.2f}  simultaneous={simultaneous}")


if __name__ == "__main__":
    main()
