#!/usr/bin/env python3
"""Leader election demo (Section 4.7) — the paper's applet, in text.

Runs the full local-rule FSSGA election on a small graph, printing the
remaining-candidate set as phases eliminate nodes, then cross-checks the
Θ(log n) phase count on larger graphs two ways: with the phase-level
reference model, and with the executable Claim 4.1 coin-elimination
kernel run over 64 replicas at once on the batched engine.

Run:  python examples/election_demo.py
"""

import math

import numpy as np

from repro import run
from repro.algorithms import election, election_reference
from repro.network import generators


def main() -> None:
    # --- watch the local-rule automaton converge -----------------------
    # driven through the run() front door: a stateful predicate both
    # narrates the remaining-candidate set and decides termination.
    net = generators.connected_gnp_graph(9, 0.35, 3)
    gen = np.random.default_rng(2006)
    automaton, init = election.build(net, gen)

    print(f"electing a leader among {net.num_nodes} identical nodes…")
    seen = {"remaining": None, "step": 0}

    def elected(state) -> bool:
        rem = frozenset(election.remaining(state))
        if rem != seen["remaining"]:
            print(f"  step {seen['step']:5d}: remaining = {sorted(rem)}")
            seen["remaining"] = rem
        seen["step"] += 1
        lead = election.leaders(state)
        return len(lead) == 1 and len(rem) == 1 and lead == list(rem)

    res = run(
        automaton, net, init, engine="reference", until=elected,
        max_steps=20_000, rng=gen,
    )
    leader = election.leaders(res.final_state)[0]
    print(f"  step {res.steps:5d}: node {leader} is the leader")

    # --- scaling shape via the reference model --------------------------
    print("\nphases to elect (reference model, mean of 20 seeds):")
    print(f"  {'n':>6}  {'phases':>7}  {'log2 n':>7}")
    for n in (16, 64, 256, 1024):
        net = generators.cycle_graph(n)
        phases = [
            election_reference.run_election(net, rng=s).phases for s in range(20)
        ]
        print(
            f"  {n:>6}  {np.mean(phases):>7.1f}  {math.log2(n):>7.1f}"
        )

    # --- Claim 4.1 kernel, 64 replicas in one batched run ----------------
    print(
        "\ncoin-elimination kernel on K_n "
        "(64 batched replicas per size, unique survivor each):"
    )
    print(f"  {'n':>6}  {'phases':>7}  {'log2 n':>7}")
    for n in (8, 32, 128):
        stats = election.kernel_phase_statistics(
            generators.complete_graph(n), replicas=64, rng=n
        )
        assert stats.survivor_counts == [1] * 64
        print(f"  {n:>6}  {stats.mean_rounds:>7.1f}  {math.log2(n):>7.1f}")


if __name__ == "__main__":
    main()
