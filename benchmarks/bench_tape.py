"""E16 — the Section 5 tape generalization.

Paper: the sequential→parallel construction extends to tape automata with
working-state size w'(N) = O(2^{q(N)} · w(N)); whether O(w(N)) always
suffices is posed as open.  We instantiate families and measure the
constructed parallel working-state bit count against the bound.
"""

from repro.core.multiset import iter_multisets
from repro.core.tape import (
    TapeProgramFamily,
    all_bitstrings,
    instantiate,
    parallel_working_bits,
    tape_sequential_to_parallel,
)

from _benchlib import print_table


def bitor_family():
    return TapeProgramFamily(
        input_bits=lambda n: n,
        working_bits=lambda n: n,
        start=lambda n: "0" * n,
        process=lambda n, w, q: "".join(
            "1" if a == "1" or b == "1" else "0" for a, b in zip(w, q)
        ),
        output=lambda n, w: w,
        name="bitor",
    )


def counter_family():
    return TapeProgramFamily(
        input_bits=lambda n: n,
        working_bits=lambda n: 3,
        start=lambda n: "000",
        process=lambda n, w, q: format(min(int(w, 2) + q.count("1"), 7), "03b"),
        output=lambda n, w: int(w, 2),
        name="popcount-sat7",
    )


def test_working_bits_vs_bound(benchmark):
    def compute():
        rows = []
        for fam in (bitor_family(), counter_family()):
            for n in (1, 2, 3):
                measured = parallel_working_bits(fam, n)
                bound = (2 ** fam.input_bits(n)) * max(fam.working_bits(n), 1)
                rows.append((fam.name, n, fam.working_bits(n), measured, 4 * bound))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E16: parallel working bits vs the O(2^q · w) bound",
        ["family", "N", "w(N)", "measured bits", "4·2^q·w"],
        rows,
    )
    assert all(r[3] <= r[4] for r in rows)


def test_construction_correctness(benchmark):
    def compute():
        mismatches = 0
        checked = 0
        for fam in (bitor_family(), counter_family()):
            for n in (1, 2):
                sp = instantiate(fam, n)
                pp = tape_sequential_to_parallel(fam, n)
                for ms in iter_multisets(all_bitstrings(fam.input_bits(n)), 3):
                    checked += 1
                    if pp.evaluate(ms) != sp.evaluate(ms):
                        mismatches += 1
        return checked, mismatches

    checked, mismatches = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E16b: uniform construction pointwise agreement",
        ["multisets checked", "mismatches"],
        [(checked, mismatches)],
    )
    assert mismatches == 0


def test_tape_instantiation_benchmark(benchmark):
    fam = bitor_family()
    benchmark(lambda: tape_sequential_to_parallel(fam, 3))
