"""E15 — ablation: vectorized mod-thresh engine vs reference interpreter.

The DESIGN.md engineering choice under test: encoding states as integers
and counting neighbour states with one sparse mat-mat product per step
should beat the per-node Counter interpreter by a widening margin as n
grows, while remaining step-for-step equivalent (equivalence is covered in
tests/runtime/test_vectorized.py).
"""

import time

from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA
from repro.network import NetworkState, generators
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.vectorized import VectorizedSynchronousEngine

from _benchlib import print_table


def _setup(n):
    net = generators.grid_graph(n, n)
    progs = tc.sticky_programs()
    init = NetworkState.from_function(net, lambda v: tc.RED if v == 0 else tc.BLANK)
    return net, progs, init


def test_speedup_series(benchmark):
    def compute():
        rows = []
        for side in (10, 20, 40):
            net, progs, init = _setup(side)
            steps = 10

            t0 = time.perf_counter()
            ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(progs), init.copy())
            ref.run(steps)
            t_ref = time.perf_counter() - t0

            t0 = time.perf_counter()
            vec = VectorizedSynchronousEngine(net, progs, init)
            vec.run(steps)
            t_vec = time.perf_counter() - t0

            rows.append(
                (
                    side * side,
                    f"{t_ref * 1e3:.1f}",
                    f"{t_vec * 1e3:.1f}",
                    f"{t_ref / t_vec:.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E15: 10 synchronous steps, reference vs vectorized (ms)",
        ["n", "reference ms", "vectorized ms", "speedup"],
        rows,
    )
    # the vectorized engine must win at the largest size
    assert float(rows[-1][3].rstrip("x")) > 1.0


def test_three_engine_comparison(benchmark):
    """Reference vs vectorized vs batched on one deterministic workload.

    The batched engine is built for R > 1, but even at R = 1 its per-step
    cost should stay within a small constant of the vectorized engine —
    this guards against the stacked one-hot layout regressing the
    single-replica path.  The R = 16 column shows the amortized per-replica
    cost the replica-statistics helpers actually pay (see also
    bench_batched.py / E17 for the probabilistic workload).
    """

    def compute():
        rows = []
        for side in (10, 20):
            net, progs, init = _setup(side)
            steps = 10

            t0 = time.perf_counter()
            ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(progs), init.copy())
            ref.run(steps)
            t_ref = time.perf_counter() - t0

            t0 = time.perf_counter()
            vec = VectorizedSynchronousEngine(net, progs, init)
            vec.run(steps)
            t_vec = time.perf_counter() - t0

            t0 = time.perf_counter()
            bat = BatchedSynchronousEngine(net, progs, init, replicas=16)
            bat.run(steps)
            t_bat = time.perf_counter() - t0

            rows.append(
                (
                    side * side,
                    f"{t_ref * 1e3:.1f}",
                    f"{t_vec * 1e3:.1f}",
                    f"{t_bat * 1e3:.1f}",
                    f"{t_bat / 16 * 1e3:.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E15b: 10 steps — reference / vectorized / batched R=16 (ms)",
        ["n", "reference ms", "vectorized ms", "batched ms", "batched ms per replica"],
        rows,
    )
    # amortized per-replica batched cost must beat one vectorized run
    assert all(float(r[4]) < float(r[2]) for r in rows)


def test_reference_step_benchmark(benchmark):
    net, progs, init = _setup(25)
    aut = FSSGA.from_programs(progs)

    def run():
        sim = SynchronousSimulator(net, aut, init.copy())
        sim.run(5)

    benchmark(run)


def test_vectorized_step_benchmark(benchmark):
    net, progs, init = _setup(25)

    def run():
        vec = VectorizedSynchronousEngine(net, progs, init)
        vec.run(5)

    benchmark(run)
