"""E15 — ablation: vectorized mod-thresh engine vs reference interpreter.

The DESIGN.md engineering choice under test: encoding states as integers
and counting neighbour states with one sparse mat-mat product per step
should beat the per-node Counter interpreter by a widening margin as n
grows, while remaining step-for-step equivalent (equivalence is covered in
tests/runtime/test_vectorized.py).
"""

import time

import numpy as np

from repro import MetricsRegistry, run
from repro.algorithms import election
from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA
from repro.network import NetworkState, generators
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.vectorized import VectorizedSynchronousEngine

from _benchlib import print_table


def _setup(n):
    net = generators.grid_graph(n, n)
    progs = tc.sticky_programs()
    init = NetworkState.from_function(net, lambda v: tc.RED if v == 0 else tc.BLANK)
    return net, progs, init


def test_speedup_series(benchmark):
    def compute():
        rows = []
        for side in (10, 20, 40):
            net, progs, init = _setup(side)
            steps = 10

            t0 = time.perf_counter()
            ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(progs), init.copy())
            ref.run(steps)
            t_ref = time.perf_counter() - t0

            t0 = time.perf_counter()
            vec = VectorizedSynchronousEngine(net, progs, init)
            vec.run(steps)
            t_vec = time.perf_counter() - t0

            rows.append(
                (
                    side * side,
                    f"{t_ref * 1e3:.1f}",
                    f"{t_vec * 1e3:.1f}",
                    f"{t_ref / t_vec:.1f}x",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E15: 10 synchronous steps, reference vs vectorized (ms)",
        ["n", "reference ms", "vectorized ms", "speedup"],
        rows,
    )
    benchmark.extra_info.update(
        n=rows[-1][0], engine="vectorized", backend="numpy",
        speedup=float(rows[-1][3].rstrip("x")),
    )
    # the vectorized engine must win at the largest size
    assert float(rows[-1][3].rstrip("x")) > 1.0


def test_three_engine_comparison(benchmark):
    """Reference vs vectorized vs batched on one deterministic workload.

    The batched engine is built for R > 1, but even at R = 1 its per-step
    cost should stay within a small constant of the vectorized engine —
    this guards against the stacked one-hot layout regressing the
    single-replica path.  The R = 16 column shows the amortized per-replica
    cost the replica-statistics helpers actually pay (see also
    bench_batched.py / E17 for the probabilistic workload).
    """

    def compute():
        rows = []
        for side in (10, 20):
            net, progs, init = _setup(side)
            steps = 10

            t0 = time.perf_counter()
            ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(progs), init.copy())
            ref.run(steps)
            t_ref = time.perf_counter() - t0

            t0 = time.perf_counter()
            vec = VectorizedSynchronousEngine(net, progs, init)
            vec.run(steps)
            t_vec = time.perf_counter() - t0

            t0 = time.perf_counter()
            bat = BatchedSynchronousEngine(net, progs, init, replicas=16)
            bat.run(steps)
            t_bat = time.perf_counter() - t0

            rows.append(
                (
                    side * side,
                    f"{t_ref * 1e3:.1f}",
                    f"{t_vec * 1e3:.1f}",
                    f"{t_bat * 1e3:.1f}",
                    f"{t_bat / 16 * 1e3:.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E15b: 10 steps — reference / vectorized / batched R=16 (ms)",
        ["n", "reference ms", "vectorized ms", "batched ms", "batched ms per replica"],
        rows,
    )
    benchmark.extra_info.update(n=rows[-1][0], engine="batched", backend="numpy")
    # amortized per-replica batched cost must beat one vectorized run
    assert all(float(r[4]) < float(r[2]) for r in rows)


def test_reference_step_benchmark(benchmark):
    net, progs, init = _setup(25)
    aut = FSSGA.from_programs(progs)

    def step5():
        sim = SynchronousSimulator(net, aut, init.copy())
        sim.run(5)

    benchmark(step5)
    benchmark.extra_info.update(n=625, engine="reference", backend=None)


def test_vectorized_step_benchmark(benchmark):
    net, progs, init = _setup(25)

    def step5():
        vec = VectorizedSynchronousEngine(net, progs, init)
        vec.run(5)

    benchmark(step5)
    benchmark.extra_info.update(n=625, engine="vectorized", backend="numpy")


def test_front_door_election_kernel(benchmark):
    """E15c — the run() front door on the Claim 4.1 coin kernel, n = 512.

    Acceptance gate for the engine-interchangeability story: under a
    shared seed the auto-selected vectorized engine must return the
    bitwise-identical final state at >= 5x the reference's speed.
    """
    net = generators.complete_graph(512)
    programs = election.coin_kernel_programs()
    init = election.coin_kernel_init(net)
    steps, seed = 15, 512

    def compute():
        t0 = time.perf_counter()
        ref = run(
            programs, net, init, engine="reference", randomness=2,
            rng=np.random.default_rng(seed), until=steps,
        )
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec = run(
            programs, net, init, engine="auto", randomness=2,
            rng=np.random.default_rng(seed), until=steps,
        )
        t_vec = time.perf_counter() - t0
        return ref, vec, t_ref, t_vec

    ref, vec, t_ref, t_vec = benchmark.pedantic(compute, rounds=1, iterations=1)
    speedup = t_ref / t_vec
    print_table(
        "E15c: run() front door, coin kernel on K_512, 15 steps",
        ["engine", "ms", "speedup"],
        [
            ("reference", f"{t_ref * 1e3:.1f}", ""),
            (vec.engine, f"{t_vec * 1e3:.1f}", f"{speedup:.1f}x"),
        ],
    )
    # counter-level telemetry for the stored BENCH_*.json — metered rerun
    # outside the timed region, checked bitwise-identical to the timed one
    met = MetricsRegistry()
    metered = run(
        programs, net, init, engine="auto", randomness=2,
        rng=np.random.default_rng(seed), until=steps, metrics=met,
    )
    assert metered.final_state == vec.final_state
    benchmark.extra_info.update(
        n=512,
        engine=vec.engine,
        backend=vec.backend,
        speedup=round(speedup, 1),
        steps=met.get("steps"),
        node_updates=met.get("node_updates"),
        rng_draws=met.get("rng_draws"),
        lowering_cache_hits=met.get("lowering_cache_hits"),
        lowering_cache_misses=met.get("lowering_cache_misses"),
        updates_per_sec=round(met.get("node_updates") / t_vec),
    )
    assert vec.engine == "vectorized"  # auto-selection on a mod-thresh kernel
    assert vec.final_state == ref.final_state  # bitwise under the shared seed
    assert speedup >= 5.0
