"""E22 — churn stays on the fast path: mixed down/up schedules at n = 512.

The topology-dynamics acceptance gate: a schedule that deletes, revives
and *grows* topology mid-run must still execute on the vectorized engine
(union-topology lowering — no reference fallback), bitwise-identical to
the reference interpreter under a shared seed, at >= 3x its speed.  The
resilience-curve half of E22 lives in the ``churn-resilience`` /
``churn-smoke`` campaign presets (``python -m repro campaign run``).
"""

import time

import numpy as np

from repro import MetricsRegistry, run
from repro.algorithms import election
from repro.network import generators
from repro.runtime.churn import ChurnPlan, TopologyEvent

from _benchlib import print_table


def _mixed_plan(net, init) -> list:
    """A deterministic mixed schedule over K_n: outages, recoveries with
    partial re-attachment, and fresh arrivals joining the election."""
    events = []
    # a regional outage: nodes 0..7 go down in staggered waves
    for v in range(8):
        events.append(TopologyEvent(1 + v % 3, "node-down", v))
    # some edges die independently
    for v in range(8, 12):
        events.append(TopologyEvent(2, "edge-down", (v, v + 1)))
    # half the outage recovers, re-attaching to a slice of old neighbours
    for v in range(4):
        events.append(
            TopologyEvent(
                6, "node-up", v,
                state=init[v],
                edges=tuple(range(20, 40)),
            )
        )
    # growth: four brand-new contenders attach to the core
    for i in range(4):
        events.append(
            TopologyEvent(
                8 + i, "node-up", f"new{i}",
                state=election.K_REMAIN0,
                edges=tuple(range(50, 60)),
            )
        )
    # and one severed edge comes back
    events.append(TopologyEvent(10, "edge-up", (8, 9)))
    return events


def test_churn_vectorized_gate(benchmark):
    """E22 — coin kernel on K_512 under 21 mixed churn events, 20 steps."""
    n, steps, seed = 512, 20, 22
    net = generators.complete_graph(n)
    programs = election.coin_kernel_programs()
    init = election.coin_kernel_init(net)
    events = _mixed_plan(net, init)

    def compute():
        t0 = time.perf_counter()
        ref = run(
            programs, net.copy(), init, engine="reference", randomness=2,
            rng=np.random.default_rng(seed), until=steps,
            fault_plan=ChurnPlan(list(events)),
        )
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec = run(
            programs, net.copy(), init, engine="auto", randomness=2,
            rng=np.random.default_rng(seed), until=steps,
            fault_plan=ChurnPlan(list(events)),
        )
        t_vec = time.perf_counter() - t0
        return ref, vec, t_ref, t_vec

    ref, vec, t_ref, t_vec = benchmark.pedantic(compute, rounds=1, iterations=1)
    speedup = t_ref / t_vec
    print_table(
        f"E22: coin kernel on K_{n} under {len(events)} churn events, "
        f"{steps} steps",
        ["engine", "ms", "speedup"],
        [
            ("reference", f"{t_ref * 1e3:.1f}", ""),
            (vec.engine, f"{t_vec * 1e3:.1f}", f"{speedup:.1f}x"),
        ],
    )
    # counter-level telemetry for the stored BENCH_*.json — metered rerun
    # outside the timed region, checked bitwise-identical to the timed one
    met = MetricsRegistry()
    metered = run(
        programs, net.copy(), init, engine="auto", randomness=2,
        rng=np.random.default_rng(seed), until=steps, metrics=met,
        fault_plan=ChurnPlan(list(events)),
    )
    assert metered.final_state == vec.final_state
    benchmark.extra_info.update(
        n=n,
        engine=vec.engine,
        backend=vec.backend,
        speedup=round(speedup, 1),
        steps=met.get("steps"),
        churn_events=met.get("churn_events"),
        fault_events=met.get("fault_events"),
        node_updates=met.get("node_updates"),
        rng_draws=met.get("rng_draws"),
        updates_per_sec=round(met.get("node_updates") / t_vec),
    )
    # the gate: churn must not force a reference fallback …
    assert vec.engine == "vectorized"
    assert met.get("churn_events") == len(events)
    # … must stay bitwise-equal to the oracle (arrivals included) …
    assert vec.final_state == ref.final_state
    # … and must keep a real speed margin over the interpreter
    assert speedup >= 3.0
