"""E5 — Figure 1 / Definitions 3.3-3.4: tree-combination invariance.

The paper's Figure 1 visualizes a parallel SM automaton as a tree process;
Definition 3.4 demands the result be independent of the reduction tree and
the leaf permutation.  We quantify: for a valid parallel program, every
tree shape (all Catalan(k-1) of them) and every permutation agree; for an
invalid combiner they scatter.
"""

import itertools

from repro.core.parallel import ParallelProgram
from repro.core.trees import all_trees, balanced_tree, left_comb, render_tree, tree_combine

from _benchlib import print_table


def sat_sum():
    return ParallelProgram(
        frozenset(range(4)), lambda q: min(q, 3), lambda a, b: min(a + b, 3),
        lambda w: w, name="satsum",
    )


def test_tree_invariance_census(benchmark):
    def compute():
        pp = sat_sum()
        rows = []
        for k in (3, 4, 5, 6, 7):
            vals = [1, 0, 1, 1, 0, 1, 0][:k]
            trees = list(all_trees(k))
            results = set()
            evals = 0
            for perm in set(itertools.permutations(vals)):
                for t in trees:
                    results.add(pp.evaluate(list(perm), tree=t))
                    evals += 1
            rows.append((k, len(trees), evals, len(results)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E5: results over all trees x permutations (valid program)",
        ["k", "Catalan(k-1) trees", "evaluations", "distinct results (must be 1)"],
        rows,
    )
    assert all(r[3] == 1 for r in rows)


def test_invalid_combiner_scatters(benchmark):
    def compute():
        bad = ParallelProgram(
            frozenset(range(-40, 41)), lambda q: q,
            lambda a, b: max(-40, min(40, a - b)), lambda w: w,
        )
        vals = [7, 3, 2, 1]
        results = {
            bad.evaluate(vals, tree=t) for t in all_trees(4)
        }
        return len(results)

    distinct = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E5b: non-associative combiner over all 4-leaf trees",
        ["distinct results (must be > 1)"],
        [(distinct,)],
    )
    assert distinct > 1


def test_figure1_rendering(benchmark):
    """Reproduce the Figure 1 artefact: a rendered combination tree."""

    def compute():
        t = balanced_tree(5)
        return render_tree(t, labels="abcde")

    art = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table("E5c: Figure 1 (balanced 5-leaf combination tree)", ["render"], [(art,)])
    assert art.count("(") == 4  # k-1 internal nodes


def test_deep_comb_combine_benchmark(benchmark):
    k = 20_000
    tree = left_comb(k)
    vals = [1] * k
    benchmark(lambda: tree_combine(lambda a, b: a + b, tree, vals))
