"""E6 — FSSGA 2-colouring decides bipartiteness (Section 4.1).

Shape: success exactly on bipartite graphs, failure flood on the others;
convergence of the sticky variant within diameter+1 rounds.
"""

from repro.algorithms import two_coloring as tc
from repro.network import generators
from repro.network.properties import is_bipartite
from repro.runtime.simulator import SynchronousSimulator

from _benchlib import print_table

FAMILIES = [
    ("path(20)", lambda: generators.path_graph(20)),
    ("cycle(20)", lambda: generators.cycle_graph(20)),
    ("cycle(21)", lambda: generators.cycle_graph(21)),
    ("grid(5x6)", lambda: generators.grid_graph(5, 6)),
    ("petersen", generators.petersen_graph),
    ("K7", lambda: generators.complete_graph(7)),
    ("hypercube(4)", lambda: generators.hypercube_graph(4)),
    ("wheel(8)", lambda: generators.wheel_graph(8)),
]


def test_bipartiteness_decision_series(benchmark):
    def compute():
        rows = []
        for name, net_fn in FAMILIES:
            net = net_fn()
            aut, init = tc.build(net, next(iter(net)))
            sim = SynchronousSimulator(net, aut, init)
            steps = sim.run_until_stable(max_steps=300)
            verdict = "failed" if tc.failed(sim.state) else "2-coloured"
            truth = "bipartite" if is_bipartite(net) else "odd cycle"
            rows.append((name, truth, verdict, steps, net.diameter()))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E6: 2-colouring verdicts vs ground truth",
        ["graph", "truth", "verdict", "rounds", "diameter"],
        rows,
    )
    for name, truth, verdict, steps, diam in rows:
        assert (verdict == "2-coloured") == (truth == "bipartite")
        if verdict == "2-coloured":
            assert steps <= diam + 2


def test_vectorized_large_instance(benchmark):
    """The vectorized engine colours a 3000-node grid."""
    from repro.network import NetworkState
    from repro.runtime.vectorized import VectorizedSynchronousEngine

    net = generators.grid_graph(50, 60)
    progs = tc.sticky_programs()
    init = NetworkState.from_function(net, lambda v: tc.RED if v == 0 else tc.BLANK)

    def run():
        vec = VectorizedSynchronousEngine(net, progs, init)
        vec.run(20)
        return vec

    vec = benchmark(run)
    benchmark.extra_info.update(n=3000, engine="vectorized")
