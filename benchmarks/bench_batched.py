"""E17 — batched replica engine vs R sequential vectorized runs.

The DESIGN choice under test: replica statistics for probabilistic claims
(election phases, census accuracy) should come from one stacked
computation over an (R, n) state array — one sparse product over the
horizontally-stacked one-hot block matrix per step — rather than R
sequential single-replica engine runs that each repay the per-step Python
overhead.  Target (ISSUE 1 acceptance): >= 5x at R = 64 on the
leader-election workload.  Equivalence (replica i bitwise equal to the
spawned single-replica run) is covered in tests/runtime/test_batched.py
and the conformance suite.
"""

import time

import numpy as np

from repro.algorithms import election
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.telemetry import MetricsRegistry
from repro.runtime.vectorized import VectorizedSynchronousEngine
from repro.network import generators

from _benchlib import print_table

STEPS = 30


def _workload(n):
    net = generators.complete_graph(n)
    return net, election.coin_kernel_programs(), election.coin_kernel_init(net)


def _time_sequential(net, programs, init, replicas, seed):
    children = np.random.default_rng(seed).spawn(replicas)
    t0 = time.perf_counter()
    for child in children:
        eng = VectorizedSynchronousEngine(
            net, programs, init, randomness=2, rng=child
        )
        eng.run(STEPS)
    return time.perf_counter() - t0


def _time_batched(net, programs, init, replicas, seed):
    t0 = time.perf_counter()
    eng = BatchedSynchronousEngine(
        net, programs, init, replicas=replicas, randomness=2, rng=seed
    )
    eng.run(STEPS)
    return time.perf_counter() - t0


def test_replica_speedup_series(benchmark):
    def compute():
        rows = []
        speedups = {}
        for n, replicas in ((64, 8), (64, 64), (256, 64)):
            net, programs, init = _workload(n)
            t_seq = _time_sequential(net, programs, init, replicas, seed=0)
            t_bat = _time_batched(net, programs, init, replicas, seed=0)
            speedups[(n, replicas)] = t_seq / t_bat
            rows.append(
                (
                    n,
                    replicas,
                    f"{t_seq * 1e3:.1f}",
                    f"{t_bat * 1e3:.1f}",
                    f"{t_seq / t_bat:.1f}x",
                )
            )
        return rows, speedups

    rows, speedups = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        f"E17: {STEPS} steps of the election coin kernel, "
        "R sequential vectorized runs vs one batched engine (ms)",
        ["n", "R", "sequential ms", "batched ms", "speedup"],
        rows,
    )
    # counter-level telemetry for BENCH_*.json — one metered rerun of the
    # largest cell, outside the timed region
    net, programs, init = _workload(256)
    met = MetricsRegistry()
    eng = BatchedSynchronousEngine(
        net, programs, init, replicas=64, randomness=2, rng=0, metrics=met
    )
    eng.run(STEPS)
    dens = met.series["active_fraction"]
    benchmark.extra_info.update(
        n=256,
        engine="batched",
        backend="numpy",
        speedup=round(speedups[(256, 64)], 1),
        steps=met.get("steps"),
        node_updates=met.get("node_updates"),
        rng_draws=met.get("rng_draws"),
        final_active_fraction=round(dens[-1], 4),
    )
    # the ISSUE 1 acceptance bar: >= 5x at R = 64 on the election workload
    assert speedups[(64, 64)] >= 5.0


def test_batched_smoke(benchmark):
    """Timed smoke: one batched kernel run to a unique survivor at R=64."""
    net = generators.complete_graph(64)

    def run():
        stats = election.kernel_phase_statistics(net, replicas=64, rng=7)
        assert stats.survivor_counts == [1] * 64
        return stats

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    benchmark.extra_info.update(n=64, engine="batched", backend="numpy")
    print(
        f"\nR=64 kernel runs on K64: mean {stats.mean_rounds:.1f} phases "
        f"(min {int(stats.rounds.min())}, max {int(stats.rounds.max())})"
    )
