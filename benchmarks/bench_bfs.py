"""E8 — mod-3 BFS (Section 4.3, Algorithm 4.1).

Shape: labels equal distance mod 3; the originator learns found/failed
within O(eccentricity) rounds; found propagates along shortest paths only.
"""

from repro.algorithms import bfs
from repro.network import generators
from repro.runtime.simulator import SynchronousSimulator

from _benchlib import print_table


def test_search_outcome_series(benchmark):
    def compute():
        rows = []
        cases = [
            ("path(24), far target", lambda: generators.path_graph(24), 0, [23]),
            ("path(24), no target", lambda: generators.path_graph(24), 0, []),
            ("grid(6x6)", lambda: generators.grid_graph(6, 6), 0, [35]),
            ("petersen", generators.petersen_graph, 0, [7]),
            ("cycle(15)", lambda: generators.cycle_graph(15), 0, [8]),
        ]
        for name, net_fn, origin, targets in cases:
            net = net_fn()
            aut, init = bfs.build(net, origin, targets)
            sim = SynchronousSimulator(net, aut, init)
            steps = sim.run_until_stable(max_steps=400)
            status = bfs.originator_status(sim.state, origin)
            ok_labels = bfs.labels_match_distance(net, sim.state, origin)
            ecc = net.eccentricity(origin)
            rows.append((name, status, steps, ecc, ok_labels))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E8: BFS verdicts, stabilization rounds vs eccentricity",
        ["case", "status", "rounds", "ecc", "labels ok"],
        rows,
    )
    assert all(r[4] for r in rows)
    for name, status, steps, ecc, _ in rows:
        expected = "found" if "no target" not in name else "failed"
        assert status == expected
        assert steps <= 3 * ecc + 5


def test_found_time_linear_in_distance(benchmark):
    def compute():
        rows = []
        for d in (5, 10, 20, 40):
            net = generators.path_graph(d + 1)
            aut, init = bfs.build(net, 0, [d])
            sim = SynchronousSimulator(net, aut, init)
            steps = sim.run_until(
                lambda st: bfs.originator_status(st, 0) == bfs.FOUND,
                max_steps=4 * d + 10,
            )
            rows.append((d, steps, f"{steps / d:.2f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E8b: rounds until the originator reports found vs distance d",
        ["d", "rounds", "rounds/d"],
        rows,
    )
    # found travels out (d rounds) and back (d rounds): ratio ≈ 2
    for d, steps, ratio in rows:
        assert 1.5 <= float(ratio) <= 2.5


def test_bfs_step_benchmark(benchmark):
    net = generators.grid_graph(15, 15)
    aut, init = bfs.build(net, 0, [224])

    def run():
        sim = SynchronousSimulator(net, aut, init.copy())
        sim.run(10)

    benchmark(run)
    benchmark.extra_info.update(n=225, engine="reference")
