"""E4 — the Theorem 3.7 conversion cycle and its complexity blowup.

Paper: sequential, parallel and mod-thresh SM programs are the same class
(Lemmas 3.5/3.8/3.9), and "the constructions of Lemmas 3.8 and 3.9 can
entail an exponential increase in program complexity".  We measure the
clause/state growth as the orbit structure scales.
"""

from repro.core.convert import (
    modthresh_to_parallel,
    parallel_to_sequential,
    sequential_to_modthresh,
)
from repro.core.multiset import iter_multisets
from repro.core.sequential import SequentialProgram

from _benchlib import print_table


def threshold_program(t, alphabet_size):
    """Counts 'x0' inputs, saturating at t, over an alphabet of the given
    size — per-state orbits have tail t, so Lemma 3.9 emits ~(t+1) clauses
    per counted state."""
    states = [f"x{i}" for i in range(alphabet_size)]

    def p(w, q):
        return tuple(
            min(w[i] + (1 if q == states[i] else 0), t) for i in range(len(states))
        )

    import itertools

    working = frozenset(itertools.product(range(t + 1), repeat=len(states)))
    return (
        SequentialProgram(
            working,
            tuple([0] * len(states)),
            p,
            lambda w: sum(w),
            name=f"thr{t}x{alphabet_size}",
        ),
        states,
    )


def test_lemma39_clause_blowup(benchmark):
    """Clause count of the Lemma 3.9 construction = ∏_j (t_j + m_j): grows
    as (t+1)^|Q| — exponential in the alphabet size."""

    def compute():
        rows = []
        for a in (1, 2, 3):
            for t in (1, 2, 3):
                sp, states = threshold_program(t, a)
                mt = sequential_to_modthresh(sp, states)
                rows.append((a, t, (t + 1) ** a, len(mt.clauses) + 1))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E4: Lemma 3.9 clause count vs ∏(t_j + m_j)",
        ["|Q|", "t", "(t+1)^|Q|", "clauses (incl default)"],
        rows,
    )
    for a, t, expect, got in rows:
        assert got <= expect
        assert got >= expect // 2  # same order: the blowup is real


def test_lemma38_state_blowup(benchmark):
    """Working-state count of Lemma 3.8 = ∏_i M_i (T_i + 1)."""

    def compute():
        rows = []
        for a in (1, 2, 3):
            sp, states = threshold_program(2, a)
            mt = sequential_to_modthresh(sp, states)
            pp = modthresh_to_parallel(mt, states)
            rows.append((a, len(pp.working_states)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E4b: Lemma 3.8 working-state count vs alphabet size",
        ["|Q|", "|W|"],
        rows,
    )
    # exponential growth: each extra alphabet state multiplies |W|
    assert rows[1][1] >= 3 * rows[0][1]
    assert rows[2][1] >= 3 * rows[1][1]


def test_cycle_semantics_preserved(benchmark):
    def compute():
        sp, states = threshold_program(2, 2)
        mt = sequential_to_modthresh(sp, states)
        pp = modthresh_to_parallel(mt, states)
        sp2 = parallel_to_sequential(pp)
        mismatches = 0
        checked = 0
        for ms in iter_multisets(states, 6):
            checked += 1
            if sp2.evaluate(ms) != sp.evaluate(ms):
                mismatches += 1
        return checked, mismatches

    checked, mismatches = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E4c: full cycle seq→mt→par→seq pointwise agreement",
        ["multisets checked", "mismatches"],
        [(checked, mismatches)],
    )
    assert mismatches == 0


def test_pruning_shrinks_lemma39_output(benchmark):
    """Ablation: cascade pruning vs the raw Lemma 3.9 construction."""

    def compute():
        from repro.core.simplify import programs_equivalent, prune_cascade

        rows = []
        for a, t in [(1, 3), (2, 2), (2, 3)]:
            sp, states = threshold_program(t, a)
            # boolean output: many multiplicity classes share a result, so
            # Lemma 3.9's one-clause-per-class cascade is redundant.
            sp_bool = SequentialProgram(
                sp.working_states,
                sp.start,
                sp.process,
                lambda w, _t=t: sum(w) >= _t,
                name=f"any-{t}",
            )
            mt = sequential_to_modthresh(sp_bool, states)
            pruned = prune_cascade(mt, states)
            assert programs_equivalent(mt, pruned, states)
            rows.append(
                (
                    a,
                    t,
                    len(mt.clauses) + 1,
                    len(pruned.clauses) + 1,
                    f"{(len(pruned.clauses) + 1) / (len(mt.clauses) + 1):.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E4d: ablation — cascade size before/after pruning",
        ["|Q|", "t", "raw clauses", "pruned", "ratio"],
        rows,
    )
    assert all(r[3] <= r[2] for r in rows)


def test_conversion_time_benchmark(benchmark):
    sp, states = threshold_program(3, 2)
    benchmark(lambda: sequential_to_modthresh(sp, states))
