"""E13 — IWA ↔ FSSGA mutual simulation slowdowns (Section 5.1).

Paper claims: an IWA computes one synchronous FSSGA round in O(m) time
(Milgram traversal + Lemma 3.8 neighbour counting); an FSSGA simulates an
IWA with O(log Δ) delay per step (local symmetry breaking).
"""

import math

import numpy as np

from repro.algorithms import two_coloring as tc
from repro.iwa import IWA, IWARule, FssgaIwaSimulator, IwaRoundSimulator
from repro.network import NetworkState, generators

from _benchlib import fit_loglog_slope, print_table


def test_iwa_round_cost_linear_in_m(benchmark):
    def compute():
        rows = []
        ms = []
        costs = []
        for n in (10, 20, 40, 80):
            net = generators.cycle_graph(n)  # m = n
            progs = tc.sticky_programs()
            init = NetworkState.from_function(
                net, lambda v: tc.RED if v == 0 else tc.BLANK
            )
            sim = IwaRoundSimulator(net, progs, init)
            sim.run_round()
            ms.append(net.num_edges)
            costs.append(sim.primitive_steps)
            rows.append((n, net.num_edges, sim.primitive_steps,
                         f"{sim.primitive_steps / net.num_edges:.1f}"))
        slope = fit_loglog_slope(ms, costs)
        return rows, slope

    rows, slope = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E13: IWA primitives per synchronous FSSGA round vs m",
        ["n", "m", "primitives", "primitives/m"],
        rows,
    )
    print(f"empirical growth exponent: {slope:.2f} (Θ(m) = 1.0)")
    assert 0.85 < slope < 1.15


def _marker_iwa():
    return IWA(
        [
            IWARule("go", "white", "black", "go", "white", True, "white"),
            IWARule("go", "white", "black", "done"),
        ],
        "go",
    )


def test_fssga_delay_log_delta(benchmark):
    def compute():
        rows = []
        degrees = (4, 16, 64, 256)
        means = []
        for d in degrees:
            rounds = []
            for seed in range(25):
                net = generators.star_graph(d)
                labels = {v: "white" for v in net}
                sim = FssgaIwaSimulator(_marker_iwa(), net, labels, 0, rng=seed)
                sim.step()
                rounds.append(sim.fssga_rounds)
            mean = float(np.mean(rounds))
            means.append(mean)
            rows.append((d, f"{mean:.1f}", f"{math.log2(d):.0f}"))
        return rows, means

    rows, means = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E13b: FSSGA rounds per IWA step vs degree Δ (25 seeds)",
        ["Δ", "mean rounds", "log2 Δ"],
        rows,
    )
    # logarithmic: each 4x in degree adds a ~constant number of rounds
    increments = [b - a for a, b in zip(means, means[1:])]
    assert all(inc < 6 for inc in increments)


def test_iwa_round_benchmark(benchmark):
    net = generators.grid_graph(8, 8)
    progs = tc.sticky_programs()
    init = NetworkState.from_function(net, lambda v: tc.RED if v == 0 else tc.BLANK)

    def run():
        sim = IwaRoundSimulator(net, progs, init)
        sim.run(3)

    benchmark(run)
