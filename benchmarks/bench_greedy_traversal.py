"""E11 — the greedy tourist vs Milgram (Section 4.6).

Paper claims: the greedy tourist traverses in O(n log n) agent steps
([20]) and O(n log² n) FSSGA time, and its sensitivity is 1 (2 async) —
against Milgram's exactly-2n-2 moves but Θ(n) sensitivity.
"""

import math

from repro.algorithms.greedy_traversal import run_greedy_traversal
from repro.algorithms.traversal import run_traversal
from repro.network import generators
from repro.sensitivity.critical import chi_agent

from _benchlib import print_table


def test_agent_steps_scaling(benchmark):
    def compute():
        rows = []
        for n in (16, 32, 64, 128):
            net = generators.connected_gnp_graph(n, min(0.9, 6.0 / n), 4)
            t = run_greedy_traversal(net, 0, rng=4)
            bound = n * math.log2(n)
            rows.append(
                (n, t.agent_steps, round(bound), f"{t.agent_steps / bound:.2f}")
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E11: greedy tourist agent steps vs n log2 n",
        ["n", "agent steps", "n log2 n", "ratio"],
        rows,
    )
    assert all(float(r[3]) < 2.0 for r in rows)


def test_greedy_vs_milgram_tradeoff(benchmark):
    """The paper's trade-off table: moves vs criticality."""

    def compute():
        rows = []
        for n in (12, 24, 48):
            net = generators.connected_gnp_graph(n, min(0.9, 5.0 / n), 8)
            milgram = run_traversal(net.copy(), 0, rng=8)
            greedy = run_greedy_traversal(net.copy(), 0, rng=8)
            # criticality: greedy = 1 (agent); Milgram = max arm length,
            # measured as the longest run of consecutive itinerary
            # extensions (lower bound on max |χ|) — we report n as the
            # worst case per the paper, and 1 for the agent.
            rows.append(
                (
                    n,
                    milgram.hand_moves,
                    greedy.agent_steps,
                    "Θ(n)",
                    len(chi_agent(greedy.itinerary[-1])),
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E11b: who wins on which axis (moves vs sensitivity)",
        ["n", "milgram moves", "greedy moves", "milgram χ", "greedy |χ|"],
        rows,
    )
    for n, mil, gre, _chi_m, chi_g in rows:
        assert mil == 2 * n - 2          # Milgram wins on move count
        assert gre >= n - 1              # greedy pays extra moves...
        assert chi_g == 1                # ...but keeps one critical node


def test_fssga_time_n_log_squared(benchmark):
    def compute():
        rows = []
        for n in (16, 32, 64):
            net = generators.connected_gnp_graph(n, min(0.9, 6.0 / n), 5)
            t = run_greedy_traversal(net, 0, rng=5)
            bound = n * math.log2(n) ** 2
            rows.append((n, t.fssga_time, round(bound), f"{t.fssga_time / bound:.2f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E11c: modeled FSSGA time vs n log2² n",
        ["n", "fssga time", "n log² n", "ratio"],
        rows,
    )
    assert all(float(r[3]) < 2.0 for r in rows)


def test_greedy_benchmark(benchmark):
    net = generators.connected_gnp_graph(40, 0.15, 6)
    benchmark(lambda: run_greedy_traversal(net, 0, rng=6))
