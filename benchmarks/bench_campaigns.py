"""E19 — campaign orchestrator: sharded sweeps vs sequential execution.

The DESIGN choice under test: replica sweeps over a parameter grid
(election phase statistics across n × seeds) should run as a campaign of
independent, spec-seeded jobs sharded over worker processes — target
>= 3x wall-clock at 4 workers on a 4-core host — without costing
determinism: the parallel campaign's ``summary.json`` must be
byte-identical to the sequential (``workers=0``) one, and every conserved
counter (steps, node updates, RNG draws) must sum to exactly the same
total.  The speedup bar is asserted only when the host actually exposes
>= 4 CPUs to this process (a 1-core container cannot demonstrate it);
counter conservation and byte-identity are asserted everywhere.
"""

import os
import time

from repro.campaigns import ArtifactStore, CampaignSpec, run_campaign, write_summary

from _benchlib import print_table

SPEC = CampaignSpec(
    name="bench-e19",
    job="repro.algorithms.election.phase_statistics_job",
    grid={"n": [128, 192]},
    fixed={"replicas": 96, "max_steps": 5_000},
    seeds=8,
    entropy=19,
    retries=0,
)


def _cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _timed_campaign(tmp, workers):
    t0 = time.perf_counter()
    res = run_campaign(SPEC, tmp / f"w{workers}", workers=workers)
    assert res.ok and res.executed == len(SPEC)
    return time.perf_counter() - t0


def test_campaign_speedup_and_conservation(benchmark, tmp_path):
    def compute():
        t_seq = _timed_campaign(tmp_path, 0)
        t_par = _timed_campaign(tmp_path, 4)
        return t_seq, t_par

    t_seq, t_par = benchmark.pedantic(compute, rounds=1, iterations=1)
    speedup = t_seq / t_par

    seq_bytes = write_summary(ArtifactStore(tmp_path / "w0")).read_bytes()
    par_bytes = write_summary(ArtifactStore(tmp_path / "w4")).read_bytes()
    assert par_bytes == seq_bytes  # sharding is invisible in the artifact

    import json

    summary = json.loads(seq_bytes)
    counters = summary["metrics"]["counters"]
    per_job_totals = {}
    for artifact in summary["artifacts"]:
        for name, value in artifact["metrics"]["counters"].items():
            per_job_totals[name] = per_job_totals.get(name, 0) + value
    assert per_job_totals == counters  # conserved under sharding

    print_table(
        f"E19: campaign of {len(SPEC)} phase-statistics jobs "
        f"(grid n={SPEC.grid['n']}, seeds={SPEC.seeds}), "
        "sequential vs 4 workers",
        ["cpus", "sequential s", "4 workers s", "speedup", "summary"],
        [
            (
                _cpus(),
                f"{t_seq:.2f}",
                f"{t_par:.2f}",
                f"{speedup:.2f}x",
                "byte-identical",
            )
        ],
    )
    benchmark.extra_info.update(
        jobs=len(SPEC),
        cpus=_cpus(),
        speedup=round(speedup, 2),
        summaries_byte_identical=True,
        steps=counters.get("steps"),
        node_updates=counters.get("node_updates"),
        rng_draws=counters.get("rng_draws"),
    )
    # the E19 acceptance bar needs real parallel hardware to show up
    if _cpus() >= 4:
        assert speedup >= 3.0


def test_campaign_resume_overhead(benchmark, tmp_path):
    """Resuming a completed campaign is a set lookup, not a re-run."""
    run_campaign(SPEC, tmp_path / "store", workers=0)

    def resume():
        res = run_campaign(SPEC, tmp_path / "store", workers=0)
        assert res.skipped == len(SPEC) and res.executed == 0
        return res

    benchmark.pedantic(resume, rounds=3, iterations=1)
    benchmark.extra_info.update(jobs=len(SPEC), mode="resume-noop")
