"""Extension — the Section 3 message-passing simulation.

Paper: "this model can simulate the ubiquitous message-passing model, by
using message buffers."  The harness checks the simulation is
round-faithful (one synchronous step = one message round) and measures
the buffer-encoding overhead against a hand-written FSSGA doing the same
job.
"""

import time

from repro.core.automaton import FSSGA
from repro.network import NetworkState, generators
from repro.runtime.message_passing import MessagePassingAlgorithm, as_fssga
from repro.runtime.simulator import SynchronousSimulator

from _benchlib import print_table


def _broadcast_mp():
    def handler(state, inbox):
        if state == "informed" or inbox["token"] > 0:
            return "informed", ["token"]
        return "idle", []

    return MessagePassingAlgorithm(["idle", "informed"], ["token"], handler)


def _broadcast_direct():
    return FSSGA(
        {"idle", "informed"},
        lambda own, view: "informed"
        if own == "informed" or view.at_least("informed", 1)
        else "idle",
    )


def test_round_fidelity(benchmark):
    """One synchronous step of the simulated algorithm must inform exactly
    the ball of radius (round count) — identical to the direct automaton."""

    def compute():
        rows = []
        for rounds in (1, 2, 4, 7):
            net = generators.grid_graph(5, 5)
            algo = _broadcast_mp()
            aut = as_fssga(algo)
            init = NetworkState(
                {
                    v: algo.encode("informed", ["token"])
                    if v == 0
                    else algo.encode("idle")
                    for v in net
                }
            )
            sim = SynchronousSimulator(net, aut, init)
            sim.run(rounds)
            informed = {v for v in net if sim.state[v][0] == "informed"}
            ball = {v for v, d in net.bfs_distances([0]).items() if d <= rounds}
            rows.append((rounds, len(informed), len(ball), informed == ball))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "EXT-mp: informed set after k rounds vs the radius-k ball",
        ["rounds", "informed", "ball size", "equal"],
        rows,
    )
    assert all(r[3] for r in rows)


def test_buffer_overhead(benchmark):
    """Wall-clock overhead of the buffer encoding vs a direct FSSGA."""

    def compute():
        net = generators.grid_graph(20, 20)
        steps = 15

        algo = _broadcast_mp()
        aut_mp = as_fssga(algo)
        init_mp = NetworkState(
            {
                v: algo.encode("informed", ["token"]) if v == 0 else algo.encode("idle")
                for v in net
            }
        )
        t0 = time.perf_counter()
        SynchronousSimulator(net, aut_mp, init_mp).run(steps)
        t_mp = time.perf_counter() - t0

        aut_d = _broadcast_direct()
        init_d = NetworkState.uniform(net, "idle")
        init_d[0] = "informed"
        t0 = time.perf_counter()
        SynchronousSimulator(net, aut_d, init_d).run(steps)
        t_direct = time.perf_counter() - t0
        return t_mp, t_direct

    t_mp, t_direct = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "EXT-mp-b: buffer-encoding overhead (400-node grid, 15 rounds)",
        ["simulated (s)", "direct (s)", "overhead"],
        [(f"{t_mp:.3f}", f"{t_direct:.3f}", f"{t_mp / t_direct:.1f}x")],
    )
    assert t_mp < 50 * t_direct  # constant-factor, not asymptotic, overhead


def test_message_round_benchmark(benchmark):
    net = generators.grid_graph(12, 12)
    algo = _broadcast_mp()
    aut = as_fssga(algo)
    init = NetworkState(
        {
            v: algo.encode("informed", ["token"]) if v == 0 else algo.encode("idle")
            for v in net
        }
    )

    def run():
        sim = SynchronousSimulator(net, aut, init.copy())
        sim.run(5)

    benchmark(run)
