"""E3 — decentralized shortest paths (Section 2.2).

Paper claims: a node at distance d stabilizes at d within d rounds; the
algorithm is 0-sensitive (labels re-balance after any non-critical
faults); min-label routing sends every packet along a shortest path.
"""

from repro.algorithms import shortest_paths as sp
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.simulator import SynchronousSimulator

from _benchlib import print_table


def test_convergence_rounds_equal_eccentricity(benchmark):
    def compute():
        rows = []
        for name, net_fn, targets in [
            ("path(32)", lambda: generators.path_graph(32), [0]),
            ("grid(8x8)", lambda: generators.grid_graph(8, 8), [0]),
            ("cycle(40)", lambda: generators.cycle_graph(40), [0]),
            ("star(30)", lambda: generators.star_graph(30), [0]),
        ]:
            net = net_fn()
            aut, init = sp.build(net, targets)
            sim = SynchronousSimulator(net, aut, init)
            steps = sim.run_until_stable(max_steps=500)
            ecc = max(net.bfs_distances(targets).values())
            rows.append((name, ecc, steps, steps <= ecc + 2))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E3: rounds to stabilize vs max distance d",
        ["graph", "max dist", "rounds", "<= d+2"],
        rows,
    )
    assert all(r[3] for r in rows)


def test_fault_reconvergence(benchmark):
    def compute():
        rows = []
        for seed in range(8):
            net = generators.grid_graph(6, 6)
            plan = FaultPlan(
                [FaultEvent(4, "edge", (7, 8)), FaultEvent(9, "node", 14)]
            )
            aut, init = sp.build(net, [0])
            sim = SynchronousSimulator(net, aut, init, rng=seed, fault_plan=plan)
            sim.run_until_stable(max_steps=300)
            ok = sp.stabilized(net, sim.state, [0], net.num_nodes)
            rows.append((seed, len(plan.applied), ok))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E3b: 0-sensitivity — labels equal survivor-graph distances",
        ["seed", "faults applied", "reconverged"],
        rows,
    )
    assert all(r[2] for r in rows)


def test_routing_optimality(benchmark):
    def compute():
        net = generators.connected_gnp_graph(60, 0.08, 5)
        sinks = [0, 1]
        aut, init = sp.build(net, sinks)
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable(max_steps=300)
        dist = net.bfs_distances(sinks)
        rows = []
        for start in list(net.nodes())[2:12]:
            path = sp.route_packet(net, sim.state, start, rng=1)
            rows.append((start, dist[start], len(path) - 1))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E3c: packet routing path length vs true distance",
        ["start", "true dist", "route hops"],
        rows,
    )
    assert all(r[1] == r[2] for r in rows)


def test_relaxation_step_benchmark(benchmark):
    net = generators.grid_graph(20, 20)
    aut, init = sp.build(net, [0])

    def run():
        sim = SynchronousSimulator(net, aut, init.copy())
        sim.run(10)

    benchmark(run)
    benchmark.extra_info.update(n=400, engine="reference")
