"""Extension — firing squad synchronization on paths (Section 5.2).

The paper poses the FSSGA firing squad for general graphs as open and
cites path-graph solutions; this harness exercises our Minsky-style path
CA: simultaneous firing for every n, at time ≈ 3n.
"""

from repro.algorithms.firing_squad import run_firing_squad, space_time_diagram

from _benchlib import fit_loglog_slope, print_table


def test_firing_time_series(benchmark):
    def compute():
        rows = []
        sizes = (8, 16, 32, 64, 128, 256)
        times = []
        for n in sizes:
            t, simultaneous = run_firing_squad(n)
            times.append(t)
            rows.append((n, t, f"{t / n:.2f}", simultaneous))
        slope = fit_loglog_slope(sizes, times)
        return rows, slope

    rows, slope = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "EXT: firing squad — synchronization time vs n",
        ["n", "firing time", "t/n", "simultaneous"],
        rows,
    )
    print(f"empirical growth exponent: {slope:.2f} (linear = 1.0)")
    assert all(r[3] for r in rows)
    assert all(2.0 <= float(r[2]) <= 3.2 for r in rows)
    assert 0.95 < slope < 1.1


def test_space_time_artifact(benchmark):
    def compute():
        return space_time_diagram(10)

    frames = benchmark.pedantic(compute, rounds=1, iterations=1)
    print("\n== EXT-b: space-time diagram, n = 10 ==")
    for t, fr in enumerate(frames):
        print(f"  t={t:3d}  {fr}")
    assert frames[-1] == "F" * 10


def test_firing_squad_benchmark(benchmark):
    benchmark(lambda: run_firing_squad(64))
