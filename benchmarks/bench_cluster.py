"""E24 — cluster serving: throughput scaling across replicas.

The DESIGN choice under test: coordinating N ``repro serve`` replicas
purely through the shared store (claim leases in ``claims.jsonl``, event
spools, one ``artifacts.jsonl``) must let a cluster *scale* — two
replicas behind round-robin load must beat one replica by >= 1.5x
throughput on hosts with >= 4 CPUs (each replica runs its own worker
pool; below 4 CPUs the pools contend and the gate is informational) —
while keeping the cluster-wide execute-once invariant: with all-unique
jobs, the summed ``jobs_executed`` equals the job count exactly, and a
replayed prefix round-robined across *both* replicas is answered
entirely from the shared store, whichever replica executed it.

Both sides run real subprocess replicas under
:class:`repro.cluster.ClusterSupervisor` and real HTTP load from
``repro.service.loadgen`` with multi-target round-robin — the same
traffic shape as the CI cluster smoke, measured instead of asserted.
"""

import asyncio
import os
import socket

from repro.campaigns.store import ArtifactStore
from repro.cluster.supervisor import ClusterSupervisor
from repro.service.loadgen import run_loadgen

from _benchlib import print_table

JOBS = 60
CONCURRENCY = 16
N, K = 20, 4
WORKERS = 2  # per replica
REPEAT_FRACTION = 0.2
SPEEDUP_GATE = 1.5  # enforced only on >= 4-CPU hosts
_GATED = len(os.sched_getaffinity(0)) >= 4


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


async def _cluster_load(store_dir, replicas: int) -> dict:
    supervisor = ClusterSupervisor(
        str(store_dir), replicas=replicas, port=_free_port(),
        workers=WORKERS, queue_limit=2 * CONCURRENCY, lease_ttl=5.0,
    )
    supervisor.start()
    try:
        assert await supervisor.wait_healthy(60.0), "replicas never came up"
        targets = [
            ("127.0.0.1", supervisor.replica_port(i)) for i in range(replicas)
        ]
        report = await run_loadgen(
            jobs=JOBS, concurrency=CONCURRENCY, n=N, k=K,
            repeat_fraction=REPEAT_FRACTION, targets=targets,
        )
        metrics = await supervisor.cluster_metrics()
        report["counters"] = metrics["counters"]
        return report
    finally:
        supervisor.stop()


def _check(report: dict, store_dir) -> None:
    assert report["statuses"] == {200: JOBS}, report["statuses"]
    assert report["outcomes"]["accepted"] == JOBS, report["outcomes"]
    # the replayed prefix hit every replica yet cost zero executions:
    # whichever front door got it answered from the one shared store
    n_repeat = int(JOBS * REPEAT_FRACTION)
    assert report["repeat_outcomes"] == {"cached": n_repeat}, (
        report["repeat_outcomes"]
    )
    # cluster-wide execute-once: summed executions == unique jobs
    assert report["counters"]["jobs_executed"] == JOBS, report["counters"]
    assert report["counters"].get("cache_hits", 0) == n_repeat
    store = ArtifactStore(store_dir)
    assert store.verify() == []
    assert len(store.completed_hashes()) == JOBS


def test_cluster_throughput_scaling(benchmark, tmp_path):
    baseline = asyncio.run(_cluster_load(tmp_path / "store-1r", 1))
    clustered = benchmark.pedantic(
        lambda: asyncio.run(_cluster_load(tmp_path / "store-2r", 2)),
        rounds=1, iterations=1,
    )
    _check(baseline, tmp_path / "store-1r")
    _check(clustered, tmp_path / "store-2r")

    speedup = (
        clustered["throughput_jobs_per_s"] / baseline["throughput_jobs_per_s"]
    )
    if _GATED:
        assert speedup >= SPEEDUP_GATE, (
            f"2 replicas gave {speedup:.2f}x over 1 replica "
            f"(gate {SPEEDUP_GATE}x on a {len(os.sched_getaffinity(0))}-CPU "
            "host)"
        )

    accepted = clustered["per_outcome"]["accepted"]
    print_table(
        f"E24: {JOBS} gossip jobs (n={N}, k={K}), {WORKERS} workers/replica, "
        f"round-robin targets, {CONCURRENCY} concurrent clients",
        ["replicas", "jobs/s", "p50 ms", "p99 ms", "speedup", "gate"],
        [
            (
                1,
                f"{baseline['throughput_jobs_per_s']:.1f}",
                f"{1e3 * baseline['latency_p50']:.1f}",
                f"{1e3 * baseline['latency_p99']:.1f}",
                "1.00x",
                "-",
            ),
            (
                2,
                f"{clustered['throughput_jobs_per_s']:.1f}",
                f"{1e3 * clustered['latency_p50']:.1f}",
                f"{1e3 * clustered['latency_p99']:.1f}",
                f"{speedup:.2f}x",
                f">={SPEEDUP_GATE}x" if _GATED else "off (<4 CPUs)",
            ),
        ],
    )
    benchmark.extra_info.update(
        jobs=JOBS,
        concurrency=CONCURRENCY,
        workers_per_replica=WORKERS,
        cpus=len(os.sched_getaffinity(0)),
        gate_enforced=_GATED,
        baseline_jobs_per_s=round(baseline["throughput_jobs_per_s"], 2),
        cluster_jobs_per_s=round(clustered["throughput_jobs_per_s"], 2),
        speedup=round(speedup, 3),
        accepted_p50_ms=round(1e3 * accepted["latency_p50"], 2),
        accepted_p99_ms=round(1e3 * accepted["latency_p99"], 2),
        cache_hits=clustered["counters"].get("cache_hits", 0),
    )
