"""E12 — randomized leader election (Section 4.7, Algorithm 4.4).

Paper claims: Claim 4.1 (per-phase elimination probability >= 1/4 with
>= 2 remaining); Claim 4.2 (multi-cluster inconsistency detected in O(n)
steps w.p. >= 1 - 2^{-n/2}); Θ(log n) phases whp; O(n log n) total time;
exactly one leader at termination.

The scaling series run on the phase-level reference model (mirroring the
paper's analysis); the full local-rule automaton is validated end-to-end
at smaller sizes.
"""

import math

import numpy as np

from repro.algorithms import election, election_reference as er
from repro.network import generators

from _benchlib import fit_loglog_slope, print_table


def test_claim41_elimination_probability(benchmark):
    def compute():
        net = generators.connected_gnp_graph(24, 0.2, 1)
        rows = []
        for remaining in (2, 4, 8, 16):
            for detection in ("optimistic", "nearest"):
                p = er.phase_elimination_probability(
                    net, remaining, trials=4000, rng=1, detection=detection
                )
                rows.append((remaining, detection, f"{p:.3f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E12: Claim 4.1 — per-phase elimination probability (bound: 0.25)",
        ["remaining", "detection", "P[eliminated]"],
        rows,
    )
    assert all(float(r[2]) >= 0.22 for r in rows)


def test_phase_count_logarithmic(benchmark):
    def compute():
        sizes = (16, 64, 256, 1024)
        rows = []
        means = []
        for n in sizes:
            net = generators.cycle_graph(n)
            phases = [er.run_election(net, rng=s).phases for s in range(25)]
            mean = float(np.mean(phases))
            means.append(mean)
            rows.append((n, f"{mean:.1f}", f"{math.log2(n):.1f}"))
        return rows, means, sizes

    rows, means, sizes = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E12b: phases to elect vs log2 n (25 seeds, reference model)",
        ["n", "mean phases", "log2 n"],
        rows,
    )
    # additive growth per 4x size increase — logarithmic shape
    increments = [b - a for a, b in zip(means, means[1:])]
    assert all(inc < 5 for inc in increments)
    assert means[-1] < 3 * math.log2(sizes[-1])


def test_total_time_n_log_n(benchmark):
    def compute():
        sizes = (32, 128, 512)
        times = []
        rows = []
        for n in sizes:
            net = generators.cycle_graph(n)
            t = float(
                np.mean([er.run_election(net, rng=s).simulated_time for s in range(10)])
            )
            times.append(t)
            rows.append((n, round(t), f"{t / (n * math.log2(n)):.2f}"))
        slope = fit_loglog_slope(sizes, times)
        return rows, slope

    rows, slope = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E12c: simulated election time vs n log2 n",
        ["n", "mean time", "time / (n log2 n)"],
        rows,
    )
    print(f"empirical growth exponent: {slope:.2f} (n log n ≈ 1.0-1.2)")
    assert 0.9 < slope < 1.5


def test_local_automaton_end_to_end(benchmark):
    def compute():
        rows = []
        for name, net_fn in [
            ("path(6)", lambda: generators.path_graph(6)),
            ("cycle(8)", lambda: generators.cycle_graph(8)),
            ("grid(3x3)", lambda: generators.grid_graph(3, 3)),
            ("K5", lambda: generators.complete_graph(5)),
        ]:
            net = net_fn()
            res = election.run_until_elected(net, rng=13)
            rows.append((name, net.num_nodes, res.leader, res.steps))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E12d: full local-rule FSSGA election (unique leader, steps)",
        ["graph", "n", "leader", "sync steps"],
        rows,
    )
    assert all(r[2] is not None for r in rows)


def test_local_automaton_step_scaling(benchmark):
    """Synchronous steps of the full local-rule automaton at small n:
    near-linear-with-log growth (constants are larger than the reference
    model's because every cluster/colour/traversal round is simulated)."""

    def compute():
        rows = []
        for n in (8, 16, 32, 64):
            net = generators.connected_gnp_graph(n, min(0.9, 6.0 / n), 7)
            steps = [
                election.run_until_elected(net, rng=s).steps for s in range(3)
            ]
            mean = float(np.mean(steps))
            rows.append((n, round(mean), f"{mean / (n * math.log2(n)):.1f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E12e: local-rule election steps vs n log2 n (3 seeds)",
        ["n", "mean steps", "steps / (n log2 n)"],
        rows,
    )
    # the normalized constant must not blow up with n (no quadratic drift)
    ratios = [float(r[2]) for r in rows]
    assert ratios[-1] < 4 * ratios[0] + 10


def test_kernel_phase_scaling_batched(benchmark):
    """Claim 4.1 statistics from the executable mod-thresh coin kernel,
    gathered over R = 64 replicas per size with the batched engine (one
    stacked run per n instead of 64 sequential engine runs).  On K_n the
    kernel's remaining-set halves in expectation per phase, so the mean
    phase count to a unique survivor should track log2 n."""

    def compute():
        sizes = (8, 32, 128)
        rows = []
        means = []
        for n in sizes:
            net = generators.complete_graph(n)
            stats = election.kernel_phase_statistics(net, replicas=64, rng=n)
            assert stats.survivor_counts == [1] * 64
            means.append(stats.mean_rounds)
            rows.append((n, f"{stats.mean_rounds:.1f}", f"{math.log2(n):.1f}"))
        return rows, means, sizes

    rows, means, sizes = benchmark.pedantic(compute, rounds=1, iterations=1)
    benchmark.extra_info.update(n=128, engine="batched")
    print_table(
        "E12f: coin-kernel phases to unique survivor on K_n (R=64, batched)",
        ["n", "mean phases", "log2 n"],
        rows,
    )
    # logarithmic shape: additive growth per 4x size increase stays bounded
    increments = [b - a for a, b in zip(means, means[1:])]
    assert all(inc < 6 for inc in increments)
    assert means[-1] < 3 * math.log2(sizes[-1])


def test_reference_election_benchmark(benchmark):
    net = generators.cycle_graph(128)
    benchmark(lambda: er.run_election(net, rng=3))
    benchmark.extra_info.update(n=128, engine="reference")
