"""Helpers shared by the benchmark/experiment modules."""

import numpy as np


def print_table(title: str, header: list, rows: list) -> None:
    """Render a small aligned table to stdout (visible with pytest -s and
    in captured output on failure)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def fit_loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) on log(x): the empirical growth
    exponent (1 ≈ linear, 2 ≈ quadratic)."""
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)
