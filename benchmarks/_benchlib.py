"""Helpers shared by the benchmark/experiment modules."""

import json
from pathlib import Path

import numpy as np


def print_table(title: str, header: list, rows: list) -> None:
    """Render a small aligned table to stdout (visible with pytest -s and
    in captured output on failure)."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows))
        for i, h in enumerate(header)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    print(f"\n== {title} ==")
    print(line)
    print("-" * len(line))
    for r in rows:
        print("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))


def write_bench_json(benchmarks, out_dir=".") -> list:
    """Write one ``BENCH_<module>.json`` per bench module that produced
    timings, from pytest-benchmark's session records.

    Each file holds a list of records ``{"name", "ns_per_op"}`` plus
    whatever the benchmark put in ``benchmark.extra_info`` (by convention:
    ``n``, ``engine``, ``speedup``), so downstream tooling can diff runs
    without parsing pytest output.  Returns the paths written.
    """
    by_module: dict = {}
    for meta in benchmarks:
        stem = Path(meta.fullname.split("::")[0]).stem
        module = stem[len("bench_"):] if stem.startswith("bench_") else stem
        try:
            ns_per_op = float(meta.stats.mean) * 1e9
        except Exception:  # a benchmark that errored has no stats
            continue
        rec = {"name": meta.name, "ns_per_op": ns_per_op}
        rec.update(meta.extra_info or {})
        by_module.setdefault(module, []).append(rec)
    paths = []
    for module, recs in sorted(by_module.items()):
        path = Path(out_dir) / f"BENCH_{module}.json"
        path.write_text(json.dumps({"module": module, "benchmarks": recs}, indent=2))
        paths.append(path)
    return paths


def fit_loglog_slope(xs, ys) -> float:
    """Least-squares slope of log(y) on log(x): the empirical growth
    exponent (1 ≈ linear, 2 ≈ quadratic)."""
    lx = np.log(np.asarray(xs, dtype=float))
    ly = np.log(np.asarray(ys, dtype=float))
    slope, _ = np.polyfit(lx, ly, 1)
    return float(slope)
