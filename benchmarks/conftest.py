"""Pytest fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` module reproduces one experiment from EXPERIMENTS.md
(the paper is a theory paper with no tables/figures of its own, so the
experiments validate its quantitative *claims*).  Benchmarks both time a
representative workload via pytest-benchmark and print the series each
claim predicts, in paper-style rows.
"""

import pytest

from _benchlib import print_table, write_bench_json


@pytest.fixture
def table():
    return print_table


def pytest_sessionfinish(session, exitstatus):
    """Emit one ``BENCH_<module>.json`` per bench module (ns/op plus any
    ``benchmark.extra_info`` the module recorded: n, engine, speedup)."""
    bs = getattr(session.config, "_benchmarksession", None)
    if bs is None or not bs.benchmarks:
        return
    for path in write_bench_json(bs.benchmarks):
        print(f"wrote {path}")
