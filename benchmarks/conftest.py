"""Pytest fixtures for the benchmark/experiment harness.

Each ``bench_*.py`` module reproduces one experiment from EXPERIMENTS.md
(the paper is a theory paper with no tables/figures of its own, so the
experiments validate its quantitative *claims*).  Benchmarks both time a
representative workload via pytest-benchmark and print the series each
claim predicts, in paper-style rows.
"""

import pytest

from _benchlib import print_table


@pytest.fixture
def table():
    return print_table
