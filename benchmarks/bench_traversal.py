"""E10 — Milgram traversal (Section 4.5, Algorithm 4.3).

Paper claims: the hand moves exactly 2n-2 times (the arm traces a
scan-first-search spanning tree); each symmetry-breaking step costs
O(log n), for O(n log n) total time.
"""

import math

import numpy as np

from repro.algorithms.traversal import run_traversal
from repro.network import generators

from _benchlib import fit_loglog_slope, print_table


def test_hand_moves_exactly_2n_minus_2(benchmark):
    def compute():
        rows = []
        for name, net_fn in [
            ("path(15)", lambda: generators.path_graph(15)),
            ("cycle(16)", lambda: generators.cycle_graph(16)),
            ("grid(4x5)", lambda: generators.grid_graph(4, 5)),
            ("K8", lambda: generators.complete_graph(8)),
            ("gnp(18,.3)", lambda: generators.connected_gnp_graph(18, 0.3, 2)),
            ("tree(14)", lambda: generators.random_tree(14, 5)),
        ]:
            net = net_fn()
            run = run_traversal(net, next(iter(net)), rng=7)
            rows.append((name, net.num_nodes, run.hand_moves, 2 * net.num_nodes - 2))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E10: hand moves vs the paper's exact 2n-2",
        ["graph", "n", "hand moves", "2n-2"],
        rows,
    )
    assert all(r[2] == r[3] for r in rows)


def test_total_time_n_log_n(benchmark):
    def compute():
        sizes = (8, 16, 32, 64)
        rows = []
        means = []
        for n in sizes:
            net = generators.cycle_graph(n)
            steps = [run_traversal(net, 0, rng=s).steps for s in range(6)]
            mean = float(np.mean(steps))
            means.append(mean)
            rows.append((n, round(mean), f"{mean / (n * math.log2(n)):.2f}"))
        slope = fit_loglog_slope(sizes, means)
        return rows, slope

    rows, slope = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E10b: traversal time on cycles (6 seeds)",
        ["n", "mean steps", "steps / (n log2 n)"],
        rows,
    )
    print(f"empirical growth exponent: {slope:.2f} (n log n ≈ 1.0-1.3)")
    assert 0.8 < slope < 1.6  # near-linear with a log factor — not quadratic
    # the normalized constant stays bounded
    assert all(float(r[2]) < 8 for r in rows)


def test_traversal_benchmark(benchmark):
    net = generators.grid_graph(4, 4)
    benchmark(lambda: run_traversal(net, 0, rng=1))
