"""E7 — the α synchronizer (Section 4.2).

Paper claims: adjacent clocks differ by at most 1 (so mod 3 suffices);
with every node activating at least once per unit time, each clock
advances at least once per unit time; no communication overhead relative
to the synchronous algorithm; the synchronized asynchronous execution
reproduces the synchronous one.
"""

from collections import Counter

from repro.algorithms import synchronizer as alpha
from repro.core.automaton import FSSGA
from repro.network import NetworkState, generators
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator

from _benchlib import print_table


def epidemic():
    return FSSGA(
        {0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0
    )


def test_clock_progress_per_unit_time(benchmark):
    def compute():
        rows = []
        for name, net_fn in [
            ("path(20)", lambda: generators.path_graph(20)),
            ("grid(5x5)", lambda: generators.grid_graph(5, 5)),
            ("gnp(30,.15)", lambda: generators.connected_gnp_graph(30, 0.15, 1)),
        ]:
            net = net_fn()
            inner = epidemic()
            init = NetworkState.uniform(net, 0)
            init[next(iter(net))] = 1
            comp = alpha.wrap(inner)
            asim = AsynchronousSimulator(net, comp, alpha.initial_state(init), rng=5)
            clocks = {v: 0 for v in net}
            rounds = 12
            for _ in range(rounds):
                order = net.nodes()
                asim.rng.shuffle(order)
                for v in order:
                    before = asim.state[v][2]
                    new = comp.transition(
                        asim.state[v],
                        Counter(asim.state[u] for u in net.neighbors(v)),
                    )
                    asim.state.set(v, new)
                    if new[2] != before:
                        clocks[v] += 1
            rows.append((name, rounds, min(clocks.values()), max(clocks.values())))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E7: clock advancement over k fair units of time",
        ["graph", "units k", "min clock", "max clock"],
        rows,
    )
    for _name, k, lo, _hi in rows:
        assert lo >= k  # each clock advanced at least k times


def test_async_reproduces_sync(benchmark):
    def compute():
        net = generators.grid_graph(4, 5)
        inner = epidemic()
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        sync = SynchronousSimulator(net.copy(), inner, init.copy())
        sync.run_until_stable()
        comp = alpha.wrap(inner)
        matches = 0
        for seed in range(6):
            asim = AsynchronousSimulator(
                net.copy(), comp, alpha.initial_state(init), rng=seed
            )
            asim.run_fair_rounds(25)
            final = {v: asim.state[v][0] for v in net}
            if final == dict(sync.state.items()):
                matches += 1
        return matches

    matches = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E7b: synchronized async runs matching the sync fixed point",
        ["matching runs (of 6)"],
        [(matches,)],
    )
    assert matches == 6


def test_wrapped_step_overhead_benchmark(benchmark):
    """The 'no complexity increase' claim, measured: one fair round of the
    wrapped automaton."""
    net = generators.grid_graph(10, 10)
    inner = epidemic()
    init = NetworkState.uniform(net, 0)
    init[0] = 1
    comp = alpha.wrap(inner)

    def run():
        asim = AsynchronousSimulator(
            net, comp, alpha.initial_state(init), rng=1
        )
        asim.run_fair_rounds(3)

    benchmark(run)
