"""E23 — service front door: gossip-aggregation load under quotas.

The DESIGN choice under test: serving the campaign layer over an asyncio
HTTP front door (``repro.service``) must sustain the Mosk-Aoyama–Shah
gossip workload — >= 100 small gossip jobs through the worker pool — with
per-tenant token-bucket quotas enforced, dedupe intact (a replayed prefix
is answered entirely from the store, zero extra executions) and zero torn
lines in the shared ``artifacts.jsonl`` (``store.verify()`` clean).
Reported: throughput (jobs/s) and client-observed latency percentiles.

The server runs in-process on a loopback socket with the real HTTP layer
and the real (spawn) process pool — the same path ``repro serve``
exposes; the load generator is ``repro.service.loadgen`` itself.
"""

import asyncio

from repro.campaigns.store import ArtifactStore
from repro.service.http import serve
from repro.service.jobs import JobManager
from repro.service.loadgen import run_loadgen

from _benchlib import print_table

JOBS = 100
CONCURRENCY = 16
N, K = 20, 4


async def _serve_load(store_dir, *, quota_burst=None, quota_rate=0.0):
    manager = JobManager(
        store_dir,
        workers=4,
        queue_limit=2 * CONCURRENCY,
        quota_burst=quota_burst,
        quota_rate=quota_rate,
    )
    manager.start()
    server = await serve(manager, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        report = await run_loadgen(
            "127.0.0.1", port,
            jobs=JOBS, concurrency=CONCURRENCY, n=N, k=K,
            repeat_fraction=0.2,
        )
        report["counters"] = dict(manager.metrics.counters)
        return report
    finally:
        server.close()
        await server.wait_closed()
        await manager.close()


def test_service_gossip_load(benchmark, tmp_path):
    report = benchmark.pedantic(
        lambda: asyncio.run(_serve_load(tmp_path / "store")),
        rounds=1, iterations=1,
    )

    # every job answered 200, all first-round submissions executed
    assert report["statuses"] == {200: JOBS}
    assert report["outcomes"]["accepted"] == JOBS
    # the replayed prefix is pure cache: zero extra executions
    assert report["repeat_outcomes"] == {"cached": int(JOBS * 0.2)}
    assert report["counters"]["jobs_executed"] == JOBS
    assert report["counters"]["cache_hits"] == int(JOBS * 0.2)

    # the concurrent-writer guarantee: nothing torn, nothing corrupted
    store = ArtifactStore(tmp_path / "store")
    assert store.verify() == []
    assert len(store.completed_hashes()) == JOBS

    print_table(
        f"E23: {JOBS} gossip jobs (n={N}, k={K}) through repro.service, "
        f"{CONCURRENCY} concurrent clients",
        ["jobs/s", "p50 ms", "p90 ms", "p99 ms", "replay", "torn lines"],
        [
            (
                f"{report['throughput_jobs_per_s']:.1f}",
                f"{1e3 * report['latency_p50']:.1f}",
                f"{1e3 * report['latency_p90']:.1f}",
                f"{1e3 * report['latency_p99']:.1f}",
                "all cached",
                0,
            )
        ],
    )
    benchmark.extra_info.update(
        jobs=JOBS,
        concurrency=CONCURRENCY,
        throughput_jobs_per_s=round(report["throughput_jobs_per_s"], 2),
        latency_p50_ms=round(1e3 * report["latency_p50"], 2),
        latency_p99_ms=round(1e3 * report["latency_p99"], 2),
        cache_hits=report["counters"]["cache_hits"],
        torn_lines=0,
    )


def test_service_quota_enforcement(benchmark, tmp_path):
    """A burst above the tenant budget is clipped by 429s, not queued."""
    report = benchmark.pedantic(
        lambda: asyncio.run(
            _serve_load(
                tmp_path / "store", quota_burst=JOBS // 2, quota_rate=0.0
            )
        ),
        rounds=1, iterations=1,
    )
    accepted = report["outcomes"].get("accepted", 0)
    rejected = report["outcomes"].get("quota_rejected", 0)
    assert accepted == JOBS // 2
    assert rejected == JOBS - JOBS // 2
    assert report["counters"]["quota_rejections"] == rejected
    # rejected jobs never reached the pool or the store
    assert report["counters"]["jobs_executed"] == accepted
    store = ArtifactStore(tmp_path / "store")
    assert len(store.completed_hashes()) == accepted
    assert store.verify() == []
    print_table(
        f"E23b: tenant quota burst={JOBS // 2} against {JOBS} submissions",
        ["accepted", "429 quota", "executed", "store ok"],
        [(accepted, rejected, report["counters"]["jobs_executed"], "yes")],
    )
    benchmark.extra_info.update(
        jobs=JOBS, quota_burst=JOBS // 2,
        accepted=accepted, quota_rejected=rejected,
    )
