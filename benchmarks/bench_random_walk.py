"""E9 — the emergent random walk (Section 4.4, Algorithm 4.2).

Paper claims: the protocol realizes a uniform random walk (each neighbour
equally likely to win the hand-off), and the expected number of rounds per
move at a degree-d node is Θ(log d).
"""

import math
from collections import Counter

import numpy as np

from repro.algorithms import random_walk as rw
from repro.network import generators

from _benchlib import print_table


def test_rounds_per_move_logarithmic(benchmark):
    def compute():
        rows = []
        for d in (2, 4, 8, 16, 32, 64):
            net = generators.star_graph(d)
            steps = []
            for seed in range(30):
                obs = rw.run_walk(net, 0, moves=1, rng=seed)
                steps.append(obs.steps_per_move[0])
            rows.append(
                (d, f"{np.mean(steps):.1f}", f"{math.log2(d):.1f}")
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E9: synchronous steps per walker move vs degree (30 seeds)",
        ["degree d", "mean steps", "log2 d"],
        rows,
    )
    # Θ(log d): each doubling of d adds a ~constant number of steps
    means = [float(r[1]) for r in rows]
    increments = [b - a for a, b in zip(means, means[1:])]
    assert max(increments) < 8  # additive, not multiplicative growth
    assert means[-1] < 12 * math.log2(64)


def test_move_distribution_uniform(benchmark):
    def compute():
        net = generators.star_graph(5)
        wins = Counter()
        trials = 150
        for seed in range(trials):
            obs = rw.run_walk(net, 0, moves=1, rng=seed)
            wins[obs.positions[1]] += 1
        return [(leaf, wins[leaf], f"{wins[leaf] / trials:.2f}") for leaf in range(1, 6)]

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E9b: hand-off winner distribution on a 5-leaf star (uniform = .20)",
        ["leaf", "wins", "fraction"],
        rows,
    )
    assert all(0.08 <= float(r[2]) <= 0.35 for r in rows)


def test_stationary_occupancy_tracks_degree(benchmark):
    def compute():
        net = generators.lollipop_graph(5, 3)
        obs = rw.run_walk(net, 0, moves=1200, rng=3)
        occupancy = Counter(obs.positions)
        deg_sum = sum(net.degree(v) for v in net)
        rows = []
        for v in sorted(net.nodes()):
            expected = net.degree(v) / deg_sum
            actual = occupancy[v] / len(obs.positions)
            rows.append((v, net.degree(v), f"{expected:.3f}", f"{actual:.3f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E9c: stationary occupancy vs degree/2m (1200 moves)",
        ["node", "degree", "expected", "observed"],
        rows,
    )
    assert all(abs(float(r[2]) - float(r[3])) < 0.09 for r in rows)


def test_cover_time_scaling(benchmark):
    """Cover time of the emergent walk on cycles: Θ(n²) positions visited
    — matching the simple-random-walk cover time, since the emergent walk
    IS a uniform walk."""

    def compute():
        from repro.runtime.simulator import SynchronousSimulator

        rows = []
        sizes = (6, 12, 24)
        for n in sizes:
            moves_needed = []
            for seed in range(8):
                net = generators.cycle_graph(n)
                automaton, init = rw.build(net, 0, rng=seed)
                sim = SynchronousSimulator(net, automaton, init, rng=seed)
                obs = rw.WalkObserver(0)
                visited = {0}
                while len(visited) < n:
                    sim.step()
                    obs.observe(sim.state)
                    visited.add(obs.positions[-1])
                moves_needed.append(obs.moves)
            mean = float(np.mean(moves_needed))
            rows.append((n, round(mean), f"{mean / (n * n):.2f}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E9d: cover time (in walker moves) on cycles vs n²",
        ["n", "mean moves to cover", "moves / n²"],
        rows,
    )
    # cycle cover time is n(n-1)/2: the ratio sits near 0.5
    assert all(0.2 <= float(r[2]) <= 1.2 for r in rows)


def test_walk_step_benchmark(benchmark):
    net = generators.connected_gnp_graph(60, 0.1, 4)
    benchmark(lambda: rw.run_walk(net, 0, moves=10, rng=4))
