"""E2 — random-walk bridge finding (Section 2.1, Claim 2.1).

Paper claims: bridges never exceed ±1; non-bridges exceed ±1 in expected
O(mn) steps (proof bound 2(3m+1)(3n)); with an O(c·m·n·log n) walk all
non-bridges are identified whp; the algorithm is 1-sensitive.
"""

import numpy as np

from repro.agents.walks import theoretical_hitting_bound
from repro.algorithms.bridges import BridgeFinder
from repro.network import generators
from repro.network.properties import bridges as true_bridges

from _benchlib import fit_loglog_slope, print_table


def _mean_detection_steps(net_fn, trials=12):
    steps = []
    for seed in range(trials):
        net = net_fn()
        f = BridgeFinder(net, next(iter(net)), rng=seed)
        f.run_until_all_nonbridges_found(true_bridges(net))
        steps.append(f.steps)
    return float(np.mean(steps))


def test_detection_time_scaling(benchmark):
    """Mean steps to flag all non-bridges vs the O(mn) bound, on cycles
    (m = n, so the bound is O(n^2))."""

    def compute():
        rows = []
        sizes = (6, 12, 24, 48)
        means = []
        for n in sizes:
            mean = _mean_detection_steps(lambda n=n: generators.cycle_graph(n))
            bound = theoretical_hitting_bound(n, n)
            means.append(mean)
            rows.append((n, n, round(mean), bound, f"{mean / bound:.3f}"))
        slope = fit_loglog_slope(sizes, means)
        return rows, slope

    rows, slope = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E2: steps until every non-bridge exceeds ±1 (cycles, 12 seeds)",
        ["n", "m", "mean steps", "2(3m+1)(3n)", "ratio"],
        rows,
    )
    print(f"empirical growth exponent: {slope:.2f} (O(mn) on cycles = 2)")
    # shape: within the proof bound, and growth ≈ quadratic (mn with m=n)
    assert all(float(r[4]) < 1.0 for r in rows)
    assert 1.3 < slope < 2.7


def test_bridges_never_flagged(benchmark):
    def compute():
        rows = []
        for name, net_fn in [
            ("barbell(5,3)", lambda: generators.barbell_graph(5, 3)),
            ("lollipop(5,4)", lambda: generators.lollipop_graph(5, 4)),
            ("tree(20)", lambda: generators.random_tree(20, 1)),
        ]:
            net = net_fn()
            tb = true_bridges(net)
            f = BridgeFinder(net, next(iter(net)), rng=3)
            f.run(20_000)
            flagged_bridges = f.exceeded_edges() & tb
            rows.append((name, len(tb), len(f.exceeded_edges()), len(flagged_bridges)))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E2b: bridges are never flagged (20k-step walks)",
        ["graph", "#bridges", "#flagged", "#bridges flagged (must be 0)"],
        rows,
    )
    assert all(r[3] == 0 for r in rows)


def test_claim21_exact_hitting_vs_bound(benchmark):
    """The proof, numerically: exact expected hitting time to EXCEEDED on
    the lifted graph (linear solve) vs the 2(3m+1)(3n) bound vs the
    measured detection time of the actual agent."""

    def compute():
        from repro.agents.analysis import exact_hitting_times
        from repro.agents.lifted_graph import EXCEEDED, build_lifted_graph, lifted_node
        from repro.network import generators as g

        rows = []
        for name, net_fn in [
            ("cycle(6)", lambda: g.cycle_graph(6)),
            ("cycle(10)", lambda: g.cycle_graph(10)),
            ("theta(2,3,3)", lambda: g.theta_graph(2, 3, 3)),
            ("K5", lambda: g.complete_graph(5)),
        ]:
            net = net_fn()
            edge = net.edges()[0]
            lifted = build_lifted_graph(net, edge)
            exact = exact_hitting_times(lifted, EXCEEDED)[lifted_node(edge[0], 0)]
            bound = theoretical_hitting_bound(net.num_nodes, net.num_edges)
            # measured: steps for THIS edge's counter to exceed ±1
            measured = []
            for seed in range(15):
                f = BridgeFinder(net_fn(), edge[0], rng=seed)
                while not f._records[edge].exceeded:
                    f.step()
                measured.append(f.steps)
            rows.append(
                (name, round(exact, 1), round(float(np.mean(measured)), 1), bound)
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E2c: Claim 2.1 — exact lifted-graph hitting time vs measured vs bound",
        ["graph", "exact E[T]", "measured mean (15 seeds)", "2(3m+1)(3n)"],
        rows,
    )
    for _name, exact, measured, bound in rows:
        assert exact <= bound
        assert measured < 4 * exact + 50  # empirical tracks the exact value


def test_walk_step_benchmark(benchmark):
    net = generators.connected_gnp_graph(100, 0.08, 2)
    f = BridgeFinder(net, 0, rng=2)
    benchmark(lambda: f.run(1000))
