"""E20 — symmetry-quotient engine vs full-graph vectorized engine.

The paper's symmetry argument in action: on a vertex-transitive network
started orbit-constant, the quotient engine simulates **one**
representative where the full-graph engine simulates n nodes.  Under the
shared per-orbit draw convention (the vectorized side consumes the same
base stream through :class:`OrbitBroadcastRng`) the two trajectories are
bitwise-identical after lifting, so the n/k node-update reduction is pure
saving, not approximation.

Acceptance gate: on the n = 4096 cycle running the Claim 4.1 coin
election kernel, the quotient run's ``node_updates`` counter must be at
least **20x** smaller than the vectorized run's, with bitwise-equal
lifted final states, and ``node_updates_lifted`` must reconstruct the
full-graph count exactly.
"""

import time

import numpy as np

from repro import MetricsRegistry, run
from repro.algorithms import election
from repro.network import generators
from repro.network.symmetry import cyclic_rotation
from repro.runtime.quotient import OrbitBroadcastRng

from _benchlib import print_table

N = 4096
STEPS = 24
SEED = 4096


def _setup():
    net = generators.cycle_graph(N)
    net.declare_symmetry(cyclic_rotation(N))
    programs = election.coin_kernel_programs()
    init = election.coin_kernel_init(net)  # uniform, hence orbit-constant
    return net, programs, init


def test_quotient_node_update_reduction(benchmark):
    net, programs, init = _setup()
    met_quo, met_vec = MetricsRegistry(), MetricsRegistry()

    def compute():
        t0 = time.perf_counter()
        quo = run(
            programs, net, init, engine="quotient", randomness=2,
            rng=np.random.default_rng(SEED), until=STEPS, metrics=met_quo,
        )
        t_quo = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec = run(
            programs, net, init, engine="vectorized", randomness=2,
            rng=OrbitBroadcastRng(net, np.random.default_rng(SEED)),
            until=STEPS, metrics=met_vec,
        )
        t_vec = time.perf_counter() - t0
        return quo, vec, t_quo, t_vec

    quo, vec, t_quo, t_vec = benchmark.pedantic(compute, rounds=1, iterations=1)

    upd_quo = met_quo.get("node_updates")
    upd_vec = met_vec.get("node_updates")
    reduction = upd_vec / max(upd_quo, 1)
    print_table(
        f"E20: coin kernel on C_{N}, {STEPS} steps, shared per-orbit draws",
        ["engine", "node updates", "rng draws", "ms", "reduction"],
        [
            ("vectorized", upd_vec, met_vec.get("rng_draws"),
             f"{t_vec * 1e3:.1f}", ""),
            ("quotient", upd_quo, met_quo.get("rng_draws"),
             f"{t_quo * 1e3:.1f}", f"{reduction:.0f}x"),
        ],
    )
    benchmark.extra_info.update(
        n=N,
        engine="quotient",
        backend="numpy",
        orbits=1,
        steps=met_quo.get("steps"),
        node_updates=upd_quo,
        node_updates_lifted=met_quo.get("node_updates_lifted"),
        node_updates_full=upd_vec,
        rng_draws=met_quo.get("rng_draws"),
        reduction=round(reduction, 1),
        speedup=round(t_vec / t_quo, 1),
    )

    assert quo.engine == "quotient" and vec.engine == "vectorized"
    # bitwise-equal lifted finals: the reduction is exact, not approximate
    assert quo.final_state == vec.final_state
    # the counters quantify the saving: C_n is one orbit, so the quotient
    # does 1/n of the full-graph work — far beyond the 20x gate
    assert upd_quo > 0, "workload never changed state: gate is vacuous"
    assert reduction >= 20.0
    # the lifted counter reconstructs the full-graph update count exactly
    assert met_quo.get("node_updates_lifted") == upd_vec
    # and draw counts show one shared draw per orbit vs one per node
    assert met_quo.get("rng_draws") == STEPS
    assert met_vec.get("rng_draws") == STEPS * N


def test_quotient_scaling_series(benchmark):
    """Quotient step cost is O(k), independent of n: growing the cycle
    1000x leaves the quotient's update count flat while the full-graph
    count grows linearly."""

    def compute():
        rows = []
        for n in (64, 512, 4096):
            net = generators.cycle_graph(n)
            net.declare_symmetry(cyclic_rotation(n))
            programs = election.coin_kernel_programs()
            init = election.coin_kernel_init(net)
            met = MetricsRegistry()
            t0 = time.perf_counter()
            run(
                programs, net, init, engine="quotient", randomness=2,
                rng=np.random.default_rng(SEED), until=STEPS, metrics=met,
            )
            t = time.perf_counter() - t0
            rows.append(
                (
                    n,
                    met.get("node_updates"),
                    met.get("node_updates_lifted"),
                    f"{t * 1e3:.2f}",
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        f"E20b: quotient cost vs n, coin kernel, {STEPS} steps",
        ["n", "rep updates", "lifted updates", "ms"],
        rows,
    )
    benchmark.extra_info.update(n=rows[-1][0], engine="quotient", backend="numpy")
    # rep updates are n-independent (same seed, same k=1 process) while
    # the lifted count scales with n
    assert rows[0][1] == rows[1][1] == rows[2][1]
    assert rows[2][2] == rows[2][1] * 4096
