"""E1 — Flajolet–Martin census accuracy and fault tolerance (Section 1).

Paper claims: (i) fault-free, each node's estimate is within a factor of 2
of n whp; (ii) the estimate survives any non-disconnecting faults; (iii)
after disconnection, a component G' estimates within
[½·|V(G')|, 2·|V(G)|] whp.
"""

import numpy as np

from repro.algorithms import census
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.simulator import SynchronousSimulator

from _benchlib import print_table


def _run_census(n, seed, k=14):
    net = generators.connected_gnp_graph(n, min(0.9, 4.0 / n + 0.05), seed)
    aut, init = census.build(net, k=k, rng=seed)
    sim = SynchronousSimulator(net, aut, init, rng=seed)
    sim.run_until_stable()
    return census.estimate(sim.state[next(iter(net))])


def test_census_accuracy_series(benchmark):
    def compute():
        rows = []
        for n in (16, 32, 64, 128, 256):
            ests = [_run_census(n, seed) for seed in range(30)]
            med = float(np.median(ests))
            within2 = np.mean([n / 2 <= e <= 2 * n for e in ests])
            rows.append((n, round(med, 1), f"{med / n:.2f}", f"{within2:.0%}"))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E1: census estimates vs true n (median of 30 seeds)",
        ["n", "median est", "ratio", "within 2x"],
        rows,
    )
    for n, med, ratio, _ in rows:
        assert 0.4 <= float(ratio) <= 2.5


def test_census_component_bounds_after_disconnect(benchmark):
    def compute():
        rows = []
        for seed in range(10):
            net = generators.barbell_graph(20, 1)
            from repro.network.properties import bridges

            bridge = next(iter(bridges(net)))
            aut, init = census.build(net, k=14, rng=seed)
            plan = FaultPlan([FaultEvent(1, "edge", bridge)])
            sim = SynchronousSimulator(net, aut, init, rng=seed, fault_plan=plan)
            sim.run(60)
            total_n = 41
            for comp in net.connected_components():
                est = census.estimate(sim.state[next(iter(comp))])
                rows.append(
                    (
                        seed,
                        len(comp),
                        round(est, 1),
                        est >= len(comp) / 4,
                        est <= 4 * total_n,
                    )
                )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E1b: component estimates after disconnection (first 12 rows)",
        ["seed", "|V(G')|", "estimate", ">=|G'|/4", "<=4|G|"],
        rows[:12],
    )
    assert all(r[3] and r[4] for r in rows)


def test_census_averaging_ablation(benchmark):
    """Ablation: accuracy vs sketch copies (stochastic averaging, the
    FM-paper fix for the single-sketch noise)."""

    def compute():
        n = 64
        rows = []
        for copies in (1, 2, 4, 8, 16):
            errs = []
            within = 0
            trials = 25
            for seed in range(trials):
                net = generators.cycle_graph(n)
                aut, init = census.build_averaged(net, copies, k=12, rng=seed)
                sim = SynchronousSimulator(net, aut, init, rng=seed)
                sim.run_until_stable()
                est = census.estimate_averaged(sim.state[0])
                errs.append(abs(np.log2(est / n)))
                if n / 2 <= est <= 2 * n:
                    within += 1
            rows.append(
                (copies, f"{np.mean(errs):.3f}", f"{within / trials:.0%}")
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E1c: ablation — sketch copies vs accuracy (n=64, 25 seeds)",
        ["copies", "mean |log2 err|", "within 2x"],
        rows,
    )
    errs = [float(r[1]) for r in rows]
    assert errs[-1] < errs[0]  # averaging strictly helps


def test_census_step_benchmark(benchmark):
    net = generators.connected_gnp_graph(200, 0.03, 1)
    aut, init = census.build(net, k=12, rng=1)

    def run():
        sim = SynchronousSimulator(net, aut, init.copy(), rng=1)
        sim.run(5)

    benchmark(run)
