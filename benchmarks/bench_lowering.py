"""E18 — the shared lowering pipeline: compile-once cache and faulted fast path.

Two claims from the compiler-IR design (docs/model.md, "Compilation
pipeline"): (1) lowering is paid once per automaton — the Lemma 3.9
enumeration for a rule-based automaton takes ~10^5x longer than the cache
hit that every later engine construction gets; (2) fault plans lower to
live-node masks instead of forcing the reference interpreter, so a faulted
run of the n = 512 election kernel keeps the vectorized engine's advantage
(>= 3x) while remaining bitwise-identical to the reference under a shared
seed.
"""

import time

import numpy as np

from repro import run
from repro.algorithms import election
from repro.algorithms import random_walk as rw
from repro.core.automaton import ProbabilisticFSSGA
from repro.core.ir import clear_lowering_cache, lower, lowering_cache_info
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan

from _benchlib import print_table


def test_compile_cache_amortization(benchmark):
    """First lowering vs cache hits for the random-walk rule (the most
    expensive rule-based compile in the repo: 8 states x 2 draws with
    inferred bounds)."""

    def compute():
        clear_lowering_cache()
        aut = ProbabilisticFSSGA(
            rw.ALPHABET, 2, rw.rule, name="random-walk",
            compile_hints=True,
        )
        t0 = time.perf_counter()
        lower(aut)
        t_compile = time.perf_counter() - t0

        hits = 200
        t0 = time.perf_counter()
        for _ in range(hits):
            lower(aut)
        t_hit = (time.perf_counter() - t0) / hits
        return t_compile, t_hit, lowering_cache_info()

    t_compile, t_hit, info = benchmark.pedantic(compute, rounds=1, iterations=1)
    amortization = t_compile / t_hit
    print_table(
        "E18: lowering cache, random-walk rule (8 states, r=2)",
        ["event", "time", "ratio"],
        [
            ("first compile", f"{t_compile * 1e3:.1f} ms", ""),
            ("cache hit", f"{t_hit * 1e6:.1f} us", f"{amortization:.0f}x"),
        ],
    )
    benchmark.extra_info.update(
        engine="compiler", compile_ms=round(t_compile * 1e3, 1),
        hit_us=round(t_hit * 1e6, 1), amortization=round(amortization),
    )
    assert info["hits"] == 200 and info["misses"] == 1
    assert amortization > 100  # a hit must be orders of magnitude cheaper


def test_faulted_run_speedup(benchmark):
    """Faulted coin kernel on K_512: vectorized (fault plan lowered to
    masks) vs reference, identical final states, >= 3x faster."""
    n, steps, seed = 512, 15, 1812
    net = generators.complete_graph(n)
    programs = election.coin_kernel_programs()
    init = election.coin_kernel_init(net)

    frng = np.random.default_rng(7)
    victims = frng.choice(n, size=20, replace=False)
    events = [
        FaultEvent(int(frng.integers(1, 10)), "node", int(v)) for v in victims
    ]

    def compute():
        t0 = time.perf_counter()
        ref = run(
            programs, net.copy(), init, engine="reference", randomness=2,
            rng=np.random.default_rng(seed), fault_plan=FaultPlan(events),
            until=steps,
        )
        t_ref = time.perf_counter() - t0
        t0 = time.perf_counter()
        vec = run(
            programs, net.copy(), init, engine="auto", randomness=2,
            rng=np.random.default_rng(seed), fault_plan=FaultPlan(events),
            until=steps,
        )
        t_vec = time.perf_counter() - t0
        return ref, vec, t_ref, t_vec

    ref, vec, t_ref, t_vec = benchmark.pedantic(compute, rounds=1, iterations=1)
    speedup = t_ref / t_vec
    print_table(
        "E18b: faulted coin kernel on K_512 (20 node faults), 15 steps",
        ["engine", "ms", "speedup"],
        [
            ("reference", f"{t_ref * 1e3:.1f}", ""),
            (vec.engine, f"{t_vec * 1e3:.1f}", f"{speedup:.1f}x"),
        ],
    )
    benchmark.extra_info.update(
        n=n, engine=vec.engine, faults=len(events),
        speedup=round(speedup, 1),
    )
    assert vec.engine == "vectorized"  # faults no longer force a fallback
    assert vec.final_state == ref.final_state
    assert speedup >= 3.0
