"""E21 — array-backend sweep: one step kernel, pluggable execution.

The backend layer's bargain: every backend runs the *same* counts → atoms
→ cascades step and must produce bitwise-identical trajectories, so any
speed difference is pure execution strategy — sparse matvec + np.select
(numpy), dense array-API calls (array-api), or the fused per-node JIT
loop (numba, arXiv 0708.0580's n ≥ 10^5 scale target).  The sweep runs
the Claim 4.1 coin election kernel on circulant graphs C_n(1,2,3) —
constant degree, so n is the only scale axis — for n ∈ {2^12 … 2^17}.

Backends join the sweep where their cost model allows: numpy covers every
n; array-api stops at 2^12 (its dense adjacency is O(n^2) memory — the
documented trade-off, restated here as data); the uncompiled bytecode
kernel (``kernel-python``) stops at 2^13 (it exists for conformance, not
speed); numba, when installed, covers every n and must beat numpy by
**>= 3x** at n = 2^17.  Every backend that runs a given n must end in the
bitwise-identical final state.
"""

import time

import numpy as np
import pytest

from repro.algorithms import election
from repro.network import generators
from repro.runtime.backends import HAS_NUMBA, NumbaBackend
from repro.runtime.vectorized import VectorizedSynchronousEngine

from _benchlib import print_table

STEPS = 8
SEED = 2117

SIZES = [2**k for k in range(12, 18)]  # 4096 … 131072

# (label, backend factory, max n this backend sweeps)
AXIS = [
    ("numpy", lambda: "numpy", SIZES[-1]),
    ("array-api", lambda: "array-api", 2**12),
    ("kernel-python", lambda: NumbaBackend(force_python=True), 2**13),
]
if HAS_NUMBA:
    AXIS.append(("numba", lambda: "numba", SIZES[-1]))


def _setup(n):
    net = generators.circulant_graph(n, (1, 2, 3))
    programs = election.coin_kernel_programs()
    init = election.coin_kernel_init(net)
    return net, programs, init


def _time_backend(net, programs, init, backend, n):
    eng = VectorizedSynchronousEngine(
        net, programs, init, randomness=2,
        rng=np.random.default_rng(SEED), backend=backend,
    )
    t0 = time.perf_counter()
    eng.run(STEPS)
    return time.perf_counter() - t0, eng._sigma.copy()


def test_backend_sweep(benchmark):
    def compute():
        rows, finals = [], {}
        for n in SIZES:
            net, programs, init = _setup(n)
            times = {}
            for label, factory, n_max in AXIS:
                if n > n_max:
                    continue
                elapsed, sigma = _time_backend(
                    net, programs, init, factory(), n
                )
                times[label] = elapsed
                finals.setdefault(n, sigma)
                # identical RNG stream + identical kernel semantics
                # => identical integer state vector, no tolerance
                np.testing.assert_array_equal(sigma, finals[n])
            row = [n] + [
                f"{times[label] * 1e3:.1f}" if label in times else "—"
                for label, _, _ in AXIS
            ]
            rows.append(tuple(row))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        f"E21: coin kernel on C_n(1,2,3), {STEPS} steps, per-backend ms",
        ["n"] + [label for label, _, _ in AXIS],
        rows,
    )
    benchmark.extra_info.update(
        n=SIZES[-1], engine="vectorized", backend="numpy",
        backends=[label for label, _, _ in AXIS],
    )
    # every size produced at least the numpy row
    assert all(r[1] != "—" for r in rows)


@pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
def test_numba_speedup_gate(benchmark):
    """Acceptance gate: the fused JIT loop >= 3x numpy at n = 2^17."""
    n = 2**17
    net, programs, init = _setup(n)

    # warm the JIT outside the timed region (compile-once is the contract)
    _time_backend(net, programs, init, "numba", n)

    def compute():
        t_np, sig_np = _time_backend(net, programs, init, "numpy", n)
        t_nb, sig_nb = _time_backend(net, programs, init, "numba", n)
        np.testing.assert_array_equal(sig_nb, sig_np)
        return t_np, t_nb

    t_np, t_nb = benchmark.pedantic(compute, rounds=1, iterations=1)
    speedup = t_np / t_nb
    print_table(
        f"E21b: n = {n}, {STEPS} steps, numpy vs numba",
        ["backend", "ms", "speedup"],
        [
            ("numpy", f"{t_np * 1e3:.1f}", ""),
            ("numba", f"{t_nb * 1e3:.1f}", f"{speedup:.1f}x"),
        ],
    )
    benchmark.extra_info.update(
        n=n, engine="vectorized", backend="numba",
        speedup=round(speedup, 1),
    )
    assert speedup >= 3.0
