"""E14 — the sensitivity ladder (Section 2).

Paper: decentralized algorithms have sensitivity 0, agent algorithms 1,
tree-based algorithms Θ(n).  We inject the same fault schedules into the
Flajolet–Martin census / shortest paths (0-sensitive), the bridge-finding
agent (1-sensitive), and the β synchronizer (Θ(n)-sensitive), and record
who survives.
"""

from repro.algorithms.beta_synchronizer import BetaSynchronizer
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan, random_fault_plan
from repro.sensitivity import (
    census_under_faults,
    shortest_paths_under_faults,
    synchronizer_fault_comparison,
)

from _benchlib import print_table


def test_survival_ladder(benchmark):
    def compute():
        rows = []
        for seed in range(8):
            net = generators.grid_graph(4, 4)
            # one random edge fault at t=5, not incident to node 0
            plan = random_fault_plan(
                net.copy(), 1, max_time=5, rng=seed, kinds=("edge",), protect=(0,)
            )
            events = plan.events()

            c = census_under_faults(net.copy(), FaultPlan(list(events)), k=10, rng=seed)
            s = shortest_paths_under_faults(
                net.copy(), [0], FaultPlan(list(events)), rng=seed
            )
            net_b = net.copy()
            sync = BetaSynchronizer(net_b, root=0)
            comparison = synchronizer_fault_comparison(
                net.copy(), FaultPlan(list(events)), rounds=20, rng=seed
            )
            hit_tree = any(
                e.kind == "edge"
                and tuple(sorted(e.target, key=repr)) in sync._tree_edges
                for e in events
            )
            rows.append(
                (
                    seed,
                    c.reasonably_correct,
                    s.reasonably_correct,
                    comparison["alpha_min_clock"] >= 18,
                    not comparison["beta_broken"],
                    hit_tree,
                )
            )
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E14: survival under one random edge fault",
        ["seed", "census ok", "sp ok", "alpha ok", "beta ok", "fault hit tree"],
        rows,
    )
    # 0-sensitive algorithms always survive
    assert all(r[1] and r[2] and r[3] for r in rows)
    # beta survives exactly when the fault missed its tree
    for r in rows:
        assert r[4] == (not r[5])


def test_beta_breaks_with_targeted_fault(benchmark):
    def compute():
        net = generators.grid_graph(4, 4)
        sync = BetaSynchronizer(net.copy(), root=0)
        tree_edge = next(iter(sync._tree_edges))
        plan = FaultPlan([FaultEvent(5, "edge", tree_edge)])
        return synchronizer_fault_comparison(net, plan, rounds=25, rng=0)

    res = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E14b: α vs β under a targeted tree-edge fault",
        ["beta rounds", "beta broken", "alpha min clock", "rounds attempted"],
        [
            (
                res["beta_rounds_completed"],
                res["beta_broken"],
                res["alpha_min_clock"],
                res["alpha_rounds_attempted"],
            )
        ],
    )
    assert res["beta_broken"]
    assert res["alpha_min_clock"] >= 20


def test_criticality_growth(benchmark):
    """|χ| as a function of n: the Θ(n) tree baseline vs constants."""

    def compute():
        rows = []
        for n in (8, 16, 32, 64):
            net = generators.path_graph(n)
            sync = BetaSynchronizer(net, root=0)
            rows.append((n, 0, 1, len(sync.critical_nodes())))
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    print_table(
        "E14c: critical-node counts by paradigm",
        ["n", "decentralized |χ|", "agent |χ|", "tree |χ|"],
        rows,
    )
    for n, dec, agent, tree in rows:
        assert dec == 0 and agent == 1 and tree >= n // 2
