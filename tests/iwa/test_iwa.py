"""Tests for the IWA model and the Section 5.1 mutual simulations (E13)."""

import pytest

from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA
from repro.iwa import (
    IWA,
    IWAExecution,
    IWARule,
    FssgaIwaSimulator,
    IwaRoundSimulator,
)
from repro.network import NetworkState, generators
from repro.runtime.simulator import SynchronousSimulator


def marker_iwa():
    """A tiny IWA: walk over 'white' nodes marking them 'black', halt when
    no white neighbour remains."""
    rules = [
        IWARule(
            agent_state="go",
            node_label="white",
            new_node_label="black",
            new_agent_state="go",
            guard_label="white",
            guard_present=True,
            move_to_label="white",
        ),
        IWARule(
            agent_state="go",
            node_label="white",
            new_node_label="black",
            new_agent_state="done",
        ),
    ]
    return IWA(rules, start_state="go")


class TestIWAModel:
    def test_states_and_labels(self):
        iwa = marker_iwa()
        assert iwa.states() == {"go", "done"}
        assert iwa.labels() == {"white", "black"}

    def test_empty_rules_rejected(self):
        with pytest.raises(ValueError):
            IWA([], "s")

    def test_marks_a_path(self):
        net = generators.path_graph(5)
        labels = {v: "white" for v in net}
        ex = IWAExecution(marker_iwa(), net, labels, start=0)
        ex.run()
        assert ex.agent_state == "done"
        # the walk moved down the path, marking as it went
        assert all(ex.labels[v] == "black" for v in range(ex.position + 1))

    def test_missing_labels_rejected(self):
        net = generators.path_graph(3)
        with pytest.raises(ValueError):
            IWAExecution(marker_iwa(), net, {0: "white"}, start=0)

    def test_halts_when_no_rule_matches(self):
        net = generators.path_graph(2)
        labels = {0: "black", 1: "black"}
        ex = IWAExecution(marker_iwa(), net, labels, start=0)
        assert ex.run() == 0
        assert ex.halted

    def test_guard_absent(self):
        rules = [
            IWARule("s", "a", "b", "s", guard_label="x", guard_present=False),
        ]
        iwa = IWA(rules, "s")
        net = generators.path_graph(2)
        ex = IWAExecution(iwa, net, {0: "a", 1: "x"}, start=0)
        assert ex.run() == 0  # guard requires NO 'x' neighbour: blocked
        ex2 = IWAExecution(iwa, net, {0: "a", 1: "a"}, start=0)
        ex2.step()
        assert ex2.labels[0] == "b"


class TestIwaSimulatesFssga:
    """Direction 1: one synchronous FSSGA round in O(m) IWA primitives."""

    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: generators.path_graph(8),
            lambda: generators.cycle_graph(9),
            lambda: generators.grid_graph(3, 4),
            lambda: generators.petersen_graph(),
        ],
    )
    def test_round_equivalence(self, net_fn):
        net = net_fn()
        progs = tc.sticky_programs()
        init = NetworkState.from_function(
            net, lambda v: tc.RED if v == next(iter(net)) else tc.BLANK
        )
        iwa_sim = IwaRoundSimulator(net, progs, init)
        ref = SynchronousSimulator(
            net.copy(), FSSGA.from_programs(progs), init.copy()
        )
        for _ in range(6):
            iwa_sim.run_round()
            ref.step()
            assert iwa_sim.state == ref.state

    def test_cost_linear_in_m(self):
        """Primitive steps per round must scale as Θ(m)."""
        costs = {}
        for n in (10, 20, 40):
            net = generators.cycle_graph(n)  # m = n
            progs = tc.sticky_programs()
            init = NetworkState.from_function(
                net, lambda v: tc.RED if v == 0 else tc.BLANK
            )
            sim = IwaRoundSimulator(net, progs, init)
            sim.run_round()
            costs[n] = sim.primitive_steps
        # doubling m should roughly double the cost
        assert 1.5 < costs[20] / costs[10] < 2.5
        assert 1.5 < costs[40] / costs[20] < 2.5

    def test_rule_based_rejected(self):
        net = generators.path_graph(3)
        aut = FSSGA({0, 1}, lambda own, view: own)
        with pytest.raises(TypeError):
            IwaRoundSimulator(net, aut, NetworkState.uniform(net, 0))


class TestFssgaSimulatesIwa:
    """Direction 2: each IWA step costs O(log Δ) FSSGA rounds."""

    def test_same_halting_labels_on_path(self):
        net = generators.path_graph(6)
        labels = {v: "white" for v in net}
        fssga = FssgaIwaSimulator(marker_iwa(), net, dict(labels), start=0, rng=1)
        fssga.run()
        # all nodes the agent visited are black; it halted in state done
        assert fssga.exec.agent_state == "done"
        assert fssga.exec.labels[0] == "black"

    def test_delay_logarithmic_in_degree(self):
        """On stars of growing degree, rounds per IWA step grow like
        log Δ, not Δ."""
        import numpy as np

        means = {}
        for leaves in (4, 16, 64):
            rounds = []
            for seed in range(30):
                net = generators.star_graph(leaves)
                labels = {v: "white" for v in net}
                sim = FssgaIwaSimulator(
                    marker_iwa(), net, labels, start=0, rng=seed
                )
                sim.step()  # one IWA move from the hub
                rounds.append(sim.fssga_rounds)
            means[leaves] = float(np.mean(rounds))
        assert means[16] <= means[4] + 3
        assert means[64] <= means[16] + 3
        assert means[64] < 64 / 4  # far below linear

    def test_iwa_step_count_preserved(self):
        net = generators.cycle_graph(6)
        labels = {v: "white" for v in net}
        ref = IWAExecution(marker_iwa(), net, dict(labels), start=0)
        ref_steps = ref.run()
        sim = FssgaIwaSimulator(marker_iwa(), net, dict(labels), start=0, rng=2)
        sim_steps = sim.run()
        assert sim_steps == ref_steps
        assert sim.fssga_rounds >= sim_steps
