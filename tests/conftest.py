"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.network import generators


@pytest.fixture
def rng():
    return np.random.default_rng(20060730)  # SPAA 2006 dates


@pytest.fixture(
    params=[
        "path",
        "cycle_even",
        "cycle_odd",
        "grid",
        "star",
        "complete",
        "petersen",
        "tree",
    ]
)
def small_connected_graph(request):
    """A menagerie of small connected graphs for cross-algorithm tests."""
    return {
        "path": lambda: generators.path_graph(7),
        "cycle_even": lambda: generators.cycle_graph(8),
        "cycle_odd": lambda: generators.cycle_graph(7),
        "grid": lambda: generators.grid_graph(3, 4),
        "star": lambda: generators.star_graph(6),
        "complete": lambda: generators.complete_graph(5),
        "petersen": generators.petersen_graph,
        "tree": lambda: generators.random_tree(9, 42),
    }[request.param]()


@pytest.fixture(params=["path", "grid", "cycle"])
def bipartite_graph(request):
    return {
        "path": lambda: generators.path_graph(6),
        "grid": lambda: generators.grid_graph(3, 3),
        "cycle": lambda: generators.cycle_graph(8),
    }[request.param]()
