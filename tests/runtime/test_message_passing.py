"""Tests for the Section 3 message-passing simulation layer."""

from collections import Counter

import pytest

from repro.network import generators
from repro.runtime.message_passing import (
    MessagePassingAlgorithm,
    as_fssga,
    run_rounds,
)


def broadcast_algo():
    """Classic flooding broadcast: informed nodes keep announcing."""

    def handler(state, inbox):
        if state == "informed" or inbox["token"] > 0:
            return "informed", ["token"]
        return "idle", []

    return MessagePassingAlgorithm(
        states=["idle", "informed"], messages=["token"], handler=handler
    )


def echo_counter_algo(threshold=2):
    """A node turns 'hot' once it hears >= threshold pings in one round
    (exercises inbox multiplicities)."""

    def handler(state, inbox):
        if state == "hot":
            return "hot", ["ping"]
        if inbox["ping"] >= threshold:
            return "hot", ["ping"]
        if state == "seed":
            return "seed", ["ping"]
        return "cold", []

    return MessagePassingAlgorithm(
        states=["cold", "hot", "seed"], messages=["ping"], handler=handler
    )


class TestEncoding:
    def test_encode_caps_multiplicity(self):
        algo = broadcast_algo()
        q = algo.encode("idle", ["token", "token", "token"])
        assert q == ("idle", (("token", 1),))

    def test_encode_rejects_unknown(self):
        algo = broadcast_algo()
        with pytest.raises(ValueError):
            algo.encode("idle", ["alien"])
        with pytest.raises(ValueError):
            algo.encode("alien-state")

    def test_space_membership(self):
        algo = broadcast_algo()
        aut = as_fssga(algo)
        assert algo.encode("idle") in aut.alphabet
        assert ("idle", (("token", 5),)) not in aut.alphabet
        assert "garbage" not in aut.alphabet

    def test_validation(self):
        with pytest.raises(ValueError):
            MessagePassingAlgorithm([], ["m"], lambda s, i: (s, []))
        with pytest.raises(ValueError):
            MessagePassingAlgorithm(["s"], ["m"], lambda s, i: (s, []), outbox_cap=0)


class TestBroadcast:
    def test_flooding_reaches_everyone_in_ecc_rounds(self):
        net = generators.path_graph(8)
        algo = broadcast_algo()
        init = {v: ("informed", ["token"]) if v == 0 else "idle" for v in net}
        final = run_rounds(net, algo, init, rounds=8)
        assert all(final[v][0] == "informed" for v in net)

    def test_one_round_reaches_exactly_neighbours(self):
        net = generators.star_graph(5)
        algo = broadcast_algo()
        init = {v: ("informed", ["token"]) if v == 0 else "idle" for v in net}
        final = run_rounds(net, algo, init, rounds=1)
        assert all(final[v][0] == "informed" for v in net)  # hub reaches all

        net2 = generators.path_graph(5)
        final2 = run_rounds(net2, algo, {v: ("informed", ["token"]) if v == 0 else "idle" for v in net2}, rounds=1)
        assert final2[1][0] == "informed"
        assert final2[2][0] == "idle"


class TestInboxMultiplicity:
    def test_threshold_needs_two_senders(self):
        # path seed-x-seed: the middle node hears 2 pings -> hot;
        # a single seed's neighbour hears only 1 -> stays cold.
        from repro.network.graph import Network

        net = Network(edges=[(0, 1), (1, 2), (2, 3)])
        algo = echo_counter_algo(threshold=2)
        init = {
            0: ("seed", ["ping"]),
            1: "cold",
            2: ("seed", ["ping"]),
            3: "cold",
        }
        final = run_rounds(net, algo, init, rounds=1)
        assert final[1][0] == "hot"   # heard 0 and 2
        assert final[3][0] == "cold"  # heard only 2

    def test_symmetry_of_reads(self):
        """The inbox depends only on the multiset of neighbour states."""
        algo = echo_counter_algo()
        aut = as_fssga(algo)
        a = algo.encode("seed", ["ping"])
        b = algo.encode("cold")
        own = algo.encode("cold")
        inbox_order_1 = aut.transition(own, Counter({a: 2, b: 1}))
        inbox_order_2 = aut.transition(own, Counter({b: 1, a: 2}))
        assert inbox_order_1 == inbox_order_2


class TestFssgaIntegration:
    def test_runs_on_standard_simulator(self):
        from repro.network import NetworkState
        from repro.runtime.simulator import SynchronousSimulator

        net = generators.cycle_graph(6)
        algo = broadcast_algo()
        aut = as_fssga(algo)
        init = NetworkState(
            {
                v: algo.encode("informed", ["token"])
                if v == 0
                else algo.encode("idle")
                for v in net
            }
        )
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable(max_steps=20)
        assert all(sim.state[v][0] == "informed" for v in net)
