"""Unit tests for repro.runtime.churn: events, plans, and generators."""

import numpy as np
import pytest

from repro.network import NetworkState, generators
from repro.runtime.churn import (
    EDGE_DOWN,
    EDGE_UP,
    NODE_DOWN,
    NODE_UP,
    ChurnPlan,
    TopologyEvent,
    adversarial_plan,
    canonical_kind,
    count_down_events,
    growth_plan,
    is_down_event,
    is_up_event,
    random_churn_plan,
    regional_outage_plan,
)
from repro.runtime.faults import FaultEvent, FaultPlan


class TestEventAlgebra:
    def test_canonical_kind_legacy_mapping(self):
        assert canonical_kind("node") == NODE_DOWN
        assert canonical_kind("edge") == EDGE_DOWN
        assert canonical_kind(NODE_UP) == NODE_UP
        with pytest.raises(ValueError, match="unknown topology-event kind"):
            canonical_kind("node-sideways")

    def test_event_canonicalizes_at_construction(self):
        ev = TopologyEvent(0, "node", 3)
        assert ev.kind == NODE_DOWN
        assert is_down_event(ev) and not is_up_event(ev)
        # legacy FaultEvent instances classify through the same predicates
        assert is_down_event(FaultEvent(0, "edge", (0, 1)))

    def test_node_up_requires_boot_state(self):
        with pytest.raises(ValueError, match="needs a boot state"):
            TopologyEvent(0, NODE_UP, "v")
        ev = TopologyEvent(0, NODE_UP, "v", state="q", edges=[1, 2])
        assert ev.edges == (1, 2)  # coerced to a tuple (hashable, frozen)

    def test_count_down_events_ignores_arrivals(self):
        events = [
            TopologyEvent(0, NODE_DOWN, 0),
            TopologyEvent(1, NODE_UP, 0, state="q"),
            TopologyEvent(2, EDGE_DOWN, (1, 2)),
            TopologyEvent(3, EDGE_UP, (1, 2)),
        ]
        assert count_down_events(events) == 2


class TestTopologyEventApply:
    def test_node_up_attaches_to_present_partners_only(self):
        net = generators.path_graph(3)  # 0-1-2
        st = NetworkState.uniform(net, "s")
        ev = TopologyEvent(0, NODE_UP, 9, state="i", edges=(0, 2, 77))
        assert ev.applies_to(net)
        assert ev.apply(net, st)
        assert 9 in net and st[9] == "i"
        assert net.has_edge(9, 0) and net.has_edge(9, 2)
        assert 77 not in net  # absent partner silently skipped

    def test_node_up_preempted_by_presence(self):
        net = generators.path_graph(3)
        ev = TopologyEvent(0, NODE_UP, 1, state="q")
        assert not ev.applies_to(net)
        assert not ev.apply(net)

    def test_edge_up_needs_both_endpoints(self):
        net = generators.path_graph(3)
        net.remove_edge(0, 1)
        assert TopologyEvent(0, EDGE_UP, (0, 1)).apply(net)
        assert net.has_edge(0, 1)
        # endpoint missing → preempted
        net.remove_node(2)
        assert not TopologyEvent(1, EDGE_UP, (1, 2)).apply(net)
        # edge already present → preempted
        assert not TopologyEvent(2, EDGE_UP, (0, 1)).apply(net)

    def test_resurrection_round_trip(self):
        """down then up: the node returns with exactly the listed edges."""
        net = generators.complete_graph(4)
        st = NetworkState.uniform(net, "s")
        TopologyEvent(0, NODE_DOWN, 0).apply(net, st)
        assert 0 not in net and 0 not in st
        TopologyEvent(1, NODE_UP, 0, state="r", edges=(1,)).apply(net, st)
        assert st[0] == "r"
        assert net.has_edge(0, 1)
        assert not net.has_edge(0, 2) and not net.has_edge(0, 3)


class TestChurnPlan:
    def _mixed(self):
        return [
            TopologyEvent(1, NODE_DOWN, 0),
            TopologyEvent(2, NODE_UP, 0, state="r", edges=(1, 2)),
            TopologyEvent(3, EDGE_DOWN, (1, 2)),
            TopologyEvent(4, EDGE_UP, (1, 2)),
        ]

    def test_addition_flags(self):
        assert not ChurnPlan([TopologyEvent(0, NODE_DOWN, 0)]).has_additions
        edge_up = ChurnPlan([TopologyEvent(0, EDGE_UP, (0, 1))])
        assert edge_up.has_additions and not edge_up.has_arrivals
        node_up = ChurnPlan([TopologyEvent(0, NODE_UP, "v", state="q")])
        assert node_up.has_additions and node_up.has_arrivals

    def test_apply_due_full_cycle(self):
        net = generators.complete_graph(4)
        st = NetworkState.uniform(net, "s")
        plan = ChurnPlan(self._mixed())
        assert plan.apply_due(net, 0, st) == []
        assert not plan.consumed
        plan.apply_due(net, 1, st)
        assert 0 not in net and plan.consumed
        plan.apply_due(net, 2, st)
        assert 0 in net and st[0] == "r"
        assert set(net.neighbors(0)) == {1, 2}
        plan.apply_due(net, 10, st)
        assert plan.exhausted
        assert net.has_edge(1, 2)  # downed at 3, restored at 4
        assert len(plan.applied) == 4 and plan.skipped == []

    def test_union_topology_covers_every_reachable_shape(self):
        net = generators.path_graph(3)  # 0-1-2
        net.declare_symmetry(None)
        plan = ChurnPlan(
            [
                TopologyEvent(1, NODE_DOWN, 0),
                TopologyEvent(2, NODE_UP, "a", state="q", edges=(2, "ghost")),
                TopologyEvent(3, EDGE_UP, ("a", 1)),
                TopologyEvent(4, EDGE_UP, (0, "never")),  # partner never exists
            ]
        )
        union = plan.union_topology(net)
        # arrival appended after the initial nodes, insertion order kept
        assert union.nodes() == [0, 1, 2, "a"]
        assert union.has_edge("a", 2) and union.has_edge("a", 1)
        assert not union.has_edge(0, "never") and "ghost" not in union
        # the source network is untouched and the union carries no group
        assert net.nodes() == [0, 1, 2] and "a" not in net
        assert union._symmetry is None

    def test_union_topology_drops_declared_symmetry(self):
        from repro.network import symmetry as sym

        net = generators.cycle_graph(6)
        net.declare_symmetry(sym.cyclic_rotation(6))
        plan = ChurnPlan([TopologyEvent(1, NODE_UP, "x", state="q", edges=(0,))])
        assert plan.union_topology(net)._symmetry is None
        assert net._symmetry is not None

    def test_boot_states_last_event_wins(self):
        plan = ChurnPlan(
            [
                TopologyEvent(1, NODE_UP, "v", state="a"),
                TopologyEvent(5, NODE_UP, "v", state="b"),
                TopologyEvent(3, NODE_UP, "w", state="c"),
            ]
        )
        assert plan.boot_states() == {"v": "b", "w": "c"}

    def test_mixed_legacy_and_typed_events(self):
        """FaultEvent and TopologyEvent interoperate in one schedule."""
        net = generators.path_graph(4)
        plan = ChurnPlan(
            [
                FaultEvent(1, "node", 3),
                TopologyEvent(2, NODE_UP, 3, state="q", edges=(2,)),
            ]
        )
        st = NetworkState.uniform(net, "s")
        plan.apply_due(net, 5, st)
        assert 3 in net and st[3] == "q"
        assert count_down_events(plan.applied) == 1

    def test_faultplan_is_deletion_only_churnplan(self):
        plan = FaultPlan([FaultEvent(0, "node", 1)])
        assert isinstance(plan, ChurnPlan)
        assert not plan.has_additions


class TestRegionalOutagePlan:
    def test_ball_and_stagger(self):
        net = generators.path_graph(7)  # 0-1-...-6
        plan = regional_outage_plan(net, 3, radius=2, time=5, stagger=2)
        downs = {e.target: e.time for e in plan.events()}
        assert set(downs) == {1, 2, 3, 4, 5}
        assert downs[3] == 5                      # distance 0
        assert downs[2] == downs[4] == 7          # distance 1
        assert downs[1] == downs[5] == 9          # distance 2
        assert not plan.has_additions

    def test_recovery_restores_original_neighbourhood(self):
        net = generators.cycle_graph(6)
        plan = regional_outage_plan(
            net, 0, radius=1, time=1, recover_after=3, recover_state="r"
        )
        ups = {e.target: e for e in plan.events() if e.kind == NODE_UP}
        assert set(ups) == {0, 1, 5}
        assert ups[0].time == 4 and ups[0].state == "r"
        assert set(ups[0].edges) == set(net.neighbors(0))
        # mutually recovering neighbours re-link: run it end to end
        scratch = net.copy()
        st = NetworkState.uniform(scratch, "s")
        ChurnPlan(plan.events()).apply_due(scratch, 99, st)
        assert scratch.num_nodes == 6
        assert scratch.has_edge(0, 1) and scratch.has_edge(0, 5)

    def test_errors(self):
        net = generators.path_graph(3)
        with pytest.raises(KeyError):
            regional_outage_plan(net, 99, radius=1)
        with pytest.raises(ValueError, match="recover_state"):
            regional_outage_plan(net, 0, radius=1, recover_after=2)


class TestAdversarialPlan:
    def test_degree_targets_hub_first(self):
        net = generators.star_graph(5)  # hub 0, leaves 1..5
        plan = adversarial_plan(net, 2, start=3, interval=2)
        evs = plan.events()
        assert evs[0].target == 0 and evs[0].time == 3
        assert evs[1].time == 5
        assert all(e.kind == NODE_DOWN for e in evs)

    def test_articulation_outranks_degree(self):
        # barbell: 0-1-2 path joining two triangles; 1 is the cut vertex
        net = generators.path_graph(3)
        net.add_edges([(0, "a"), (0, "b"), ("a", "b"),
                       (2, "c"), (2, "d"), ("c", "d")])
        plan = adversarial_plan(net, 1, centrality="articulation")
        assert plan.events()[0].target in (0, 1, 2)  # a cut vertex

    def test_bridge_centrality_smoke(self):
        net = generators.path_graph(5)  # every edge is a bridge
        plan = adversarial_plan(net, 1, centrality="bridge")
        # interior nodes carry two bridges each; 2 wins the repr tiebreak
        assert plan.events()[0].target in (1, 2, 3)

    def test_unknown_centrality(self):
        with pytest.raises(ValueError, match="unknown centrality"):
            adversarial_plan(generators.path_graph(3), 1, centrality="pagerank")


class TestGrowthPlan:
    def test_schedule_shape_and_determinism(self):
        net = generators.complete_graph(5)
        a = growth_plan(net, 3, attach=2, start=4, interval=3, rng=7, state="q")
        b = growth_plan(net, 3, attach=2, start=4, interval=3, rng=7, state="q")
        assert [e.target for e in a.events()] == ["new0", "new1", "new2"]
        assert [e.time for e in a.events()] == [4, 7, 10]
        assert [e.edges for e in a.events()] == [e.edges for e in b.events()]
        assert a.has_arrivals
        for ev in a.events():
            assert ev.state == "q" and len(ev.edges) == 2

    def test_later_arrivals_may_attach_to_earlier_ones(self):
        net = generators.path_graph(2)
        plan = growth_plan(net, 8, attach=2, rng=0, state="q")
        pool = {0, 1} | {f"new{i}" for i in range(8)}
        assert any(
            any(isinstance(u, str) for u in ev.edges) for ev in plan.events()
        )
        for ev in plan.events():
            assert set(ev.edges) <= pool - {ev.target}

    def test_taken_ids_are_skipped(self):
        net = generators.path_graph(2)
        net.add_node("new0")
        plan = growth_plan(net, 2, rng=0, state="q")
        assert [e.target for e in plan.events()] == ["new1", "new2"]


class TestCursorContract:
    def test_ensure_fresh_resets_a_consumed_plan(self):
        net = generators.cycle_graph(6)
        st = NetworkState.uniform(net, "s")
        plan = ChurnPlan(
            [TopologyEvent(0, NODE_DOWN, 1), TopologyEvent(5, NODE_DOWN, 2)]
        )
        plan.apply_due(net, 0, st)
        assert plan.consumed and len(plan.applied) == 1
        assert plan.ensure_fresh() is plan  # chainable
        assert not plan.consumed
        assert plan.applied == [] and plan.skipped == []

    def test_ensure_fresh_is_a_noop_on_a_fresh_plan(self):
        plan = ChurnPlan([TopologyEvent(0, NODE_DOWN, 1)])
        applied = plan.applied
        plan.ensure_fresh()
        assert plan.applied is applied  # untouched, not rebuilt

    def test_engine_construction_resets_via_ensure_fresh(self):
        from repro.runtime.simulator import SynchronousSimulator
        from repro.algorithms import two_coloring as tc

        net = generators.cycle_graph(6)
        automaton, init = tc.build(net, 0)
        plan = ChurnPlan([TopologyEvent(1, NODE_DOWN, 3)])
        plan.apply_due(net.copy(), 99)
        assert plan.consumed
        SynchronousSimulator(net, automaton, init, fault_plan=plan)
        assert not plan.consumed


class TestRandomChurnPlan:
    def test_deterministic_and_feasible(self):
        net = generators.complete_graph(8)
        a = random_churn_plan(net, 12, max_time=10, rng=3, p_up=0.5, boot_state="q")
        b = random_churn_plan(net, 12, max_time=10, rng=3, p_up=0.5, boot_state="q")
        assert [(e.time, e.kind, e.target) for e in a.events()] == [
            (e.time, e.kind, e.target) for e in b.events()
        ]
        # feasibility: replaying the schedule on a fresh copy, every event
        # applies (the generator built it against a scratch topology)
        scratch = net.copy()
        plan = ChurnPlan(a.events())
        plan.apply_due(scratch, 999, NetworkState.uniform(scratch, "s"))
        assert plan.skipped == []

    def test_generator_and_int_seed_agree(self):
        net = generators.complete_graph(6)
        a = random_churn_plan(net, 6, 8, rng=11, p_up=0.4, boot_state="q")
        b = random_churn_plan(
            net, 6, 8, rng=np.random.default_rng(11), p_up=0.4, boot_state="q"
        )
        assert [(e.time, e.kind, e.target) for e in a.events()] == [
            (e.time, e.kind, e.target) for e in b.events()
        ]

    def test_boot_state_required_for_resurrection(self):
        net = generators.complete_graph(4)
        with pytest.raises(ValueError, match="boot_state"):
            random_churn_plan(net, 4, 5, rng=0, p_up=0.5)
        # deletion-only schedules need none
        plan = random_churn_plan(net, 4, 5, rng=0, p_up=0.0)
        assert all(is_down_event(e) for e in plan.events())

    def test_protect(self):
        net = generators.complete_graph(6)
        plan = random_churn_plan(
            net, 10, 8, rng=5, p_up=0.3, boot_state="q", protect=(0,)
        )
        for ev in plan.events():
            if ev.kind in (NODE_DOWN, NODE_UP):
                assert ev.target != 0
            elif ev.kind in (EDGE_DOWN, EDGE_UP):
                assert 0 not in ev.target


class TestGraphBatchMutation:
    """add_nodes / add_edges: one cache invalidation per batch."""

    def test_add_nodes_counts_new_only(self):
        net = generators.path_graph(3)
        assert net.add_nodes([1, 5, 6, 5]) == 2
        assert net.nodes() == [0, 1, 2, 5, 6]

    def test_add_edges_counts_and_creates_endpoints(self):
        net = generators.path_graph(2)
        # (0,1) already present; (1,2) and (2,3) each add one endpoint
        # plus one edge — fresh endpoints dirty the caches, so they count
        assert net.add_edges([(0, 1), (1, 2), (2, 3)]) == 4
        assert 3 in net and net.num_edges == 3
        with pytest.raises(ValueError, match="self-loop"):
            net.add_edges([(4, 4)])

    def test_batch_add_invalidates_csr_cache(self):
        net = generators.path_graph(3)
        _, before_order = net.to_csr()
        net.add_edges([(2, 3)])
        _, after_order = net.to_csr()
        assert len(before_order) == 3 and len(after_order) == 4


class TestEngineBootValidation:
    def test_array_engine_rejects_unknown_boot_state(self):
        from repro.core.modthresh import ModThreshProgram, at_least
        from repro.runtime.vectorized import VectorizedSynchronousEngine

        programs = {
            "s": ModThreshProgram(clauses=((at_least("i", 1), "i"),), default="s"),
            "i": ModThreshProgram(clauses=(), default="i"),
        }
        net = generators.path_graph(4)
        init = NetworkState.uniform(net, "s")
        plan = ChurnPlan(
            [TopologyEvent(1, NODE_UP, "v", state="not-a-state", edges=(0,))]
        )
        with pytest.raises(ValueError, match="not-a-state"):
            VectorizedSynchronousEngine(net, programs, init, fault_plan=plan)
