"""Tests for the batched multi-replica engine.

Seed-determinism regression contract: replica ``i`` of a
:class:`BatchedSynchronousEngine` seeded with master seed ``s`` is bitwise
identical to a single-replica :class:`VectorizedSynchronousEngine` seeded
with ``np.random.default_rng(s).spawn(R)[i]``, and reruns with the same
master seed reproduce every trajectory exactly.  Covered workloads: the
election coin kernel and the compiled Section 4.4 random-walk automaton.
"""

import numpy as np
import pytest

from repro.algorithms import election
from repro.core.modthresh import ModThreshProgram, at_least
from repro.network import NetworkState, generators
from repro.network.graph import Network
from repro.runtime.batched import BatchedSynchronousEngine, run_replicas
from repro.runtime.vectorized import VectorizedSynchronousEngine


def epidemic_programs():
    spread = ModThreshProgram(clauses=((at_least("i", 1), "i"),), default="s")
    stay = ModThreshProgram(clauses=(), default="i")
    return {"s": spread, "i": stay}


def compiled_random_walk_programs():
    """The Section 4.4 walk compiled to mod-thresh (tight atom bounds keep
    the Lemma 3.9 enumeration small)."""
    from repro.algorithms import random_walk as rw
    from repro.core.compile import compile_rule

    states = sorted(rw.ALPHABET)
    return {
        (q, i): compile_rule(
            lambda own, view, i=i: rw.rule(own, view, i),
            states,
            q,
            max_threshold=1,
            modulus=1,
            per_state_bounds={rw.TAILS: (2, 1)},
        )
        for q in states
        for i in range(2)
    }


class TestEngineBasics:
    def test_shared_init_deterministic_replicas_agree(self):
        net = generators.grid_graph(3, 4)
        progs = epidemic_programs()
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        bat = BatchedSynchronousEngine(net, progs, init, replicas=4)
        bat.run(3)
        states = bat.states
        assert all(s == states[0] for s in states[1:])

    def test_isolated_nodes_keep_state(self):
        net = Network(nodes=[0, 1], edges=[])
        bat = BatchedSynchronousEngine(
            net, epidemic_programs(), NetworkState({0: "i", 1: "s"}), replicas=2
        )
        bat.step()
        assert bat.replica_state(0) == {0: "i", 1: "s"}

    def test_per_replica_inits(self):
        net = generators.path_graph(4)
        inits = []
        for src in (0, 3):
            st = NetworkState.uniform(net, "s")
            st[src] = "i"
            inits.append(st)
        bat = BatchedSynchronousEngine(net, epidemic_programs(), inits)
        assert bat.replicas == 2
        bat.step()
        assert bat.replica_state(0)[1] == "i" and bat.replica_state(0)[3] == "s"
        assert bat.replica_state(1)[2] == "i" and bat.replica_state(1)[0] == "s"

    def test_state_counts_batched_matches_per_replica(self):
        net = generators.path_graph(5)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        bat = BatchedSynchronousEngine(net, epidemic_programs(), init, replicas=3)
        bat.run(2)
        assert bat.state_counts() == [
            bat.replica_state_counts(r) for r in range(3)
        ]

    def test_argument_validation(self):
        net = generators.path_graph(3)
        init = NetworkState.uniform(net, "s")
        progs = epidemic_programs()
        with pytest.raises(ValueError):
            BatchedSynchronousEngine(net, progs, init)  # no replica count
        with pytest.raises(ValueError):
            BatchedSynchronousEngine(net, progs, [init, init], replicas=3)
        with pytest.raises(ValueError):
            BatchedSynchronousEngine(
                net, progs, init, replicas=2, rng=[np.random.default_rng(0)]
            )
        with pytest.raises(ValueError):
            run_replicas(net, progs, init, 2, steps=3, stop=lambda c: True)

    def test_rule_based_rejected(self):
        from repro.core.automaton import FSSGA

        net = generators.path_graph(3)
        aut = FSSGA({0, 1}, lambda own, view: own)
        with pytest.raises(TypeError):
            BatchedSynchronousEngine(
                net, aut, NetworkState.uniform(net, 0), replicas=2
            )


class TestSeedDeterminism:
    def test_kernel_replicas_match_spawned_single_runs(self):
        net = generators.complete_graph(10)
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)
        R, seed = 6, 5
        bat = BatchedSynchronousEngine(
            net, programs, init, replicas=R, randomness=2, rng=seed
        )
        singles = [
            VectorizedSynchronousEngine(net, programs, init, randomness=2, rng=g)
            for g in np.random.default_rng(seed).spawn(R)
        ]
        for step in range(12):
            bat.step()
            for r, single in enumerate(singles):
                single.step()
                assert bat.replica_state(r) == single.state, (
                    f"replica {r} diverged from its spawned stream at step {step}"
                )

    def test_random_walk_replicas_match_spawned_single_runs(self):
        from repro.algorithms import random_walk as rw

        programs = compiled_random_walk_programs()
        net = generators.cycle_graph(7)
        init = NetworkState.from_function(
            net, lambda v: rw.FLIP if v == 0 else rw.BLANK
        )
        R, seed = 4, 11
        bat = BatchedSynchronousEngine(
            net, programs, init, replicas=R, randomness=2, rng=seed
        )
        singles = [
            VectorizedSynchronousEngine(net, programs, init, randomness=2, rng=g)
            for g in np.random.default_rng(seed).spawn(R)
        ]
        moved = set()
        for step in range(30):
            bat.step()
            for r, single in enumerate(singles):
                single.step()
                assert bat.replica_state(r) == single.state, (
                    f"replica {r} diverged at step {step}"
                )
            for r in range(R):
                holders = bat.replica_state(r).nodes_in(rw.WALKER_STATES)
                if holders and holders[0] != 0:
                    moved.add(r)
        assert moved, "no walker ever moved — workload degenerate"

    def test_rerun_with_same_master_seed_is_bitwise_identical(self):
        net = generators.complete_graph(12)
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)

        def trajectory():
            bat = BatchedSynchronousEngine(
                net, programs, init, replicas=8, randomness=2, rng=42
            )
            frames = []
            for _ in range(10):
                bat.step()
                frames.append(bat._sigma.copy())
            return frames

        a, b = trajectory(), trajectory()
        assert all((x == y).all() for x, y in zip(a, b))

    def test_kernel_statistics_reproducible(self):
        net = generators.complete_graph(16)
        s1 = election.kernel_phase_statistics(net, replicas=16, rng=3)
        s2 = election.kernel_phase_statistics(net, replicas=16, rng=3)
        assert (s1.rounds == s2.rounds).all()
        assert s1.survivor_counts == [1] * 16

    def test_integer_seed_equals_generator_master(self):
        net = generators.complete_graph(8)
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)
        a = BatchedSynchronousEngine(
            net, programs, init, replicas=3, randomness=2, rng=9
        )
        b = BatchedSynchronousEngine(
            net, programs, init, replicas=3, randomness=2,
            rng=np.random.default_rng(9),
        )
        a.run(8)
        b.run(8)
        assert (a._sigma == b._sigma).all()


class TestQuiescenceMasks:
    def test_per_replica_rounds_match_single_runs(self):
        net = generators.path_graph(12)
        progs = epidemic_programs()
        inits = []
        for src in (0, 5, 11):
            st = NetworkState.uniform(net, "s")
            st[src] = "i"
            inits.append(st)
        result = run_replicas(net, progs, inits)
        expected = [
            VectorizedSynchronousEngine(net, progs, st).run_until_stable()
            for st in inits
        ]
        assert list(result.rounds) == expected
        assert result.converged.all()
        assert all(
            all(state[v] == "i" for v in net) for state in result.final_states
        )

    def test_converged_replica_stops_consuming_randomness(self):
        net = generators.complete_graph(6)
        programs = election.coin_kernel_programs()
        # replica 0 starts already terminated (all eliminated but one)
        done = NetworkState.uniform(net, election.K_OUT)
        done[0] = election.K_REMAIN1
        inits = [done, election.coin_kernel_init(net)]
        bat = BatchedSynchronousEngine(net, programs, inits, randomness=2, rng=1)
        untouched = np.random.default_rng(1).spawn(2)[0].bit_generator.state
        bat.run_until(
            lambda counts: election.kernel_remaining_count(counts) <= 1,
            max_steps=500,
        )
        assert bat.rounds[0] == 0
        assert bat.rounds[1] > 0
        assert bat.rngs[0].bit_generator.state == untouched

    def test_run_until_respects_max_steps(self):
        net = generators.path_graph(4)
        bat = BatchedSynchronousEngine(
            net,
            election.coin_kernel_programs(),
            election.coin_kernel_init(net),
            replicas=2,
            randomness=2,
            rng=0,
        )
        with pytest.raises(RuntimeError):
            bat.run_until(lambda counts: False, max_steps=5)
        assert bat.time == 5
