"""Telemetry layer: metrics registry, unified event stream, manifests/replay,
and the stateful run-reuse bugfixes (fault-plan cursors, trace snapshots,
CSR cache × fault masks across runs sharing a Network)."""

import json

import numpy as np
import pytest

from repro import (
    MetricsObserver,
    MetricsRegistry,
    ReplayMismatchError,
    replay,
    run,
)
from repro.algorithms import election
from repro.algorithms import shortest_paths as sp
from repro.algorithms import two_coloring as tc
from repro.network import NetworkState, generators
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.telemetry import (
    EventStream,
    RunEndedEvent,
    RunStartedEvent,
    StepEvent,
    capture_rng,
    network_fingerprint,
    restore_rng,
    state_fingerprint,
)
from repro.runtime.trace import StepRecord, Trace
from repro.runtime.vectorized import VectorizedSynchronousEngine
from repro.sensitivity.harness import bridges_under_faults, kernel_fault_sweep


def _coloring_workload(n=8):
    net = generators.cycle_graph(n)
    automaton, init = tc.build(net, origin=0)
    return net, automaton, init


def _distance_workload(n=12):
    net = generators.path_graph(n)
    automaton, init = sp.build(net, [0], cap=n)
    return net, automaton, init


def _kernel_workload(n=16):
    net = generators.complete_graph(n)
    return net, election.coin_kernel_programs(), election.coin_kernel_init(net)


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counters_and_series(self):
        met = MetricsRegistry()
        met.inc("steps")
        met.inc("steps", 4)
        met.observe("density", 0.5)
        met.observe("density", 0.25)
        assert met.get("steps") == 5
        assert met.get("missing") == 0
        assert met.series["density"] == [0.5, 0.25]

    def test_timer(self):
        met = MetricsRegistry()
        with met.timer("block"):
            pass
        assert len(met.series["block"]) == 1
        assert met.series["block"][0] >= 0.0

    def test_snapshot_is_detached(self):
        met = MetricsRegistry()
        met.inc("a")
        met.observe("s", 1)
        snap = met.snapshot()
        met.inc("a")
        met.observe("s", 2)
        assert snap == {"counters": {"a": 1}, "series": {"s": [1]}, "tags": {}}

    def test_run_wires_engine_and_cache_counters(self):
        net, automaton, init = _distance_workload()
        met = MetricsRegistry()
        res = run(automaton, net, init, metrics=met)
        assert met.get("steps") == res.steps
        assert met.get("node_updates") == sum(res.change_counts)
        assert met.get("rng_draws") == res.rng_draws == 0
        assert "lowering_cache_hits" in met.counters
        assert "lowering_cache_misses" in met.counters
        assert met.get("csr_rebuilds") <= 1
        assert len(met.series["run_wall_time"]) == 1

    def test_run_counts_draws_and_faults(self):
        net, programs, init = _kernel_workload(8)
        plan = FaultPlan.node_faults({2: 7})
        met = MetricsRegistry()
        res = run(
            programs, net, init, randomness=2, rng=3, fault_plan=plan,
            until=6, metrics=met,
        )
        assert met.get("steps") == 6
        assert met.get("rng_draws") == res.rng_draws > 0
        assert met.get("fault_events") == 1

    def test_batched_quiescence_density_series(self):
        net, automaton, init = _coloring_workload()
        met = MetricsRegistry()
        res = run(automaton, net, init, replicas=4, metrics=met)
        dens = met.series["active_fraction"]
        assert len(dens) == res.steps
        assert dens[0] == 1.0
        # identical deterministic replicas converge together
        assert dens[-1] > 0.0

    def test_metrics_do_not_perturb_the_run(self):
        net, programs, init = _kernel_workload(8)
        res_plain = run(programs, net, init, randomness=2, rng=5, until=10)
        res_metered = run(
            programs, net, init, randomness=2, rng=5, until=10,
            metrics=MetricsRegistry(),
        )
        assert res_metered.final_state == res_plain.final_state
        assert res_metered.rng_draws == res_plain.rng_draws


# ----------------------------------------------------------------------
# the unified event stream
# ----------------------------------------------------------------------
class TestEventStream:
    def test_step_record_is_step_event(self):
        # one schema: the legacy trace record and the telemetry step event
        # are the same type, same positional signature
        assert StepRecord is StepEvent
        rec = StepRecord(0, {1: ("a", "b")}, [])
        assert rec.change_count == 1
        assert not rec.quiescent
        assert StepRecord(3, {}, []).quiescent
        assert not StepRecord(3, {}, ["fault"]).quiescent

    def test_count_only_events(self):
        ev = StepEvent(2, change_count=5)
        assert ev.changes is None
        assert not ev.quiescent
        assert StepEvent(2, change_count=0).quiescent

    def test_stream_collects_and_filters(self):
        stream = EventStream()
        stream.emit(RunStartedEvent(n_nodes=4))
        stream.emit(StepEvent(0, {1: ("a", "b")}))
        stream.emit(StepEvent(1, {}))
        stream.emit(RunEndedEvent(steps=2))
        assert len(stream) == 4
        assert [e.time for e in stream.step_events()] == [0, 1]

    def test_jsonl_round_trip(self, tmp_path):
        stream = EventStream()
        stream.emit(RunStartedEvent(n_nodes=3, engine="vectorized"))
        stream.emit(
            StepEvent(0, {(0, 1): ("a", "b")}, [FaultEvent(0, "node", 7)])
        )
        stream.emit(RunEndedEvent(steps=1, converged=True))
        path = tmp_path / "events.jsonl"
        stream.to_jsonl(path)
        lines = [json.loads(x) for x in path.read_text().splitlines()]
        assert [x["type"] for x in lines] == ["run_started", "step", "run_ended"]
        assert lines[1]["change_count"] == 1
        assert lines[1]["faults"][0]["kind"] == "node"
        assert lines[2]["converged"] is True

    def test_dump_load_dump_identity(self):
        # the satellite acceptance check: loads() is dumps()'s inverse at
        # the JSONL level, so a second dump reproduces the bytes exactly
        stream = EventStream()
        stream.emit(RunStartedEvent(n_nodes=3, engine="vectorized"))
        stream.emit(
            StepEvent(0, {0: ("a", "b")}, [FaultEvent(0, "node", 7)])
        )
        stream.emit(StepEvent(1, change_count=4))
        stream.emit(RunEndedEvent(steps=2, converged=True))
        text = stream.dumps()
        assert EventStream.loads(text).dumps() == text

    def test_loads_restores_typed_events(self):
        stream = EventStream()
        stream.emit(StepEvent(5, {}, []))
        stream.emit(RunEndedEvent(steps=6))
        loaded = EventStream.loads(stream.dumps())
        assert [type(e) for e in loaded] == [StepEvent, RunEndedEvent]
        assert loaded.events[0].time == 5 and loaded.events[0].quiescent
        assert loaded.events[1].steps == 6

    def test_loads_from_live_run_round_trips(self):
        net, automaton, init = _coloring_workload()
        stream = EventStream()
        run(automaton, net, init, observers=(MetricsObserver(stream=stream),))
        text = stream.dumps()
        assert EventStream.loads(text).dumps() == text

    def test_loads_rejects_unknown_tag(self):
        with pytest.raises(ValueError, match="unknown event type"):
            EventStream.loads('{"type": "mystery", "x": 1}\n')

    def test_loads_drops_unknown_fields(self):
        text = '{"type": "run_ended", "steps": 3, "future_field": "?"}\n'
        loaded = EventStream.loads(text)
        assert loaded.events[0].steps == 3

    def test_loads_empty(self):
        assert len(EventStream.loads("")) == 0
        assert EventStream.loads("").dumps() == ""

    def test_from_jsonl_inverts_to_jsonl(self, tmp_path):
        stream = EventStream()
        stream.emit(RunStartedEvent(n_nodes=2))
        stream.emit(RunEndedEvent(steps=0, converged=False))
        path = tmp_path / "ev.jsonl"
        stream.to_jsonl(path)
        again = EventStream.from_jsonl(path)
        assert again.dumps() == stream.dumps()

    def test_observers_share_one_stream(self):
        net, automaton, init = _coloring_workload()
        stream = EventStream()
        tr = Trace(stream=stream)
        run(
            automaton, net, init,
            observers=(MetricsObserver(stream=stream),),
        )
        sim = SynchronousSimulator(net, automaton, init, trace=tr)
        sim.step()
        # both producers emitted into the same stream, same record type
        kinds = {type(e).__name__ for e in stream}
        assert kinds == {"RunStartedEvent", "StepEvent", "RunEndedEvent"}


# ----------------------------------------------------------------------
# trace: a view over the stream; snapshots stay aligned (PR 4 bugfix)
# ----------------------------------------------------------------------
class TestTraceUnification:
    def test_trace_is_a_stream_view(self):
        tr = Trace()
        tr.record(0, {1: ("a", "b")})
        tr.record(1, {}, ["fault"])
        assert tr.steps == tr.stream.step_events()
        assert len(tr) == 2
        assert tr.changed_nodes() == {1}
        assert tr.stream.dumps().count("\n") == 2

    def test_snapshot_none_placeholder_keeps_alignment(self):
        tr = Trace(snapshots=True)
        tr.record(0, {1: ("a", "b")}, state=None)  # no state available
        tr.record(1, {}, state=NetworkState({1: "b"}))
        assert len(tr.snapshots) == len(tr.steps) == 2
        assert tr.snapshots[0] is None
        assert tr.snapshots[1][1] == "b"

    def test_snapshots_align_through_simulator(self):
        net, automaton, init = _coloring_workload()
        tr = Trace(snapshots=True)
        sim = SynchronousSimulator(net, automaton, init, trace=tr)
        sim.run(3)
        assert len(tr.snapshots) == len(tr.steps) == 3
        assert all(s is not None for s in tr.snapshots)


# ----------------------------------------------------------------------
# fault plans: reused cursors auto-reset (PR 4 bugfix)
# ----------------------------------------------------------------------
class TestFaultPlanReuse:
    def test_consumed_property(self):
        plan = FaultPlan.node_faults({1: 3})
        assert not plan.consumed
        net = generators.path_graph(5)
        plan.apply_due(net, 2)
        assert plan.consumed and plan.exhausted
        plan.reset()
        assert not plan.consumed

    def test_run_reuses_plan_across_calls(self):
        plan = FaultPlan.node_faults({1: 4})
        applied_counts = []
        for _ in range(2):
            net, automaton, init = _distance_workload(8)
            run(automaton, net, init, fault_plan=plan, until="stable")
            applied_counts.append(len(plan.applied))
        # before the auto-reset fix the second run silently applied nothing
        assert applied_counts == [1, 1]

    @pytest.mark.parametrize("engine_cls", ["vectorized", "batched", "reference"])
    def test_engine_constructors_reset_consumed_plans(self, engine_cls):
        plan = FaultPlan.edge_faults({1: (2, 3)})
        results = []
        for _ in range(2):
            net, automaton, init = _distance_workload(8)
            if engine_cls == "vectorized":
                eng = VectorizedSynchronousEngine(net, automaton, init, fault_plan=plan)
                eng.run(4)
            elif engine_cls == "batched":
                eng = BatchedSynchronousEngine(
                    net, automaton, init, replicas=2, fault_plan=plan
                )
                eng.run(4)
            else:
                sim = SynchronousSimulator(net, automaton, init, fault_plan=plan)
                sim.run(4)
            results.append(len(plan.applied))
        assert results == [1, 1]

    def test_kernel_fault_sweep_reuses_plan(self):
        plan = FaultPlan.node_faults({1: 5})
        for _ in range(2):
            net = generators.complete_graph(8)
            res = kernel_fault_sweep(net, plan, replicas=2, rng=0, max_steps=500)
            assert res.faults_applied == 1

    def test_bridges_harness_reuses_plan(self):
        plan = FaultPlan.edge_faults({0: (8, 9)})
        for _ in range(2):
            net = generators.path_graph(10)
            res = bridges_under_faults(net, 0, plan, walk_steps=3, rng=1)
            assert res.faults_applied == 1

    def test_sweep_metrics_pass_through(self):
        met = MetricsRegistry()
        net = generators.complete_graph(8)
        plan = FaultPlan.node_faults({1: 5})
        kernel_fault_sweep(net, plan, replicas=2, rng=0, max_steps=500, metrics=met)
        assert met.get("steps") > 0
        assert met.get("fault_events") == 1
        assert met.series["active_fraction"]


# ----------------------------------------------------------------------
# change-count parity under until="stable" (PR 4 regression)
# ----------------------------------------------------------------------
class TestChangeCountParity:
    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_observer_matches_result_under_stable(self, engine):
        net, automaton, init = _distance_workload()
        ob = MetricsObserver()
        res = run(automaton, net, init, engine=engine, until="stable", observers=(ob,))
        assert ob.change_counts == res.change_counts
        assert len(ob.change_counts) == res.steps
        # the confirming no-change step is counted by both paths
        assert ob.change_counts[-1] == 0

    def test_batched_parity_under_stable(self):
        net, automaton, init = _coloring_workload()
        ob = MetricsObserver()
        res = run(automaton, net, init, replicas=3, until="stable", observers=(ob,))
        assert ob.change_counts == res.change_counts
        assert ob.change_counts[-1] == 0

    def test_born_stable_counts_one_step_everywhere(self):
        net = generators.cycle_graph(6)
        automaton, _ = tc.build(net, origin=0)
        # already a fixed point: sticky colouring from an all-coloured state
        stable = NetworkState.from_function(
            net, lambda v: tc.RED if v % 2 == 0 else tc.BLUE
        )
        for kwargs in ({"engine": "reference"}, {"engine": "vectorized"},
                       {"replicas": 2}):
            ob = MetricsObserver()
            res = run(
                automaton, net, stable, until="stable", observers=(ob,), **kwargs
            )
            assert res.steps == 1
            assert ob.change_counts == res.change_counts == [0]

    def test_faulted_stable_parity(self):
        plan = FaultPlan.node_faults({1: 11})
        net, automaton, init = _distance_workload()
        ob = MetricsObserver()
        res = run(
            automaton, net, init, fault_plan=plan, until="stable", observers=(ob,)
        )
        assert ob.change_counts == res.change_counts
        assert ob.change_counts[-1] == 0


# ----------------------------------------------------------------------
# Network shared between runs: CSR cache × fault masks (PR 4 coverage)
# ----------------------------------------------------------------------
class TestNetworkReuseAcrossRuns:
    def test_fault_masks_do_not_leak_into_next_run(self):
        net, automaton, init = _distance_workload(8)
        plan = FaultPlan.node_faults({1: 7})
        run(automaton, net, init, fault_plan=plan, until="stable")
        assert 7 not in net  # run 1 really mutated the shared instance

        # run 2 shares the instance, no faults: it must see exactly the
        # post-fault topology, not run 1's alive-masks or stale CSR
        init2 = NetworkState({v: init[v] for v in net})
        res2 = run(automaton, net, init2, until="stable")
        fresh = generators.path_graph(7)  # path 0..6 == surviving graph
        automaton_f, init_f = sp.build(fresh, [0], cap=8)
        res_fresh = run(automaton_f, fresh, init_f, until="stable")
        assert {v: res2.final_state[v] for v in net} == {
            v: res_fresh.final_state[v] for v in fresh
        }

    def test_manual_mutation_between_runs_invalidates_csr(self):
        net, automaton, init = _distance_workload(6)
        rebuilds0 = net.csr_rebuilds
        run(automaton, net, init, until="stable")
        assert net.csr_rebuilds == rebuilds0 + 1
        run(automaton, net, init, until="stable")
        assert net.csr_rebuilds == rebuilds0 + 1  # cache hit, no rebuild

        net.remove_edge(4, 5)  # mutation invalidates the instance cache
        init2 = NetworkState({v: init[v] for v in net})
        res = run(automaton, net, init2, until="stable")
        assert net.csr_rebuilds == rebuilds0 + 2
        assert res.final_state[5] == (False, 6)  # node 5 now unreachable

    def test_edge_fault_does_not_corrupt_shared_csr(self):
        net, automaton, init = _distance_workload(6)
        mat0, _ = net.to_csr()
        data_before = mat0.data.copy()
        plan = FaultPlan.edge_faults({1: (2, 3)})
        run(automaton, net, init, fault_plan=plan, until="stable")
        # copy-on-first-edge-fault: the engine zeroed entries in its own
        # copy; the matrix other holders may still reference is untouched
        assert np.array_equal(mat0.data, data_before)
        # and the network's own cache was invalidated by remove_edge
        mat1, _ = net.to_csr()
        assert mat1 is not mat0


# ----------------------------------------------------------------------
# manifests and deterministic replay
# ----------------------------------------------------------------------
ENGINES = ["reference", "vectorized", "batched"]


def _run_for(engine, *, flavour, seed=17):
    """One run() call per (engine, flavour) acceptance cell."""
    kwargs = {"replicas": 2} if engine == "batched" else {"engine": engine}
    if flavour == "deterministic":
        net, automaton, init = _distance_workload()
        return run(automaton, net, init, until="stable", **kwargs)
    if flavour == "probabilistic":
        net, programs, init = _kernel_workload()
        return run(
            programs, net, init, randomness=2,
            rng=np.random.default_rng(seed), until=9, **kwargs
        )
    net, automaton, init = _distance_workload()
    plan = FaultPlan(
        [FaultEvent(1, "node", 11), FaultEvent(2, "edge", (4, 5))]
    )
    return run(automaton, net, init, fault_plan=plan, until="stable", **kwargs)


class TestManifestReplay:
    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "flavour", ["deterministic", "probabilistic", "faulted"]
    )
    def test_replay_is_bitwise_identical(self, engine, flavour):
        res = _run_for(engine, flavour=flavour)
        man = res.manifest
        assert man is not None and man.engine == engine
        # replay() itself raises ReplayMismatchError on any divergence of
        # fingerprints, steps or draws — reaching the asserts means bitwise
        replayed = replay(man)
        assert replayed.final_state == res.final_state
        assert replayed.steps == res.steps
        assert replayed.rng_draws == res.rng_draws
        if engine == "batched":
            assert replayed.replica_states == res.replica_states

    def test_manifest_contents(self):
        net, programs, init = _kernel_workload(8)
        res = run(programs, net, init, randomness=2, rng=5, until=4)
        man = res.manifest
        assert man.ir_hash is not None
        assert man.network == network_fingerprint(net)
        assert man.rng == ("seed", 5)
        assert man.steps == 4
        assert man.final_fingerprint == state_fingerprint(res.final_state)
        obj = json.loads(man.to_json())
        assert obj["engine"] == "vectorized"
        assert obj["versions"]["numpy"]

    def test_ir_hash_is_stable_and_content_sensitive(self):
        from repro.core.ir import lower

        net, programs, init = _kernel_workload(8)
        h1 = lower(programs, 2).content_hash()
        h2 = lower(dict(programs), 2).content_hash()
        assert h1 == h2
        other = lower(tc.sticky_programs()).content_hash()
        assert other != h1

    def test_faulted_manifest_snapshots_prefault_topology(self):
        net, automaton, init = _distance_workload(8)
        plan = FaultPlan.node_faults({1: 7})
        res = run(automaton, net, init, fault_plan=plan, until="stable")
        assert 7 not in net  # original was mutated...
        assert 7 in res.manifest.network_nodes  # ...but the manifest kept it

    def test_generator_rng_capture_restores_position(self):
        gen = np.random.default_rng(123)
        gen.integers(10, size=7)  # advance the stream
        captured = capture_rng(gen)
        want = gen.integers(1000, size=5).tolist()
        got = restore_rng(captured).integers(1000, size=5).tolist()
        assert got == want

    def test_replay_of_consumed_generator_run(self):
        net, programs, init = _kernel_workload(8)
        gen = np.random.default_rng(99)
        gen.integers(10, size=3)  # not at the seed position anymore
        res = run(programs, net, init, randomness=2, rng=gen, until=6)
        replayed = replay(res.manifest)
        assert replayed.final_state == res.final_state

    @pytest.mark.parametrize("engine", ENGINES)
    def test_replay_after_manual_plan_consumption(self, engine):
        # regression: a plan partially consumed by a manual apply_due (and
        # kept alive by the caller) must not make the run — or its replay —
        # start from the stale cursor position; both re-apply the full
        # remaining schedule per the churn.py cursor contract
        from repro.runtime.churn import NODE_UP, ChurnPlan, TopologyEvent

        net, automaton, init = _distance_workload(10)
        events = [
            TopologyEvent(1, "node", 7),
            TopologyEvent(2, "edge", (3, 4)),
        ]
        if engine != "batched":  # batched boots scatter; keep dets simple
            events.append(
                TopologyEvent(3, NODE_UP, "x", state=init.get(0), edges=(5, 6))
            )
        plan = ChurnPlan(events)
        plan.apply_due(net, 1, init)  # caller consumes the first event
        assert plan.consumed
        kwargs = {"replicas": 2} if engine == "batched" else {"engine": engine}
        res = run(
            automaton, net, init, fault_plan=plan, until=8, max_steps=20,
            **kwargs,
        )
        replayed = replay(res.manifest)  # raises ReplayMismatchError on drift
        assert replayed.final_state == res.final_state
        assert replayed.steps == res.steps

    def test_replay_is_immune_to_caller_consuming_the_plan_later(self):
        # the manifest snapshots events by value; replay rebuilds a fresh
        # plan, so advancing the original plan object after the run cannot
        # shift the replay cursor
        net, automaton, init = _distance_workload(8)
        plan = FaultPlan.node_faults({1: 6, 3: 2})
        res = run(automaton, net, init, fault_plan=plan, until="stable")
        plan.apply_due(net.copy(), 99)  # caller keeps (ab)using the plan
        assert plan.consumed
        replayed = replay(res.manifest)
        assert replayed.final_state == res.final_state

    def test_replay_mismatch_raises(self):
        net, automaton, init = _distance_workload()
        res = run(automaton, net, init, until="stable")
        res.manifest.final_fingerprint = "0" * 64
        with pytest.raises(ReplayMismatchError, match="fingerprint"):
            replay(res.manifest)

    def test_replay_requires_an_outcome(self):
        net, automaton, init = _distance_workload()
        res = run(automaton, net, init, until="stable")
        res.manifest.final_fingerprint = None
        with pytest.raises(ValueError, match="no outcome"):
            replay(res.manifest)

    def test_manifest_content_hash_is_process_independent(self):
        # the campaign store records this hash next to each job, so it
        # must not depend on object addresses: two runs of the same
        # spec-seeded workload hash identically even though their
        # `until` predicates are distinct function objects
        from repro.runtime.telemetry import manifest_content_hash

        def make():
            net, programs, init = _kernel_workload(8)
            return run(
                programs, net, init, randomness=2, rng=5,
                until=election.kernel_unique_survivor,
            )

        h1 = manifest_content_hash(make().manifest)
        h2 = manifest_content_hash(make().manifest)
        assert h1 == h2 and len(h1) == 64

    def test_manifest_content_hash_is_content_sensitive(self):
        from repro.runtime.telemetry import manifest_content_hash

        net, programs, init = _kernel_workload(8)
        a = run(programs, net, init, randomness=2, rng=5, until=4)
        net2, programs2, init2 = _kernel_workload(8)
        b = run(programs2, net2, init2, randomness=2, rng=6, until=4)
        assert manifest_content_hash(a.manifest) != manifest_content_hash(
            b.manifest
        )

    def test_callable_name_has_no_address(self):
        from repro.runtime.telemetry import _callable_name

        name = _callable_name(election.kernel_unique_survivor)
        assert name == "repro.algorithms.election.kernel_unique_survivor"
        anonymous = _callable_name(lambda s: True)
        assert "0x" not in anonymous and "<lambda>" in anonymous

    def test_reference_only_automaton_still_replays(self):
        # census reads view.support() — not lowerable, ir_hash is None,
        # identity is carried by the live automaton reference
        from repro.algorithms import census

        net = generators.cycle_graph(6)
        automaton, init = census.build(net, rng=np.random.default_rng(4))
        res = run(automaton, net, init, rng=np.random.default_rng(8), until=12)
        assert res.engine == "reference"
        assert res.manifest.ir_hash is None
        replayed = replay(res.manifest)
        assert replayed.final_state == res.final_state
