"""Unit tests for repro.runtime.faults."""

from repro.core.automaton import FSSGA
from repro.core.modthresh import ModThreshProgram, at_least
from repro.network import NetworkState, generators
from repro.runtime.faults import FaultEvent, FaultPlan, random_fault_plan
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator


def epidemic_automaton() -> FSSGA:
    spread = ModThreshProgram(clauses=((at_least("i", 1), "i"),), default="s")
    stay = ModThreshProgram(clauses=(), default="i")
    return FSSGA.from_programs({"s": spread, "i": stay})


class TestFaultEvent:
    def test_node_fault(self):
        net = generators.path_graph(3)
        st = NetworkState.uniform(net, 0)
        ev = FaultEvent(0, "node", 1)
        assert ev.applies_to(net)
        assert ev.apply(net, st)
        assert 1 not in net and 1 not in st

    def test_edge_fault(self):
        net = generators.path_graph(3)
        ev = FaultEvent(0, "edge", (0, 1))
        assert ev.apply(net)
        assert not net.has_edge(0, 1)

    def test_preempted_fault(self):
        net = generators.path_graph(3)
        FaultEvent(0, "node", 1).apply(net)
        ev = FaultEvent(1, "edge", (0, 1))
        assert not ev.applies_to(net)
        assert not ev.apply(net)


class TestFaultPlan:
    def test_apply_due_order(self):
        net = generators.path_graph(5)
        plan = FaultPlan(
            [FaultEvent(3, "edge", (2, 3)), FaultEvent(1, "edge", (0, 1))]
        )
        assert plan.apply_due(net, 0) == []
        fired = plan.apply_due(net, 1)
        assert len(fired) == 1 and fired[0].target == (0, 1)
        plan.apply_due(net, 10)
        assert not net.has_edge(2, 3)
        assert plan.exhausted

    def test_skipped_recorded(self):
        net = generators.path_graph(3)
        plan = FaultPlan(
            [FaultEvent(0, "node", 1), FaultEvent(1, "edge", (1, 2))]
        )
        plan.apply_due(net, 5)
        assert len(plan.applied) == 1
        assert len(plan.skipped) == 1

    def test_reset(self):
        net = generators.path_graph(3)
        plan = FaultPlan([FaultEvent(0, "edge", (0, 1))])
        plan.apply_due(net, 0)
        plan.reset()
        assert not plan.exhausted
        assert plan.applied == []

    def test_convenience_constructors(self):
        plan = FaultPlan.node_faults({2: "a", 5: "b"})
        assert len(plan) == 2
        plan = FaultPlan.edge_faults({1: (0, 1)})
        assert plan.events()[0].kind == "edge"

    def test_list_of_pairs_allows_same_step_faults(self):
        """The dict form cannot express two faults at one step (keys are
        unique); the list form can, and keeps the given order (the plan's
        time sort is stable)."""
        plan = FaultPlan.node_faults([(2, "a"), (2, "b"), (1, "c")])
        assert [(e.time, e.target) for e in plan.events()] == [
            (1, "c"), (2, "a"), (2, "b")
        ]
        net = generators.complete_graph(3)
        plan2 = FaultPlan.edge_faults([(0, (0, 1)), (0, (1, 2))])
        fired = plan2.apply_due(net, 0)
        assert len(fired) == 2
        assert not net.has_edge(0, 1) and not net.has_edge(1, 2)

    def test_dict_and_pair_list_forms_agree(self):
        by_dict = FaultPlan.node_faults({1: "x", 3: "y"})
        by_list = FaultPlan.node_faults([(1, "x"), (3, "y")])
        assert [(e.time, e.kind, e.target) for e in by_dict.events()] == [
            (e.time, e.kind, e.target) for e in by_list.events()
        ]


class TestFaultTimingEdgeCases:
    """Faults striking on the final step and faults that isolate a node."""

    def test_fault_on_the_would_be_final_step(self):
        """A fault due exactly at the step where stability would otherwise
        be declared must be applied before that step, and run_until_stable
        must not return while the plan still has due events."""
        net = generators.path_graph(5)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        # fault-free: infection completes after step at time 3; stability
        # is detected by the no-change step at time 4.
        plan = FaultPlan.node_faults({4: 2})
        sim = SynchronousSimulator(
            net, epidemic_automaton(), init, fault_plan=plan
        )
        steps = sim.run_until_stable()
        assert steps == 5
        assert plan.exhausted and len(plan.applied) == 1
        assert 2 not in sim.net and 2 not in sim.state
        assert all(sim.state[v] == "i" for v in sim.net)

    def test_fault_due_after_stability_still_fires(self):
        """run_until_stable must keep stepping through an already-stable
        network until pending fault events have fired."""
        net = generators.path_graph(3)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        plan = FaultPlan.node_faults({10: 1})
        sim = SynchronousSimulator(
            net, epidemic_automaton(), init, fault_plan=plan
        )
        steps = sim.run_until_stable()
        assert steps == 11  # stable at 3, but the plan drains at time 10
        assert plan.exhausted and 1 not in sim.net

    def test_fault_applied_before_the_step_it_is_due(self):
        """An edge fault at time t must shape the step computed at time t."""
        net = generators.path_graph(3)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        plan = FaultPlan.edge_faults({1: (1, 2)})
        sim = SynchronousSimulator(
            net, epidemic_automaton(), init, fault_plan=plan
        )
        sim.step()  # time 0: node 1 infected
        sim.step()  # time 1: edge (1,2) dies first, node 2 must stay 's'
        assert sim.state[1] == "i" and sim.state[2] == "s"
        sim.run(3)
        assert sim.state[2] == "s"  # permanently cut off

    def test_node_fault_deletes_last_neighbour_mid_run(self):
        """Killing a hub isolates every leaf; isolated nodes must freeze
        (an SM function has no value on the empty neighbourhood)."""
        net = generators.star_graph(4)  # hub 0, leaves 1..4
        init = NetworkState.uniform(net, "s")
        init[1] = "i"
        plan = FaultPlan.node_faults({1: 0})
        sim = SynchronousSimulator(
            net, epidemic_automaton(), init, fault_plan=plan
        )
        steps = sim.run_until_stable()
        assert steps >= 2
        assert 0 not in sim.net and 0 not in sim.state
        # leaf 1 keeps its infection; the others were never reached and
        # stay 's' forever even as the run continues
        assert sim.state[1] == "i"
        assert all(sim.state[v] == "s" for v in (2, 3, 4))
        assert all(sim.net.degree(v) == 0 for v in (1, 2, 3, 4))

    def test_edge_faults_isolate_node_mid_run(self):
        """Deleting the last incident edge of a node mid-run freezes it."""
        net = generators.path_graph(3)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        plan = FaultPlan.edge_faults({0: (0, 1), 1: (1, 2)})
        sim = SynchronousSimulator(
            net, epidemic_automaton(), init, fault_plan=plan
        )
        steps = sim.run_until_stable()
        assert steps == 2
        assert sim.state == {0: "i", 1: "s", 2: "s"}

    def test_async_fault_deletes_scheduled_node(self):
        """The asynchronous fair-rounds loop must skip a node deleted by a
        fault earlier in the same round."""
        net = generators.path_graph(4)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        plan = FaultPlan.node_faults({0: 3})
        sim = AsynchronousSimulator(
            net, epidemic_automaton(), init, rng=1, fault_plan=plan
        )
        sim.run_fair_rounds(4)
        assert 3 not in sim.net and 3 not in sim.state
        assert plan.exhausted


class TestRandomFaultPlan:
    def test_respects_protection(self):
        net = generators.complete_graph(6)
        plan = random_fault_plan(net, 10, max_time=5, rng=1, protect=(0,))
        for ev in plan.events():
            if ev.kind == "node":
                assert ev.target != 0
            else:
                assert 0 not in ev.target

    def test_deterministic_with_seed(self):
        net = generators.complete_graph(6)
        a = random_fault_plan(net, 5, 10, rng=42)
        b = random_fault_plan(net, 5, 10, rng=42)
        assert [e.target for e in a.events()] == [e.target for e in b.events()]

    def test_generator_and_int_seed_agree(self):
        """``rng`` accepts a Generator or an int seed; a fresh Generator
        seeded with the same int yields the identical plan, so a sweep can
        reproduce its schedules from recorded seeds alone."""
        import numpy as np

        net = generators.complete_graph(6)
        a = random_fault_plan(net, 5, 10, rng=42)
        b = random_fault_plan(net, 5, 10, rng=np.random.default_rng(42))
        assert [(e.time, e.kind, e.target) for e in a.events()] == [
            (e.time, e.kind, e.target) for e in b.events()
        ]

    def test_no_duplicate_targets(self):
        net = generators.complete_graph(5)
        plan = random_fault_plan(net, 8, 10, rng=0)
        targets = [e.target for e in plan.events()]
        assert len(targets) == len(set(targets))
