"""Unit tests for repro.runtime.faults."""

import pytest

from repro.network import NetworkState, generators
from repro.runtime.faults import FaultEvent, FaultPlan, random_fault_plan


class TestFaultEvent:
    def test_node_fault(self):
        net = generators.path_graph(3)
        st = NetworkState.uniform(net, 0)
        ev = FaultEvent(0, "node", 1)
        assert ev.applies_to(net)
        assert ev.apply(net, st)
        assert 1 not in net and 1 not in st

    def test_edge_fault(self):
        net = generators.path_graph(3)
        ev = FaultEvent(0, "edge", (0, 1))
        assert ev.apply(net)
        assert not net.has_edge(0, 1)

    def test_preempted_fault(self):
        net = generators.path_graph(3)
        FaultEvent(0, "node", 1).apply(net)
        ev = FaultEvent(1, "edge", (0, 1))
        assert not ev.applies_to(net)
        assert not ev.apply(net)


class TestFaultPlan:
    def test_apply_due_order(self):
        net = generators.path_graph(5)
        plan = FaultPlan(
            [FaultEvent(3, "edge", (2, 3)), FaultEvent(1, "edge", (0, 1))]
        )
        assert plan.apply_due(net, 0) == []
        fired = plan.apply_due(net, 1)
        assert len(fired) == 1 and fired[0].target == (0, 1)
        plan.apply_due(net, 10)
        assert not net.has_edge(2, 3)
        assert plan.exhausted

    def test_skipped_recorded(self):
        net = generators.path_graph(3)
        plan = FaultPlan(
            [FaultEvent(0, "node", 1), FaultEvent(1, "edge", (1, 2))]
        )
        plan.apply_due(net, 5)
        assert len(plan.applied) == 1
        assert len(plan.skipped) == 1

    def test_reset(self):
        net = generators.path_graph(3)
        plan = FaultPlan([FaultEvent(0, "edge", (0, 1))])
        plan.apply_due(net, 0)
        plan.reset()
        assert not plan.exhausted
        assert plan.applied == []

    def test_convenience_constructors(self):
        plan = FaultPlan.node_faults({2: "a", 5: "b"})
        assert len(plan) == 2
        plan = FaultPlan.edge_faults({1: (0, 1)})
        assert plan.events()[0].kind == "edge"


class TestRandomFaultPlan:
    def test_respects_protection(self):
        net = generators.complete_graph(6)
        plan = random_fault_plan(net, 10, max_time=5, rng=1, protect=(0,))
        for ev in plan.events():
            if ev.kind == "node":
                assert ev.target != 0
            else:
                assert 0 not in ev.target

    def test_deterministic_with_seed(self):
        net = generators.complete_graph(6)
        a = random_fault_plan(net, 5, 10, rng=42)
        b = random_fault_plan(net, 5, 10, rng=42)
        assert [e.target for e in a.events()] == [e.target for e in b.events()]

    def test_no_duplicate_targets(self):
        net = generators.complete_graph(5)
        plan = random_fault_plan(net, 8, 10, rng=0)
        targets = [e.target for e in plan.events()]
        assert len(targets) == len(set(targets))
