"""Tests for the vectorized synchronous engine (experiment E15 substrate).

The key property: step-for-step equivalence with the reference
interpreter on mod-thresh automata, deterministic and probabilistic.
"""

import numpy as np
import pytest

from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA
from repro.core.modthresh import ModThreshProgram, at_least, count_is_mod
from repro.network import NetworkState, generators
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.vectorized import VectorizedSynchronousEngine


def epidemic_programs():
    spread = ModThreshProgram(clauses=((at_least("i", 1), "i"),), default="s")
    stay = ModThreshProgram(clauses=(), default="i")
    return {"s": spread, "i": stay}


class TestDeterministicEquivalence:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: generators.path_graph(12),
            lambda: generators.cycle_graph(9),
            lambda: generators.grid_graph(4, 5),
            lambda: generators.connected_gnp_graph(25, 0.15, 3),
        ],
    )
    def test_epidemic_stepwise(self, net_fn):
        net = net_fn()
        progs = epidemic_programs()
        init = NetworkState.uniform(net, "s")
        init[next(iter(net))] = "i"

        ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(progs), init.copy())
        vec = VectorizedSynchronousEngine(net, progs, init)
        for _ in range(8):
            ref.step()
            vec.step()
            assert vec.state == ref.state

    def test_two_coloring_equivalence(self):
        net = generators.cycle_graph(10)
        progs = tc.sticky_programs()
        init = NetworkState.from_function(
            net, lambda v: tc.RED if v == 0 else tc.BLANK
        )
        ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(progs), init.copy())
        vec = VectorizedSynchronousEngine(net, progs, init)
        ref.run_until_stable()
        vec.run_until_stable()
        assert vec.state == ref.state
        assert tc.succeeded(net, vec.state)

    def test_mod_atoms_vectorized(self):
        prog = ModThreshProgram(
            clauses=((count_is_mod("a", 0, 2), "even"),), default="odd"
        )
        progs = {"a": prog, "even": prog, "odd": prog}
        net = generators.star_graph(5)
        init = NetworkState.uniform(net, "a")
        vec = VectorizedSynchronousEngine(net, progs, init)
        vec.step()
        state = vec.state
        assert state[0] == "odd"  # hub has 5 'a' neighbours
        assert all(state[v] == "odd" for v in range(1, 6))  # leaves see 1

    def test_isolated_nodes_keep_state(self):
        from repro.network.graph import Network

        net = Network(nodes=[0, 1], edges=[])
        progs = epidemic_programs()
        init = NetworkState({0: "i", 1: "s"})
        vec = VectorizedSynchronousEngine(net, progs, init)
        vec.step()
        assert vec.state == init

    def test_state_counts(self):
        net = generators.path_graph(5)
        progs = epidemic_programs()
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        vec = VectorizedSynchronousEngine(net, progs, init)
        counts = vec.state_counts()
        assert counts["i"] == 1 and counts["s"] == 4

    def test_run_until_stable(self):
        net = generators.path_graph(10)
        progs = epidemic_programs()
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        vec = VectorizedSynchronousEngine(net, progs, init)
        steps = vec.run_until_stable()
        assert steps == 10
        assert all(vec.state[v] == "i" for v in net)


class TestProbabilisticEquivalence:
    def test_distributional_agreement(self):
        """Same seed streams differ in shape, so compare distributions:
        fraction of nodes infected after k steps of a probabilistic
        spreading rule."""
        spread = ModThreshProgram(clauses=((at_least("i", 1), "i"),), default="s")
        stay_s = ModThreshProgram(clauses=(), default="s")
        stay_i = ModThreshProgram(clauses=(), default="i")
        # infection spreads only when the coin says so (i = 1)
        progs = {
            ("s", 0): stay_s,
            ("s", 1): spread,
            ("i", 0): stay_i,
            ("i", 1): stay_i,
        }
        net = generators.cycle_graph(30)

        def run_vec(seed):
            init = NetworkState.uniform(net, "s")
            init[0] = "i"
            vec = VectorizedSynchronousEngine(net, progs, init, randomness=2, rng=seed)
            vec.run(15)
            return vec.state_counts()["i"]

        from repro.core.automaton import ProbabilisticFSSGA
        from repro.runtime.simulator import SynchronousSimulator

        aut = ProbabilisticFSSGA({"s", "i"}, 2, progs)

        def run_ref(seed):
            init = NetworkState.uniform(net, "s")
            init[0] = "i"
            sim = SynchronousSimulator(net.copy(), aut, init, rng=seed)
            sim.run(15)
            return sum(1 for v in net if sim.state[v] == "i")

        vec_mean = np.mean([run_vec(s) for s in range(25)])
        ref_mean = np.mean([run_ref(s) for s in range(25)])
        # expected infected count ~ 1 + 2 * 15/2; allow generous tolerance
        assert abs(vec_mean - ref_mean) < 5.0

    def test_rule_based_rejected(self):
        net = generators.path_graph(3)
        aut = FSSGA({0, 1}, lambda own, view: own)
        init = NetworkState.uniform(net, 0)
        with pytest.raises(TypeError):
            VectorizedSynchronousEngine(net, aut, init)
