"""Tests for the :mod:`repro.runtime.api` front door.

Covers engine auto-selection (every mod-thresh algorithm must land on the
vectorized engine), the unified termination convention, the observer
interface, argument validation, and the bitwise reference ≡ vectorized
regression on seeded probabilistic automata — the front-door extension of
the engine-conformance harness.
"""

import numpy as np
import pytest
from test_engine_conformance import (
    random_init,
    random_network,
    random_probabilistic_programs,
)

from repro import MetricsObserver, StepObserver, TraceObserver, run
from repro.core.automaton import FSSGA
from repro.core.modthresh import ModThreshProgram
from repro.network import NetworkState, generators
from repro.runtime.api import supports_vectorized
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.trace import Trace


def _hold_programs():
    """Every state maps to itself: stable from birth."""
    return {q: ModThreshProgram(clauses=(), default=q) for q in ("a", "b")}


def _blinker_programs():
    """a <-> b forever: no fixed point exists."""
    return {
        "a": ModThreshProgram(clauses=(), default="b"),
        "b": ModThreshProgram(clauses=(), default="a"),
    }


def _two_state_net(n=5):
    net = generators.path_graph(n)
    init = NetworkState.from_function(net, lambda v: "a" if v % 2 else "b")
    return net, init


class _Recorder(StepObserver):
    """Collects every on_step call for parity assertions."""

    def __init__(self):
        self.events = []
        self.started = self.ended = False

    def on_run_start(self, net, state):
        self.started = True

    def on_step(self, time, changes, faults):
        self.events.append((time, dict(changes), list(faults)))

    def on_run_end(self, result):
        self.ended = True


# ----------------------------------------------------------------------
# engine auto-selection
# ----------------------------------------------------------------------
class TestAutoSelection:
    def test_two_coloring_selects_vectorized(self):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        assert run(automaton, net, init).engine == "vectorized"

    def test_bfs_selects_vectorized(self):
        from repro.algorithms import bfs

        net = generators.grid_graph(3, 3)
        automaton, init = bfs.build(net, originator=0, targets=[8])
        assert run(automaton, net, init).engine == "vectorized"

    def test_shortest_paths_selects_vectorized(self):
        from repro.algorithms import shortest_paths

        net = generators.grid_graph(3, 4)
        automaton, init = shortest_paths.build(net, targets=[0])
        assert run(automaton, net, init).engine == "vectorized"

    def test_coin_kernel_with_replicas_selects_batched(self):
        from repro.algorithms import election

        net = generators.complete_graph(6)
        res = run(
            election.coin_kernel_programs(),
            net,
            election.coin_kernel_init(net),
            replicas=3,
            randomness=2,
            rng=5,
            until=lambda s: sum(q != election.K_OUT for q in s.values()) <= 1,
            max_steps=500,
        )
        assert res.engine == "batched"
        assert len(res.replica_states) == 3

    def test_rule_based_census_falls_back_to_reference(self):
        from repro.algorithms import census

        net = generators.connected_gnp_graph(12, 0.4, 0)
        automaton, init = census.build(net, rng=0)
        assert automaton.is_rule_based
        assert run(automaton, net, init).engine == "reference"

    def test_fault_plan_stays_vectorized(self):
        # fault plans are lowered into live-node masks, not interpreted:
        # a faulted run of a lowerable automaton keeps the fast path
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        plan = FaultPlan([FaultEvent(2, "node", 4)])
        res = run(automaton, net, init, fault_plan=plan, max_steps=200)
        assert res.engine == "vectorized"
        assert 4 not in res.final_state

    def test_reference_escape_hatch(self):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        res = run(automaton, net, init, engine="reference")
        assert res.engine == "reference"

    def test_supports_vectorized(self):
        assert supports_vectorized(_hold_programs())
        assert supports_vectorized(FSSGA.from_programs(_hold_programs()))
        assert not supports_vectorized({})
        assert not supports_vectorized({"a": lambda own, nbrs: own})
        assert not supports_vectorized(
            FSSGA({"a", "b"}, lambda own, nbrs: own)
        )


class TestQuotientNegotiation:
    """Quotient selection and its negative paths: every blocked run names
    the *actual* obstruction (regression-proofing the misleading-error
    class) — and ``auto`` falls back to a full-graph engine instead of
    failing."""

    @staticmethod
    def _declared_cycle(n=8):
        from repro.network.symmetry import cyclic_rotation

        net = generators.cycle_graph(n)
        net.declare_symmetry(cyclic_rotation(n))
        return net

    def test_auto_selects_quotient_when_eligible(self):
        net = self._declared_cycle()
        init = NetworkState.uniform(net, "a")
        res = run(_blinker_programs(), net, init, until=5)
        assert res.engine == "quotient"
        ref = run(
            _blinker_programs(), generators.cycle_graph(8), init, until=5,
            engine="vectorized",
        )
        assert res.final_state == ref.final_state
        assert res.change_counts == ref.change_counts

    def test_non_orbit_constant_init_falls_back_naming_blocker(self):
        from repro.core.ir import QuotientLoweringError

        net = self._declared_cycle()
        init = NetworkState.from_function(
            net, lambda v: "a" if v == 0 else "b"
        )
        assert run(_hold_programs(), net, init, until=2).engine == "vectorized"
        with pytest.raises(
            QuotientLoweringError, match="not orbit-constant"
        ) as exc:
            run(_hold_programs(), net, init, until=2, engine="quotient")
        assert exc.value.blocker == "init-not-orbit-constant"

    def test_fault_plan_falls_back_naming_blocker(self):
        from repro.core.ir import QuotientLoweringError

        net = self._declared_cycle()
        init = NetworkState.uniform(net, "a")
        plan = FaultPlan([FaultEvent(1, "node", 3)])
        res = run(_hold_programs(), net, init, until=3, fault_plan=plan)
        assert res.engine == "vectorized"  # faults break symmetry
        with pytest.raises(QuotientLoweringError, match="break symmetry") as exc:
            run(
                _hold_programs(), net, init, until=3,
                fault_plan=FaultPlan([FaultEvent(1, "node", 3)]),
                engine="quotient",
            )
        assert exc.value.blocker == "fault-plan"

    def test_churn_plan_names_its_own_blocker(self):
        """A plan that *adds* topology gets the dedicated ``churn-plan``
        blocker (an arrival changes the node set itself, which no orbit
        partition of the original network describes); ``auto`` falls back
        to the full-graph path, which runs the arrival end to end."""
        from repro.core.ir import QuotientLoweringError
        from repro.runtime.churn import ChurnPlan, TopologyEvent

        net = self._declared_cycle()
        init = NetworkState.uniform(net, "a")
        events = [
            TopologyEvent(1, "node-down", 3),
            TopologyEvent(2, "node-up", "x", state="b", edges=(0, 1)),
        ]
        res = run(
            _hold_programs(), net, init, until=4,
            fault_plan=ChurnPlan(list(events)),
        )
        assert res.engine == "vectorized"
        assert res.final_state["x"] == "b"  # the arrival joined and held
        with pytest.raises(QuotientLoweringError, match="arrival") as exc:
            run(
                _hold_programs(), net, init, until=4,
                fault_plan=ChurnPlan(list(events)), engine="quotient",
            )
        assert exc.value.blocker == "churn-plan"

    def test_undeclared_group_falls_back_naming_blocker(self):
        from repro.core.ir import QuotientLoweringError

        net = generators.cycle_graph(8)  # no declare_symmetry
        init = NetworkState.uniform(net, "a")
        assert run(_hold_programs(), net, init, until=2).engine == "vectorized"
        with pytest.raises(
            QuotientLoweringError, match="no automorphism group"
        ) as exc:
            run(_hold_programs(), net, init, until=2, engine="quotient")
        assert exc.value.blocker == "no-group"

    def test_stale_group_after_mutation_names_blocker(self):
        from repro.core.ir import QuotientLoweringError

        net = self._declared_cycle()
        net.remove_edge(0, 1)  # mutation does not revoke the declaration
        init = NetworkState.uniform(net, "a")
        assert run(_hold_programs(), net, init, until=2).engine == "vectorized"
        with pytest.raises(QuotientLoweringError, match="stale") as exc:
            run(_hold_programs(), net, init, until=2, engine="quotient")
        assert exc.value.blocker == "stale-group"
        assert "non-edge" in str(exc.value)  # the generator's actual failure

    def test_probabilistic_auto_never_quotients(self):
        """Shared per-orbit draws are a different stochastic process
        (symmetry can never break), so ``auto`` keeps probabilistic runs on
        the full-graph path even when every structural precondition holds;
        ``engine='quotient'`` is the explicit opt-in."""
        from repro.algorithms import election
        from repro.network.symmetry import full_symmetric

        net = generators.complete_graph(6)
        net.declare_symmetry(full_symmetric(range(6)))
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)
        res = run(programs, net, init, randomness=2, rng=3, until=4)
        assert res.engine == "vectorized"
        opt_in = run(
            programs, net, init, randomness=2, rng=3, until=4,
            engine="quotient",
        )
        assert opt_in.engine == "quotient"
        # on the quotient, a symmetric election can never elect: all nodes
        # stay in lockstep (the semantic reason auto refuses to switch)
        assert len(set(opt_in.final_state.values())) == 1

    def test_replicas_block_quotient(self):
        from repro.core.ir import QuotientLoweringError

        net = self._declared_cycle()
        init = NetworkState.uniform(net, "a")
        with pytest.raises(QuotientLoweringError, match="replicas") as exc:
            run(
                _hold_programs(), net, init, until=2, engine="quotient",
                replicas=3,
            )
        assert exc.value.blocker == "replicas"

    def test_quotient_error_is_a_lowering_error(self):
        from repro.core.ir import LoweringError, QuotientLoweringError

        assert issubclass(QuotientLoweringError, LoweringError)
        assert issubclass(QuotientLoweringError, TypeError)

    def test_quotient_run_replays_bitwise(self):
        from repro.runtime.telemetry import replay

        net = self._declared_cycle()
        init = NetworkState.uniform(net, "a")
        res = run(_blinker_programs(), net, init, until=7)
        assert res.engine == "quotient"
        again = replay(res.manifest)
        assert again.engine == "quotient"
        assert again.final_state == res.final_state


class TestValidation:
    def test_unknown_engine(self):
        net, init = _two_state_net()
        with pytest.raises(ValueError, match="unknown engine"):
            run(_hold_programs(), net, init, engine="warp")

    def test_vectorized_executes_fault_plan(self):
        net, init = _two_state_net()
        plan = FaultPlan([FaultEvent(1, "node", 0)])
        res = run(
            _hold_programs(), net, init, engine="vectorized",
            fault_plan=plan, max_steps=50,
        )
        assert res.engine == "vectorized"
        assert 0 not in res.final_state
        assert plan.exhausted

    def test_batched_needs_replicas(self):
        net, init = _two_state_net()
        with pytest.raises(ValueError, match="replicas"):
            run(_hold_programs(), net, init, engine="batched")

    def test_replicas_need_batched(self):
        net, init = _two_state_net()
        with pytest.raises(ValueError, match="replicas"):
            run(_hold_programs(), net, init, engine="vectorized", replicas=2)

    def test_replicas_reject_rule_based(self):
        net, init = _two_state_net()
        automaton = FSSGA({"a", "b"}, lambda own, nbrs: own)
        with pytest.raises(ValueError, match="rule-based"):
            run(automaton, net, init, replicas=2)

    def test_until_bool_rejected(self):
        net, init = _two_state_net()
        with pytest.raises(TypeError):
            run(_hold_programs(), net, init, until=True)

    def test_until_negative_rejected(self):
        net, init = _two_state_net()
        with pytest.raises(ValueError):
            run(_hold_programs(), net, init, until=-1)

    def test_until_junk_rejected(self):
        net, init = _two_state_net()
        with pytest.raises(TypeError):
            run(_hold_programs(), net, init, until="sideways")


# ----------------------------------------------------------------------
# capability negotiation over the compiler IR
# ----------------------------------------------------------------------
class TestCapabilityNegotiation:
    def test_rule_based_hinted_selects_vectorized(self):
        # acceptance: a rule-based FSSGA with no hand-written programs
        # lands on the vectorized engine under engine="auto"
        from repro.algorithms import random_walk as rw

        net = generators.cycle_graph(8)
        automaton, init = rw.build(net, 0)
        assert automaton.is_rule_based
        assert supports_vectorized(automaton)
        res = run(automaton, net, init, rng=3, until=20)
        assert res.engine == "vectorized"

    def test_rule_based_hinted_bitwise_matches_reference(self):
        # the reference interprets the raw Python rule; the vectorized
        # engine runs the compiled IR — seeded runs must agree bitwise
        from repro.algorithms import random_walk as rw

        net = generators.cycle_graph(8)
        automaton, init = rw.build(net, 0)
        ref = run(
            automaton, net, init, engine="reference",
            rng=np.random.default_rng(17), until=30,
        )
        vec = run(automaton, net, init, rng=np.random.default_rng(17), until=30)
        assert vec.engine == "vectorized"
        assert ref.final_state == vec.final_state
        assert ref.change_counts == vec.change_counts
        assert ref.rng_draws == vec.rng_draws

    def test_supports_vectorized_respects_hints(self):
        from repro.algorithms import census, random_walk, two_coloring

        net = generators.cycle_graph(6)
        assert supports_vectorized(two_coloring.build(net, 0)[0])
        assert supports_vectorized(random_walk.build(net, 0)[0])
        # census reads view.support(): genuinely outside the IR
        assert not supports_vectorized(census.build(net, rng=0)[0])

    def test_pinned_engine_reports_actual_blocker(self):
        # regression: the old message blamed batching/faults for every
        # incapacity; negotiation now names the blocking capability
        net, init = _two_state_net()
        automaton = FSSGA({"a", "b"}, lambda own, view: own)  # no hints
        with pytest.raises(TypeError, match="compile_hints"):
            run(automaton, net, init, engine="vectorized")

    def test_modthresh_batched_faulted_runs(self):
        # regression: fault_plan + engine="batched" on plain mod-thresh
        # programs used to be rejected as "rule-based automata cannot be
        # batched"; faults now lower to masks on every engine
        net, init = _two_state_net(6)
        plan = FaultPlan([FaultEvent(2, "node", 3)])
        res = run(
            _hold_programs(), net, init, engine="batched", replicas=2,
            fault_plan=plan, until="stable",
        )
        assert res.engine == "batched"
        for state in res.replica_states:
            assert 3 not in state
        assert plan.exhausted

    def test_faulted_vectorized_matches_reference(self):
        # acceptance: identical final states on a faulted run, fast path
        from repro.algorithms import shortest_paths

        net = generators.grid_graph(4, 4)
        automaton, init = shortest_paths.build(net, targets=[0])
        events = [FaultEvent(2, "node", 5), FaultEvent(3, "edge", (10, 11))]
        kw = dict(until="stable", max_steps=500)
        ref = run(
            automaton, net.copy(), init, engine="reference",
            fault_plan=FaultPlan(events), **kw,
        )
        vec = run(
            automaton, net.copy(), init, engine="vectorized",
            fault_plan=FaultPlan(events), **kw,
        )
        assert vec.engine == "vectorized"
        assert ref.final_state == vec.final_state
        assert ref.steps == vec.steps
        assert ref.change_counts == vec.change_counts


# ----------------------------------------------------------------------
# the unified termination convention
# ----------------------------------------------------------------------
class TestTermination:
    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_fixed_step_count_is_exact(self, engine):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        res = run(automaton, net, init, engine=engine, until=3)
        assert res.steps == 3
        sim = SynchronousSimulator(net, automaton, init.copy())
        sim.run(3)
        assert res.final_state == sim.state

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_zero_steps(self, engine):
        net, init = _two_state_net()
        res = run(_hold_programs(), net, init, engine=engine, until=0)
        assert res.steps == 0
        assert res.final_state == init
        assert res.change_counts == []

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_born_stable_counts_the_confirming_step(self, engine):
        net, init = _two_state_net()
        res = run(_hold_programs(), net, init, engine=engine, until="stable")
        assert res.steps == 1
        assert res.converged
        assert res.final_state == init

    def test_born_stable_batched(self):
        net, init = _two_state_net()
        res = run(_hold_programs(), net, init, until="stable", replicas=3)
        assert res.steps == 1
        assert list(res.replica_rounds) == [1, 1, 1]

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_initially_true_predicate_is_zero_steps(self, engine):
        net, init = _two_state_net()
        res = run(
            _blinker_programs(), net, init, engine=engine, until=lambda s: True
        )
        assert res.steps == 0
        assert res.final_state == init

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_stable_budget_raises(self, engine):
        net, init = _two_state_net()
        with pytest.raises(RuntimeError, match="fixed point"):
            run(
                _blinker_programs(), net, init, engine=engine,
                until="stable", max_steps=10,
            )

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_predicate_budget_raises_after_exactly_max_steps(self, engine):
        net, init = _two_state_net()
        rec = _Recorder()
        with pytest.raises(RuntimeError, match="predicate"):
            run(
                _blinker_programs(), net, init, engine=engine,
                until=lambda s: False, max_steps=7, observers=(rec,),
            )
        assert len(rec.events) == 7

    def test_stable_engines_agree_on_step_count(self):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(10)
        automaton, init = two_coloring.build(net, origin=0)
        ref = run(automaton, net, init, engine="reference")
        vec = run(automaton, net, init, engine="vectorized")
        assert ref.steps == vec.steps
        assert ref.final_state == vec.final_state
        assert ref.change_counts == vec.change_counts

    def test_stability_waits_for_fault_plan_exhaustion(self):
        # a born-stable automaton with a fault at t=5 must keep stepping
        # until the plan has fired, then count the confirming step.
        net, init = _two_state_net(5)
        plan = FaultPlan([FaultEvent(5, "node", 4)])
        res = run(_hold_programs(), net, init, until="stable", fault_plan=plan)
        assert res.steps == 6
        assert 4 not in res.final_state

    def test_run_until_budget_is_exact(self):
        # regression: run_until used to allow max_steps + 1 steps.
        net, init = _two_state_net()
        sim = SynchronousSimulator(net, FSSGA.from_programs(_blinker_programs()), init)
        with pytest.raises(RuntimeError):
            sim.run_until(lambda s: False, max_steps=5)
        assert sim.time == 5

    def test_run_until_initially_true_is_zero(self):
        net, init = _two_state_net()
        sim = SynchronousSimulator(net, FSSGA.from_programs(_blinker_programs()), init)
        assert sim.run_until(lambda s: True) == 0
        assert sim.time == 0


# ----------------------------------------------------------------------
# observers
# ----------------------------------------------------------------------
class TestObservers:
    def test_trace_observer_matches_reference_trace(self):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        ob = TraceObserver()
        res = run(automaton, net, init, engine="vectorized", observers=(ob,))
        assert res.engine == "vectorized"

        manual = Trace()
        sim = SynchronousSimulator(net, automaton, init.copy(), trace=manual)
        sim.run(res.steps)
        assert len(ob.trace) == len(manual)
        for got, want in zip(ob.trace.steps, manual.steps):
            assert (got.time, got.changes, got.faults) == (
                want.time, want.changes, want.faults,
            )

    @pytest.mark.parametrize("engine", ["reference", "vectorized"])
    def test_metrics_observer(self, engine):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        ob = MetricsObserver()
        res = run(automaton, net, init, engine=engine, observers=(ob,))
        assert len(ob.step_times) == res.steps
        assert ob.change_counts == res.change_counts
        assert ob.convergence_curve()[-1] == 0  # the confirming step
        assert ob.total_time > 0

    def test_observer_parity_across_engines(self):
        from repro.algorithms import two_coloring

        net = generators.cycle_graph(10)
        automaton, init = two_coloring.build(net, origin=0)
        ref, vec = _Recorder(), _Recorder()
        run(automaton, net, init, engine="reference", observers=(ref,))
        run(automaton, net, init, engine="vectorized", observers=(vec,))
        assert ref.started and ref.ended and vec.started and vec.ended
        assert ref.events == vec.events

    def test_observer_sees_faults(self):
        net, init = _two_state_net(5)
        plan = FaultPlan([FaultEvent(2, "node", 4)])
        rec = _Recorder()
        run(
            _hold_programs(), net, init, until="stable",
            fault_plan=plan, observers=(rec,),
        )
        fault_times = [t for t, _, faults in rec.events if faults]
        assert fault_times == [2]


# ----------------------------------------------------------------------
# bitwise reference ≡ vectorized through the front door
# ----------------------------------------------------------------------
class TestFrontDoorBitwiseConformance:
    @pytest.mark.parametrize("case", range(6))
    def test_seeded_probabilistic_runs_are_identical(self, case):
        rng = np.random.default_rng(4000 + case)
        randomness = int(rng.integers(2, 4))
        states, programs = random_probabilistic_programs(
            rng, int(rng.integers(2, 4)), randomness
        )
        net = random_network(rng)
        init = random_init(rng, net, states)
        seed = int(rng.integers(2**32))

        kw = dict(randomness=randomness, until=8)
        ref = run(
            programs, net, init, engine="reference",
            rng=np.random.default_rng(seed), **kw,
        )
        vec = run(
            programs, net, init, engine="vectorized",
            rng=np.random.default_rng(seed), **kw,
        )
        assert ref.final_state == vec.final_state
        assert ref.change_counts == vec.change_counts
        assert ref.rng_draws == vec.rng_draws == 8 * net.num_nodes

    def test_batched_replica_shares_single_engine_stream(self):
        rng = np.random.default_rng(4100)
        states, programs = random_probabilistic_programs(rng, 3, 2)
        net = generators.cycle_graph(7)
        init = random_init(rng, net, states)
        seed = 99

        vec = run(
            programs, net, init, engine="vectorized", randomness=2,
            rng=np.random.default_rng(seed), until=6,
        )
        bat = run(
            programs, net, init, engine="batched", replicas=1, randomness=2,
            rng=[np.random.default_rng(seed)], until=6,
        )
        assert bat.replica_states[0] == vec.final_state

    def test_coin_kernel_seeded(self):
        from repro.algorithms import election

        net = generators.complete_graph(9)
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)
        kw = dict(randomness=2, until=10)
        ref = run(programs, net, init, engine="reference", rng=np.random.default_rng(31), **kw)
        vec = run(programs, net, init, engine="vectorized", rng=np.random.default_rng(31), **kw)
        assert ref.final_state == vec.final_state


# ----------------------------------------------------------------------
# programs ≡ rules for the migrated algorithms
# ----------------------------------------------------------------------
class TestProgramRuleEquivalence:
    def test_bfs_programs_match_rule(self):
        from repro.algorithms import bfs

        net = generators.connected_gnp_graph(14, 0.25, 8)
        automaton, init = bfs.build(net, originator=0, targets=[9, 13])
        rule_based = FSSGA(bfs.ALPHABET, bfs.rule, name="bfs-rule")

        sim = SynchronousSimulator(net, rule_based, init.copy())
        for step in range(1, 2 * net.num_nodes):
            sim.step()
            res = run(automaton, net, init, engine="vectorized", until=step)
            assert res.final_state == sim.state, f"diverged at step {step}"

    def test_shortest_paths_labels_are_bfs_distances(self):
        from repro.algorithms import shortest_paths

        net = generators.grid_graph(4, 5)
        sinks = [0, 19]
        res = shortest_paths.run_labels(net, sinks)
        assert res.engine == "vectorized"
        assert shortest_paths.stabilized(net, res.final_state, sinks, net.num_nodes)

    def test_batched_predicate_deactivates_per_replica(self):
        from repro.algorithms import election

        net = generators.complete_graph(8)
        survivors = lambda s: sum(q != election.K_OUT for q in s.values())
        res = run(
            election.coin_kernel_programs(),
            net,
            election.coin_kernel_init(net),
            replicas=4,
            randomness=2,
            rng=7,
            until=lambda s: survivors(s) <= 1,
            max_steps=500,
        )
        assert res.engine == "batched"
        for state in res.replica_states:
            assert survivors(state) <= 1
        assert res.steps == int(res.replica_rounds.max())
