"""Tests for the array-backend layer (:mod:`repro.runtime.backends`).

The engine-conformance harness already sweeps every backend through the
bitwise step-by-step comparisons (``TestBackendConformance``); this module
covers everything around that hot loop: the registry and negotiation
rules (pinned-but-unavailable backends must fail with a machine-readable
blocker, never degrade silently), the numba bytecode lowering and its
per-content-hash kernel cache, the telemetry backend tag, and the
``run()``-level round trips — ``RunResult.backend``, the manifest, and
:func:`~repro.runtime.telemetry.replay` re-pinning the recorded backend.
"""

import numpy as np
import pytest
from test_engine_conformance import (
    random_deterministic_programs,
    random_init,
    random_network,
)

from repro.core.automaton import FSSGA
from repro.core.ir import BackendLoweringError, LoweringError, lower
from repro.network import NetworkState, generators
from repro.runtime import run
from repro.runtime.backends import (
    BACKENDS,
    DEFAULT_MAX_STEPS,
    HAS_NUMBA,
    ArrayApiBackend,
    ArrayBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    backend_cache_info,
    clear_backend_cache,
    resolve_backend,
)
from repro.runtime.backends import numba_backend
from repro.runtime.backends.numba_backend import (
    build_kernel_tables,
    kernel_cache_info,
    kernel_tables_for,
    run_step,
)
from repro.runtime.telemetry import MetricsRegistry, replay
from repro.runtime.vectorized import VectorizedSynchronousEngine


def _two_coloring_workload(n=10):
    from repro.algorithms import two_coloring as tc

    net = generators.cycle_graph(n)
    programs = tc.sticky_programs()
    init = NetworkState.from_function(
        net, lambda v: tc.RED if v == 0 else tc.BLANK
    )
    return net, programs, init


def _coin_kernel_workload(n=8):
    from repro.algorithms import election

    net = generators.complete_graph(n)
    return net, election.coin_kernel_programs(), election.coin_kernel_init(net)


# ----------------------------------------------------------------------
# registry / resolution
# ----------------------------------------------------------------------
class TestRegistry:
    def test_auto_and_none_resolve_to_numpy(self):
        assert isinstance(resolve_backend("auto"), NumpyBackend)
        assert isinstance(resolve_backend(None), NumpyBackend)
        assert resolve_backend("numpy").name == "numpy"

    def test_array_api_resolves(self):
        backend = resolve_backend("array-api")
        assert isinstance(backend, ArrayApiBackend)
        assert backend.name == "array-api"

    def test_instance_passes_through(self):
        backend = ArrayApiBackend()
        assert resolve_backend(backend) is backend

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError, match="unknown backend 'bogus'"):
            resolve_backend("bogus")
        with pytest.raises(ValueError, match="numpy"):
            resolve_backend("bogus")

    def test_backends_tuple_is_the_public_axis(self):
        assert BACKENDS == ("auto", "numpy", "array-api", "numba")

    def test_available_backends_tracks_numba(self):
        names = available_backends()
        assert "numpy" in names and "array-api" in names
        assert ("numba" in names) == HAS_NUMBA

    def test_default_max_steps_is_shared(self):
        import repro.runtime as rt

        assert DEFAULT_MAX_STEPS == 100_000
        assert rt.DEFAULT_MAX_STEPS is DEFAULT_MAX_STEPS


# ----------------------------------------------------------------------
# negotiation: pinned-but-unavailable must raise structured blockers
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_pinned_numba_without_numba_raises_blocker(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "HAS_NUMBA", False)
        with pytest.raises(BackendLoweringError) as exc:
            NumbaBackend()
        assert exc.value.blocker == "numba-unavailable"
        assert isinstance(exc.value, LoweringError)  # and hence a TypeError

    def test_force_python_never_needs_numba(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "HAS_NUMBA", False)
        backend = NumbaBackend(force_python=True)
        assert backend.name == "kernel-python"

    def test_run_pinned_numba_without_numba(self, monkeypatch):
        monkeypatch.setattr(numba_backend, "HAS_NUMBA", False)
        net, programs, init = _two_coloring_workload()
        with pytest.raises(BackendLoweringError) as exc:
            run(programs, net, init, backend="numba")
        assert exc.value.blocker == "numba-unavailable"

    def test_run_reference_engine_rejects_pinned_backend(self):
        net, programs, init = _two_coloring_workload()
        with pytest.raises(BackendLoweringError) as exc:
            run(programs, net, init, engine="reference", backend="numpy")
        assert exc.value.blocker == "reference-engine"
        assert "engine='reference' was requested" in str(exc.value)

    def test_run_auto_fallback_rejects_pinned_backend(self):
        # a rule-based automaton auto-falls back to the reference
        # interpreter; a pinned backend must surface that, not vanish
        from repro.algorithms import census

        net = generators.connected_gnp_graph(10, 0.4, 0)
        automaton, init = census.build(net, rng=0)
        assert automaton.is_rule_based
        with pytest.raises(BackendLoweringError) as exc:
            run(automaton, net, init, backend="numpy")
        assert exc.value.blocker == "reference-engine"
        assert "fell back" in str(exc.value)

    def test_reference_engine_accepts_auto_backend(self):
        net, programs, init = _two_coloring_workload()
        res = run(programs, net, init, engine="reference", backend="auto")
        assert res.engine == "reference"
        assert res.backend is None


# ----------------------------------------------------------------------
# the numba bytecode lowering (runs uncompiled without numba)
# ----------------------------------------------------------------------
class TestKernelTables:
    def _ir(self):
        net, programs, _ = _two_coloring_workload()
        return lower(FSSGA.from_programs(programs))

    def test_table_shapes(self):
        ir = self._ir()
        tables = build_kernel_tables(ir)
        s, r = len(ir.alphabet), ir.randomness
        assert tables.prog_of.shape == (s, r)
        assert tables.n_states == s
        assert tables.prog_ptr.shape == (len(tables.prog_default) + 1,)
        assert tables.clause_code_ptr.shape == (len(tables.clause_result) + 1,)
        assert tables.bytecode.shape == (tables.clause_code_ptr[-1],)
        assert tables.stack_size >= 1

    def test_missing_table_entries_hold_state(self):
        ir = self._ir()
        tables = build_kernel_tables(ir)
        held = tables.prog_of < 0
        # every coded (state, draw) either dispatches or holds
        assert held.shape == (len(ir.alphabet), ir.randomness)

    @pytest.mark.parametrize("case", range(4))
    def test_bytecode_matches_numpy_step(self, case):
        """The fused loop ≡ the one-hot matvec + np.select path, bitwise."""
        rng = np.random.default_rng(4200 + case)
        states, programs = random_deterministic_programs(
            rng, int(rng.integers(2, 5))
        )
        net = random_network(rng, 2)
        init = random_init(rng, net, states)
        ref = VectorizedSynchronousEngine(net.copy(), programs, init)
        kern = VectorizedSynchronousEngine(
            net.copy(), programs, init,
            backend=NumbaBackend(force_python=True),
        )
        for _ in range(6):
            ref.step()
            kern.step()
            assert kern.state == ref.state

    def test_run_step_accepts_flat_and_stacked(self):
        ir = self._ir()
        tables = kernel_tables_for(ir)
        net, programs, init = _two_coloring_workload()
        eng = VectorizedSynchronousEngine(net, programs, init)
        sig = eng._sigma.copy()
        live = np.ones(sig.shape[0], dtype=bool)
        flat = run_step(eng.adjacency, sig, live, None, tables,
                        force_python=True)
        stacked = run_step(
            eng.adjacency, np.stack([sig, sig]), live, None, tables,
            force_python=True,
        )
        assert flat.shape == sig.shape
        assert stacked.shape == (2, sig.shape[0])
        np.testing.assert_array_equal(stacked[0], flat)
        np.testing.assert_array_equal(stacked[1], flat)


class TestKernelCache:
    def test_hit_miss_accounting(self):
        clear_backend_cache()
        ir = lower(
            FSSGA.from_programs(_two_coloring_workload()[1])
        )
        kernel_tables_for(ir)
        info = kernel_cache_info()
        assert (info["hits"], info["misses"], info["kernels"]) == (0, 1, 1)
        assert kernel_tables_for(ir) is kernel_tables_for(ir)
        info = kernel_cache_info()
        assert info["hits"] == 2 and info["misses"] == 1

    def test_backend_cache_info_mirrors_kernel_cache(self):
        clear_backend_cache()
        assert backend_cache_info()["kernels"] == 0
        ir = lower(FSSGA.from_programs(_two_coloring_workload()[1]))
        kernel_tables_for(ir)
        assert backend_cache_info() == kernel_cache_info()


# ----------------------------------------------------------------------
# telemetry: tags, manifest, replay
# ----------------------------------------------------------------------
class TestBackendTelemetry:
    def test_metrics_registry_tags(self):
        met = MetricsRegistry()
        met.set_tag("backend", "numpy")
        met.set_tag("backend", "array-api")  # last writer wins
        assert met.snapshot()["tags"] == {"backend": "array-api"}

    def test_engine_tags_metrics(self):
        net, programs, init = _two_coloring_workload()
        met = MetricsRegistry()
        VectorizedSynchronousEngine(
            net, programs, init, metrics=met, backend="array-api"
        )
        assert met.snapshot()["tags"]["backend"] == "array-api"

    def test_run_result_and_manifest_carry_backend(self):
        net, programs, init = _two_coloring_workload()
        res = run(programs, net, init, backend="array-api")
        assert res.backend == "array-api"
        assert res.manifest.backend == "array-api"
        assert '"backend": "array-api"' in res.manifest.to_json()

    def test_auto_records_the_resolved_backend(self):
        net, programs, init = _two_coloring_workload()
        res = run(programs, net, init)
        assert res.backend == "numpy"
        assert res.manifest.backend == "numpy"

    def test_replay_round_trips_backend(self):
        net, programs, init = _coin_kernel_workload()
        res = run(
            programs, net, init, randomness=2, rng=11, until=12,
            backend="array-api",
        )
        redo = replay(res.manifest)
        assert redo.backend == "array-api"
        assert redo.final_state == res.final_state

    def test_replay_reference_run_has_no_backend(self):
        from repro.algorithms import census

        net = generators.connected_gnp_graph(10, 0.4, 0)
        automaton, init = census.build(net, rng=0)
        res = run(automaton, net, init, rng=3)
        assert res.backend is None
        assert replay(res.manifest).backend is None


# ----------------------------------------------------------------------
# run()-level bitwise identity across the backend axis
# ----------------------------------------------------------------------
def _axis():
    yield "numpy"
    yield "array-api"
    yield NumbaBackend(force_python=True)
    if HAS_NUMBA:
        yield "numba"


class TestRunLevelIdentity:
    def test_deterministic_runs_identical(self):
        net, programs, init = _two_coloring_workload(12)
        results = [
            run(programs, net.copy(), init, backend=b) for b in _axis()
        ]
        base = results[0]
        for res in results[1:]:
            assert res.final_state == base.final_state
            assert res.steps == base.steps

    def test_probabilistic_runs_identical(self):
        net, programs, init = _coin_kernel_workload()
        results = [
            run(
                programs, net.copy(), init, randomness=2, rng=29, until=15,
                backend=b,
            )
            for b in _axis()
        ]
        base = results[0]
        for res in results[1:]:
            assert res.final_state == base.final_state
            assert res.rng_draws == base.rng_draws

    def test_batched_replicas_identical(self):
        net, programs, init = _coin_kernel_workload(6)
        results = [
            run(
                programs, net.copy(), init, replicas=3, randomness=2,
                rng=7, until=10, backend=b,
            )
            for b in _axis()
        ]
        base = results[0]
        for res in results[1:]:
            assert res.replica_states == base.replica_states


class TestBackendProtocol:
    def test_draw_is_the_canonical_stream(self):
        """Every backend consumes rng.integers(r, size=m) — nothing else."""
        backend = NumpyBackend()
        a = backend.draw(np.random.default_rng(5), 3, 8)
        b = np.random.default_rng(5).integers(3, size=8)
        np.testing.assert_array_equal(a, b)

    def test_base_step_is_abstract(self):
        with pytest.raises(NotImplementedError):
            ArrayBackend().step(None, np.zeros(1, dtype=np.int64),
                                np.ones(1, dtype=bool), None, None)
