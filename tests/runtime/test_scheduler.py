"""Unit tests for repro.runtime.scheduler."""

import numpy as np

from repro.network import NetworkState, generators
from repro.runtime.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    random_fair_rounds,
)


def _ctx(n=5):
    net = generators.path_graph(n)
    return net, NetworkState.uniform(net, 0), np.random.default_rng(0)


class TestRandomScheduler:
    def test_returns_live_nodes(self):
        net, st, rng = _ctx()
        s = RandomScheduler()
        for _ in range(20):
            assert s.next_node(net, st, 0, rng) in net

    def test_empty_network(self):
        from repro.network.graph import Network

        s = RandomScheduler()
        assert s.next_node(Network(), NetworkState(), 0, np.random.default_rng()) is None


class TestRoundRobin:
    def test_cycles_in_order(self):
        net, st, rng = _ctx(3)
        s = RoundRobinScheduler()
        picks = [s.next_node(net, st, t, rng) for t in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_dead_nodes(self):
        net, st, rng = _ctx(3)
        s = RoundRobinScheduler()
        s.next_node(net, st, 0, rng)
        net.remove_node(1)
        picks = [s.next_node(net, st, t, rng) for t in range(3)]
        assert 1 not in picks

    def test_explicit_order(self):
        net, st, rng = _ctx(3)
        s = RoundRobinScheduler(order=[2, 0, 1])
        assert s.next_node(net, st, 0, rng) == 2

    def test_empty_scan_leaves_position_unchanged(self):
        """A full scan finding no live node must not advance the cursor,
        so the round-robin order stays stable across empty scans."""
        net, st, rng = _ctx(3)
        s = RoundRobinScheduler()
        assert s.next_node(net, st, 0, rng) == 0  # cursor now at node 1
        for v in list(net.nodes()):
            net.remove_node(v)
        pos = s._pos
        assert s.next_node(net, st, 1, rng) is None
        assert s.next_node(net, st, 2, rng) is None
        assert s._pos == pos

    def test_mid_run_deletion_preserves_rotation(self):
        """Deleting a node mid-run removes it from the rotation without
        disturbing the relative order of the survivors."""
        net, st, rng = _ctx(4)
        s = RoundRobinScheduler()
        assert s.next_node(net, st, 0, rng) == 0
        net.remove_node(1)
        picks = [s.next_node(net, st, t, rng) for t in range(1, 7)]
        assert picks == [2, 3, 0, 2, 3, 0]


class TestScripted:
    def test_replays_and_exhausts(self):
        net, st, rng = _ctx(3)
        s = ScriptedScheduler([1, 1, 0])
        assert [s.next_node(net, st, t, rng) for t in range(4)] == [1, 1, 0, None]
        assert s.exhausted

    def test_skips_dead(self):
        net, st, rng = _ctx(3)
        s = ScriptedScheduler([1, 2])
        net.remove_node(1)
        assert s.next_node(net, st, 0, rng) == 2

    def test_skips_nodes_deleted_mid_run(self):
        """Entries for nodes deleted after construction are consumed (they
        count toward exhaustion) but never returned."""
        net, st, rng = _ctx(4)
        s = ScriptedScheduler([0, 1, 1, 2, 3])
        assert s.next_node(net, st, 0, rng) == 0
        net.remove_node(1)
        assert s.next_node(net, st, 1, rng) == 2
        net.remove_node(3)
        assert s.next_node(net, st, 2, rng) is None
        assert s.exhausted


class TestFairRounds:
    def test_each_round_is_permutation(self):
        net, _, _ = _ctx(6)
        seq = random_fair_rounds(net, 4, rng=3)
        assert len(seq) == 24
        for r in range(4):
            chunk = seq[r * 6 : (r + 1) * 6]
            assert sorted(chunk) == list(range(6))

    def test_deterministic(self):
        net, _, _ = _ctx(5)
        assert random_fair_rounds(net, 3, rng=9) == random_fair_rounds(net, 3, rng=9)
