"""Unit tests for repro.runtime.trace."""

from repro.core.automaton import FSSGA
from repro.network import NetworkState, generators
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.trace import StepRecord, Trace


class TestTrace:
    def test_record_and_len(self):
        tr = Trace()
        tr.record(0, {1: ("a", "b")})
        tr.record(1, {})
        assert len(tr) == 2
        assert tr.steps[0].changes == {1: ("a", "b")}

    def test_quiescent_flag(self):
        assert StepRecord(0, {}, []).quiescent
        assert not StepRecord(0, {1: ("a", "b")}, []).quiescent
        assert not StepRecord(0, {}, ["fault"]).quiescent

    def test_changed_nodes_and_history(self):
        tr = Trace()
        tr.record(0, {1: ("a", "b")})
        tr.record(1, {1: ("b", "c"), 2: ("a", "b")})
        assert tr.changed_nodes() == {1, 2}
        assert tr.history_of(1) == [(0, "a", "b"), (1, "b", "c")]
        assert tr.history_of(9) == []

    def test_total_state_changes(self):
        tr = Trace()
        tr.record(0, {1: ("a", "b"), 2: ("a", "b")})
        tr.record(1, {1: ("b", "c")})
        assert tr.total_state_changes() == 3

    def test_snapshots(self):
        net = generators.path_graph(4)
        aut = FSSGA(
            {0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0
        )
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        tr = Trace(snapshots=True)
        sim = SynchronousSimulator(net, aut, init, trace=tr)
        sim.run(3)
        assert len(tr.snapshots) == 3
        # snapshots are copies: mutating one does not affect others
        tr.snapshots[0].set(0, 99)
        assert tr.snapshots[1][0] != 99 or tr.snapshots[1][0] == 1

    def test_stateless_record_keeps_snapshot_alignment(self):
        """record(..., state=None) with snapshots on must not desync the
        steps[i] / snapshots[i] pairing — a None placeholder is appended."""
        tr = Trace(snapshots=True)
        tr.record(0, {1: ("a", "b")}, state=NetworkState({1: "b"}))
        tr.record(1, {2: ("a", "b")}, state=None)  # producer had no state
        tr.record(2, {}, state=NetworkState({1: "b", 2: "b"}))
        assert len(tr.snapshots) == len(tr.steps) == 3
        assert tr.snapshots[0][1] == "b"
        assert tr.snapshots[1] is None
        assert tr.snapshots[2][2] == "b"

    def test_replayability(self):
        """The trace determines the full state sequence given the init."""
        net = generators.path_graph(5)
        aut = FSSGA(
            {0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0
        )
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        tr = Trace()
        sim = SynchronousSimulator(net, aut, init.copy(), trace=tr)
        sim.run(5)
        # replay
        replayed = init.copy()
        for rec in tr.steps:
            for v, (_old, new) in rec.changes.items():
                replayed.set(v, new)
        assert replayed == sim.state
