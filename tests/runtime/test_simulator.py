"""Unit tests for the reference simulators (Section 3.4 semantics)."""

import pytest

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.network import NetworkState, generators
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.scheduler import RoundRobinScheduler, ScriptedScheduler
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator
from repro.runtime.trace import Trace


def epidemic():
    return FSSGA({0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0)


def flipper():
    """Every node copies the majority-less rule: becomes 1 iff any
    neighbour is 1, else 0 — oscillates on some inits."""
    return FSSGA({0, 1}, lambda own, view: 1 if view.at_least(1, 1) else 0)


class TestSynchronous:
    def test_epidemic_spreads_one_layer_per_step(self):
        net = generators.path_graph(6)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        sim = SynchronousSimulator(net, epidemic(), init)
        for t in range(1, 6):
            sim.step()
            infected = {v for v in net if sim.state[v] == 1}
            assert infected == set(range(t + 1))

    def test_run_until_stable_counts_steps(self):
        net = generators.path_graph(6)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        sim = SynchronousSimulator(net, epidemic(), init)
        steps = sim.run_until_stable()
        assert steps == 6  # 5 spreading steps + 1 quiescent confirmation

    def test_lockstep_simultaneity(self):
        """σ' must be computed from σ, not from partially-updated state."""
        net = generators.path_graph(3)
        # swap rule: node takes the XOR of neighbour states — on [1,0,0]
        # a sequential in-place update would differ from lockstep.
        aut = FSSGA({0, 1}, lambda own, view: view.count_mod(1, 2))
        init = NetworkState({0: 1, 1: 0, 2: 0})
        sim = SynchronousSimulator(net, aut, init)
        sim.step()
        assert dict(sim.state.items()) == {0: 0, 1: 1, 2: 0}

    def test_missing_initial_state_rejected(self):
        net = generators.path_graph(3)
        with pytest.raises(ValueError):
            SynchronousSimulator(net, epidemic(), NetworkState({0: 0}))

    def test_oscillation_hits_step_budget(self):
        net = generators.path_graph(2)
        init = NetworkState({0: 1, 1: 0})
        sim = SynchronousSimulator(net, flipper(), init)
        with pytest.raises(RuntimeError):
            sim.run_until_stable(max_steps=50)

    def test_run_until_predicate(self):
        net = generators.path_graph(5)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        sim = SynchronousSimulator(net, epidemic(), init)
        steps = sim.run_until(lambda st: st[3] == 1)
        assert steps == 3

    def test_trace_records_changes(self):
        net = generators.path_graph(4)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        trace = Trace()
        sim = SynchronousSimulator(net, epidemic(), init, trace=trace)
        sim.run_until_stable()
        assert trace.changed_nodes() == {1, 2, 3}
        assert trace.history_of(2) == [(1, 0, 1)]

    def test_faults_applied_before_step(self):
        net = generators.path_graph(4)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        plan = FaultPlan([FaultEvent(1, "edge", (1, 2))])
        sim = SynchronousSimulator(net, epidemic(), init, fault_plan=plan)
        sim.run(10)
        assert sim.state[1] == 1
        assert sim.state[2] == 0  # cut off before infection crossed

    def test_node_fault_removes_state(self):
        net = generators.path_graph(4)
        init = NetworkState.uniform(net, 0)
        plan = FaultPlan([FaultEvent(2, "node", 3)])
        sim = SynchronousSimulator(net, epidemic(), init, fault_plan=plan)
        sim.run(5)
        assert 3 not in sim.state
        assert sim.net.num_nodes == 3


class TestAsynchronous:
    def test_scripted_schedule(self):
        net = generators.path_graph(3)
        init = NetworkState({0: 1, 1: 0, 2: 0})
        sched = ScriptedScheduler([2, 1, 2])
        sim = AsynchronousSimulator(net, epidemic(), init, scheduler=sched)
        sim.step()  # node 2: neighbour 1 is 0 -> stays 0
        assert sim.state[2] == 0
        sim.step()  # node 1: neighbour 0 is 1 -> becomes 1
        assert sim.state[1] == 1
        sim.step()  # node 2: now spreads
        assert sim.state[2] == 1

    def test_round_robin_covers_all(self):
        net = generators.path_graph(5)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        sim = AsynchronousSimulator(
            net, epidemic(), init, scheduler=RoundRobinScheduler()
        )
        sim.run(2 * 5)
        assert all(sim.state[v] == 1 for v in net)

    def test_fair_rounds_spread_bound(self):
        net = generators.path_graph(8)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        sim = AsynchronousSimulator(net, epidemic(), init, rng=1)
        sim.run_fair_rounds(8)
        # each fair round advances the frontier at least one hop
        assert all(sim.state[v] == 1 for v in net)

    def test_random_scheduler_deterministic_with_seed(self):
        net = generators.cycle_graph(6)
        init = NetworkState.uniform(net, 0)
        init[0] = 1

        def run(seed):
            sim = AsynchronousSimulator(net.copy(), epidemic(), init.copy(), rng=seed)
            sim.run(30)
            return dict(sim.state.items())

        assert run(5) == run(5)


class TestProbabilistic:
    def test_synchronous_draws_per_node(self):
        # rule: become the draw — states must mix 0/1 across nodes
        aut = ProbabilisticFSSGA({0, 1}, 2, lambda own, view, i: i)
        net = generators.complete_graph(8)
        init = NetworkState.uniform(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=7)
        sim.step()
        values = set(sim.state.values())
        assert values == {0, 1}

    def test_seeded_reproducibility(self):
        aut = ProbabilisticFSSGA({0, 1}, 2, lambda own, view, i: i)
        net = generators.complete_graph(6)
        init = NetworkState.uniform(net, 0)

        def run(seed):
            sim = SynchronousSimulator(net.copy(), aut, init.copy(), rng=seed)
            sim.run(5)
            return dict(sim.state.items())

        assert run(3) == run(3)
        assert run(3) != run(4) or True  # different seeds may rarely agree
