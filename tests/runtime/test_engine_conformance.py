"""Engine-conformance harness: a differential cross-engine oracle.

Randomly generated mod-thresh automata (random alphabets, random clause
cascades over random mod/thresh propositions) run on randomly generated
networks through all three synchronous engines —
:class:`SynchronousSimulator`, :class:`VectorizedSynchronousEngine`, and
:class:`BatchedSynchronousEngine` — with shared seeds, asserting identical
state trajectories step by step.

Probabilistic runs can share streams bitwise because a numpy Generator
yields the same values whether bounded integers are drawn one scalar at a
time (the reference interpreter, one draw per node in network order) or as
one ``size=n`` vector (the vectorized engines), and all engines agree on
node order (``Network.to_csr`` uses insertion order, the same order the
reference simulator iterates).

The **churn axis** widens the faulted cases to the full topology-dynamics
event algebra: coherent mixed down/up schedules (deletions, resurrections,
edge restorations, plus fresh growth arrivals) run through the array
engines' union-topology lowering against the reference interpreter
mutating the live network — trajectories and telemetry counters must stay
bitwise identical, including the RNG draw order as resurrected and
arriving nodes re-enter the live ordering at the end (insertion-stamp
order on the array side).

The **quotient axis** runs the same differential oracle against the
:class:`~repro.runtime.quotient.QuotientSynchronousEngine` on networks
with declared automorphism groups (cycle/circulant rotations, subgroup
rotations with several orbits, full symmetric on complete graphs, torus
translations, grid reflections) from orbit-constant initial states,
asserting the *lifted* trajectory is bitwise identical to the full-graph
engines step by step.  Probabilistic quotient runs use the shared
per-orbit draw convention — one ``integers(r, size=k)`` vector per step,
every node of an orbit sharing its representative's draw — which the
full-graph engines consume through
:class:`~repro.runtime.quotient.OrbitBroadcastRng`; that adapter is *the*
documented convention for cross-engine probabilistic quotient
conformance (stock per-node draws are a different stochastic process, so
``engine="auto"`` never quotients probabilistic runs).

The **backend axis** re-runs the differential oracle with every array
engine executing through each selectable
:class:`~repro.runtime.backends.ArrayBackend`: ``numpy`` (the extracted
historical kernel), ``array-api`` (pure array-API calls over the numpy
namespace), and the JIT backend's kernel — as ``kernel-python`` (the
bytecode interpreter running un-jitted, so the lowering is validated on
numba-free hosts) plus real ``numba`` when importable.  Trajectories must
stay bitwise identical to the reference interpreter under every backend.

The default parametrization keeps cases small; the ``slow`` marker adds a
wider randomized sweep (opt-in: ``pytest -m slow``).
"""

import numpy as np
import pytest

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.modthresh import (
    And,
    ModAtom,
    ModThreshProgram,
    Not,
    Or,
    ThreshAtom,
)
from repro.network import NetworkState, generators
from repro.network import symmetry as sym
from repro.runtime.backends import HAS_NUMBA, NumbaBackend, resolve_backend
from repro.runtime.batched import BatchedSynchronousEngine
from repro.runtime.churn import (
    ChurnPlan,
    TopologyEvent,
    growth_plan,
    random_churn_plan,
)
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.quotient import OrbitBroadcastRng, QuotientSynchronousEngine
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.telemetry import MetricsRegistry
from repro.runtime.vectorized import VectorizedSynchronousEngine

#: Every backend testable on this host.  ``kernel-python`` is the JIT
#: backend's fused kernel interpreted in plain Python — it validates the
#: bytecode lowering even where numba is not installed.
BACKEND_AXIS = ["numpy", "array-api", "kernel-python"] + (
    ["numba"] if HAS_NUMBA else []
)


def make_backend(name):
    """A fresh backend instance for a conformance case."""
    if name == "kernel-python":
        return NumbaBackend(force_python=True)
    return resolve_backend(name)


# ----------------------------------------------------------------------
# random generators for automata, networks and initial states
# ----------------------------------------------------------------------
def random_proposition(rng, states, depth=2):
    kind = int(rng.integers(5 if depth > 0 else 2))
    q = states[int(rng.integers(len(states)))]
    if kind == 0:
        return ThreshAtom(q, int(rng.integers(1, 4)))
    if kind == 1:
        m = int(rng.integers(2, 4))
        return ModAtom(q, int(rng.integers(m)), m)
    if kind == 2:
        return Not(random_proposition(rng, states, depth - 1))
    children = tuple(random_proposition(rng, states, depth - 1) for _ in range(2))
    return And(children) if kind == 3 else Or(children)


def random_cascade(rng, states):
    clauses = tuple(
        (random_proposition(rng, states), states[int(rng.integers(len(states)))])
        for _ in range(int(rng.integers(0, 4)))
    )
    return ModThreshProgram(
        clauses=clauses, default=states[int(rng.integers(len(states)))]
    )


def random_deterministic_programs(rng, n_states):
    states = [f"q{i}" for i in range(n_states)]
    return states, {q: random_cascade(rng, states) for q in states}


def random_probabilistic_programs(rng, n_states, randomness):
    states = [f"q{i}" for i in range(n_states)]
    return states, {
        (q, i): random_cascade(rng, states)
        for q in states
        for i in range(randomness)
    }


def random_network(rng, scale=1):
    pick = int(rng.integers(5))
    if pick == 0:
        return generators.path_graph(int(rng.integers(4, 8 * scale)))
    if pick == 1:
        return generators.cycle_graph(int(rng.integers(3, 10 * scale)))
    if pick == 2:
        return generators.grid_graph(
            int(rng.integers(2, 3 + scale)), int(rng.integers(2, 3 + scale))
        )
    if pick == 3:
        return generators.random_tree(int(rng.integers(3, 10 * scale)), rng)
    # may be disconnected and contain isolated nodes — deliberately
    return generators.gnp_random_graph(int(rng.integers(4, 10 * scale)), 0.3, rng)


def random_init(rng, net, states):
    return NetworkState.from_function(
        net, lambda v: states[int(rng.integers(len(states)))]
    )


def random_fault_events(rng, net, steps):
    """1–3 node/edge deletions at random times within the horizon.

    ``FaultEvent`` is frozen, so the same events parametrize a *fresh*
    :class:`FaultPlan` per engine (plans hold a cursor)."""
    nodes = list(net)
    events = []
    for _ in range(int(rng.integers(1, 4))):
        t = int(rng.integers(1, max(2, steps - 1)))
        v = nodes[int(rng.integers(len(nodes)))]
        nbrs = list(net.neighbors(v))
        if nbrs and rng.integers(2):
            events.append(FaultEvent(t, "edge", (v, nbrs[int(rng.integers(len(nbrs)))])))
        else:
            events.append(FaultEvent(t, "node", v))
    return events


def random_churn_events(rng, net, steps, states):
    """A coherent mixed topology-dynamics schedule for a conformance case:
    random deletions with resurrections and edge restorations
    (:func:`random_churn_plan` against a scratch copy, so every event is
    feasible when it fires) plus one or two *fresh* arrivals joining
    mid-run (:func:`growth_plan`).  Boot states are drawn from the case's
    alphabet.  Like :func:`random_fault_events`, the same event list
    parametrizes a fresh :class:`ChurnPlan` per engine."""
    boot = states[int(rng.integers(len(states)))]
    base = random_churn_plan(
        net, int(rng.integers(2, 6)), max_time=max(1, steps - 2),
        rng=rng, p_up=0.5, boot_state=boot,
    ).events()
    growth = growth_plan(
        net, int(rng.integers(1, 3)), attach=2,
        start=int(rng.integers(1, steps)), rng=rng,
        state=states[int(rng.integers(len(states)))],
    ).events()
    return base + growth


def symmetric_network(rng, scale=1):
    """A random network from the declared-group families, group attached.

    Families: cycles under the full rotation (one orbit) and under the
    shift-2 subgroup on even cycles (two orbits), complete graphs under
    the full symmetric group, tori under translations, circulants under
    rotation, and open grids under the reflection product group (many
    small orbits) — every generator family the package emits a group for.
    """
    pick = int(rng.integers(6))
    if pick == 0:
        n = int(rng.integers(3, 8 * scale))
        net, group = generators.cycle_graph(n), sym.cyclic_rotation(n)
    elif pick == 1:
        n = 2 * int(rng.integers(2, 4 * scale))  # even cycle, 2 orbits
        net, group = generators.cycle_graph(n), sym.cyclic_rotation(n, shift=2)
    elif pick == 2:
        n = int(rng.integers(2, 6 * scale))
        net, group = generators.complete_graph(n), sym.full_symmetric(range(n))
    elif pick == 3:
        r, c = int(rng.integers(3, 3 + 2 * scale)), int(rng.integers(3, 3 + 2 * scale))
        net, group = generators.torus_graph(r, c), sym.torus_translations(r, c)
    elif pick == 4:
        n = int(rng.integers(5, 8 * scale))
        offs = sorted({int(d) for d in rng.integers(1, n // 2 + 1, size=2)})
        net, group = generators.circulant_graph(n, offs), sym.cyclic_rotation(n)
    else:
        r, c = int(rng.integers(2, 3 + scale)), int(rng.integers(2, 3 + scale))
        net, group = generators.grid_graph(r, c), sym.grid_reflections(r, c)
    net.declare_symmetry(group)
    return net


def orbit_constant_init(rng, net, states):
    """A random initial state that is constant on each orbit."""
    part = net.orbit_partition()
    per_orbit = [states[int(rng.integers(len(states)))] for _ in part.reps]
    return NetworkState({v: per_orbit[part.orbit_of[v]] for v in net})


# ----------------------------------------------------------------------
# the differential assertions
# ----------------------------------------------------------------------
def assert_deterministic_conformance(
    case_seed, scale=1, steps=6, replicas=3, backend="auto"
):
    rng = np.random.default_rng(case_seed)
    states, programs = random_deterministic_programs(rng, int(rng.integers(2, 5)))
    net = random_network(rng, scale)
    init = random_init(rng, net, states)

    ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(programs), init.copy())
    vec = VectorizedSynchronousEngine(net, programs, init, backend=backend)
    bat = BatchedSynchronousEngine(
        net, programs, init, replicas=replicas, backend=backend
    )
    for step in range(steps):
        ref.step()
        vec.step()
        bat.step()
        assert vec.state == ref.state, f"vectorized diverged at step {step}"
        for r in range(replicas):
            assert bat.replica_state(r) == ref.state, (
                f"batched replica {r} diverged at step {step}"
            )


def assert_probabilistic_conformance(case_seed, scale=1, steps=8, backend="auto"):
    rng = np.random.default_rng(case_seed)
    randomness = int(rng.integers(2, 4))
    states, programs = random_probabilistic_programs(
        rng, int(rng.integers(2, 4)), randomness
    )
    net = random_network(rng, scale)
    init = random_init(rng, net, states)
    seed = int(rng.integers(2**32))

    automaton = ProbabilisticFSSGA(set(states), randomness, programs)
    ref = SynchronousSimulator(
        net.copy(), automaton, init.copy(), rng=np.random.default_rng(seed)
    )
    vec = VectorizedSynchronousEngine(
        net, programs, init, randomness=randomness,
        rng=np.random.default_rng(seed), backend=backend,
    )
    # one replica sharing the very same stream as the single-replica engines
    bat = BatchedSynchronousEngine(
        net,
        programs,
        init,
        replicas=1,
        randomness=randomness,
        rng=[np.random.default_rng(seed)],
        backend=backend,
    )
    for step in range(steps):
        ref.step()
        vec.step()
        bat.step()
        assert vec.state == ref.state, f"vectorized diverged at step {step}"
        assert bat.replica_state(0) == ref.state, f"batched diverged at step {step}"


def assert_faulted_conformance(
    case_seed, scale=1, steps=8, replicas=2, backend="auto"
):
    """Mid-run faults lower to live-node masks on every engine: identical
    trajectories over the surviving nodes, step by step."""
    rng = np.random.default_rng(case_seed)
    states, programs = random_deterministic_programs(rng, int(rng.integers(2, 5)))
    net = random_network(rng, scale)
    init = random_init(rng, net, states)
    events = random_fault_events(rng, net, steps)

    ref = SynchronousSimulator(
        net.copy(), FSSGA.from_programs(programs), init.copy(),
        fault_plan=FaultPlan(events),
    )
    vec = VectorizedSynchronousEngine(
        net.copy(), programs, init, fault_plan=FaultPlan(events), backend=backend
    )
    bat = BatchedSynchronousEngine(
        net.copy(), programs, init, replicas=replicas,
        fault_plan=FaultPlan(events), backend=backend,
    )
    for step in range(steps):
        ref.step()
        vec.step()
        bat.step()
        assert vec.state == ref.state, f"vectorized diverged at step {step}"
        for r in range(replicas):
            assert bat.replica_state(r) == ref.state, (
                f"batched replica {r} diverged at step {step}"
            )


def assert_faulted_probabilistic_conformance(
    case_seed, scale=1, steps=8, backend="auto"
):
    """Faults + shared RNG streams: the live-compacted draw order must keep
    matching the reference's per-node draws as nodes disappear."""
    rng = np.random.default_rng(case_seed)
    randomness = int(rng.integers(2, 4))
    states, programs = random_probabilistic_programs(
        rng, int(rng.integers(2, 4)), randomness
    )
    net = random_network(rng, scale)
    init = random_init(rng, net, states)
    events = random_fault_events(rng, net, steps)
    seed = int(rng.integers(2**32))

    automaton = ProbabilisticFSSGA(set(states), randomness, programs)
    ref = SynchronousSimulator(
        net.copy(), automaton, init.copy(), rng=np.random.default_rng(seed),
        fault_plan=FaultPlan(events),
    )
    vec = VectorizedSynchronousEngine(
        net.copy(), programs, init, randomness=randomness,
        rng=np.random.default_rng(seed), fault_plan=FaultPlan(events),
        backend=backend,
    )
    bat = BatchedSynchronousEngine(
        net.copy(), programs, init, replicas=1, randomness=randomness,
        rng=[np.random.default_rng(seed)], fault_plan=FaultPlan(events),
        backend=backend,
    )
    for step in range(steps):
        ref.step()
        vec.step()
        bat.step()
        assert vec.state == ref.state, f"vectorized diverged at step {step}"
        assert bat.replica_state(0) == ref.state, f"batched diverged at step {step}"


def assert_churn_conformance(
    case_seed, scale=1, steps=8, replicas=2, backend="auto"
):
    """Mixed down/up churn lowers to the union topology + incremental
    masks on the array engines: trajectories bitwise-identical to the
    reference interpreter mutating the live network, step by step —
    deletions, resurrections, edge restorations and fresh arrivals all
    included."""
    rng = np.random.default_rng(case_seed)
    states, programs = random_deterministic_programs(rng, int(rng.integers(2, 5)))
    net = random_network(rng, scale)
    init = random_init(rng, net, states)
    events = random_churn_events(rng, net, steps, states)

    ref = SynchronousSimulator(
        net.copy(), FSSGA.from_programs(programs), init.copy(),
        fault_plan=ChurnPlan(list(events)),
    )
    vec = VectorizedSynchronousEngine(
        net.copy(), programs, init, fault_plan=ChurnPlan(list(events)),
        backend=backend,
    )
    bat = BatchedSynchronousEngine(
        net.copy(), programs, init, replicas=replicas,
        fault_plan=ChurnPlan(list(events)), backend=backend,
    )
    for step in range(steps):
        ref.step()
        vec.step()
        bat.step()
        assert vec.state == ref.state, f"vectorized diverged at step {step}"
        for r in range(replicas):
            assert bat.replica_state(r) == ref.state, (
                f"batched replica {r} diverged at step {step}"
            )


def assert_churn_probabilistic_conformance(
    case_seed, scale=1, steps=8, backend="auto"
):
    """Churn + shared RNG streams: the reference draws per node in live
    insertion order (a resurrected or arriving node re-enters at the
    *end* of the dict), so the array engines' live views must present
    rows in the same stamped order for the draw streams to stay aligned
    — the strictest check of the arrival lowering."""
    rng = np.random.default_rng(case_seed)
    randomness = int(rng.integers(2, 4))
    states, programs = random_probabilistic_programs(
        rng, int(rng.integers(2, 4)), randomness
    )
    net = random_network(rng, scale)
    init = random_init(rng, net, states)
    events = random_churn_events(rng, net, steps, states)
    seed = int(rng.integers(2**32))

    automaton = ProbabilisticFSSGA(set(states), randomness, programs)
    ref = SynchronousSimulator(
        net.copy(), automaton, init.copy(), rng=np.random.default_rng(seed),
        fault_plan=ChurnPlan(list(events)),
    )
    vec = VectorizedSynchronousEngine(
        net.copy(), programs, init, randomness=randomness,
        rng=np.random.default_rng(seed), fault_plan=ChurnPlan(list(events)),
        backend=backend,
    )
    bat = BatchedSynchronousEngine(
        net.copy(), programs, init, replicas=1, randomness=randomness,
        rng=[np.random.default_rng(seed)], fault_plan=ChurnPlan(list(events)),
        backend=backend,
    )
    for step in range(steps):
        ref.step()
        vec.step()
        bat.step()
        assert vec.state == ref.state, f"vectorized diverged at step {step}"
        assert bat.replica_state(0) == ref.state, f"batched diverged at step {step}"


def assert_quotient_deterministic_conformance(
    case_seed, scale=1, steps=6, backend="auto"
):
    """Quotient vs reference vs vectorized: bitwise-identical *lifted*
    trajectories on a random declared-group network from an orbit-constant
    initial state, step by step."""
    rng = np.random.default_rng(case_seed)
    states, programs = random_deterministic_programs(rng, int(rng.integers(2, 5)))
    net = symmetric_network(rng, scale)
    init = orbit_constant_init(rng, net, states)

    quo = QuotientSynchronousEngine(net, programs, init, backend=backend)
    ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(programs), init.copy())
    vec = VectorizedSynchronousEngine(net.copy(), programs, init, backend=backend)
    for step in range(steps):
        quo.step()
        ref.step()
        vec.step()
        assert quo.state == ref.state, f"quotient diverged at step {step}"
        assert vec.state == ref.state, f"vectorized diverged at step {step}"


def assert_quotient_probabilistic_conformance(
    case_seed, scale=1, steps=8, backend="auto"
):
    """The probabilistic quotient convention, cross-checked bitwise: the
    quotient engine draws one value per orbit per step; the full-graph
    engines consume the *same base stream* through ``OrbitBroadcastRng``
    (one ``size=k`` vector per step, broadcast to nodes via orbit index) —
    so all three lifted trajectories must agree exactly."""
    rng = np.random.default_rng(case_seed)
    randomness = int(rng.integers(2, 4))
    states, programs = random_probabilistic_programs(
        rng, int(rng.integers(2, 4)), randomness
    )
    net = symmetric_network(rng, scale)
    init = orbit_constant_init(rng, net, states)
    seed = int(rng.integers(2**32))

    automaton = ProbabilisticFSSGA(set(states), randomness, programs)
    quo = QuotientSynchronousEngine(
        net, programs, init, randomness=randomness,
        rng=np.random.default_rng(seed), backend=backend,
    )
    ref = SynchronousSimulator(
        net.copy(), automaton, init.copy(),
        rng=OrbitBroadcastRng(net, np.random.default_rng(seed)),
    )
    vec = VectorizedSynchronousEngine(
        net.copy(), programs, init, randomness=randomness,
        rng=OrbitBroadcastRng(net, np.random.default_rng(seed)), backend=backend,
    )
    for step in range(steps):
        quo.step()
        ref.step()
        vec.step()
        assert quo.state == ref.state, f"quotient diverged at step {step}"
        assert vec.state == ref.state, f"vectorized diverged at step {step}"


# ----------------------------------------------------------------------
# default suite: small random cases
# ----------------------------------------------------------------------
class TestDeterministicConformance:
    @pytest.mark.parametrize("case", range(10))
    def test_random_automaton_trajectories(self, case):
        assert_deterministic_conformance(1000 + case)


class TestProbabilisticConformance:
    @pytest.mark.parametrize("case", range(10))
    def test_random_automaton_trajectories_shared_seed(self, case):
        assert_probabilistic_conformance(2000 + case)


class TestFaultedConformance:
    """Faulted trajectories execute identically on all three engines."""

    @pytest.mark.parametrize("case", range(10))
    def test_deterministic_faulted(self, case):
        assert_faulted_conformance(3000 + case)

    @pytest.mark.parametrize("case", range(10))
    def test_probabilistic_faulted(self, case):
        assert_faulted_probabilistic_conformance(4000 + case)


class TestChurnConformance:
    """Mixed down/up schedules (the topology-dynamics generalization)
    execute identically on all three engines — the acceptance criterion of
    the churn tentpole: no reference fallback, bitwise-equal trajectories
    through deletions, resurrections, restorations and fresh arrivals."""

    @pytest.mark.parametrize("case", range(10))
    def test_deterministic_churn(self, case):
        assert_churn_conformance(15000 + case)

    @pytest.mark.parametrize("case", range(10))
    def test_probabilistic_churn(self, case):
        assert_churn_probabilistic_conformance(16000 + case)

    def test_arrival_boots_and_attaches_on_every_engine(self):
        """An explicit hand-built schedule (not reliant on random picks):
        a node dies, a fresh node arrives and attaches to the epidemic,
        the dead node resurrects with a trimmed neighbourhood, and a
        severed edge comes back."""
        from repro.core.modthresh import ModThreshProgram, at_least

        programs = {
            "s": ModThreshProgram(clauses=((at_least("i", 1), "i"),), default="s"),
            "i": ModThreshProgram(clauses=(), default="i"),
        }
        net = generators.cycle_graph(6)
        init = NetworkState.uniform(net, "s")
        init[0] = "i"
        events = [
            TopologyEvent(1, "node-down", 3),
            TopologyEvent(2, "edge-down", (4, 5)),
            TopologyEvent(3, "node-up", "x", state="s", edges=(0, 4)),
            TopologyEvent(4, "node-up", 3, state="s", edges=(2,)),
            TopologyEvent(5, "edge-up", (4, 5)),
        ]
        ref = SynchronousSimulator(
            net.copy(), FSSGA.from_programs(programs), init.copy(),
            fault_plan=ChurnPlan(list(events)),
        )
        vec = VectorizedSynchronousEngine(
            net.copy(), programs, init, fault_plan=ChurnPlan(list(events))
        )
        bat = BatchedSynchronousEngine(
            net.copy(), programs, init, replicas=2,
            fault_plan=ChurnPlan(list(events)),
        )
        for step in range(10):
            ref.step()
            vec.step()
            bat.step()
            assert vec.state == ref.state, f"vectorized diverged at step {step}"
            assert bat.replica_state(0) == ref.state
            assert bat.replica_state(1) == ref.state
        # the arrival caught the infection through its edge to node 0,
        # and the resurrected node through its single kept edge to node 2
        assert ref.state["x"] == "i" and ref.state[3] == "i"


class TestQuotientConformance:
    """Orbit-representative simulation lifts back to the exact full-graph
    trajectory on every declared-group family (acceptance criterion of the
    symmetry-quotient tentpole)."""

    @pytest.mark.parametrize("case", range(10))
    def test_deterministic_lifted_trajectories(self, case):
        assert_quotient_deterministic_conformance(9000 + case)

    @pytest.mark.parametrize("case", range(10))
    def test_probabilistic_shared_orbit_draws(self, case):
        assert_quotient_probabilistic_conformance(9500 + case)

    def test_named_families_deterministic(self):
        """One explicit pass per family (not reliant on random picks)."""
        from repro.algorithms import two_coloring as tc

        programs = tc.sticky_programs()
        cases = [
            (generators.cycle_graph(9), sym.cyclic_rotation(9)),
            (generators.cycle_graph(8), sym.cyclic_rotation(8, shift=2)),
            (generators.complete_graph(7), sym.full_symmetric(range(7))),
            (generators.torus_graph(3, 5), sym.torus_translations(3, 5)),
            (generators.circulant_graph(10, (1, 3)), sym.cyclic_rotation(10)),
            (generators.grid_graph(3, 4), sym.grid_reflections(3, 4)),
        ]
        for net, group in cases:
            net.declare_symmetry(group)
            init = NetworkState.uniform(net, tc.BLANK)
            quo = QuotientSynchronousEngine(net, programs, init)
            vec = VectorizedSynchronousEngine(net.copy(), programs, init)
            for step in range(6):
                quo.step()
                vec.step()
                assert quo.state == vec.state, (
                    f"{group.name}: diverged at step {step}"
                )

    def test_quotient_counters_reflect_orbit_work(self):
        """``node_updates``/``rng_draws`` count representatives (the work
        actually done); ``node_updates_lifted`` matches the full-graph
        engine's ``node_updates`` exactly."""
        rng = np.random.default_rng(9900)
        randomness = 2
        states, programs = random_probabilistic_programs(rng, 3, randomness)
        net = generators.torus_graph(4, 4)
        net.declare_symmetry(sym.torus_translations(4, 4))
        init = orbit_constant_init(rng, net, states)
        seed = 20060730

        met_quo, met_vec = MetricsRegistry(), MetricsRegistry()
        quo = QuotientSynchronousEngine(
            net, programs, init, randomness=randomness,
            rng=np.random.default_rng(seed), metrics=met_quo,
        )
        vec = VectorizedSynchronousEngine(
            net.copy(), programs, init, randomness=randomness,
            rng=OrbitBroadcastRng(net, np.random.default_rng(seed)),
            metrics=met_vec,
        )
        steps = 8
        for _ in range(steps):
            quo.step()
            vec.step()
        assert quo.state == vec.state
        k, n = quo.orbit_count, net.num_nodes
        assert k == 1 and n == 16  # torus translations are transitive
        assert met_quo.get("steps") == met_vec.get("steps") == steps
        assert met_quo.get("rng_draws") == steps * k
        assert met_vec.get("rng_draws") == steps * n
        assert met_quo.get("node_updates_lifted") == met_vec.get("node_updates")
        assert met_quo.get("node_updates") * n == (
            met_quo.get("node_updates_lifted") * k
        )


class TestCounterConformance:
    """Theorem 3.7 extended to the instrumentation: the telemetry counters
    (steps, node updates, RNG draws, fault/churn events) agree exactly
    across reference/vectorized/batched on shared-seed trajectories.
    ``fault_events`` keeps its historical deletions-only meaning;
    ``churn_events`` counts every applied topology event."""

    COUNTERS = (
        "steps", "node_updates", "rng_draws", "fault_events", "churn_events"
    )

    def _counters_for_case(self, case_seed, steps=8, churn=False):
        rng = np.random.default_rng(case_seed)
        randomness = int(rng.integers(2, 4))
        states, programs = random_probabilistic_programs(
            rng, int(rng.integers(2, 4)), randomness
        )
        net = random_network(rng)
        init = random_init(rng, net, states)
        events = (
            random_churn_events(rng, net, steps, states)
            if churn
            else random_fault_events(rng, net, steps)
        )
        seed = int(rng.integers(2**32))

        automaton = ProbabilisticFSSGA(set(states), randomness, programs)
        met_ref, met_vec, met_bat = (MetricsRegistry() for _ in range(3))
        ref = SynchronousSimulator(
            net.copy(), automaton, init.copy(),
            rng=np.random.default_rng(seed),
            fault_plan=ChurnPlan(list(events)), metrics=met_ref,
        )
        vec = VectorizedSynchronousEngine(
            net.copy(), programs, init, randomness=randomness,
            rng=np.random.default_rng(seed),
            fault_plan=ChurnPlan(list(events)), metrics=met_vec,
        )
        bat = BatchedSynchronousEngine(
            net.copy(), programs, init, replicas=1, randomness=randomness,
            rng=[np.random.default_rng(seed)],
            fault_plan=ChurnPlan(list(events)), metrics=met_bat,
        )
        for _ in range(steps):
            ref.step()
            vec.step()
            bat.step()
        return met_ref, met_vec, met_bat

    @pytest.mark.parametrize("case", range(6))
    def test_probabilistic_faulted_counters_agree(self, case):
        met_ref, met_vec, met_bat = self._counters_for_case(7000 + case)
        for name in self.COUNTERS:
            assert met_vec.get(name) == met_ref.get(name), name
            assert met_bat.get(name) == met_ref.get(name), name
        assert met_ref.get("rng_draws") > 0
        # deletion-only schedules: the two event counters coincide
        assert met_ref.get("churn_events") == met_ref.get("fault_events")

    @pytest.mark.parametrize("case", range(4))
    def test_churn_counters_agree(self, case):
        """Mixed schedules: ``churn_events`` counts every applied event,
        ``fault_events`` only the deletions — identically on all engines."""
        met_ref, met_vec, met_bat = self._counters_for_case(
            7700 + case, churn=True
        )
        for name in self.COUNTERS:
            assert met_vec.get(name) == met_ref.get(name), name
            assert met_bat.get(name) == met_ref.get(name), name
        assert met_ref.get("churn_events") >= met_ref.get("fault_events")
        assert met_ref.get("churn_events") > 0

    @pytest.mark.parametrize("case", range(4))
    def test_deterministic_counters_agree(self, case):
        rng = np.random.default_rng(7500 + case)
        states, programs = random_deterministic_programs(
            rng, int(rng.integers(2, 5))
        )
        net = random_network(rng)
        init = random_init(rng, net, states)
        met_ref, met_vec, met_bat = (MetricsRegistry() for _ in range(3))
        ref = SynchronousSimulator(
            net.copy(), FSSGA.from_programs(programs), init.copy(),
            metrics=met_ref,
        )
        vec = VectorizedSynchronousEngine(net, programs, init, metrics=met_vec)
        bat = BatchedSynchronousEngine(
            net, programs, init, replicas=1, metrics=met_bat
        )
        for _ in range(6):
            ref.step()
            vec.step()
            bat.step()
        for name in self.COUNTERS:
            assert met_vec.get(name) == met_ref.get(name), name
            assert met_bat.get(name) == met_ref.get(name), name
        assert met_ref.get("rng_draws") == 0  # deterministic: no draws
        # batched quiescence-mask density was recorded per step
        assert met_bat.series["active_fraction"] == [1.0] * 6


class TestRuleBasedConformance:
    """Rule-based automata with ``compile_hints`` lower through the Lemma
    3.9 compiler; the vector engines run the compiled IR against the
    reference interpreter executing the *raw Python rule* — a differential
    check of the compiler itself, not just of the engines."""

    def test_two_coloring_rule_based(self):
        from repro.algorithms import two_coloring as tc

        net = generators.cycle_graph(11)  # odd cycle: FAILED must flood
        automaton, init = tc.build(net, 0)
        assert automaton.is_rule_based
        ref = SynchronousSimulator(net.copy(), automaton, init.copy())
        vec = VectorizedSynchronousEngine(net, automaton, init)
        bat = BatchedSynchronousEngine(net, automaton, init, replicas=2)
        for step in range(14):
            ref.step()
            vec.step()
            bat.step()
            assert vec.state == ref.state, f"vectorized diverged at step {step}"
            assert bat.replica_state(0) == ref.state
            assert bat.replica_state(1) == ref.state

    def test_random_walk_rule_based_shared_seed(self):
        from repro.algorithms import random_walk as rw

        net = generators.cycle_graph(8)
        automaton, init = rw.build(net, 0)
        assert automaton.is_rule_based
        seed = 424242
        ref = SynchronousSimulator(
            net.copy(), automaton, init.copy(), rng=np.random.default_rng(seed)
        )
        vec = VectorizedSynchronousEngine(
            net, automaton, init, rng=np.random.default_rng(seed)
        )
        bat = BatchedSynchronousEngine(
            net, automaton, init, replicas=1,
            rng=[np.random.default_rng(seed)],
        )
        for step in range(40):
            ref.step()
            vec.step()
            bat.step()
            assert vec.state == ref.state, f"vectorized diverged at step {step}"
            assert bat.replica_state(0) == ref.state

    def test_rule_based_faulted(self):
        from repro.algorithms import two_coloring as tc

        net = generators.grid_graph(4, 4)  # nodes are ints r*4+c
        automaton, init = tc.build(net, 0)
        events = [
            FaultEvent(2, "node", 5),
            FaultEvent(4, "edge", (10, 11)),
        ]
        ref = SynchronousSimulator(
            net.copy(), automaton, init.copy(), fault_plan=FaultPlan(events)
        )
        vec = VectorizedSynchronousEngine(
            net.copy(), automaton, init, fault_plan=FaultPlan(events)
        )
        bat = BatchedSynchronousEngine(
            net.copy(), automaton, init, replicas=2,
            fault_plan=FaultPlan(events),
        )
        for step in range(10):
            ref.step()
            vec.step()
            bat.step()
            assert vec.state == ref.state, f"vectorized diverged at step {step}"
            assert bat.replica_state(0) == ref.state
            assert bat.replica_state(1) == ref.state


class TestKnownAutomata:
    """The harness applied to the repo's own mod-thresh workloads."""

    def test_two_coloring(self):
        from repro.algorithms import two_coloring as tc

        net = generators.cycle_graph(10)
        programs = tc.sticky_programs()
        init = NetworkState.from_function(
            net, lambda v: tc.RED if v == 0 else tc.BLANK
        )
        ref = SynchronousSimulator(
            net.copy(), FSSGA.from_programs(programs), init.copy()
        )
        vec = VectorizedSynchronousEngine(net, programs, init)
        bat = BatchedSynchronousEngine(net, programs, init, replicas=2)
        for _ in range(12):
            ref.step()
            vec.step()
            bat.step()
            assert vec.state == ref.state
            assert bat.replica_state(0) == ref.state
            assert bat.replica_state(1) == ref.state

    def test_election_coin_kernel(self):
        from repro.algorithms import election

        net = generators.complete_graph(9)
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)
        seed = 77
        automaton = ProbabilisticFSSGA(
            {election.K_REMAIN0, election.K_REMAIN1, election.K_OUT}, 2, programs
        )
        ref = SynchronousSimulator(
            net.copy(), automaton, init.copy(), rng=np.random.default_rng(seed)
        )
        vec = VectorizedSynchronousEngine(
            net, programs, init, randomness=2, rng=np.random.default_rng(seed)
        )
        bat = BatchedSynchronousEngine(
            net, programs, init, replicas=1, randomness=2,
            rng=[np.random.default_rng(seed)],
        )
        for _ in range(15):
            ref.step()
            vec.step()
            bat.step()
            assert vec.state == ref.state
            assert bat.replica_state(0) == ref.state


class TestBackendConformance:
    """The same harness swept across the array-backend axis.

    Every backend must be bitwise-identical to the reference interpreter
    (and hence to every other backend): counts are exact integers and the
    RNG draw stream is consumed identically, so there is no tolerance —
    equality is exact.  ``kernel-python`` exercises the numba bytecode
    lowering without requiring numba; ``numba`` itself joins the axis
    when installed.
    """

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(3))
    def test_deterministic(self, backend, case):
        assert_deterministic_conformance(
            13000 + case, backend=make_backend(backend)
        )

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(3))
    def test_probabilistic(self, backend, case):
        assert_probabilistic_conformance(
            13100 + case, backend=make_backend(backend)
        )

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(2))
    def test_faulted(self, backend, case):
        assert_faulted_conformance(13200 + case, backend=make_backend(backend))

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(2))
    def test_faulted_probabilistic(self, backend, case):
        assert_faulted_probabilistic_conformance(
            13300 + case, backend=make_backend(backend)
        )

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(2))
    def test_churn(self, backend, case):
        assert_churn_conformance(13600 + case, backend=make_backend(backend))

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(2))
    def test_churn_probabilistic(self, backend, case):
        assert_churn_probabilistic_conformance(
            13700 + case, backend=make_backend(backend)
        )

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(2))
    def test_quotient_deterministic(self, backend, case):
        assert_quotient_deterministic_conformance(
            13400 + case, backend=make_backend(backend)
        )

    @pytest.mark.parametrize("backend", BACKEND_AXIS)
    @pytest.mark.parametrize("case", range(2))
    def test_quotient_probabilistic(self, backend, case):
        assert_quotient_probabilistic_conformance(
            13500 + case, backend=make_backend(backend)
        )

    def test_backend_name_pass_through(self):
        """Engines accept both a name and a prebuilt backend instance."""
        rng = np.random.default_rng(0)
        states, programs = random_deterministic_programs(rng, 3)
        net = random_network(rng, 1)
        init = random_init(rng, net, states)
        by_name = VectorizedSynchronousEngine(net, programs, init,
                                              backend="array-api")
        by_obj = VectorizedSynchronousEngine(net, programs, init,
                                             backend=make_backend("array-api"))
        assert by_name.backend.name == by_obj.backend.name == "array-api"


# ----------------------------------------------------------------------
# opt-in wide sweep (pytest -m slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestConformanceSweep:
    @pytest.mark.parametrize("case", range(40))
    def test_deterministic_wide(self, case):
        assert_deterministic_conformance(5000 + case, scale=4, steps=10, replicas=4)

    @pytest.mark.parametrize("case", range(40))
    def test_probabilistic_wide(self, case):
        assert_probabilistic_conformance(6000 + case, scale=4, steps=12)

    @pytest.mark.parametrize("case", range(40))
    def test_faulted_wide(self, case):
        assert_faulted_conformance(7000 + case, scale=4, steps=12, replicas=4)

    @pytest.mark.parametrize("case", range(40))
    def test_faulted_probabilistic_wide(self, case):
        assert_faulted_probabilistic_conformance(8000 + case, scale=4, steps=12)

    @pytest.mark.parametrize("case", range(40))
    def test_churn_wide(self, case):
        assert_churn_conformance(15500 + case, scale=4, steps=12, replicas=4)

    @pytest.mark.parametrize("case", range(40))
    def test_churn_probabilistic_wide(self, case):
        assert_churn_probabilistic_conformance(16500 + case, scale=4, steps=12)

    @pytest.mark.parametrize("case", range(40))
    def test_quotient_deterministic_wide(self, case):
        assert_quotient_deterministic_conformance(9000 + case, scale=4, steps=10)

    @pytest.mark.parametrize("case", range(40))
    def test_quotient_probabilistic_wide(self, case):
        assert_quotient_probabilistic_conformance(9500 + case, scale=4, steps=12)
