"""Tests for repro.runtime.dynamics (orbit analysis)."""

import pytest

from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.network import NetworkState, generators
from repro.runtime.dynamics import Orbit, find_orbit


def epidemic():
    return FSSGA(
        {0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0
    )


class TestFindOrbit:
    def test_epidemic_reaches_fixed_point(self):
        net = generators.path_graph(6)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        orbit = find_orbit(net, epidemic(), init)
        assert orbit.reaches_fixed_point
        assert orbit.transient == 5  # one layer per step

    def test_verbatim_two_coloring_has_period_two(self):
        """The documented oscillation, as a measured orbit."""
        net = generators.path_graph(5)
        aut, init = tc.build(net, 0, sticky=False)
        orbit = find_orbit(net, aut, init)
        assert orbit.period == 2

    def test_sticky_two_coloring_fixed_point(self):
        net = generators.cycle_graph(8)
        aut, init = tc.build(net, 0, sticky=True)
        orbit = find_orbit(net, aut, init)
        assert orbit.reaches_fixed_point
        assert orbit.transient <= net.diameter() + 1

    def test_odd_cycle_verbatim_oscillates_forever(self):
        net = generators.cycle_graph(3)
        aut, init = tc.build(net, 0, sticky=False)
        orbit = find_orbit(net, aut, init)
        assert orbit.period == 2  # all-RED <-> all-BLUE

    def test_pure_rotation_period(self):
        """A 3-state rotor on a single edge cycles with period 3."""
        rot = {0: 1, 1: 2, 2: 0}
        aut = FSSGA({0, 1, 2}, lambda own, view: rot[own])
        net = generators.path_graph(2)
        init = NetworkState({0: 0, 1: 0})
        orbit = find_orbit(net, aut, init)
        assert orbit == Orbit(transient=0, period=3)

    def test_probabilistic_rejected(self):
        aut = ProbabilisticFSSGA({0, 1}, 2, lambda own, view, i: i)
        net = generators.path_graph(2)
        with pytest.raises(TypeError):
            find_orbit(net, aut, NetworkState.uniform(net, 0))

    def test_budget_exhaustion(self):
        net = generators.path_graph(12)
        init = NetworkState.uniform(net, 0)
        init[0] = 1
        with pytest.raises(RuntimeError):
            find_orbit(net, epidemic(), init, max_steps=3)
