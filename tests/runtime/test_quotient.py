"""Unit tests for the symmetry-quotient engine and its run() integration.

Conformance against the full-graph engines lives in
``test_engine_conformance.py`` (the quotient axis); this file covers the
engine's own contract — lifted views, telemetry counters, the shared
per-orbit draw convention, precondition errors with structured blockers —
and the shared-instance reuse discipline: a network mutated *between*
runs (including by a faulted full-graph run) must not let a stale orbit
partition or stale group declaration leak into the next quotient run,
mirroring the CSR-cache reuse tests.
"""

import numpy as np
import pytest

from repro.core.ir import QuotientLoweringError
from repro.core.modthresh import ModThreshProgram, at_least
from repro.network import NetworkState, generators
from repro.network.symmetry import (
    cyclic_rotation,
    full_symmetric,
    torus_translations,
)
from repro.runtime import run
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.quotient import OrbitBroadcastRng, QuotientSynchronousEngine
from repro.runtime.telemetry import MetricsRegistry
from repro.runtime.vectorized import VectorizedSynchronousEngine


def _spread_programs():
    """BLANK turns ON next to an ON node; ON holds — a monotone flood."""
    return {
        "blank": ModThreshProgram(
            clauses=[(at_least("on", 1), "on")], default="blank"
        ),
        "on": ModThreshProgram(clauses=(), default="on"),
    }


def _declared_cycle(n=12, shift=1):
    net = generators.cycle_graph(n)
    net.declare_symmetry(cyclic_rotation(n, shift=shift))
    return net


class TestEngineContract:
    def test_simulates_one_representative_per_orbit(self):
        net = _declared_cycle(12)
        eng = QuotientSynchronousEngine(
            net, _spread_programs(), NetworkState.uniform(net, "blank")
        )
        assert eng.orbit_count == 1
        assert eng.orbit_sizes == (12,)
        assert eng.num_nodes == 12

    def test_subgroup_yields_multiple_orbits(self):
        net = _declared_cycle(12, shift=2)  # evens and odds
        eng = QuotientSynchronousEngine(
            net, _spread_programs(), NetworkState.uniform(net, "blank")
        )
        assert eng.orbit_count == 2
        assert sorted(eng.orbit_sizes) == [6, 6]

    def test_lifted_state_and_counts(self):
        net = _declared_cycle(12, shift=2)
        init = NetworkState.from_function(
            net, lambda v: "on" if v % 2 == 0 else "blank"
        )
        eng = QuotientSynchronousEngine(net, _spread_programs(), init)
        assert eng.state == init  # lift of the initial quotient state
        assert eng.state_counts() == {"blank": 6, "on": 6}
        eng.step()  # odds neighbour evens: everything turns on
        assert eng.state_counts() == {"blank": 0, "on": 12}
        assert set(eng.state.values()) == {"on"}
        assert len(eng.representative_state) == 2

    def test_quotient_matrix_counts_orbit_multiplicities(self):
        net = _declared_cycle(12, shift=2)
        eng = QuotientSynchronousEngine(
            net, _spread_programs(), NetworkState.uniform(net, "blank")
        )
        # each even node has two odd neighbours and vice versa
        dense = eng.quotient.toarray()
        assert dense.tolist() == [[0, 2], [2, 0]]

    def test_run_until_stable(self):
        net = _declared_cycle(9)
        init = NetworkState.uniform(net, "on")
        eng = QuotientSynchronousEngine(net, _spread_programs(), init)
        assert eng.run_until_stable() == 1  # born stable

    def test_metrics_count_quotient_side_work(self):
        net = generators.torus_graph(4, 6)
        net.declare_symmetry(torus_translations(4, 6))
        programs = {
            "a": ModThreshProgram(clauses=(), default="b"),
            "b": ModThreshProgram(clauses=(), default="a"),
        }
        met = MetricsRegistry()
        eng = QuotientSynchronousEngine(
            net, programs, NetworkState.uniform(net, "a"), metrics=met
        )
        eng.run(5)
        assert met.get("steps") == 5
        assert met.get("node_updates") == 5  # one rep, flips every step
        assert met.get("node_updates_lifted") == 5 * 24
        assert met.get("rng_draws") == 0  # deterministic


class TestPreconditionErrors:
    def test_missing_group(self):
        net = generators.cycle_graph(6)
        with pytest.raises(QuotientLoweringError) as exc:
            QuotientSynchronousEngine(
                net, _spread_programs(), NetworkState.uniform(net, "blank")
            )
        assert exc.value.blocker == "no-group"

    def test_non_orbit_constant_init_names_node(self):
        net = _declared_cycle(6)
        init = NetworkState.from_function(
            net, lambda v: "on" if v == 3 else "blank"
        )
        with pytest.raises(QuotientLoweringError, match="node 3") as exc:
            QuotientSynchronousEngine(net, _spread_programs(), init)
        assert exc.value.blocker == "init-not-orbit-constant"

    def test_fault_plan_rejected(self):
        net = _declared_cycle(6)
        with pytest.raises(QuotientLoweringError, match="break symmetry") as exc:
            QuotientSynchronousEngine(
                net, _spread_programs(), NetworkState.uniform(net, "blank"),
                fault_plan=FaultPlan([FaultEvent(1, "node", 2)]),
            )
        assert exc.value.blocker == "fault-plan"

    def test_stale_group_after_manual_mutation(self):
        net = _declared_cycle(6)
        net.remove_edge(2, 3)
        with pytest.raises(QuotientLoweringError, match="stale") as exc:
            QuotientSynchronousEngine(
                net, _spread_programs(), NetworkState.uniform(net, "blank")
            )
        assert exc.value.blocker == "stale-group"


class TestOrbitBroadcastRng:
    def test_vector_mode_matches_scalar_mode(self):
        net = _declared_cycle(10, shift=2)
        seed = 99
        vec_rng = OrbitBroadcastRng(net, np.random.default_rng(seed))
        sca_rng = OrbitBroadcastRng(net, np.random.default_rng(seed))
        for _ in range(4):  # four "steps"
            vector = vec_rng.integers(5, size=10)
            scalars = [sca_rng.integers(5) for _ in range(10)]
            assert vector.tolist() == scalars

    def test_nodes_share_their_orbit_draw(self):
        net = _declared_cycle(10, shift=2)
        part = net.orbit_partition()
        draws = OrbitBroadcastRng(net, 1).integers(1000, size=10)
        order = net.nodes()
        by_orbit = {}
        for i, v in enumerate(order):
            by_orbit.setdefault(part.orbit_of[v], set()).add(int(draws[i]))
        assert all(len(s) == 1 for s in by_orbit.values())

    def test_base_stream_positions_match_quotient_engine(self):
        """The adapter consumes exactly one size=k vector per step from the
        base stream — the same positions the quotient engine reads."""
        net = _declared_cycle(10, shift=2)
        adapter = OrbitBroadcastRng(net, np.random.default_rng(7))
        direct = np.random.default_rng(7)
        for _ in range(3):
            adapter.integers(4, size=10)
            direct.integers(4, size=2)  # k = 2
        # both streams are now at the same position
        assert adapter.base.integers(1 << 30) == direct.integers(1 << 30)

    def test_wrong_size_rejected(self):
        net = _declared_cycle(10)
        with pytest.raises(ValueError, match="size"):
            OrbitBroadcastRng(net, 0).integers(4, size=7)


# ----------------------------------------------------------------------
# shared-instance reuse: mutations between runs (mirrors the CSR-cache
# reuse tests in test_telemetry.py / test_graph.py)
# ----------------------------------------------------------------------
class TestNetworkReuseAcrossRuns:
    def test_faulted_run_then_quotient_refuses_stale_group(self):
        """A faulted full-graph run mutates the shared network; the next
        explicit quotient run must detect the now-stale declaration rather
        than silently simulating the wrong topology."""
        net = _declared_cycle(8)
        init = NetworkState.uniform(net, "blank")
        res = run(
            _spread_programs(), net, init, until=3,
            fault_plan=FaultPlan([FaultEvent(1, "node", 5)]),
        )
        assert res.engine == "vectorized"
        assert 5 not in net  # the fault really mutated the instance
        init2 = NetworkState({v: "blank" for v in net})
        with pytest.raises(QuotientLoweringError) as exc:
            run(_spread_programs(), net, init2, until=3, engine="quotient")
        assert exc.value.blocker == "stale-group"
        # and auto falls back instead of failing
        assert (
            run(_spread_programs(), net, init2, until=3).engine == "vectorized"
        )

    def test_mutation_between_runs_invalidates_orbit_cache(self):
        net = _declared_cycle(8)
        init = NetworkState.uniform(net, "blank")
        rebuilds0 = net.orbit_rebuilds
        run(_spread_programs(), net, init, until=2)
        assert net.orbit_rebuilds == rebuilds0 + 1
        run(_spread_programs(), net, init, until=2)
        assert net.orbit_rebuilds == rebuilds0 + 1  # cache hit, no rebuild

        net.remove_edge(0, 1)  # invalidates orbit + CSR caches together
        net.add_edge(0, 1)     # restore the cycle: group is valid again
        res = run(_spread_programs(), net, init, until=2)
        assert res.engine == "quotient"
        assert net.orbit_rebuilds == rebuilds0 + 2

    def test_quotient_and_full_runs_interleave_on_shared_instance(self):
        """Alternating quotient and vectorized runs on one instance agree
        bitwise and never see each other's cached artifacts."""
        net = _declared_cycle(10)
        init = NetworkState.from_function(net, lambda v: "blank")
        seed_state = NetworkState({v: "blank" for v in net})
        q1 = run(_spread_programs(), net, seed_state, until=4)
        v1 = run(
            _spread_programs(), net, seed_state, until=4, engine="vectorized"
        )
        q2 = run(_spread_programs(), net, init, until=4, engine="quotient")
        assert q1.engine == "quotient" and q2.engine == "quotient"
        assert q1.final_state == v1.final_state == q2.final_state


class TestKnownKernels:
    def test_probabilistic_election_shared_draws_on_complete_graph(self):
        """Explicit probabilistic quotient vs vectorized-with-adapter on
        K_9 running the coin kernel: bitwise-equal lifted trajectories (and
        the demonstration that shared draws can never elect a leader)."""
        from repro.algorithms import election

        net = generators.complete_graph(9)
        net.declare_symmetry(full_symmetric(range(9)))
        programs = election.coin_kernel_programs()
        init = election.coin_kernel_init(net)
        seed = 20060730

        quo = QuotientSynchronousEngine(
            net, programs, init, randomness=2,
            rng=np.random.default_rng(seed),
        )
        vec = VectorizedSynchronousEngine(
            net.copy(), programs, init, randomness=2,
            rng=OrbitBroadcastRng(net, np.random.default_rng(seed)),
        )
        for step in range(12):
            quo.step()
            vec.step()
            assert quo.state == vec.state, f"diverged at step {step}"
            # symmetric draws keep all nodes in lockstep forever
            assert len(set(quo.state.values())) == 1
