"""Smoke tests for the ``python -m repro`` demo runner."""

import subprocess
import sys

import pytest


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize(
    "args,needle",
    [
        (["two-coloring", "8"], "2-coloured"),
        (["two-coloring", "7"], "FAILED"),
        (["census", "32"], "estimate"),
        (["walk", "10"], "rounds/move"),
        (["traversal", "8"], "hand moves"),
        (["election", "6"], "leader"),
        (["firing-squad", "6"], "F" * 6),
        (["equivalence"], "all three agree"),
    ],
)
def test_demo_output(args, needle):
    result = _run(*args)
    assert result.returncode == 0, result.stderr
    assert needle in result.stdout


def test_help():
    result = _run("--help")
    assert result.returncode == 0
    assert "two-coloring" in result.stdout


def test_unknown_demo():
    result = _run("frobnicate")
    assert result.returncode == 1


def test_seed_flag_reseeds_demo():
    a = _run("election", "6", "--seed", "4")
    b = _run("election", "6", "--seed=4")
    assert a.returncode == b.returncode == 0
    assert "leader" in a.stdout
    assert a.stdout == b.stdout  # both spellings hit the same RNG


def test_seed_flag_missing_value():
    result = _run("census", "--seed")
    assert result.returncode == 1
    assert "--seed" in result.stderr


# ----------------------------------------------------------------------
# campaign subcommand (in-process: fast, and exit codes stay observable)
# ----------------------------------------------------------------------
import json  # noqa: E402

from repro.__main__ import main  # noqa: E402
from repro.campaigns import CampaignSpec  # noqa: E402


def _spec_file(tmp_path, **overrides):
    base = dict(
        name="cli-test",
        job="repro.campaigns.testing.ok_job",
        grid={"value": [0, 1]},
        seeds=2,
        entropy=3,
        retries=0,
    )
    base.update(overrides)
    path = tmp_path / "spec.json"
    path.write_text(CampaignSpec(**base).to_json())
    return path


class TestCampaignCLI:
    def test_presets_listed(self, capsys):
        assert main(["campaign", "presets"]) == 0
        out = capsys.readouterr().out
        for name in ("smoke", "election-phases", "fault-sweep"):
            assert name in out

    def test_run_status_resume(self, tmp_path, capsys):
        spec = _spec_file(tmp_path)
        store = tmp_path / "store"
        assert main(
            ["campaign", "run", "--spec", str(spec), "--store", str(store),
             "--jobs", "0"]
        ) == 0
        assert (store / "summary.json").exists()
        capsys.readouterr()

        assert main(["campaign", "status", "--store", str(store)]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["ok"] == 4 and status["pending"] == 0

        assert main(
            ["campaign", "resume", "--store", str(store), "--jobs", "0"]
        ) == 0
        assert "4 already done" in capsys.readouterr().out

    def test_failed_jobs_exit_code_2(self, tmp_path, capsys):
        spec = _spec_file(
            tmp_path,
            job="repro.campaigns.testing.erroring_job",
            fixed={"fail_values": [1]},
            seeds=1,
        )
        code = main(
            ["campaign", "run", "--spec", str(spec),
             "--store", str(tmp_path / "store"), "--jobs", "0", "--quiet"]
        )
        assert code == 2
        assert "failed after retries" in capsys.readouterr().err

    def test_usage_errors_exit_code_1(self, tmp_path, capsys):
        assert main(
            ["campaign", "run", "--preset", "nope",
             "--store", str(tmp_path / "s")]
        ) == 1
        assert main(
            ["campaign", "run", "--spec", str(tmp_path / "missing.json"),
             "--store", str(tmp_path / "s")]
        ) == 1
        capsys.readouterr()

    def test_missing_store_exit_code_2(self, tmp_path, capsys):
        # resume/status against a store that does not exist: documented
        # code 2, one-line message, and — regression — no directory is
        # created as a side effect of just *looking*
        missing = tmp_path / "no-such-store"
        assert main(["campaign", "status", "--store", str(missing)]) == 2
        err = capsys.readouterr().err
        assert "no campaign at" in err and "\n" == err[-1]
        assert len(err.strip().splitlines()) == 1
        assert not missing.exists()
        assert main(["campaign", "resume", "--store", str(missing)]) == 2
        assert "no campaign at" in capsys.readouterr().err
        assert not missing.exists()

    def test_store_without_spec_exit_code_2(self, tmp_path, capsys):
        empty = tmp_path / "empty-store"
        empty.mkdir()
        assert main(["campaign", "status", "--store", str(empty)]) == 2
        assert "missing campaign.json" in capsys.readouterr().err
        assert main(["campaign", "resume", "--store", str(empty)]) == 2
        assert "missing campaign.json" in capsys.readouterr().err

    def test_tampered_spec_exit_code_2_not_traceback(self, tmp_path, capsys):
        # an identity-mismatched campaign.json (recorded spec_hash does not
        # recompute) used to escape as a ValueError traceback
        store = tmp_path / "store"
        assert main(
            ["campaign", "run", "--spec", str(_spec_file(tmp_path)),
             "--store", str(store), "--jobs", "0", "--quiet"]
        ) == 0
        capsys.readouterr()
        spec_file = store / "campaign.json"
        data = json.loads(spec_file.read_text())
        data["spec_hash"] = "0" * 64
        spec_file.write_text(json.dumps(data))
        for action in (["status"], ["resume"]):
            assert main(
                ["campaign", *action, "--store", str(store)]
            ) == 2
            err = capsys.readouterr().err
            assert "unusable campaign.json" in err
            assert "Traceback" not in err

    def test_mismatched_store_exit_code_2(self, tmp_path, capsys):
        store = tmp_path / "store"
        assert main(
            ["campaign", "run", "--spec", str(_spec_file(tmp_path)),
             "--store", str(store), "--jobs", "0", "--quiet"]
        ) == 0
        other = _spec_file(tmp_path, grid={"value": [5, 6, 7]})
        assert main(
            ["campaign", "run", "--spec", str(other), "--store", str(store),
             "--jobs", "0", "--quiet"]
        ) == 2
        assert "refusing" in capsys.readouterr().err

    def test_smoke_preset_with_workers(self, tmp_path, capsys):
        # the CI smoke campaign: tiny grid, 2 workers, real process pool
        store = tmp_path / "store"
        assert main(
            ["campaign", "run", "--preset", "smoke", "--store", str(store),
             "--jobs", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "4 jobs" in out and "summary:" in out
        summary = json.loads((store / "summary.json").read_text())
        assert summary["jobs"]["ok"] == 4
