"""Smoke tests for the ``python -m repro`` demo runner."""

import subprocess
import sys

import pytest


def _run(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize(
    "args,needle",
    [
        (["two-coloring", "8"], "2-coloured"),
        (["two-coloring", "7"], "FAILED"),
        (["census", "32"], "estimate"),
        (["walk", "10"], "rounds/move"),
        (["traversal", "8"], "hand moves"),
        (["election", "6"], "leader"),
        (["firing-squad", "6"], "F" * 6),
        (["equivalence"], "all three agree"),
    ],
)
def test_demo_output(args, needle):
    result = _run(*args)
    assert result.returncode == 0, result.stderr
    assert needle in result.stdout


def test_help():
    result = _run("--help")
    assert result.returncode == 0
    assert "two-coloring" in result.stdout


def test_unknown_demo():
    result = _run("frobnicate")
    assert result.returncode == 1
