"""Cross-module integration tests: compositions the paper relies on."""


from repro.algorithms import bfs, census, shortest_paths, synchronizer as alpha
from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA
from repro.core.compile import compile_rule
from repro.core.convert import (
    modthresh_to_parallel,
    parallel_to_sequential,
    sequential_to_modthresh,
)
from repro.network import NetworkState, generators
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator
from repro.runtime.vectorized import VectorizedSynchronousEngine


class TestCompiledAutomatonRoundtrip:
    """Rule → compiled mod-thresh programs → all three engines agree."""

    def test_three_engines_agree(self):
        net = generators.grid_graph(3, 4)
        origin = 0
        # engine 1: rule-based reference
        aut_rule, init = tc.build(net, origin)
        sim_rule = SynchronousSimulator(net.copy(), aut_rule, init.copy())
        sim_rule.run_until_stable()

        # engine 2: compiled programs through the reference interpreter
        compiled = {
            q: compile_rule(tc.sticky_rule, sorted(tc.ALPHABET), q, max_threshold=1)
            for q in tc.ALPHABET
        }
        sim_prog = SynchronousSimulator(
            net.copy(), FSSGA.from_programs(compiled), init.copy()
        )
        sim_prog.run_until_stable()

        # engine 3: compiled programs through the vectorized engine
        vec = VectorizedSynchronousEngine(net.copy(), compiled, init.copy())
        vec.run_until_stable()

        assert dict(sim_rule.state.items()) == dict(sim_prog.state.items())
        assert dict(sim_rule.state.items()) == dict(vec.state.items())

    def test_conversion_chain_through_simulator(self):
        """Compile a rule, convert through the Theorem 3.7 cycle, and run
        the converted programs on a network."""
        compiled = compile_rule(
            tc.sticky_rule, sorted(tc.ALPHABET), tc.BLANK, max_threshold=1
        )
        par = modthresh_to_parallel(compiled, sorted(tc.ALPHABET))
        seq = parallel_to_sequential(par)
        back = sequential_to_modthresh(seq, sorted(tc.ALPHABET))
        from repro.core.multiset import iter_multisets

        for ms in iter_multisets(sorted(tc.ALPHABET), 3):
            assert back.evaluate(ms) == compiled.evaluate(ms)


class TestSynchronizedBFS:
    """Section 4.3: 'by using the result of Section 4.2 this can be
    transformed into an asynchronous algorithm'."""

    def test_async_bfs_finds_target(self):
        net = generators.grid_graph(3, 4)
        inner, init = bfs.build(net, 0, targets=[11])
        comp = alpha.wrap(inner)
        asim = AsynchronousSimulator(net, comp, alpha.initial_state(init), rng=1)
        asim.run_fair_rounds(60)
        final = NetworkState({v: asim.state[v][0] for v in net})
        assert bfs.originator_status(final, 0) == bfs.FOUND
        assert bfs.labels_match_distance(net, final, 0)

    def test_async_bfs_fails_without_target(self):
        net = generators.cycle_graph(7)
        inner, init = bfs.build(net, 0, targets=[])
        comp = alpha.wrap(inner)
        asim = AsynchronousSimulator(net, comp, alpha.initial_state(init), rng=2)
        asim.run_fair_rounds(60)
        final = NetworkState({v: asim.state[v][0] for v in net})
        assert bfs.originator_status(final, 0) == bfs.FAILED


class TestCensusRouting:
    """The paper's sensor-network story: census sizes the network while
    shortest-path labels route packets to data sinks."""

    def test_pipeline(self):
        net = generators.connected_gnp_graph(30, 0.15, 11)
        # phase 1: census
        aut_c, init_c = census.build(net, rng=11)
        sim_c = SynchronousSimulator(net, aut_c, init_c, rng=11)
        sim_c.run_until_stable()
        est = census.estimate(sim_c.state[0])
        assert est > 0
        # phase 2: routing to sinks
        sinks = [0, 7]
        aut_s, init_s = shortest_paths.build(net, sinks)
        sim_s = SynchronousSimulator(net, aut_s, init_s)
        sim_s.run_until_stable()
        for start in (13, 21, 29):
            path = shortest_paths.route_packet(net, sim_s.state, start, rng=1)
            assert path[-1] in sinks
            dists = net.bfs_distances(sinks)
            assert len(path) - 1 == dists[start]


class TestFaultsAcrossAlgorithms:
    def test_census_and_labels_after_shared_fault(self):
        """Two 0-sensitive algorithms on the same faulted topology."""
        from repro.runtime.faults import FaultEvent, FaultPlan

        base = generators.grid_graph(4, 4)
        fault = FaultEvent(3, "edge", (5, 6))

        net1 = base.copy()
        aut, init = census.build(net1, k=8, rng=2)
        sketches = {v: init[v] for v in net1}
        sim1 = SynchronousSimulator(
            net1, aut, init, rng=2, fault_plan=FaultPlan([fault])
        )
        sim1.run(30)
        expected = [0] * 8
        for v in net1:
            for j, b in enumerate(sketches[v]):
                expected[j] |= b
        assert all(sim1.state[v] == tuple(expected) for v in net1)

        net2 = base.copy()
        aut2, init2 = shortest_paths.build(net2, [0])
        sim2 = SynchronousSimulator(
            net2, aut2, init2, fault_plan=FaultPlan([FaultEvent(3, "edge", (5, 6))])
        )
        sim2.run_until_stable(max_steps=200)
        assert shortest_paths.stabilized(net2, sim2.state, [0], net2.num_nodes)


class TestSynchronizedRandomWalk:
    """Section 4.4's walk, designed synchronous, run asynchronously via
    the probabilistic α synchronizer — exercising wrap_probabilistic on a
    real algorithm."""

    def test_walk_emerges_asynchronously(self):
        from repro.algorithms import random_walk as rw

        net = generators.cycle_graph(6)
        inner, init = rw.build(net, 0)
        comp = alpha.wrap_probabilistic(inner)
        asim = AsynchronousSimulator(
            net, comp, alpha.initial_state(init), rng=4
        )
        positions = [0]
        for _ in range(150):
            asim.run_fair_rounds(1)
            inner_state = NetworkState({v: asim.state[v][0] for v in net})
            pos = rw.walker_position(inner_state)
            if pos is not None and pos != positions[-1]:
                positions.append(pos)
        # the walker moved, along edges only, with exactly one walker in
        # every logical round
        assert len(positions) >= 3
        for a, b in zip(positions, positions[1:]):
            assert net.has_edge(a, b)


class TestFiringSquadOnPathNetwork:
    """The firing-squad CA runs on its own line substrate; cross-check
    the path length/geometry against the Network path generator."""

    def test_line_length_matches_path_graph(self):
        from repro.algorithms.firing_squad import FiringSquadLine

        net = generators.path_graph(9)
        line = FiringSquadLine(net.num_nodes)
        assert line.n == net.num_nodes
        for _ in range(100):
            line.step()
            if line.all_fired:
                break
        assert line.all_fired


class TestPublicAPI:
    def test_top_level_exports(self):
        import repro

        assert repro.__version__
        for name in (
            "FSSGA",
            "ProbabilisticFSSGA",
            "SequentialProgram",
            "ParallelProgram",
            "ModThreshProgram",
            "Network",
            "NetworkState",
            "SynchronousSimulator",
            "AsynchronousSimulator",
            "FaultPlan",
        ):
            assert hasattr(repro, name), name

    def test_quickstart_docstring_flow(self):
        """The module docstring's quickstart must actually run."""
        from repro import SynchronousSimulator as Sim
        from repro.algorithms import two_coloring
        from repro.network import generators as gen

        net = gen.cycle_graph(8)
        automaton, init = two_coloring.build(net, origin=0)
        sim = Sim(net, automaton, init)
        sim.run_until_stable()
        assert two_coloring.succeeded(net, sim.state)
