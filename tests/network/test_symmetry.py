"""Property-based tests for declared automorphism groups and orbits.

Hypothesis generates random group *words* (products of declared
generators), random relabelings, and deliberately corrupted generators,
checking the algebraic properties the quotient engine depends on:

* every element of the generated group — not just the declared
  generators — is a verified automorphism;
* the orbit partition is equivariant under relabeling the network
  (orbits are a structural invariant, not an artifact of node names or
  insertion order);
* a wrong generator is rejected by :func:`verify_automorphism` /
  :meth:`Network.declare_symmetry` with an error naming the precise
  violation (the offending edge, the non-injective image, the domain
  mismatch) — never a generic failure.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.network import Network, generators
from repro.network.symmetry import (
    AutomorphismGroup,
    SymmetryError,
    cyclic_rotation,
    detect_symmetry,
    full_symmetric,
    grid_reflections,
    orbit_partition,
    torus_translations,
    verify_automorphism,
)


# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------
@st.composite
def declared_network(draw):
    """A ``(net, group)`` pair from the declared-group families."""
    family = draw(st.sampled_from(
        ["cycle", "subgroup-cycle", "complete", "torus", "circulant", "grid"]
    ))
    if family == "cycle":
        n = draw(st.integers(3, 16))
        return generators.cycle_graph(n), cyclic_rotation(n)
    if family == "subgroup-cycle":
        n = 2 * draw(st.integers(2, 8))
        return generators.cycle_graph(n), cyclic_rotation(n, shift=2)
    if family == "complete":
        n = draw(st.integers(2, 10))
        return generators.complete_graph(n), full_symmetric(range(n))
    if family == "torus":
        r, c = draw(st.integers(3, 5)), draw(st.integers(3, 5))
        return generators.torus_graph(r, c), torus_translations(r, c)
    if family == "circulant":
        n = draw(st.integers(5, 16))
        offs = draw(
            st.sets(st.integers(1, n // 2), min_size=1, max_size=3)
        )
        return generators.circulant_graph(n, offs), cyclic_rotation(n)
    r, c = draw(st.integers(2, 5)), draw(st.integers(2, 5))
    return generators.grid_graph(r, c), grid_reflections(r, c)


def compose_word(group: AutomorphismGroup, nodes, word) -> dict:
    """The permutation that is the product of ``generators[i] for i in word``."""
    return {v: group.apply(word, v) for v in nodes}


# ----------------------------------------------------------------------
# properties
# ----------------------------------------------------------------------
class TestGeneratedElementsAreAutomorphisms:
    @settings(max_examples=40, deadline=None)
    @given(pair=declared_network(), data=st.data())
    def test_random_group_word_is_verified_automorphism(self, pair, data):
        net, group = pair
        word = data.draw(
            st.lists(
                st.integers(0, len(group.generators) - 1), min_size=0,
                max_size=6,
            )
        )
        perm = compose_word(group, net.nodes(), word)
        verify_automorphism(net, perm)  # must not raise

    @settings(max_examples=40, deadline=None)
    @given(pair=declared_network())
    def test_declared_generators_verify(self, pair):
        net, group = pair
        group.verify(net)  # must not raise
        net.declare_symmetry(group)
        assert net.symmetry is group


class TestOrbitPartitionInvariance:
    @settings(max_examples=40, deadline=None)
    @given(pair=declared_network(), data=st.data())
    def test_orbits_equivariant_under_relabeling(self, pair, data):
        """Relabeling nodes by φ maps each orbit to an orbit: the partition
        is a structural invariant, independent of names and insertion
        order."""
        net, group = pair
        nodes = net.nodes()
        n = len(nodes)
        perm_order = data.draw(st.permutations(range(n)))
        phi = {nodes[i]: f"n{perm_order[i]}" for i in range(n)}
        relabeled = Network(
            nodes=[phi[v] for v in nodes],
            edges=[(phi[u], phi[v]) for u, v in net.edges()],
        )
        conj = AutomorphismGroup(
            tuple({phi[v]: phi[g[v]] for v in nodes} for g in group.generators)
        )
        part = orbit_partition(net, group)
        part_rel = orbit_partition(relabeled, conj)
        orbits = {
            frozenset(phi[v] for v, j in part.orbit_of.items() if j == jj)
            for jj in range(part.num_orbits)
        }
        orbits_rel = {
            frozenset(v for v, j in part_rel.orbit_of.items() if j == jj)
            for jj in range(part_rel.num_orbits)
        }
        assert orbits == orbits_rel

    @settings(max_examples=40, deadline=None)
    @given(pair=declared_network())
    def test_orbits_partition_the_node_set(self, pair):
        net, group = pair
        part = orbit_partition(net, group)
        assert sorted(part.orbit_of) == sorted(net.nodes(), key=repr) or set(
            part.orbit_of
        ) == set(net.nodes())
        assert sum(part.sizes) == net.num_nodes
        for j, rep in enumerate(part.reps):
            assert part.orbit_of[rep] == j
        # representatives are each orbit's first node in insertion order
        seen = set()
        for v in net.nodes():
            j = part.orbit_of[v]
            if j not in seen:
                seen.add(j)
                assert part.reps[j] == v


class TestWrongGeneratorsRejected:
    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(4, 12))
    def test_rotation_on_path_names_the_broken_edge(self, n):
        """The cycle rotation is *not* an automorphism of the open path:
        the error must name the concrete edge mapped to a non-edge."""
        net = generators.path_graph(n)
        with pytest.raises(SymmetryError, match="non-edge"):
            verify_automorphism(net, {i: (i + 1) % n for i in range(n)})

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(3, 12), data=st.data())
    def test_non_injective_map_rejected(self, n, data):
        net = generators.cycle_graph(n)
        target = data.draw(st.integers(0, n - 1))
        collapse = {i: target for i in range(n)}
        with pytest.raises(SymmetryError, match="not injective"):
            verify_automorphism(net, collapse)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(4, 12))
    def test_wrong_domain_rejected(self, n):
        net = generators.cycle_graph(n)
        partial = {i: i for i in range(n - 1)}  # node n-1 missing
        with pytest.raises(SymmetryError, match="domain"):
            verify_automorphism(net, partial)

    @settings(max_examples=30, deadline=None)
    @given(n=st.integers(4, 12))
    def test_declare_symmetry_rejects_and_stays_unset(self, n):
        net = generators.path_graph(n)
        bad = AutomorphismGroup(
            ({i: (i + 1) % n for i in range(n)},), name="bogus"
        )
        with pytest.raises(SymmetryError, match="generator 0 of 'bogus'"):
            net.declare_symmetry(bad)
        assert net.symmetry is None
        with pytest.raises(ValueError, match="no automorphism group"):
            net.orbit_partition()


class TestDetector:
    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(3, 14))
    def test_detects_cycles(self, n):
        group = detect_symmetry(generators.cycle_graph(n))
        assert group is not None
        group.verify(generators.cycle_graph(n))

    @settings(max_examples=25, deadline=None)
    @given(n=st.integers(2, 10))
    def test_detects_complete(self, n):
        net = generators.complete_graph(n)
        group = detect_symmetry(net)
        assert group is not None and group.name == f"S{n}"
        assert orbit_partition(net, group).num_orbits == 1

    @settings(max_examples=20, deadline=None)
    @given(r=st.integers(3, 5), c=st.integers(3, 5))
    def test_detects_torus_as_transitive(self, r, c):
        net = generators.torus_graph(r, c)
        group = detect_symmetry(net)
        assert group is not None
        assert orbit_partition(net, group).num_orbits == 1

    @settings(max_examples=20, deadline=None)
    @given(n=st.integers(5, 14), data=st.data())
    def test_detects_circulants(self, n, data):
        offs = data.draw(st.sets(st.integers(1, n // 2), min_size=1, max_size=3))
        net = generators.circulant_graph(n, offs)
        group = detect_symmetry(net)
        assert group is not None
        assert orbit_partition(net, group).num_orbits == 1

    def test_returns_none_on_asymmetric_families(self):
        assert detect_symmetry(generators.path_graph(6)) is None
        assert detect_symmetry(generators.star_graph(5)) is None
        rng = np.random.default_rng(7)
        assert detect_symmetry(generators.random_tree(9, rng)) is None

    def test_detected_groups_are_always_verified(self):
        """A near-miss (cycle plus a chord) must not be reported as
        rotation-symmetric: the detector verifies before returning."""
        net = generators.cycle_graph(8)
        net.add_edge(0, 2)
        assert detect_symmetry(net) is None
