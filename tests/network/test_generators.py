"""Unit tests for repro.network.generators."""

import numpy as np
import pytest

from repro.network import generators as g
from repro.network.properties import bridges, is_bipartite


class TestDeterministicFamilies:
    def test_path(self):
        net = g.path_graph(5)
        assert (net.num_nodes, net.num_edges) == (5, 4)
        assert net.degree(0) == 1 and net.degree(2) == 2

    def test_path_single(self):
        assert g.path_graph(1).num_nodes == 1

    def test_cycle(self):
        net = g.cycle_graph(6)
        assert (net.num_nodes, net.num_edges) == (6, 6)
        assert all(net.degree(v) == 2 for v in net)

    def test_cycle_minimum(self):
        with pytest.raises(ValueError):
            g.cycle_graph(2)

    def test_complete(self):
        net = g.complete_graph(6)
        assert net.num_edges == 15
        assert net.diameter() == 1

    def test_star(self):
        net = g.star_graph(7)
        assert net.num_nodes == 8
        assert net.degree(0) == 7

    def test_wheel(self):
        net = g.wheel_graph(5)
        assert net.num_nodes == 6
        assert net.degree(0) == 5
        assert all(net.degree(v) == 3 for v in range(1, 6))

    def test_grid(self):
        net = g.grid_graph(3, 4)
        assert net.num_nodes == 12
        assert net.num_edges == 3 * 3 + 2 * 4  # rows*(cols-1) + (rows-1)*cols
        assert is_bipartite(net)

    def test_torus(self):
        net = g.torus_graph(3, 4)
        assert net.num_nodes == 12
        assert all(net.degree(v) == 4 for v in net)
        assert bridges(net) == set()

    def test_hypercube(self):
        net = g.hypercube_graph(4)
        assert net.num_nodes == 16
        assert all(net.degree(v) == 4 for v in net)
        assert is_bipartite(net)

    def test_binary_tree(self):
        net = g.binary_tree(3)
        assert net.num_nodes == 15
        assert net.num_edges == 14
        assert len(bridges(net)) == 14

    def test_complete_bipartite(self):
        net = g.complete_bipartite_graph(2, 3)
        assert net.num_edges == 6
        assert is_bipartite(net)

    def test_petersen(self):
        net = g.petersen_graph()
        assert (net.num_nodes, net.num_edges) == (10, 15)
        assert all(net.degree(v) == 3 for v in net)
        assert not is_bipartite(net)
        assert bridges(net) == set()


class TestCompositeFamilies:
    def test_barbell(self):
        net = g.barbell_graph(4, 3)
        assert net.is_connected()
        br = bridges(net)
        assert len(br) == 3  # every path edge is a bridge

    def test_lollipop(self):
        net = g.lollipop_graph(4, 3)
        assert len(bridges(net)) == 3

    def test_theta(self):
        net = g.theta_graph(2, 3, 4)
        assert net.is_connected()
        assert bridges(net) == set()
        assert net.num_edges == 9

    def test_theta_validation(self):
        with pytest.raises(ValueError):
            g.theta_graph(1, 1, 3)

    def test_caterpillar(self):
        net = g.caterpillar_graph(4, 2)
        assert net.num_nodes == 4 + 8
        assert len(bridges(net)) == net.num_edges  # a tree


class TestRandomFamilies:
    def test_random_tree_is_tree(self):
        for seed in range(5):
            net = g.random_tree(20, seed)
            assert net.num_edges == 19
            assert net.is_connected()

    def test_random_tree_determinism(self):
        a = g.random_tree(15, 7)
        b = g.random_tree(15, 7)
        assert set(a.edges()) == set(b.edges())

    def test_gnp_edge_probability(self):
        rng = np.random.default_rng(0)
        net = g.gnp_random_graph(40, 0.2, rng)
        max_m = 40 * 39 // 2
        assert 0.1 * max_m < net.num_edges < 0.3 * max_m

    def test_gnp_extremes(self):
        assert g.gnp_random_graph(10, 0.0, 1).num_edges == 0
        assert g.gnp_random_graph(6, 1.0, 1).num_edges == 15

    def test_gnp_validation(self):
        with pytest.raises(ValueError):
            g.gnp_random_graph(5, 1.5)

    def test_gnm_exact_edges(self):
        net = g.gnm_random_graph(12, 20, 3)
        assert net.num_edges == 20

    def test_gnm_too_many(self):
        with pytest.raises(ValueError):
            g.gnm_random_graph(4, 10)

    def test_random_regular(self):
        net = g.random_regular_graph(12, 3, 5)
        assert all(net.degree(v) == 3 for v in net)

    def test_random_regular_parity(self):
        with pytest.raises(ValueError):
            g.random_regular_graph(5, 3)

    def test_connected_gnp(self):
        net = g.connected_gnp_graph(25, 0.2, 1)
        assert net.is_connected()

    def test_generator_object_reuse(self):
        rng = np.random.default_rng(9)
        a = g.gnp_random_graph(10, 0.5, rng)
        b = g.gnp_random_graph(10, 0.5, rng)
        # consuming the same generator gives different draws
        assert set(a.edges()) != set(b.edges())
