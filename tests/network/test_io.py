"""Tests for network/state serialization (repro.network.io)."""

import pytest

from repro.network import NetworkState, generators
from repro.network.graph import Network
from repro.network.io import (
    from_edge_list,
    load_edge_list,
    network_from_json,
    network_to_json,
    save_edge_list,
    state_from_json,
    state_to_json,
    to_edge_list,
)


class TestEdgeList:
    def test_round_trip(self):
        net = generators.petersen_graph()
        back = from_edge_list(to_edge_list(net))
        assert set(back.edges()) == set(net.edges())
        assert back.num_nodes == net.num_nodes

    def test_isolated_nodes_preserved(self):
        net = Network(nodes=[0, 1, 2], edges=[(0, 1)])
        back = from_edge_list(to_edge_list(net))
        assert 2 in back
        assert back.degree(2) == 0

    def test_comments_and_blanks_ignored(self):
        text = "# header\n\n0 1  # inline\n2\n"
        net = from_edge_list(text)
        assert net.has_edge(0, 1)
        assert 2 in net

    def test_string_node_ids(self):
        net = from_edge_list("alpha beta\n")
        assert net.has_edge("alpha", "beta")

    def test_malformed_line(self):
        with pytest.raises(ValueError):
            from_edge_list("0 1 2\n")

    def test_file_round_trip(self, tmp_path):
        net = generators.grid_graph(3, 3)
        p = tmp_path / "grid.edges"
        save_edge_list(net, p)
        back = load_edge_list(p)
        assert set(back.edges()) == set(net.edges())


class TestJson:
    def test_network_round_trip(self):
        net = generators.barbell_graph(4, 2)
        back = network_from_json(network_to_json(net))
        assert set(back.edges()) == set(net.edges())
        assert sorted(back.nodes()) == sorted(net.nodes())

    def test_state_round_trip_scalars(self):
        st = NetworkState({0: "red", 1: "blue", 2: 7})
        back = state_from_json(state_to_json(st))
        assert back == st

    def test_state_round_trip_tuples(self):
        """Tuple states (the library's composite states) survive via the
        list→tuple restoration."""
        st = NetworkState({0: (True, "arm", "idle"), 1: (False, "blank", "idle")})
        back = state_from_json(state_to_json(st))
        assert back == st

    def test_saved_workload_runs(self, tmp_path):
        """End-to-end: persist a topology, reload it, run an algorithm."""
        from repro.algorithms import two_coloring as tc
        from repro.runtime.simulator import SynchronousSimulator

        net = generators.grid_graph(3, 4)
        p = tmp_path / "workload.edges"
        save_edge_list(net, p)
        loaded = load_edge_list(p)
        aut, init = tc.build(loaded, next(iter(loaded)))
        sim = SynchronousSimulator(loaded, aut, init)
        sim.run_until_stable()
        assert tc.succeeded(loaded, sim.state)
