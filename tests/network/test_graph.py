"""Unit tests for repro.network.graph."""

import pytest
from hypothesis import given, strategies as st

from repro.network.graph import Network, canonical_edge
from repro.network import generators


class TestConstruction:
    def test_empty(self):
        net = Network()
        assert net.num_nodes == 0
        assert net.num_edges == 0
        assert not net.is_connected()

    def test_add_edge_creates_endpoints(self):
        net = Network()
        net.add_edge("a", "b")
        assert "a" in net and "b" in net
        assert net.num_edges == 1

    def test_duplicate_edge_ignored(self):
        net = Network(edges=[(0, 1), (0, 1), (1, 0)])
        assert net.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Network(edges=[(0, 0)])

    def test_canonical_edge(self):
        assert canonical_edge(2, 1) == canonical_edge(1, 2)


class TestFaults:
    def test_remove_edge(self):
        net = generators.path_graph(3)
        net.remove_edge(0, 1)
        assert not net.has_edge(0, 1)
        assert net.num_edges == 1
        assert 0 in net  # endpoints survive

    def test_remove_missing_edge(self):
        net = generators.path_graph(3)
        with pytest.raises(KeyError):
            net.remove_edge(0, 2)

    def test_remove_node_drops_incident_edges(self):
        net = generators.star_graph(4)
        net.remove_node(0)
        assert net.num_edges == 0
        assert net.num_nodes == 4

    def test_remove_missing_node(self):
        with pytest.raises(KeyError):
            Network().remove_node("x")

    def test_edge_count_consistency_after_faults(self):
        net = generators.complete_graph(5)
        net.remove_node(0)
        assert net.num_edges == 6  # K4
        assert len(net.edges()) == 6


class TestQueries:
    def test_degrees(self):
        net = generators.star_graph(5)
        assert net.degree(0) == 5
        assert net.max_degree() == 5
        assert all(net.degree(i) == 1 for i in range(1, 6))

    def test_neighbors(self):
        net = generators.path_graph(3)
        assert net.neighbors(1) == {0, 2}

    def test_len_iter_contains(self):
        net = generators.path_graph(4)
        assert len(net) == 4
        assert sorted(net) == [0, 1, 2, 3]
        assert 2 in net and 9 not in net


class TestConnectivity:
    def test_component_of(self):
        net = Network(edges=[(0, 1), (2, 3)])
        assert net.component_of(0) == {0, 1}

    def test_components_sorted_by_size(self):
        net = Network(edges=[(0, 1), (2, 3), (3, 4)])
        comps = net.connected_components()
        assert len(comps[0]) == 3

    def test_connected(self):
        assert generators.cycle_graph(5).is_connected()
        net = generators.path_graph(4)
        net.remove_edge(1, 2)
        assert not net.is_connected()

    def test_bfs_distances_multi_source(self):
        net = generators.path_graph(5)
        d = net.bfs_distances([0, 4])
        assert d == {0: 0, 4: 0, 1: 1, 3: 1, 2: 2}

    def test_bfs_distances_unknown_source(self):
        with pytest.raises(KeyError):
            generators.path_graph(2).bfs_distances([99])

    def test_diameter(self):
        assert generators.path_graph(6).diameter() == 5
        assert generators.cycle_graph(6).diameter() == 3
        assert generators.complete_graph(4).diameter() == 1

    def test_diameter_disconnected(self):
        with pytest.raises(ValueError):
            Network(nodes=[0, 1]).diameter()

    def test_eccentricity(self):
        assert generators.path_graph(5).eccentricity(2) == 2


class TestDerivation:
    def test_copy_is_independent(self):
        net = generators.path_graph(4)
        cp = net.copy()
        cp.remove_node(0)
        assert 0 in net and 0 not in cp

    def test_subgraph(self):
        net = generators.complete_graph(5)
        sub = net.subgraph([0, 1, 2])
        assert sub.num_nodes == 3 and sub.num_edges == 3

    def test_subgraph_unknown_node(self):
        with pytest.raises(KeyError):
            generators.path_graph(2).subgraph([5])

    def test_is_subgraph_of(self):
        net = generators.complete_graph(4)
        sub = net.subgraph([0, 1, 2])
        assert sub.is_subgraph_of(net)
        assert not net.is_subgraph_of(sub)


class TestExport:
    def test_to_csr_shape_and_symmetry(self):
        net = generators.cycle_graph(5)
        mat, order = net.to_csr()
        assert mat.shape == (5, 5)
        assert (mat != mat.T).nnz == 0
        assert mat.sum() == 2 * net.num_edges
        assert mat.diagonal().sum() == 0

    def test_csr_degrees(self):
        net = generators.star_graph(4)
        mat, order = net.to_csr()
        idx = {v: i for i, v in enumerate(order)}
        import numpy as np

        degs = np.asarray(mat.sum(axis=1)).ravel()
        assert degs[idx[0]] == 4

    def test_to_csr_is_cached(self):
        net = generators.cycle_graph(6)
        mat1, order1 = net.to_csr()
        mat2, order2 = net.to_csr()
        assert mat1 is mat2 and order1 is order2

    def test_csr_cache_invalidated_on_mutation(self):
        net = generators.cycle_graph(6)
        mat, order = net.to_csr()

        net.add_node(99)
        mat2, order2 = net.to_csr()
        assert mat2 is not mat
        assert mat2.shape == (7, 7) and 99 in order2

        net.add_edge(99, 0)
        mat3, _ = net.to_csr()
        assert mat3 is not mat2
        assert mat3.sum() == 2 * net.num_edges

        net.remove_edge(99, 0)
        mat4, _ = net.to_csr()
        assert mat4 is not mat3
        assert mat4.sum() == 2 * net.num_edges

        net.remove_node(99)
        mat5, order5 = net.to_csr()
        assert mat5 is not mat4
        assert mat5.shape == (6, 6) and 99 not in order5

    def test_csr_cache_no_op_mutations_keep_cache(self):
        net = generators.cycle_graph(6)
        mat, _ = net.to_csr()
        net.add_node(0)  # already present: no invalidation
        assert net.to_csr()[0] is mat

    def test_copy_does_not_share_cache(self):
        net = generators.cycle_graph(6)
        net.to_csr()
        clone = net.copy()
        clone.remove_node(0)
        mat, order = clone.to_csr()
        assert mat.shape == (5, 5)
        assert net.to_csr()[0].shape == (6, 6)

    def test_networkx_roundtrip(self):
        net = generators.petersen_graph()
        back = Network.from_networkx(net.to_networkx())
        assert back.num_nodes == net.num_nodes
        assert back.num_edges == net.num_edges
        assert set(back.edges()) == set(net.edges())


class TestOrbitCache:
    """The cached orbit partition invalidates exactly like the CSR export
    cache: every real topology mutation drops it, no-op mutations keep it,
    and copies never share it."""

    @staticmethod
    def _declared_cycle(n=6):
        from repro.network.symmetry import cyclic_rotation

        net = generators.cycle_graph(n)
        net.declare_symmetry(cyclic_rotation(n))
        return net

    def test_orbit_partition_is_cached(self):
        net = self._declared_cycle()
        part1 = net.orbit_partition()
        part2 = net.orbit_partition()
        assert part1 is part2
        assert net.orbit_rebuilds == 1

    def test_orbit_cache_invalidated_on_mutation(self):
        net = self._declared_cycle()
        part = net.orbit_partition()

        net.add_node(99)
        part2 = net.orbit_partition()  # group is now stale, but the cache
        assert part2 is not part       # contract is mutation ⇒ recompute
        assert net.orbit_rebuilds == 2

        net.remove_node(99)
        assert net.orbit_partition() is not part2
        assert net.orbit_rebuilds == 3

        net.remove_edge(0, 1)
        net.orbit_partition()
        assert net.orbit_rebuilds == 4

        net.add_edge(0, 1)
        net.orbit_partition()
        assert net.orbit_rebuilds == 5

    def test_orbit_cache_no_op_mutations_keep_cache(self):
        net = self._declared_cycle()
        part = net.orbit_partition()
        net.add_node(0)  # already present: no invalidation
        net.add_edge(0, 1)  # already present: no invalidation
        assert net.orbit_partition() is part
        assert net.orbit_rebuilds == 1

    def test_redeclaring_invalidates(self):
        from repro.network.symmetry import cyclic_rotation

        net = self._declared_cycle(6)
        part = net.orbit_partition()
        net.declare_symmetry(cyclic_rotation(6, shift=2))
        part2 = net.orbit_partition()
        assert part2 is not part
        assert part2.num_orbits == 2

    def test_copy_carries_declaration_not_cache(self):
        net = self._declared_cycle()
        net.orbit_partition()
        clone = net.copy()
        assert clone.symmetry is net.symmetry
        assert clone.orbit_rebuilds == 0  # fresh cache on the clone
        assert clone.orbit_partition().num_orbits == 1

    def test_clearing_declaration(self):
        net = self._declared_cycle()
        net.orbit_partition()
        net.declare_symmetry(None)
        assert net.symmetry is None
        with pytest.raises(ValueError, match="no automorphism group"):
            net.orbit_partition()


@given(st.sets(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
def test_edge_count_invariant(pairs):
    net = Network()
    expected = set()
    for u, v in pairs:
        if u == v:
            continue
        net.add_edge(u, v)
        expected.add(canonical_edge(u, v))
    assert net.num_edges == len(expected)
    assert set(net.edges()) == expected


@given(st.integers(min_value=2, max_value=30))
def test_path_graph_distance_linear(n):
    net = generators.path_graph(n)
    assert net.bfs_distances([0])[n - 1] == n - 1
