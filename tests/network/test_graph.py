"""Unit tests for repro.network.graph."""

import pytest
from hypothesis import given, strategies as st

from repro.network.graph import Network, canonical_edge
from repro.network import generators


class TestConstruction:
    def test_empty(self):
        net = Network()
        assert net.num_nodes == 0
        assert net.num_edges == 0
        assert not net.is_connected()

    def test_add_edge_creates_endpoints(self):
        net = Network()
        net.add_edge("a", "b")
        assert "a" in net and "b" in net
        assert net.num_edges == 1

    def test_duplicate_edge_ignored(self):
        net = Network(edges=[(0, 1), (0, 1), (1, 0)])
        assert net.num_edges == 1

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Network(edges=[(0, 0)])

    def test_canonical_edge(self):
        assert canonical_edge(2, 1) == canonical_edge(1, 2)


class TestFaults:
    def test_remove_edge(self):
        net = generators.path_graph(3)
        net.remove_edge(0, 1)
        assert not net.has_edge(0, 1)
        assert net.num_edges == 1
        assert 0 in net  # endpoints survive

    def test_remove_missing_edge(self):
        net = generators.path_graph(3)
        with pytest.raises(KeyError):
            net.remove_edge(0, 2)

    def test_remove_node_drops_incident_edges(self):
        net = generators.star_graph(4)
        net.remove_node(0)
        assert net.num_edges == 0
        assert net.num_nodes == 4

    def test_remove_missing_node(self):
        with pytest.raises(KeyError):
            Network().remove_node("x")

    def test_edge_count_consistency_after_faults(self):
        net = generators.complete_graph(5)
        net.remove_node(0)
        assert net.num_edges == 6  # K4
        assert len(net.edges()) == 6


class TestQueries:
    def test_degrees(self):
        net = generators.star_graph(5)
        assert net.degree(0) == 5
        assert net.max_degree() == 5
        assert all(net.degree(i) == 1 for i in range(1, 6))

    def test_neighbors(self):
        net = generators.path_graph(3)
        assert net.neighbors(1) == {0, 2}

    def test_len_iter_contains(self):
        net = generators.path_graph(4)
        assert len(net) == 4
        assert sorted(net) == [0, 1, 2, 3]
        assert 2 in net and 9 not in net


class TestConnectivity:
    def test_component_of(self):
        net = Network(edges=[(0, 1), (2, 3)])
        assert net.component_of(0) == {0, 1}

    def test_components_sorted_by_size(self):
        net = Network(edges=[(0, 1), (2, 3), (3, 4)])
        comps = net.connected_components()
        assert len(comps[0]) == 3

    def test_connected(self):
        assert generators.cycle_graph(5).is_connected()
        net = generators.path_graph(4)
        net.remove_edge(1, 2)
        assert not net.is_connected()

    def test_bfs_distances_multi_source(self):
        net = generators.path_graph(5)
        d = net.bfs_distances([0, 4])
        assert d == {0: 0, 4: 0, 1: 1, 3: 1, 2: 2}

    def test_bfs_distances_unknown_source(self):
        with pytest.raises(KeyError):
            generators.path_graph(2).bfs_distances([99])

    def test_diameter(self):
        assert generators.path_graph(6).diameter() == 5
        assert generators.cycle_graph(6).diameter() == 3
        assert generators.complete_graph(4).diameter() == 1

    def test_diameter_disconnected(self):
        with pytest.raises(ValueError):
            Network(nodes=[0, 1]).diameter()

    def test_eccentricity(self):
        assert generators.path_graph(5).eccentricity(2) == 2


class TestDerivation:
    def test_copy_is_independent(self):
        net = generators.path_graph(4)
        cp = net.copy()
        cp.remove_node(0)
        assert 0 in net and 0 not in cp

    def test_subgraph(self):
        net = generators.complete_graph(5)
        sub = net.subgraph([0, 1, 2])
        assert sub.num_nodes == 3 and sub.num_edges == 3

    def test_subgraph_unknown_node(self):
        with pytest.raises(KeyError):
            generators.path_graph(2).subgraph([5])

    def test_is_subgraph_of(self):
        net = generators.complete_graph(4)
        sub = net.subgraph([0, 1, 2])
        assert sub.is_subgraph_of(net)
        assert not net.is_subgraph_of(sub)


class TestExport:
    def test_to_csr_shape_and_symmetry(self):
        net = generators.cycle_graph(5)
        mat, order = net.to_csr()
        assert mat.shape == (5, 5)
        assert (mat != mat.T).nnz == 0
        assert mat.sum() == 2 * net.num_edges
        assert mat.diagonal().sum() == 0

    def test_csr_degrees(self):
        net = generators.star_graph(4)
        mat, order = net.to_csr()
        idx = {v: i for i, v in enumerate(order)}
        import numpy as np

        degs = np.asarray(mat.sum(axis=1)).ravel()
        assert degs[idx[0]] == 4

    def test_networkx_roundtrip(self):
        net = generators.petersen_graph()
        back = Network.from_networkx(net.to_networkx())
        assert back.num_nodes == net.num_nodes
        assert back.num_edges == net.num_edges
        assert set(back.edges()) == set(net.edges())


@given(st.sets(st.tuples(st.integers(0, 15), st.integers(0, 15)), max_size=40))
def test_edge_count_invariant(pairs):
    net = Network()
    expected = set()
    for u, v in pairs:
        if u == v:
            continue
        net.add_edge(u, v)
        expected.add(canonical_edge(u, v))
    assert net.num_edges == len(expected)
    assert set(net.edges()) == expected


@given(st.integers(min_value=2, max_value=30))
def test_path_graph_distance_linear(n):
    net = generators.path_graph(n)
    assert net.bfs_distances([0])[n - 1] == n - 1
