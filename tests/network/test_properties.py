"""Unit tests for repro.network.properties against networkx ground truth."""

import networkx as nx
import pytest

from repro.network import generators as g
from repro.network.graph import canonical_edge
from repro.network.properties import (
    articulation_points,
    bfs_layers,
    bfs_tree,
    bridges,
    is_bipartite,
    spanning_tree,
    two_coloring,
)


class TestTwoColoring:
    def test_even_cycle(self):
        col = two_coloring(g.cycle_graph(8))
        assert col is not None
        net = g.cycle_graph(8)
        assert all(col[u] != col[v] for u, v in net.edges())

    def test_odd_cycle(self):
        assert two_coloring(g.cycle_graph(7)) is None

    def test_multi_component(self):
        from repro.network.graph import Network

        net = Network(edges=[(0, 1), (2, 3)])
        col = two_coloring(net)
        assert col is not None and len(col) == 4

    def test_is_bipartite(self):
        assert is_bipartite(g.grid_graph(4, 4))
        assert not is_bipartite(g.petersen_graph())


class TestBridges:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: g.path_graph(8),
            lambda: g.barbell_graph(4, 3),
            lambda: g.lollipop_graph(5, 4),
            lambda: g.theta_graph(2, 3, 4),
            lambda: g.petersen_graph(),
            lambda: g.random_tree(15, 3),
            lambda: g.connected_gnp_graph(20, 0.12, 5),
        ],
    )
    def test_matches_networkx(self, net_fn):
        net = net_fn()
        ours = bridges(net)
        theirs = {canonical_edge(u, v) for u, v in nx.bridges(net.to_networkx())}
        assert ours == theirs

    def test_deep_path_no_recursion_error(self):
        net = g.path_graph(5000)
        assert len(bridges(net)) == 4999


class TestArticulationPoints:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: g.path_graph(6),
            lambda: g.barbell_graph(4, 2),
            lambda: g.star_graph(5),
            lambda: g.cycle_graph(6),
            lambda: g.connected_gnp_graph(18, 0.15, 7),
        ],
    )
    def test_matches_networkx(self, net_fn):
        net = net_fn()
        assert articulation_points(net) == set(
            nx.articulation_points(net.to_networkx())
        )


class TestTrees:
    def test_bfs_tree_parents(self):
        net = g.grid_graph(3, 3)
        parent = bfs_tree(net, 0)
        assert 0 not in parent
        assert len(parent) == 8
        dist = net.bfs_distances([0])
        for child, par in parent.items():
            assert dist[child] == dist[par] + 1

    def test_spanning_tree(self):
        net = g.connected_gnp_graph(15, 0.3, 1)
        tree = spanning_tree(net)
        assert tree.num_edges == net.num_nodes - 1
        assert tree.is_connected()
        assert tree.is_subgraph_of(net)

    def test_spanning_tree_disconnected(self):
        from repro.network.graph import Network

        with pytest.raises(ValueError):
            spanning_tree(Network(nodes=[0, 1]))

    def test_bfs_layers(self):
        net = g.path_graph(4)
        layers = bfs_layers(net, 0)
        assert layers == [{0}, {1}, {2}, {3}]
