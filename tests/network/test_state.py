"""Unit tests for repro.network.state."""

from collections import Counter

from repro.network import NetworkState, generators


class TestConstruction:
    def test_uniform(self):
        net = generators.path_graph(4)
        st = NetworkState.uniform(net, "q0")
        assert all(st[v] == "q0" for v in net)
        assert len(st) == 4

    def test_from_function(self):
        net = generators.path_graph(4)
        st = NetworkState.from_function(net, lambda v: v % 2)
        assert st[0] == 0 and st[1] == 1

    def test_from_mapping(self):
        st = NetworkState({0: "a", 1: "b"})
        assert st[0] == "a"


class TestMutation:
    def test_set_and_item(self):
        st = NetworkState({0: "a"})
        st.set(0, "b")
        st[1] = "c"
        assert st[0] == "b" and st[1] == "c"

    def test_drop(self):
        st = NetworkState({0: "a", 1: "b"})
        st.drop([0, 99])
        assert 0 not in st and 1 in st

    def test_copy_independent(self):
        st = NetworkState({0: "a"})
        cp = st.copy()
        cp.set(0, "z")
        assert st[0] == "a"


class TestQueries:
    def test_counts(self):
        st = NetworkState({0: "a", 1: "a", 2: "b"})
        assert st.counts() == Counter({"a": 2, "b": 1})

    def test_nodes_in(self):
        st = NetworkState({0: "a", 1: "b", 2: "a"})
        assert st.nodes_in(["a"]) == [0, 2]

    def test_restrict(self):
        st = NetworkState({0: "a", 1: "b"})
        assert dict(st.restrict([1]).items()) == {1: "b"}

    def test_equality(self):
        assert NetworkState({0: "a"}) == NetworkState({0: "a"})
        assert NetworkState({0: "a"}) == {0: "a"}
        assert NetworkState({0: "a"}) != NetworkState({0: "b"})
