"""Tests for the k-sensitivity framework (Section 2, experiment E14)."""

from repro.algorithms.beta_synchronizer import BetaSynchronizer
from repro.network import NetworkState, generators
from repro.runtime.faults import FaultEvent, FaultPlan, random_fault_plan
from repro.sensitivity import (
    bridges_under_faults,
    census_under_faults,
    chi_agent,
    chi_arm,
    chi_beta_synchronizer,
    chi_decentralized,
    max_criticality,
    shortest_paths_under_faults,
    synchronizer_fault_comparison,
)


class TestChiMaps:
    def test_decentralized_chi_empty(self):
        net = generators.grid_graph(3, 3)
        assert chi_decentralized(net) == set()

    def test_agent_chi_single(self):
        assert chi_agent(5) == {5}
        assert chi_agent(None) == set()

    def test_arm_chi_from_traversal_state(self):
        st = NetworkState(
            {
                0: (True, "arm", "idle"),
                1: (False, "hand", "flip"),
                2: (False, "blank", "idle"),
            }
        )
        net = generators.path_graph(3)
        assert chi_arm(net, st) == {0, 1}

    def test_beta_chi_matches_internal_nodes(self):
        net = generators.path_graph(6)
        sync = BetaSynchronizer(net, root=0)
        assert chi_beta_synchronizer(sync) == sync.critical_nodes()

    def test_max_criticality(self):
        assert max_criticality([{1}, {1, 2}, set()]) == 2
        assert max_criticality([]) == 0


class TestSensitivityLadder:
    """The paper's ranking: decentralized 0 < agent 1 < arm/tree Θ(n)."""

    def test_ladder_on_path(self):
        n = 12
        net = generators.path_graph(n)
        sync = BetaSynchronizer(net, root=0)
        decentralized = 0
        agent = 1
        tree = len(chi_beta_synchronizer(sync))
        assert decentralized < agent < tree
        assert tree >= n // 2


class TestCensusUnderFaults:
    def test_edge_faults_keep_reasonable_correctness(self):
        net = generators.theta_graph(3, 3, 4)
        plan = FaultPlan([FaultEvent(2, "edge", net.edges()[0])])
        res = census_under_faults(net, plan, k=8, rng=1)
        assert res.reasonably_correct
        assert res.faults_applied == 1

    def test_random_fault_storm(self):
        net = generators.connected_gnp_graph(25, 0.25, 4)
        plan = random_fault_plan(net, 5, max_time=6, rng=4, kinds=("edge",))
        res = census_under_faults(net, plan, k=10, rng=4)
        assert res.reasonably_correct


class TestShortestPathsUnderFaults:
    def test_reconverges_to_survivor_distances(self):
        net = generators.grid_graph(4, 4)
        plan = FaultPlan(
            [FaultEvent(4, "edge", (1, 2)), FaultEvent(7, "node", 10)]
        )
        res = shortest_paths_under_faults(net, [0], plan, rng=2)
        assert res.reasonably_correct

    def test_zero_sensitivity_over_many_seeds(self):
        for seed in range(5):
            net = generators.connected_gnp_graph(16, 0.25, seed)
            plan = random_fault_plan(net, 3, max_time=8, rng=seed, kinds=("edge",), protect=(0,))
            res = shortest_paths_under_faults(net, [0], plan, rng=seed)
            assert res.reasonably_correct


class TestBridgesUnderFaults:
    def test_agent_survives_protected_plan(self):
        net = generators.theta_graph(3, 3, 3)
        # faults only on edges away from node 0 where the agent starts —
        # the agent may wander, so protect a neighbourhood by using few
        # faults late
        plan = FaultPlan([FaultEvent(400, "edge", (1, 0))])
        res = bridges_under_faults(net, 0, plan, walk_steps=300, rng=3)
        assert res.reasonably_correct  # agent alive: no critical failure

    def test_agent_death_flagged(self):
        net = generators.cycle_graph(5)
        plan = FaultPlan([FaultEvent(0, "node", 0)])
        res = bridges_under_faults(net, 0, plan, walk_steps=100, rng=1)
        assert not res.reasonably_correct
        assert res.detail["agent_lost"]


class TestSynchronizerComparison:
    def test_beta_breaks_alpha_survives(self):
        """The headline E14 contrast."""
        net = generators.grid_graph(3, 3)
        sync = BetaSynchronizer(net.copy(), root=0)
        tree_edge = next(iter(sync._tree_edges))
        plan = FaultPlan([FaultEvent(5, "edge", tree_edge)])
        res = synchronizer_fault_comparison(net, plan, rounds=20, rng=0)
        assert res["beta_broken"]
        assert res["beta_rounds_completed"] <= 5
        assert res["alpha_min_clock"] >= 18  # keeps ticking through the fault

    def test_both_fine_without_faults(self):
        net = generators.cycle_graph(6)
        res = synchronizer_fault_comparison(net, FaultPlan([]), rounds=15, rng=1)
        assert not res["beta_broken"]
        assert res["beta_rounds_completed"] == 15
        assert res["alpha_min_clock"] == 15


class TestFaultSweepJob:
    """Campaign-job form of the kernel fault sweep (E14 sharding)."""

    def test_deterministic_in_rng(self):
        from repro.sensitivity import fault_sweep_job

        a = fault_sweep_job(rng=11, n=10, replicas=3, num_faults=2)
        b = fault_sweep_job(rng=11, n=10, replicas=3, num_faults=2)
        assert a == b
        c = fault_sweep_job(rng=12, n=10, replicas=3, num_faults=2)
        assert c != a  # the fault plan is drawn from the job's own RNG

    def test_result_shape(self):
        import json

        from repro.sensitivity import fault_sweep_job

        out = fault_sweep_job(rng=5, n=10, replicas=3, num_faults=2)
        json.dumps(out)
        assert out["reasonably_correct"] is True
        assert out["faults_applied"] <= 2
        assert len(out["rounds"]) == 3
        assert out["live_nodes"] <= 10

    def test_is_picklable(self):
        import pickle

        from repro.sensitivity import fault_sweep_job
        from repro.sensitivity.harness import _kernel_sweep_done

        assert pickle.loads(pickle.dumps(fault_sweep_job)) is fault_sweep_job
        assert (
            pickle.loads(pickle.dumps(_kernel_sweep_done)) is _kernel_sweep_done
        )


class TestKernelChurnSweep:
    """Election under general churn (E22): revivals and growth mid-run."""

    def test_growth_arrivals_reopen_and_still_converge(self):
        from repro.algorithms import election
        from repro.runtime.churn import growth_plan
        from repro.sensitivity import kernel_churn_sweep

        net = generators.complete_graph(12)
        # attach to every node present, so the network stays complete and
        # the kernel can always whittle the re-opened contest back down
        plan = growth_plan(
            net, 3, attach=net.num_nodes + 3, start=2, rng=1,
            state=election.K_REMAIN0,
        )
        res = kernel_churn_sweep(net.copy(), plan, replicas=4, rng=7)
        assert res.reasonably_correct
        assert res.faults_applied == 3  # every arrival fired
        assert res.detail["up_events"] == 3
        assert res.detail["live_nodes"] == 15
        assert all(r <= 1 for r in res.detail["remaining"])

    def test_not_converged_while_plan_pending(self):
        """A plan whose last arrival lies beyond max_steps keeps every
        replica unconverged: a pending arrival can re-add contenders."""
        from repro.algorithms import election
        from repro.runtime.churn import ChurnPlan, TopologyEvent
        from repro.sensitivity import kernel_churn_sweep

        net = generators.complete_graph(8)
        plan = ChurnPlan(
            [TopologyEvent(10_000, "node-up", "late",
                           state=election.K_REMAIN0, edges=(0, 1))]
        )
        res = kernel_churn_sweep(net.copy(), plan, replicas=3, rng=3,
                                 max_steps=40)
        assert not res.reasonably_correct
        assert res.detail["converged"] == [False, False, False]

    def test_mixed_churn_metrics(self):
        from repro.algorithms import election
        from repro.runtime.churn import random_churn_plan
        from repro.runtime.telemetry import MetricsRegistry
        from repro.sensitivity import kernel_churn_sweep

        net = generators.complete_graph(16)
        plan = random_churn_plan(
            net, 6, max_time=6, rng=2, p_up=0.5,
            boot_state=election.K_REMAIN0,
        )
        met = MetricsRegistry()
        res = kernel_churn_sweep(
            net.copy(), plan, replicas=4, rng=9, metrics=met
        )
        assert met.get("churn_events") == res.faults_applied
        assert met.get("fault_events") == (
            res.faults_applied - res.detail["up_events"]
        )


class TestChurnResilience:
    """The accuracy-vs-churn-rate curve and its campaign-job form (E22)."""

    def test_job_deterministic_and_json_safe(self):
        import json

        from repro.sensitivity import churn_resilience_job

        a = churn_resilience_job(rng=21, n=12, replicas=3, num_events=3)
        b = churn_resilience_job(rng=21, n=12, replicas=3, num_events=3)
        assert a == b
        json.dumps(a)
        assert a["churn_rate"] == 3 / 8
        assert 0.0 <= a["converged_fraction"] <= 1.0
        assert a["events_applied"] <= 3

    def test_zero_events_is_the_fault_free_baseline(self):
        from repro.sensitivity import churn_resilience_job

        out = churn_resilience_job(rng=4, n=12, replicas=3, num_events=0)
        assert out["churn_rate"] == 0.0
        assert out["events_applied"] == 0
        assert out["reasonably_correct"] is True
        assert out["converged_fraction"] == 1.0

    def test_curve_shape(self):
        from repro.sensitivity import resilience_curve

        curve = resilience_curve(
            (0, 4), n=10, replicas=2, seeds=2, rng=13, max_steps=2_000
        )
        assert [pt["num_events"] for pt in curve] == [0, 4]
        assert curve[0]["churn_rate"] == 0.0 and curve[0]["accuracy"] == 1.0
        for pt in curve:
            assert 0.0 <= pt["accuracy"] <= 1.0
            assert pt["mean_rounds"] > 0
            assert pt["seeds"] == 2 and pt["replicas"] == 2

    def test_job_is_picklable(self):
        import pickle

        from repro.sensitivity import churn_resilience_job

        assert (
            pickle.loads(pickle.dumps(churn_resilience_job))
            is churn_resilience_job
        )
