"""Cluster-layer tests: claim leases, event spools, tenant config reload,
and multi-replica coordination over one shared store.

Like the service tests, the replicas here are thread-backed JobManagers
living in one process — the coordination substrate (claims.jsonl, the
event spool, the artifact store) is all on-disk and replica-agnostic, so
the logic cannot tell.  One opt-in slow test and the CI cluster smoke
(``python -m repro.cluster.smoke``) cover real ``repro serve``
subprocesses and a real SIGKILL.
"""

import asyncio
import json
import multiprocessing
import os
import pickle
import time
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaigns.spec import JobSpec, canonical_json
from repro.campaigns.store import ArtifactStore
from repro.cluster.claims import ClaimLedger, append_jsonl_line
from repro.cluster.config import TenantQuotaConfig
from repro.cluster.spool import EventSpool, SpoolProgress
from repro.runtime.telemetry import JobEvent, StepProgressEvent
from repro.service.http import serve
from repro.service.jobs import JobManager
from repro.service.loadgen import _parse_target, http_request


def _thread_backed(monkeypatch, workers: int = 2) -> None:
    """Swap the spawn pool for threads — admission logic can't tell."""
    monkeypatch.setattr(
        JobManager, "_make_executor",
        lambda self: ThreadPoolExecutor(max_workers=workers),
    )


def _payload(**overrides) -> dict:
    base = {
        "campaign": "cluster-test",
        "job": "repro.campaigns.testing.ok_job",
        "params": {"value": 1, "draws": 4},
        "seed_index": 0,
        "index": 0,
        "entropy": 11,
        "job_hash": "",
    }
    base.update(overrides)
    return base


def _gossip_payload(**params) -> dict:
    merged = {"n": 12, "k": 4}
    merged.update(params)
    return _payload(
        job="repro.service.workload.gossip_sum_job", params=merged
    )


def _hash_of(payload: dict) -> str:
    return JobSpec.from_payload(payload).job_hash


async def _with_server(manager, fn):
    manager.start()
    server = await serve(manager, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        return await fn(port)
    finally:
        server.close()
        await server.wait_closed()
        await manager.close()


# ----------------------------------------------------------------------
# claim ledger: the lease state machine
# ----------------------------------------------------------------------
class TestClaimLedger:
    def _pair(self, root, now, ttl=10.0):
        clock = lambda: now[0]
        return (
            ClaimLedger(root, "a", ttl=ttl, clock=clock),
            ClaimLedger(root, "b", ttl=ttl, clock=clock),
        )

    def test_live_lease_blocks_other_replicas(self, tmp_path):
        now = [0.0]
        a, b = self._pair(tmp_path, now)
        lease = a.acquire("h")
        assert lease is not None and lease.replica == "a"
        assert b.acquire("h") is None
        holder = b.peek("h")
        assert holder["replica"] == "a" and not holder["released"]

    def test_holder_may_reacquire_its_own_hash(self, tmp_path):
        now = [0.0]
        a, _ = self._pair(tmp_path, now)
        assert a.acquire("h") is not None
        assert a.acquire("h") is not None  # same replica, not a conflict

    def test_heartbeat_extends_the_deadline(self, tmp_path):
        now = [0.0]
        a, b = self._pair(tmp_path, now, ttl=10.0)
        lease = a.acquire("h")
        now[0] = 8.0
        assert a.heartbeat(lease)  # deadline is now 18.0
        now[0] = 15.0
        assert b.acquire("h") is None  # would be stale without the renewal
        now[0] = 18.0
        assert b.acquire("h") is not None  # renewed deadline passed

    def test_stale_lease_takeover_and_lost_heartbeat(self, tmp_path):
        now = [0.0]
        a, b = self._pair(tmp_path, now, ttl=5.0)
        dead = a.acquire("h")
        now[0] = 6.0  # a's deadline (5.0) has passed
        won = b.acquire("h")
        assert won is not None and won.replica == "b"
        # the superseded holder learns it on the next renewal...
        assert not a.heartbeat(dead)
        # ...and its late release must not unseat the new holder
        a.release(dead)
        assert b.heartbeat(won)

    def test_release_makes_the_hash_reclaimable(self, tmp_path):
        now = [0.0]
        a, b = self._pair(tmp_path, now)
        lease = a.acquire("h")
        a.release(lease, outcome="done")
        assert b.peek("h") is None
        assert b.acquire("h") is not None

    def test_fresh_ledger_replays_the_file(self, tmp_path):
        now = [0.0]
        a, _ = self._pair(tmp_path, now)
        a.acquire("h")
        late = ClaimLedger(tmp_path, "late", ttl=10.0, clock=lambda: now[0])
        assert late.acquire("h") is None
        assert late.peek("h")["replica"] == "a"

    def test_torn_tail_is_repaired_and_skipped(self, tmp_path):
        now = [0.0]
        path = tmp_path / "claims.jsonl"
        # a writer killed mid-append: final line has no newline and no
        # closing brace — it must neither block nor corrupt the ledger
        path.write_bytes(b'{"kind":"claim","job_hash":"h","lease":"torn"')
        a, b = self._pair(tmp_path, now)
        assert a.acquire("h") is not None
        assert path.read_bytes().endswith(b"\n")
        assert b.peek("h")["replica"] == "a"

    def test_ttl_validation(self, tmp_path):
        with pytest.raises(ValueError):
            ClaimLedger(tmp_path, "a", ttl=0.0)

    def test_append_jsonl_line_repairs_torn_tail(self, tmp_path):
        path = tmp_path / "x.jsonl"
        fd = os.open(path, os.O_RDWR | os.O_CREAT | os.O_APPEND)
        try:
            os.write(fd, b'{"torn": tr')  # no trailing newline
            append_jsonl_line(fd, b'{"ok": 1}')
        finally:
            os.close(fd)
        assert path.read_bytes() == b'{"torn": tr\n{"ok": 1}\n'


def _race_acquire(root, index, barrier, queue):
    ledger = ClaimLedger(root, f"proc{index}", ttl=60.0)
    barrier.wait()
    lease = ledger.acquire("contended")
    queue.put(lease is not None)


@pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="fork start method unavailable",
)
def test_concurrent_claims_have_exactly_one_winner(tmp_path):
    """Eight processes race one flock'd acquire: exactly one may win."""
    ctx = multiprocessing.get_context("fork")
    barrier = ctx.Barrier(8)
    queue = ctx.Queue()
    procs = [
        ctx.Process(target=_race_acquire, args=(tmp_path, i, barrier, queue))
        for i in range(8)
    ]
    for proc in procs:
        proc.start()
    wins = [queue.get(timeout=30) for _ in procs]
    for proc in procs:
        proc.join(timeout=30)
    assert sum(wins) == 1


# ----------------------------------------------------------------------
# event spool
# ----------------------------------------------------------------------
class TestEventSpool:
    def test_roundtrip_and_incremental_cursor(self, tmp_path):
        spool = EventSpool(tmp_path)
        spool.append("h", JobEvent(job_hash="h", status="queued"))
        spool.append(
            "h",
            StepProgressEvent(
                job_hash="h", step=3, active_fraction=0.5,
                counters={"rounds": 3}, replica="r0",
            ),
        )
        events, offset = spool.read("h")
        assert [type(e).__name__ for e in events] == [
            "JobEvent", "StepProgressEvent",
        ]
        assert events[1].step == 3 and events[1].counters == {"rounds": 3}
        again, offset2 = spool.read("h", offset)
        assert again == [] and offset2 == offset
        spool.append("h", JobEvent(job_hash="h", status="done"))
        more, _ = spool.read("h", offset)
        assert len(more) == 1 and more[0].terminal

    def test_missing_spool_reads_empty(self, tmp_path):
        assert EventSpool(tmp_path).read("nothing") == ([], 0)

    def test_unknown_tags_and_garbage_are_skipped(self, tmp_path):
        spool = EventSpool(tmp_path)
        spool.path("x").write_bytes(
            b'{"type": "mystery", "job_hash": "x"}\n'
            b"not json at all\n"
            b'{"type": "job", "job_hash": "x", "status": "queued"}\n'
        )
        events, _ = spool.read("x")
        assert len(events) == 1
        assert isinstance(events[0], JobEvent) and events[0].status == "queued"

    def test_spool_progress_stride_and_pickling(self, tmp_path):
        progress = SpoolProgress(tmp_path, "job", stride=3, replica="r1")
        # it must cross the worker pickle boundary with its state intact
        progress = pickle.loads(pickle.dumps(progress))
        for step in range(7):
            progress(step, active_fraction=step / 10.0, counters={"s": step})
        events, _ = EventSpool(tmp_path).read("job")
        assert [e.step for e in events] == [0, 3, 6]
        assert all(e.replica == "r1" and e.job_hash == "job" for e in events)

    def test_spool_progress_validation(self, tmp_path):
        with pytest.raises(ValueError):
            SpoolProgress(tmp_path, "job", stride=0)


# ----------------------------------------------------------------------
# tenant quota config
# ----------------------------------------------------------------------
class TestTenantQuotaConfig:
    def test_lookup_override_then_default(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({
            "default": {"burst": 2, "rate": 1.0},
            "tenants": {"alice": {"burst": 9}},
        }))
        config = TenantQuotaConfig(path)
        assert config.lookup("alice") == (9.0, 0.0)
        assert config.lookup("bob") == (2.0, 1.0)
        assert config.generation == 1 and config.last_error is None

    def test_mtime_edit_reloads_and_bumps_generation(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({"default": {"burst": 1}}))
        config = TenantQuotaConfig(path)
        assert config.lookup("t") == (1.0, 0.0)
        path.write_text(json.dumps({"default": {"burst": 7, "rate": 2.0}}))
        stamp = time.time() + 10
        os.utime(path, (stamp, stamp))
        assert config.lookup("t") == (7.0, 2.0)
        assert config.generation == 2

    def test_malformed_edit_keeps_previous_config(self, tmp_path):
        path = tmp_path / "quotas.json"
        path.write_text(json.dumps({"default": {"burst": 3}}))
        config = TenantQuotaConfig(path)
        path.write_text('{"default": {"burst": -1}}')
        stamp = time.time() + 10
        os.utime(path, (stamp, stamp))
        assert config.lookup("t") == (3.0, 0.0)  # bad edit did not land
        assert config.last_error is not None
        assert config.generation == 1

    def test_missing_file_means_unmetered(self, tmp_path):
        config = TenantQuotaConfig(tmp_path / "absent.json")
        assert config.lookup("anyone") is None
        assert config.last_error is not None

    def test_toml_spelling(self, tmp_path):
        pytest.importorskip("tomllib")
        path = tmp_path / "quotas.toml"
        path.write_text(
            "[default]\nburst = 4\nrate = 0.5\n"
            "[tenants.batch]\nburst = 1\n"
        )
        config = TenantQuotaConfig(path)
        assert config.lookup("batch") == (1.0, 0.0)
        assert config.lookup("other") == (4.0, 0.5)


# ----------------------------------------------------------------------
# loadgen target parsing (round-robin plumbing)
# ----------------------------------------------------------------------
class TestLoadgenTargets:
    def test_parse_target_forms(self):
        assert _parse_target("9000") == ("127.0.0.1", 9000)
        assert _parse_target("10.0.0.7:9000") == ("10.0.0.7", 9000)
        assert _parse_target("9000", "myhost") == ("myhost", 9000)


# ----------------------------------------------------------------------
# two replicas over one store (thread-backed)
# ----------------------------------------------------------------------
def _cluster_pair(store_root, **kwargs):
    a = JobManager(store_root, replica_id="rA", poll_interval=0.01, **kwargs)
    b = JobManager(store_root, replica_id="rB", poll_interval=0.01, **kwargs)
    a.start()
    b.start()
    return a, b


class TestClusterManagers:
    def test_duplicates_across_replicas_execute_once(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            a, b = _cluster_pair(tmp_path / "store")
            try:
                first = a.submit(_gossip_payload())
                second = b.submit(_gossip_payload())  # lease held by rA
                third = b.submit(_gossip_payload())  # dedupes onto rB's wait
                assert first.outcome == "accepted"
                assert second.outcome == "lease_wait"
                assert third.outcome == "deduplicated"
                records = list(await asyncio.gather(
                    asyncio.wait_for(first.result(), 15),
                    asyncio.wait_for(second.result(), 15),
                    asyncio.wait_for(third.result(), 15),
                ))
                fourth = a.submit(_gossip_payload())
                assert fourth.outcome == "cached"
                records.append(await fourth.result())
                # every answer is the same canonical record, byte for byte
                assert len({canonical_json(r) for r in records}) == 1

                combined: dict = {}
                for manager in (a, b):
                    for name, value in manager.snapshot()["counters"].items():
                        combined[name] = combined.get(name, 0) + value
                # 4 submissions, 1 execution: the cluster-wide invariant
                assert combined["jobs_executed"] == 1
                assert (
                    combined.get("cache_hits", 0)
                    + combined.get("inflight_dedups", 0)
                    + combined.get("lease_waits", 0)
                ) == 3
                assert ArtifactStore(tmp_path / "store").verify() == []
            finally:
                await a.close()
                await b.close()

        asyncio.run(go())

    def test_stale_lease_takeover_executes_locally(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            store_root = tmp_path / "store"
            store_root.mkdir()
            # a "replica" that claimed the job and then died silently
            ghost = ClaimLedger(store_root, "ghost", ttl=0.2)
            payload = _gossip_payload()
            assert ghost.acquire(_hash_of(payload)) is not None

            b = JobManager(store_root, replica_id="rB", poll_interval=0.01)
            b.start()
            try:
                submission = b.submit(_gossip_payload())
                assert submission.outcome == "lease_wait"
                record = await asyncio.wait_for(submission.result(), 15)
                assert record["status"] == "ok"
                counters = b.snapshot()["counters"]
                assert counters.get("lease_takeovers") == 1
                assert counters.get("jobs_executed") == 1
                assert ArtifactStore(store_root).verify() == []
            finally:
                await b.close()

        asyncio.run(go())

    def test_step_progress_visible_from_non_executor(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            a, b = _cluster_pair(tmp_path / "store")
            try:
                payload = _gossip_payload(extra_rounds=3)
                job_hash = _hash_of(payload)
                queue, cleanup = b.subscribe_any(job_hash)
                submission = a.submit(payload)
                assert submission.outcome == "accepted"
                events = []
                try:
                    while True:
                        event = await asyncio.wait_for(queue.get(), 15)
                        if event is None:
                            break
                        events.append(event)
                finally:
                    cleanup()
                steps = [
                    e for e in events if isinstance(e, StepProgressEvent)
                ]
                assert steps, "no per-step progress reached the peer replica"
                assert all(e.job_hash == job_hash for e in steps)
                assert all(e.replica == "rA" for e in steps)
                terminals = [
                    e for e in events
                    if isinstance(e, JobEvent) and e.terminal
                ]
                assert terminals and terminals[-1].status == "done"
                record = await asyncio.wait_for(submission.result(), 15)
                assert record["status"] == "ok"
            finally:
                await a.close()
                await b.close()

        asyncio.run(go())

    def test_paced_job_result_is_pace_invariant(self, tmp_path, monkeypatch):
        """pace/progress are observability knobs — same estimate out."""
        import numpy as np

        from repro.service.workload import gossip_sum_job

        plain = gossip_sum_job(rng=np.random.default_rng(5), n=12, k=4)
        paced = gossip_sum_job(
            rng=np.random.default_rng(5), n=12, k=4,
            pace=0.001, extra_rounds=2,
            progress=SpoolProgress(tmp_path, "h"),
        )
        assert paced == plain

    def test_tenant_config_hot_reload_drops_buckets(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        quota_path = tmp_path / "quotas.json"
        quota_path.write_text(json.dumps({"default": {"burst": 1}}))

        async def go():
            manager = JobManager(
                tmp_path / "store", replica_id="rQ", poll_interval=0.01,
                tenant_config=TenantQuotaConfig(quota_path),
            )
            manager.start()
            try:
                first = manager.submit(_gossip_payload(), tenant="t")
                assert first.outcome == "accepted"
                second = manager.submit(_gossip_payload(n=14), tenant="t")
                assert second.outcome == "quota_rejected"
                # one file edit retunes the live replica: cached buckets
                # are dropped when the generation moves
                quota_path.write_text(json.dumps({"default": {"burst": 5}}))
                stamp = time.time() + 10
                os.utime(quota_path, (stamp, stamp))
                third = manager.submit(_gossip_payload(n=14), tenant="t")
                assert third.outcome == "accepted"
                await asyncio.wait_for(first.result(), 15)
                await asyncio.wait_for(third.result(), 15)
            finally:
                await manager.close()

        asyncio.run(go())


# ----------------------------------------------------------------------
# HTTP surfaces of cluster mode
# ----------------------------------------------------------------------
class TestClusterHTTP:
    def test_healthz_reports_pool_identity_and_replica(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        manager = JobManager(tmp_path / "store", replica_id="r7")

        async def scenario(port):
            status, _, body = await http_request(
                "127.0.0.1", port, "GET", "/healthz"
            )
            assert status == 200
            health = json.loads(body)
            assert health["ok"] is True
            assert health["pool"] == "ok"
            assert health["replica"] == "r7"
            assert health["store_identity"] == manager.store.identity()
            assert health["workers"] == manager.workers
            assert health["inflight"] == 0
            return True

        assert asyncio.run(_with_server(manager, scenario))

    def test_lease_wait_maps_to_202_and_waits_byte_identically(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            store_root = tmp_path / "store"
            a = JobManager(store_root, replica_id="rA", poll_interval=0.01)
            b = JobManager(store_root, replica_id="rB", poll_interval=0.01)
            a.start()
            b.start()
            server = await serve(b, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                payload = _gossip_payload(pace=0.02, extra_rounds=25)
                held = a.submit(payload)
                assert held.outcome == "accepted"
                body = canonical_json({
                    k: v for k, v in payload.items() if k != "job_hash"
                }).encode()
                status, headers, _ = await http_request(
                    "127.0.0.1", port, "POST", "/jobs", body,
                    headers={"Content-Type": "application/json"},
                )
                assert status == 202
                assert headers["x-repro-outcome"] == "lease_wait"
                status2, headers2, resp2 = await http_request(
                    "127.0.0.1", port, "POST", "/jobs?wait=1", body
                )
                assert status2 == 200
                assert headers2["x-repro-outcome"] in (
                    "lease_wait", "deduplicated", "cached"
                )
                record = await asyncio.wait_for(held.result(), 15)
                # rB answered from the shared store with the exact bytes
                # rA's executor sealed
                assert resp2 == (canonical_json(record) + "\n").encode()
            finally:
                server.close()
                await server.wait_closed()
                await a.close()
                await b.close()

        asyncio.run(go())

    def test_sse_from_non_executor_carries_step_progress(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            store_root = tmp_path / "store"
            a = JobManager(store_root, replica_id="rA", poll_interval=0.01)
            b = JobManager(store_root, replica_id="rB", poll_interval=0.01)
            a.start()
            b.start()
            server = await serve(b, "127.0.0.1", 0)
            port = server.sockets[0].getsockname()[1]
            try:
                payload = _gossip_payload(pace=0.01, extra_rounds=10)
                job_hash = _hash_of(payload)
                submission = a.submit(payload)
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", port
                )
                writer.write(
                    f"GET /jobs/{job_hash}/events HTTP/1.1\r\n"
                    "Host: x\r\n\r\n".encode()
                )
                await writer.drain()
                buf = b""
                while b"event: end" not in buf:
                    chunk = await asyncio.wait_for(reader.read(4096), 15)
                    if not chunk:
                        break
                    buf += chunk
                writer.close()
                assert b'"type": "step_progress"' in buf
                assert b'"status": "done"' in buf
                record = await asyncio.wait_for(submission.result(), 15)
                assert record["status"] == "ok"
            finally:
                server.close()
                await server.wait_closed()
                await a.close()
                await b.close()

        asyncio.run(go())

    def test_sse_keepalive_comment_frames_on_idle_stream(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        manager = JobManager(tmp_path / "store", sse_keepalive=0.05)
        slow = _payload(
            job="repro.campaigns.testing.hanging_job",
            params={"value": 1, "hang_values": [1], "sleep": 0.4},
        )
        slow["job_hash"] = _hash_of(slow)

        async def scenario(port):
            submission = manager.submit(slow)
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                f"GET /jobs/{slow['job_hash']}/events HTTP/1.1\r\n"
                "Host: x\r\n\r\n".encode()
            )
            await writer.drain()
            buf = b""
            while b"event: end" not in buf:
                chunk = await asyncio.wait_for(reader.read(1024), 15)
                if not chunk:
                    break
                buf += chunk
            writer.close()
            # the 0.4 s hang spans several 0.05 s idle windows
            assert b": keep-alive\n\n" in buf
            assert b'"status": "done"' in buf
            record = await asyncio.wait_for(submission.result(), 15)
            assert record["status"] == "ok"
            return True

        assert asyncio.run(_with_server(manager, scenario))


# ----------------------------------------------------------------------
# real processes, real SIGKILL (opt-in)
# ----------------------------------------------------------------------
@pytest.mark.slow
class TestClusterTorture:
    def test_sigkill_mid_job_triggers_takeover(self, tmp_path):
        from repro.campaigns.runner import execute_job
        from repro.cluster.supervisor import ClusterSupervisor

        payload = _gossip_payload(pace=0.03, extra_rounds=60)
        body = canonical_json({
            k: v for k, v in payload.items() if k != "job_hash"
        }).encode()

        async def go():
            supervisor = ClusterSupervisor(
                str(tmp_path / "store"), replicas=2,
                port=19000 + os.getpid() % 500,
                workers=1, lease_ttl=1.0,
            )
            supervisor.start()
            try:
                assert await supervisor.wait_healthy(60)
                ports = [supervisor.replica_port(0), supervisor.replica_port(1)]

                async def submit(port):
                    try:
                        return await http_request(
                            "127.0.0.1", port, "POST", "/jobs?wait=1",
                            body, timeout=120,
                        )
                    except (
                        OSError,
                        asyncio.IncompleteReadError,
                        IndexError,  # EOF before a status line
                        ValueError,
                    ):
                        return None  # the killed replica's socket died

                task_a = asyncio.ensure_future(submit(ports[0]))
                await asyncio.sleep(0.5)
                task_b = asyncio.ensure_future(submit(ports[1]))
                await asyncio.sleep(1.0)
                supervisor.kill_replica(0)  # machine death mid-execution
                answer = await asyncio.wait_for(task_b, 120)
                await task_a
                assert answer is not None
                status, _, resp = answer
                assert status == 200
                record = json.loads(resp)
                assert record["status"] == "ok"
                metrics = await supervisor.cluster_metrics()
                assert metrics["alive"] == 1
                assert metrics["counters"].get("lease_takeovers", 0) >= 1
                assert ArtifactStore(tmp_path / "store").verify() == []
                return record

            finally:
                supervisor.stop()

        record = asyncio.run(go())
        # the survivor's re-execution matches a clean single-process run
        local = execute_job(JobSpec.from_payload(payload).payload())
        assert local["status"] == "ok"
        assert local["result"] == record["result"]
