"""Service-level determinism, dedupe, quota and SSE-cancellation tests.

The heavy lifting happens on a thread-backed executor (monkeypatched in
place of the spawn pool) so the admission/dedupe/streaming logic is
exercised at full speed; one opt-in slow test and the CI smoke script
(``python -m repro.service.smoke``) cover the real process pool.
"""

import asyncio
import json
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.campaigns.runner import execute_job_async, run_campaign
from repro.campaigns.spec import CampaignSpec, JobSpec, canonical_json
from repro.campaigns.store import ArtifactStore, deterministic_view
from repro.runtime.telemetry import EventStream, JobEvent
from repro.service.http import serve
from repro.service.jobs import JobManager, TokenBucket
from repro.service.loadgen import http_request
from repro.service.workload import gossip_campaign_spec, gossip_sum_job


def _thread_backed(monkeypatch, workers: int = 2) -> None:
    """Swap the spawn pool for threads: same executor protocol, no
    process startup cost — the admission logic cannot tell."""
    monkeypatch.setattr(
        JobManager, "_make_executor",
        lambda self: ThreadPoolExecutor(max_workers=workers),
    )


def _payload(**overrides) -> dict:
    base = {
        "campaign": "svc-test",
        "job": "repro.campaigns.testing.ok_job",
        "params": {"value": 1, "draws": 4},
        "seed_index": 0,
        "index": 0,
        "entropy": 11,
        "job_hash": "",
    }
    base.update(overrides)
    return base


def _gossip_payload(**params) -> dict:
    merged = {"n": 12, "k": 4}
    merged.update(params)
    return _payload(
        job="repro.service.workload.gossip_sum_job", params=merged
    )


# ----------------------------------------------------------------------
# token bucket
# ----------------------------------------------------------------------
class TestTokenBucket:
    def test_burst_then_refill(self):
        now = [0.0]
        bucket = TokenBucket(2, 1.0, clock=lambda: now[0])
        assert bucket.try_acquire() and bucket.try_acquire()
        assert not bucket.try_acquire()  # burst exhausted
        now[0] = 1.5
        assert bucket.try_acquire()  # 1.5 tokens refilled
        assert not bucket.try_acquire()

    def test_refill_caps_at_burst(self):
        now = [0.0]
        bucket = TokenBucket(3, 10.0, clock=lambda: now[0])
        now[0] = 100.0
        for _ in range(3):
            assert bucket.try_acquire()
        assert not bucket.try_acquire()

    def test_zero_rate_is_a_fixed_budget(self):
        now = [0.0]
        bucket = TokenBucket(1, 0.0, clock=lambda: now[0])
        assert bucket.try_acquire()
        now[0] = 1e9
        assert not bucket.try_acquire()

    def test_validation(self):
        with pytest.raises(ValueError):
            TokenBucket(0, 1.0)
        with pytest.raises(ValueError):
            TokenBucket(1, -1.0)


# ----------------------------------------------------------------------
# gossip workload
# ----------------------------------------------------------------------
class TestGossipWorkload:
    def test_deterministic_under_equal_seed(self):
        import numpy as np

        a = gossip_sum_job(rng=np.random.default_rng(7), n=20, k=8)
        b = gossip_sum_job(rng=np.random.default_rng(7), n=20, k=8)
        assert a == b

    def test_estimates_the_sum(self):
        import numpy as np

        out = gossip_sum_job(rng=np.random.default_rng(1), n=24, k=256)
        assert out["converged"]
        # k=256 draws: relative error concentrates near 1/sqrt(k) ~ 6%
        assert out["rel_error"] < 0.4
        assert out["rounds"] >= 1

    def test_validation(self):
        import numpy as np

        with pytest.raises(ValueError):
            gossip_sum_job(rng=np.random.default_rng(0), n=1)
        with pytest.raises(ValueError):
            gossip_sum_job(rng=np.random.default_rng(0), k=0)

    def test_campaign_spec_expands_to_seeded_replicates(self):
        spec = gossip_campaign_spec(jobs=5, n=16, k=4)
        jobs = spec.expand()
        assert len(jobs) == 5
        assert len({j.job_hash for j in jobs}) == 5
        assert all(j.params == {"n": 16, "k": 4} for j in jobs)


# ----------------------------------------------------------------------
# typed job events
# ----------------------------------------------------------------------
class TestJobEvents:
    def test_round_trips_through_the_event_stream(self):
        stream = EventStream()
        stream.emit(JobEvent(job_hash="abc", status="queued"))
        stream.emit(
            JobEvent(job_hash="abc", status="done", detail={"content_hash": "x"})
        )
        text = stream.dumps()
        loaded = EventStream.loads(text)
        assert loaded.dumps() == text
        assert [e.status for e in loaded] == ["queued", "done"]
        assert isinstance(loaded.events[0], JobEvent)

    def test_terminal_statuses(self):
        assert JobEvent("h", "done").terminal
        assert JobEvent("h", "cached").terminal
        assert JobEvent("h", "failed").terminal
        assert not JobEvent("h", "queued").terminal
        assert not JobEvent("h", "retry").terminal


# ----------------------------------------------------------------------
# async bridge
# ----------------------------------------------------------------------
class TestExecuteJobAsync:
    def test_ok_path(self):
        async def go():
            with ThreadPoolExecutor(2) as pool:
                return await execute_job_async(pool, _payload_with_hash())

        record = asyncio.run(go())
        assert record["status"] == "ok"
        assert record["attempts"] == 1

    def test_retries_with_async_backoff(self, tmp_path):
        payload = _payload_with_hash(
            job="repro.campaigns.testing.flaky_job",
            params={"value": 3, "fail_first": 2, "scratch_dir": str(tmp_path)},
        )
        retried = []

        async def go():
            with ThreadPoolExecutor(2) as pool:
                return await execute_job_async(
                    pool, payload, retries=3, backoff=0.001,
                    on_retry=lambda attempt, error: retried.append(attempt),
                )

        record = asyncio.run(go())
        assert record["status"] == "ok"
        assert record["attempts"] == 3  # two injected flakes + success
        assert retried == [1, 2]
        assert (tmp_path / "attempts-3").read_text() == "3"

    def test_exhausted_budget_reports_error(self):
        payload = _payload_with_hash(
            job="repro.campaigns.testing.erroring_job",
            params={"value": 9, "fail_values": [9]},
        )

        async def go():
            with ThreadPoolExecutor(2) as pool:
                return await execute_job_async(
                    pool, payload, retries=1, backoff=0.0
                )

        record = asyncio.run(go())
        assert record["status"] == "error"
        assert record["attempts"] == 2
        assert "injected failure" in record["error"]


def _payload_with_hash(**overrides) -> dict:
    payload = _payload(**overrides)
    payload["job_hash"] = JobSpec.from_payload(payload).job_hash
    return payload


# ----------------------------------------------------------------------
# job manager: dedupe, determinism, quotas, backpressure
# ----------------------------------------------------------------------
class TestJobManager:
    def test_sequential_resubmission_is_a_cache_hit(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)

        async def go():
            manager = JobManager(tmp_path / "store")
            manager.start()
            first = manager.submit(_gossip_payload())
            record1 = await first.result()
            second = manager.submit(_gossip_payload())
            record2 = await second.result()
            await manager.close()
            return first, record1, second, record2

        first, record1, second, record2 = asyncio.run(go())
        assert first.outcome == "accepted"
        assert second.outcome == "cached"
        # bitwise-identical responses: same canonical JSON, same hash
        assert canonical_json(record1) == canonical_json(record2)
        store = ArtifactStore(tmp_path / "store")
        lines = [
            ln for ln in
            store.artifacts_path.read_text().splitlines() if ln.strip()
        ]
        assert len(lines) == 1  # exactly one execution reached the store

    def test_concurrent_identical_submissions_share_one_execution(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        N = 6

        async def go():
            manager = JobManager(tmp_path / "store")
            manager.start()
            subs = [manager.submit(_gossip_payload()) for _ in range(N)]
            records = await asyncio.gather(*(s.result() for s in subs))
            counters = dict(manager.metrics.counters)
            await manager.close()
            return subs, records, counters

        subs, records, counters = asyncio.run(go())
        assert counters["jobs_submitted"] == N
        assert counters.get("jobs_admitted", 0) == 1
        # the acceptance identity: everything after the first submission
        # was answered without executing
        assert (
            counters.get("cache_hits", 0) + counters.get("inflight_dedups", 0)
            == N - 1
        )
        bodies = {canonical_json(r) for r in records}
        assert len(bodies) == 1  # bitwise-identical responses
        store = ArtifactStore(tmp_path / "store")
        assert len(store.completed_hashes()) == 1
        assert store.verify() == []

    def test_artifact_is_byte_identical_to_run_campaign(
        self, tmp_path, monkeypatch
    ):
        """Service execution and batch execution of one spec produce the
        same content-addressed artifact."""
        _thread_backed(monkeypatch)
        spec = CampaignSpec(
            name="svc-vs-batch",
            job="repro.service.workload.gossip_sum_job",
            fixed={"n": 14, "k": 4},
            seeds=1,
            entropy=99,
        )
        result = run_campaign(spec, tmp_path / "batch", workers=0)
        assert result.ok
        batch_record = next(
            iter(ArtifactStore(tmp_path / "batch").records().values())
        )

        async def go():
            manager = JobManager(tmp_path / "serve")
            manager.start()
            sub = manager.submit(spec.expand()[0].payload())
            record = await sub.result()
            await manager.close()
            return record

        service_record = asyncio.run(go())
        assert service_record["job_hash"] == batch_record["job_hash"]
        assert service_record["content_hash"] == batch_record["content_hash"]
        assert canonical_json(
            deterministic_view(service_record)
        ) == canonical_json(deterministic_view(batch_record))

    def test_per_tenant_quota(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)

        async def go():
            manager = JobManager(
                tmp_path / "store", quota_burst=2, quota_rate=0.0
            )
            manager.start()
            outcomes_a = [
                manager.submit(_payload(index=i), tenant="a").outcome
                for i in range(4)
            ]
            outcome_b = manager.submit(_payload(index=50), tenant="b").outcome
            counters = dict(manager.metrics.counters)
            await manager.close()
            return outcomes_a, outcome_b, counters

        outcomes_a, outcome_b, counters = asyncio.run(go())
        assert outcomes_a == [
            "accepted", "accepted", "quota_rejected", "quota_rejected"
        ]
        assert outcome_b == "accepted"  # buckets are per tenant
        assert counters["quota_rejections"] == 2

    def test_cached_hits_are_not_charged_to_the_quota(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            manager = JobManager(
                tmp_path / "store", quota_burst=1, quota_rate=0.0
            )
            manager.start()
            first = manager.submit(_gossip_payload(), tenant="t")
            await first.result()
            # budget is exhausted, but replays of completed work are free
            outcomes = [
                manager.submit(_gossip_payload(), tenant="t").outcome
                for _ in range(3)
            ]
            await manager.close()
            return first.outcome, outcomes

        first_outcome, outcomes = asyncio.run(go())
        assert first_outcome == "accepted"
        assert outcomes == ["cached"] * 3

    def test_backpressure_bounds_admissions(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)

        async def go():
            manager = JobManager(tmp_path / "store", queue_limit=2)
            manager.start()
            outcomes = [
                manager.submit(
                    _payload(
                        job="repro.campaigns.testing.hanging_job",
                        params={"value": i, "hang_values": [i], "sleep": 0.3},
                        index=i,
                    )
                ).outcome
                for i in range(4)
            ]
            counters = dict(manager.metrics.counters)
            # drain so close() has nothing to cancel mid-write
            await asyncio.gather(
                *(f for f in manager._inflight.values()),
                return_exceptions=True,
            )
            await manager.close()
            return outcomes, counters

        outcomes, counters = asyncio.run(go())
        assert outcomes[:2] == ["accepted", "accepted"]
        assert outcomes[2:] == [
            "backpressure_rejected", "backpressure_rejected"
        ]
        assert counters["backpressure_rejections"] == 2
        assert counters["jobs_admitted"] == 2

    def test_failed_job_records_and_events(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)
        payload = _payload(
            job="repro.campaigns.testing.erroring_job",
            params={"value": 5, "fail_values": [5]},
        )

        async def go():
            manager = JobManager(tmp_path / "store", retries=1, backoff=0.0)
            manager.start()
            sub = manager.submit(payload)
            record = await sub.result()
            statuses = [e.status for e in manager.stream(sub.job_hash)]
            counters = dict(manager.metrics.counters)
            await manager.close()
            return record, statuses, counters

        record, statuses, counters = asyncio.run(go())
        assert record["status"] == "failed"
        assert record["attempts"] == 2
        assert statuses[0] == "queued" and statuses[-1] == "failed"
        assert "retry" in statuses
        assert counters["jobs_failed"] == 1
        # the failure is in the store, and does not count as completed
        store = ArtifactStore(tmp_path / "store")
        assert store.completed_hashes() == set()
        assert len(store.records()) == 1

    def test_completed_jobs_survive_a_restart(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)

        async def run_one():
            manager = JobManager(tmp_path / "store")
            manager.start()
            sub = manager.submit(_gossip_payload())
            record = await sub.result()
            await manager.close()
            return sub.outcome, record

        first_outcome, record1 = asyncio.run(run_one())
        second_outcome, record2 = asyncio.run(run_one())
        assert (first_outcome, second_outcome) == ("accepted", "cached")
        assert canonical_json(record1) == canonical_json(record2)

    def test_late_subscriber_to_a_completed_job_terminates(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)

        async def go():
            manager = JobManager(tmp_path / "store")
            manager.start()
            sub = manager.submit(_gossip_payload())
            await sub.result()
            queue = manager.subscribe(sub.job_hash)
            events = []
            while True:
                event = await asyncio.wait_for(queue.get(), 5)
                if event is None:
                    break
                events.append(event)
            await manager.close()
            return events

        events = asyncio.run(go())
        assert events[-1].status == "done"


# ----------------------------------------------------------------------
# HTTP layer over real sockets
# ----------------------------------------------------------------------
async def _with_server(manager, fn):
    manager.start()
    server = await serve(manager, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        return await fn(port)
    finally:
        server.close()
        await server.wait_closed()
        await manager.close()


class TestHTTP:
    def test_submit_wait_then_cached_is_byte_identical(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        body = canonical_json(
            {
                "campaign": "http-test",
                "job": "repro.service.workload.gossip_sum_job",
                "params": {"n": 12, "k": 4},
                "entropy": 3,
            }
        ).encode()

        async def scenario(port):
            first = await http_request(
                "127.0.0.1", port, "POST", "/jobs?wait=1", body
            )
            second = await http_request(
                "127.0.0.1", port, "POST", "/jobs?wait=1", body
            )
            return first, second

        (s1, h1, b1), (s2, h2, b2) = asyncio.run(
            _with_server(JobManager(tmp_path / "store"), scenario)
        )
        assert (s1, s2) == (200, 200)
        assert h1["x-repro-outcome"] == "accepted"
        assert h2["x-repro-outcome"] == "cached"
        assert b1 == b2  # byte-identical across executed/cached
        record = json.loads(b1)
        assert record["status"] == "ok"

    def test_concurrent_http_submissions_share_one_execution(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        N = 5
        body = canonical_json(
            {
                "campaign": "http-test",
                "job": "repro.service.workload.gossip_sum_job",
                "params": {"n": 12, "k": 4},
                "entropy": 4,
            }
        ).encode()
        manager = JobManager(tmp_path / "store")

        async def scenario(port):
            return await asyncio.gather(
                *(
                    http_request(
                        "127.0.0.1", port, "POST", "/jobs?wait=1", body
                    )
                    for _ in range(N)
                )
            )

        responses = asyncio.run(_with_server(manager, scenario))
        assert all(status == 200 for status, _, _ in responses)
        assert len({resp_body for _, _, resp_body in responses}) == 1
        counters = manager.metrics.counters
        assert (
            counters.get("cache_hits", 0) + counters.get("inflight_dedups", 0)
            == N - 1
        )
        assert len(ArtifactStore(tmp_path / "store").completed_hashes()) == 1

    def test_sse_disconnect_mid_stream_does_not_poison_the_pool(
        self, tmp_path, monkeypatch
    ):
        """A client that vanishes mid-SSE must neither cancel the job it
        was watching nor break later submissions."""
        _thread_backed(monkeypatch)
        manager = JobManager(tmp_path / "store")
        slow = _payload(
            job="repro.campaigns.testing.hanging_job",
            params={"value": 1, "hang_values": [1], "sleep": 0.4},
        )

        async def scenario(port):
            submission = manager.submit(slow)
            job_hash = submission.job_hash
            # open the SSE stream, read one frame, vanish without closing
            # the HTTP exchange properly
            reader, writer = await asyncio.open_connection("127.0.0.1", port)
            writer.write(
                f"GET /jobs/{job_hash}/events HTTP/1.1\r\nHost: x\r\n\r\n"
                .encode()
            )
            await writer.drain()
            await reader.readline()  # status line arrives => stream is live
            writer.transport.abort()  # hard disconnect, no goodbye
            # the watched job still completes
            record = await asyncio.wait_for(submission.result(), 10)
            assert record["status"] == "ok"
            # the pool still takes new work
            follow_up = manager.submit(_gossip_payload())
            follow_record = await asyncio.wait_for(follow_up.result(), 10)
            assert follow_record["status"] == "ok"
            # and the dead client's subscription was reaped
            for _ in range(50):
                if not manager._subscribers:
                    break
                await asyncio.sleep(0.05)
            assert not manager._subscribers
            return True

        assert asyncio.run(_with_server(manager, scenario))

    def test_campaign_submission_expands_server_side(
        self, tmp_path, monkeypatch
    ):
        _thread_backed(monkeypatch)
        spec = gossip_campaign_spec(jobs=3, n=12, k=4, entropy=17)
        body = json.dumps(spec.to_dict()).encode()

        async def scenario(port):
            return await http_request(
                "127.0.0.1", port, "POST", "/campaigns?wait=1", body
            )

        status, _, resp = asyncio.run(
            _with_server(JobManager(tmp_path / "store"), scenario)
        )
        assert status == 200
        summary = json.loads(resp)
        assert summary["total"] == 3
        assert summary["ok"] == 3
        assert summary["outcomes"] == {"accepted": 3}
        assert len(ArtifactStore(tmp_path / "store").completed_hashes()) == 3

    def test_error_codes(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)

        async def scenario(port):
            results = {}
            results["bad_json"] = await http_request(
                "127.0.0.1", port, "POST", "/jobs", b"{nope"
            )
            results["bad_field"] = await http_request(
                "127.0.0.1", port, "POST", "/jobs",
                json.dumps({"job": "x.y", "bogus": 1}).encode(),
            )
            results["unknown_job"] = await http_request(
                "127.0.0.1", port, "GET", "/jobs/" + "0" * 64
            )
            results["unknown_route"] = await http_request(
                "127.0.0.1", port, "GET", "/frobnicate"
            )
            results["wrong_method"] = await http_request(
                "127.0.0.1", port, "GET", "/jobs"
            )
            return results

        results = asyncio.run(
            _with_server(JobManager(tmp_path / "store"), scenario)
        )
        assert results["bad_json"][0] == 400
        assert results["bad_field"][0] == 400
        assert results["unknown_job"][0] == 404
        assert results["unknown_route"][0] == 404
        assert results["wrong_method"][0] == 405

    def test_quota_rejection_surfaces_as_429(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)
        manager = JobManager(
            tmp_path / "store", quota_burst=1, quota_rate=0.0
        )

        async def scenario(port):
            out = []
            for i in range(2):
                body = canonical_json(_payload(index=i)).encode()
                out.append(
                    await http_request(
                        "127.0.0.1", port, "POST", "/jobs?wait=1", body,
                        headers={"X-Tenant": "t"},
                    )
                )
            return out

        (s1, _, _), (s2, h2, _) = asyncio.run(_with_server(manager, scenario))
        assert s1 == 200
        assert s2 == 429
        assert h2["x-repro-outcome"] == "quota_rejected"

    def test_healthz_and_metrics(self, tmp_path, monkeypatch):
        _thread_backed(monkeypatch)

        async def scenario(port):
            health = await http_request("127.0.0.1", port, "GET", "/healthz")
            metrics = await http_request("127.0.0.1", port, "GET", "/metrics")
            return health, metrics

        (hs, _, hb), (ms, _, mb) = asyncio.run(
            _with_server(JobManager(tmp_path / "store"), scenario)
        )
        assert hs == 200 and json.loads(hb)["ok"] is True
        assert ms == 200
        snap = json.loads(mb)
        assert "counters" in snap and "gauges" in snap


# ----------------------------------------------------------------------
# the real spawn pool (opt-in: slow)
# ----------------------------------------------------------------------
@pytest.mark.slow
def test_spawn_pool_end_to_end(tmp_path):
    """One submission through the real process pool — no monkeypatching."""

    async def go():
        manager = JobManager(tmp_path / "store", workers=1)
        manager.start()
        sub = manager.submit(_gossip_payload())
        record = await asyncio.wait_for(sub.result(), 120)
        await manager.close()
        return record

    record = asyncio.run(go())
    assert record["status"] == "ok"
    assert ArtifactStore(tmp_path / "store").verify() == []
