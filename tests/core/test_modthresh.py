"""Unit tests for repro.core.modthresh (Definition 3.6)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.modthresh import (
    FALSE,
    TRUE,
    And,
    ModAtom,
    ModThreshProgram,
    Not,
    ThreshAtom,
    at_least,
    count_is_mod,
    exactly,
    fewer_than,
)
from repro.core.multiset import Multiset


class TestAtoms:
    def test_thresh_atom_semantics(self):
        atom = ThreshAtom("a", 2)
        assert atom.evaluate(Multiset({"a": 1}))
        assert not atom.evaluate(Multiset({"a": 2}))
        assert atom.evaluate(Multiset({"b": 5}))

    def test_thresh_atom_requires_positive_t(self):
        with pytest.raises(ValueError):
            ThreshAtom("a", 0)

    def test_mod_atom_semantics(self):
        atom = ModAtom("a", 1, 3)
        assert atom.evaluate(Multiset({"a": 4}))
        assert not atom.evaluate(Multiset({"a": 3}))

    def test_mod_atom_validation(self):
        with pytest.raises(ValueError):
            ModAtom("a", 3, 3)
        with pytest.raises(ValueError):
            ModAtom("a", 0, 0)

    def test_atoms_iteration(self):
        prop = And((ThreshAtom("a", 1), Not(ModAtom("b", 0, 2))))
        kinds = {type(a) for a in prop.atoms()}
        assert kinds == {ThreshAtom, ModAtom}


class TestPropositionAlgebra:
    def test_operators(self):
        p = at_least("a", 1) & fewer_than("b", 2)
        assert p.evaluate(Multiset({"a": 1}))
        assert not p.evaluate(Multiset({"a": 1, "b": 2}))

        q = at_least("a", 3) | at_least("b", 1)
        assert q.evaluate(Multiset({"b": 1}))
        assert not q.evaluate(Multiset({"a": 2}))

        r = ~at_least("a", 1)
        assert r.evaluate(Multiset({"b": 1}))

    def test_constants(self):
        assert TRUE.evaluate(Multiset({"a": 1}))
        assert not FALSE.evaluate(Multiset({"a": 1}))

    def test_exactly_sugar(self):
        p = exactly("a", 2)
        assert p.evaluate(Multiset({"a": 2}))
        assert not p.evaluate(Multiset({"a": 1}))
        assert not p.evaluate(Multiset({"a": 3}))

    def test_exactly_zero(self):
        assert exactly("a", 0).evaluate(Multiset({"b": 1}))
        assert not exactly("a", 0).evaluate(Multiset({"a": 1}))

    def test_at_least_zero_is_true(self):
        assert at_least("a", 0) is TRUE

    def test_count_is_mod(self):
        assert count_is_mod("a", 5, 3).evaluate(Multiset({"a": 2}))

    def test_callable_protocol(self):
        assert at_least("a", 1)(["a", "b"])


class TestProgram:
    def prog(self):
        return ModThreshProgram(
            clauses=(
                (at_least("fail", 1), "fail"),
                (at_least("red", 1) & at_least("blue", 1), "fail"),
                (at_least("red", 1), "blue"),
            ),
            default="blank",
            name="demo",
        )

    def test_cascade_order(self):
        p = self.prog()
        assert p.evaluate(Multiset({"fail": 1, "red": 1})) == "fail"
        assert p.evaluate(Multiset({"red": 2})) == "blue"
        assert p.evaluate(Multiset({"green": 1})) == "blank"

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            self.prog().evaluate([])

    def test_symmetry_automatic(self):
        p = self.prog()
        assert p.evaluate(["red", "blue"]) == p.evaluate(["blue", "red"])

    def test_atoms_deduplicated(self):
        p = self.prog()
        atoms = p.atoms()
        assert len(atoms) == len(set(atoms))
        assert ThreshAtom("red", 1) in atoms

    def test_moduli_and_thresholds(self):
        p = ModThreshProgram(
            clauses=(
                (count_is_mod("a", 0, 2) & count_is_mod("a", 1, 3), "x"),
                (fewer_than("a", 5), "y"),
            ),
            default="z",
        )
        assert sorted(p.moduli("a")) == [2, 3]
        assert p.thresholds("a") == [5]
        assert p.moduli("b") == []

    def test_results_set(self):
        assert self.prog().results() == {"fail", "blue", "blank"}

    def test_invalid_clause_rejected(self):
        with pytest.raises(TypeError):
            ModThreshProgram(clauses=(("not a prop", "r"),), default="d")

    def test_agrees_with(self):
        p = self.prog()
        assert p.agrees_with(p.evaluate, ["red", "blue", "fail"], max_len=3)


@settings(max_examples=60)
@given(st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=12))
def test_mod_atom_matches_python_mod(seq):
    ms = Multiset(seq)
    atom = ModAtom("a", 1, 2)
    assert atom.evaluate(ms) == (seq.count("a") % 2 == 1)


@settings(max_examples=60)
@given(
    st.lists(st.sampled_from(["a", "b"]), min_size=1, max_size=12),
    st.integers(min_value=1, max_value=6),
)
def test_thresh_atom_matches_python_count(seq, t):
    assert ThreshAtom("a", t).evaluate(Multiset(seq)) == (seq.count("a") < t)
