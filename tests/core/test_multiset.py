"""Unit tests for repro.core.multiset."""

import pytest
from hypothesis import given, strategies as st

from repro.core.multiset import Multiset, as_multiset, iter_multisets, iter_sequences


class TestMultisetBasics:
    def test_from_iterable(self):
        ms = Multiset(["a", "b", "a"])
        assert ms["a"] == 2
        assert ms["b"] == 1
        assert ms["c"] == 0
        assert ms.size == 3

    def test_from_mapping_drops_zeros(self):
        ms = Multiset({"a": 2, "b": 0})
        assert "b" not in ms
        assert len(ms) == 1

    def test_negative_multiplicity_rejected(self):
        with pytest.raises(ValueError):
            Multiset({"a": -1})

    def test_multiplicity_is_paper_mu(self):
        ms = Multiset({"x": 3})
        assert ms.multiplicity("x") == 3
        assert ms.multiplicity("y") == 0

    def test_equality_across_construction_paths(self):
        assert Multiset(["a", "a", "b"]) == Multiset({"a": 2, "b": 1})

    def test_hash_consistency(self):
        assert hash(Multiset(["a", "b"])) == hash(Multiset(["b", "a"]))
        d = {Multiset(["a"]): 1}
        assert d[Multiset({"a": 1})] == 1

    def test_add_returns_new(self):
        ms = Multiset({"a": 1})
        ms2 = ms.add("a")
        assert ms["a"] == 1
        assert ms2["a"] == 2

    def test_union_is_multiset_sum(self):
        a = Multiset({"x": 1, "y": 2})
        b = Multiset({"y": 1, "z": 1})
        assert a.union(b) == Multiset({"x": 1, "y": 3, "z": 1})

    def test_elements_is_sorted_realisation(self):
        ms = Multiset({"b": 1, "a": 2})
        assert ms.elements() == ["a", "a", "b"]

    def test_support(self):
        assert Multiset({"a": 2, "b": 1}).support() == {"a", "b"}

    def test_empty_multiset(self):
        ms = Multiset()
        assert ms.size == 0
        assert list(ms) == []


class TestCoercion:
    def test_as_multiset_passthrough(self):
        ms = Multiset({"a": 1})
        assert as_multiset(ms) is ms

    def test_as_multiset_from_sequence(self):
        assert as_multiset(["a", "a"]) == Multiset({"a": 2})

    def test_as_multiset_from_dict(self):
        assert as_multiset({"a": 2}) == Multiset({"a": 2})


class TestEnumerators:
    def test_iter_sequences_count(self):
        assert len(list(iter_sequences(["a", "b"], 3))) == 8

    def test_iter_multisets_counts(self):
        # multisets of size 1..3 over a 2-letter alphabet: 2 + 3 + 4 = 9
        assert len(list(iter_multisets(["a", "b"], 3))) == 9

    def test_iter_multisets_min_size(self):
        out = list(iter_multisets(["a", "b"], 2, min_size=2))
        assert all(ms.size == 2 for ms in out)
        assert len(out) == 3

    def test_iter_multisets_all_distinct(self):
        out = list(iter_multisets(["a", "b", "c"], 4))
        assert len(out) == len(set(out))


@given(st.lists(st.sampled_from("abc"), min_size=0, max_size=12))
def test_multiset_size_matches_list_length(items):
    assert Multiset(items).size == len(items)


@given(
    st.lists(st.sampled_from("abc"), min_size=0, max_size=8),
    st.lists(st.sampled_from("abc"), min_size=0, max_size=8),
)
def test_union_commutes(xs, ys):
    a, b = Multiset(xs), Multiset(ys)
    assert a.union(b) == b.union(a)


@given(st.lists(st.sampled_from("ab"), min_size=1, max_size=10))
def test_permutation_invariance_of_equality(items):
    assert Multiset(items) == Multiset(list(reversed(items)))
