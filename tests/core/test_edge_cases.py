"""Edge-case coverage across the core modules."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.convert import _CounterSpace, modthresh_to_parallel
from repro.core.modthresh import ModThreshProgram, at_least, count_is_mod
from repro.core.multiset import Multiset
from repro.core.sequential import SequentialProgram


class TestCounterSpace:
    def test_membership(self):
        space = _CounterSpace([2, 3], [1, 2])
        from repro.core.convert import INFINITY

        assert ((0, 0), (2, 1)) in space
        assert ((1, INFINITY), (0, 0)) in space
        assert ((2, 0), (0, 0)) not in space  # mod value out of range
        assert ((0, 5), (0, 0)) not in space  # sat value out of range
        assert "junk" not in space
        assert ((0, 0),) not in space  # wrong arity

    def test_len_and_iter(self):
        space = _CounterSpace([2], [1])
        assert len(space) == 2 * 2  # M * (T + 1)
        elems = list(space)
        assert len(elems) == 4
        assert all(e in space for e in elems)

    def test_union_with_extra(self):
        space = _CounterSpace([1], [1]) | {"NIL"}
        assert "NIL" in space
        from repro.core.convert import INFINITY

        assert ((0, INFINITY),) in space
        assert len(space) == 2 + 1
        assert "NIL" in list(space)


class TestSequentialEdges:
    def test_reachable_states_detects_escape(self):
        sp = SequentialProgram(
            frozenset({0}), 0, lambda w, q: w + q, lambda w: w
        )
        with pytest.raises(ValueError):
            sp.reachable_states([1])

    def test_fold_empty_returns_start(self):
        sp = SequentialProgram(frozenset({0, 1}), 0, lambda w, q: w | q, lambda w: w)
        assert sp.fold([]) == 0


class TestModthreshParallelEdges:
    def test_or_and_const_propositions_convert(self):
        from repro.core.modthresh import TRUE

        mt = ModThreshProgram(
            clauses=(
                (at_least("a", 1) | count_is_mod("b", 1, 2), "x"),
                (TRUE, "y"),
            ),
            default="z",
        )
        pp = modthresh_to_parallel(mt, ["a", "b"])
        assert pp.evaluate(Multiset({"b": 1})) == "x"
        assert pp.evaluate(Multiset({"b": 2})) == "y"

    def test_negation_converts(self):
        mt = ModThreshProgram(
            clauses=((~at_least("a", 1), "none"),), default="some"
        )
        pp = modthresh_to_parallel(mt, ["a", "b"])
        assert pp.evaluate(Multiset({"b": 3})) == "none"
        assert pp.evaluate(Multiset({"a": 1})) == "some"


class TestBoundedDegreeProperty:
    @settings(max_examples=20, deadline=None)
    @given(
        st.lists(st.sampled_from([0, 1]), min_size=1, max_size=4),
        st.sampled_from([0, 1]),
    )
    def test_embedding_agrees_with_direct(self, neighbors, own):
        """For any neighbour list within the bound, the FSSGA embedding of
        a symmetric bounded-degree automaton matches direct execution."""
        from collections import Counter

        from repro.core.bounded_degree import (
            BoundedDegreeAutomaton,
            as_fssga,
        )

        def f(o, padded):
            ones = sum(1 for q in padded if q == 1)
            zeros = sum(1 for q in padded if q == 0)
            if ones > zeros:
                return 1
            if zeros > ones:
                return 0
            return o

        bd = BoundedDegreeAutomaton({0, 1}, 4, f)
        fssga = as_fssga(bd)
        assert fssga.transition(own, Counter(neighbors)) == bd.transition(
            own, neighbors
        )
