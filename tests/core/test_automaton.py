"""Unit tests for repro.core.automaton (Definitions 3.10/3.11)."""

from collections import Counter

import pytest

from repro.core.automaton import FSSGA, NeighborhoodView, ProbabilisticFSSGA
from repro.core.modthresh import ModThreshProgram, at_least


class TestNeighborhoodView:
    def test_thresh_queries(self):
        v = NeighborhoodView(Counter({"a": 2, "b": 1}))
        assert v.at_least("a", 2)
        assert not v.at_least("a", 3)
        assert v.fewer_than("b", 2)
        assert v.any("a", "z")
        assert v.none("z", "w")
        assert v.exactly("a", 2)
        assert not v.exactly("a", 1)
        assert v.exactly("z", 0)

    def test_mod_queries(self):
        v = NeighborhoodView(Counter({"a": 5}))
        assert v.count_mod("a", 3) == 2
        assert v.parity("a") == 1
        assert v.count_mod("missing", 4) == 0

    def test_trace_records_atoms(self):
        v = NeighborhoodView(Counter({"a": 1}))
        v.at_least("a", 2)
        v.count_mod("b", 3)
        assert ("thresh", "a", 2) in v.trace
        assert ("mod", "b", 3) in v.trace

    def test_invalid_atoms_rejected(self):
        v = NeighborhoodView(Counter())
        with pytest.raises(ValueError):
            v.fewer_than("a", 0)
        with pytest.raises(ValueError):
            v.count_mod("a", 0)

    def test_support(self):
        v = NeighborhoodView(Counter({"a": 1, "b": 0}))
        assert v.support() == frozenset({"a"})
        assert ("support",) in v.trace

    def test_group_queries(self):
        v = NeighborhoodView(Counter({"a": 1, "b": 1}))
        assert v.group_at_least(["a", "b"], 2)
        assert not v.group_at_least(["a", "b"], 3)
        assert v.group_fewer_than(["a"], 2)
        assert v.group_at_least([], 0)

    def test_predicate_queries(self):
        v = NeighborhoodView(Counter({("x", 1): 2, ("y", 2): 1}))
        assert v.any_matching(lambda q: q[1] == 2)
        assert not v.any_matching(lambda q: q[1] == 9)
        assert v.count_matching_at_least(lambda q: True, 3)
        assert not v.count_matching_at_least(lambda q: q[0] == "x", 3)

    def test_all_neighbors_in(self):
        v = NeighborhoodView(Counter({"a": 2}))
        assert v.all_neighbors_in(["a"], ["a", "b", "c"])
        assert not v.all_neighbors_in(["b"], ["a", "b", "c"])


class TestFSSGA:
    def epidemic(self):
        return FSSGA(
            {0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0
        )

    def test_rule_transition(self):
        aut = self.epidemic()
        assert aut.transition(0, Counter({1: 1})) == 1
        assert aut.transition(0, Counter({0: 3})) == 0
        assert aut.transition(1, Counter({0: 1})) == 1

    def test_empty_neighbourhood_keeps_state(self):
        assert self.epidemic().transition(0, Counter()) == 0

    def test_own_state_outside_q_rejected(self):
        with pytest.raises(ValueError):
            self.epidemic().transition(7, Counter({0: 1}))

    def test_output_outside_q_rejected(self):
        bad = FSSGA({0, 1}, lambda own, view: 99)
        with pytest.raises(ValueError):
            bad.transition(0, Counter({1: 1}))

    def test_from_programs(self):
        prog = ModThreshProgram(
            clauses=((at_least("on", 1), "on"),), default="off"
        )
        aut = FSSGA.from_programs({"on": prog, "off": prog})
        assert aut.transition("off", Counter({"on": 1})) == "on"
        assert not aut.is_rule_based

    def test_from_programs_missing_state(self):
        prog = ModThreshProgram(clauses=(), default="x")
        with pytest.raises(ValueError):
            FSSGA({"x", "y"}, {"x": prog})

    def test_empty_alphabet_rejected(self):
        with pytest.raises(ValueError):
            FSSGA(set(), lambda own, view: own)

    def test_lazy_alphabet(self):
        class Space:
            def __contains__(self, q):
                return isinstance(q, int) and 0 <= q < 100

        aut = FSSGA(Space(), lambda own, view: own + 1 if own < 99 else own)
        assert aut.transition(5, Counter({1: 1})) == 6


class TestProbabilisticFSSGA:
    def coin(self):
        return ProbabilisticFSSGA(
            {"h", "t", "?"}, 2, lambda own, view, i: "h" if i == 0 else "t"
        )

    def test_draw_selects_function(self):
        aut = self.coin()
        assert aut.transition("?", Counter({"h": 1}), 0) == "h"
        assert aut.transition("?", Counter({"h": 1}), 1) == "t"

    def test_draw_range_validated(self):
        with pytest.raises(ValueError):
            self.coin().transition("?", Counter({"h": 1}), 2)

    def test_randomness_validated(self):
        with pytest.raises(ValueError):
            ProbabilisticFSSGA({"a"}, 0, lambda own, view, i: own)

    def test_program_mapping(self):
        prog = ModThreshProgram(clauses=(), default="a")
        progs = {("a", 0): prog, ("a", 1): prog}
        aut = ProbabilisticFSSGA({"a"}, 2, progs)
        assert aut.transition("a", Counter({"a": 1}), 1) == "a"

    def test_program_mapping_missing(self):
        prog = ModThreshProgram(clauses=(), default="a")
        with pytest.raises(ValueError):
            ProbabilisticFSSGA({"a"}, 2, {("a", 0): prog})

    def test_empty_neighbourhood_keeps_state(self):
        assert self.coin().transition("?", Counter(), 0) == "?"


class TestSymmetryByConstruction:
    """The API argument: rules only see multisets, so (S2) is automatic."""

    def test_rule_sees_only_counts(self):
        captured = []

        def rule(own, view):
            captured.append(dict(view._counts))
            return own

        aut = FSSGA({0, 1}, rule)
        aut.transition(0, Counter({0: 2, 1: 1}))
        aut.transition(0, Counter({1: 1, 0: 2}))
        assert captured[0] == captured[1]
