"""Tests for the Theorem 3.7 conversion cycle (Lemmas 3.5, 3.8, 3.9).

These are the paper's main technical results: sequential, parallel and
mod-thresh SM programs compute exactly the same function class, with
explicit constructions in each direction.
"""

import itertools

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.convert import (
    modthresh_to_parallel,
    modthresh_to_sequential,
    orbit_tail_and_period,
    parallel_to_sequential,
    sequential_to_modthresh,
    sequential_to_parallel,
)
from repro.core.modthresh import (
    ModThreshProgram,
    at_least,
    count_is_mod,
    fewer_than,
)
from repro.core.multiset import Multiset
from repro.core.parallel import ParallelProgram
from repro.core.sequential import SequentialProgram

# ----------------------------------------------------------------------
# a small zoo of SM functions, in different native formulations
# ----------------------------------------------------------------------


def seq_or():
    return SequentialProgram(
        frozenset({0, 1}), 0, lambda w, q: w | q, lambda w: w, name="or"
    )


def seq_parity():
    return SequentialProgram(
        frozenset({0, 1}), 0, lambda w, q: w ^ (1 if q == "x" else 0),
        lambda w: w, name="parity-of-x",
    )


def seq_threshold(t=3):
    def p(w, q):
        return min(w + (1 if q == "x" else 0), t)

    return SequentialProgram(
        frozenset(range(t + 1)), 0, p, lambda w: int(w >= t), name=f"thr{t}"
    )


def seq_constant():
    return SequentialProgram(
        frozenset({"w"}), "w", lambda w, q: w, lambda w: "const", name="const"
    )


def seq_mixed():
    """Parity of 'a' AND at least two 'b's — exercises mod and thresh."""
    def p(w, q):
        par, cnt = w
        if q == "a":
            par ^= 1
        if q == "b":
            cnt = min(cnt + 1, 2)
        return (par, cnt)

    working = frozenset((x, y) for x in (0, 1) for y in (0, 1, 2))
    return SequentialProgram(
        working, (0, 0), p, lambda w: (w[0] == 1 and w[1] >= 2), name="mixed"
    )


def mt_two_coloring():
    return ModThreshProgram(
        clauses=(
            (at_least("F", 1), "F"),
            (at_least("R", 1) & at_least("B", 1), "F"),
            (at_least("R", 1), "B"),
            (at_least("B", 1), "R"),
        ),
        default="_",
        name="2col",
    )


def mt_mod3():
    return ModThreshProgram(
        clauses=(
            (count_is_mod("a", 0, 3), "zero"),
            (count_is_mod("a", 1, 3), "one"),
        ),
        default="two",
        name="mod3",
    )


def par_max():
    return ParallelProgram(
        frozenset({0, 1, 2}), lambda q: q, max, lambda w: w, name="max"
    )


# ----------------------------------------------------------------------
# orbit detection (the Lemma 3.9 engine)
# ----------------------------------------------------------------------
class TestOrbit:
    def test_fixed_point(self):
        assert orbit_tail_and_period(lambda w: w, 0) == (0, 1)

    def test_pure_cycle(self):
        assert orbit_tail_and_period(lambda w: (w + 1) % 3, 0) == (0, 3)

    def test_tail_then_cycle(self):
        # 0 -> 1 -> 2 -> 3 -> 2 -> 3 ...
        step = {0: 1, 1: 2, 2: 3, 3: 2}
        assert orbit_tail_and_period(lambda w: step[w], 0) == (2, 2)

    def test_saturating(self):
        assert orbit_tail_and_period(lambda w: min(w + 1, 4), 0) == (4, 1)

    def test_definition_property(self):
        step = {0: 1, 1: 2, 2: 3, 3: 1}
        t, m = orbit_tail_and_period(lambda w: step[w], 0)

        def iterate(z):
            w = 0
            for _ in range(z):
                w = step[w]
            return w

        for z1 in range(t, t + 8):
            for z2 in range(t, t + 8):
                if (z1 - z2) % m == 0:
                    assert iterate(z1) == iterate(z2)


# ----------------------------------------------------------------------
# single-direction conversions
# ----------------------------------------------------------------------
class TestLemma35:
    """parallel -> sequential."""

    def test_max(self):
        pp = par_max()
        sp = parallel_to_sequential(pp)
        assert sp.agrees_with(pp.evaluate, [0, 1, 2], max_len=4)
        assert sp.is_sm([0, 1, 2], max_len=3)

    def test_empty_still_rejected(self):
        sp = parallel_to_sequential(par_max())
        with pytest.raises(ValueError):
            sp.evaluate([])


class TestLemma38:
    """mod-thresh -> parallel."""

    @pytest.mark.parametrize(
        "mt,alphabet",
        [
            (mt_two_coloring(), ["R", "B", "F", "_"]),
            (mt_mod3(), ["a", "b"]),
        ],
    )
    def test_agreement(self, mt, alphabet):
        pp = modthresh_to_parallel(mt, alphabet)
        assert pp.agrees_with(mt.evaluate, alphabet, max_len=4)

    def test_validity_tree_invariance(self):
        pp = modthresh_to_parallel(mt_mod3(), ["a", "b"])
        assert pp.is_sm(["a", "b"], max_len=4)

    def test_counters_sized_by_atoms(self):
        mt = ModThreshProgram(
            clauses=(
                (count_is_mod("a", 0, 2) & count_is_mod("a", 0, 3), "x"),
                (fewer_than("b", 4), "y"),
            ),
            default="z",
        )
        pp = modthresh_to_parallel(mt, ["a", "b"])
        # M_a = lcm(2,3) = 6, T_a = 1; M_b = 1, T_b = 4
        w = pp.lift("a")
        assert w[0][0] == 1  # mod-6 counter
        assert pp.agrees_with(mt.evaluate, ["a", "b"], max_len=6)

    def test_unknown_input_rejected(self):
        pp = modthresh_to_parallel(mt_mod3(), ["a", "b"])
        with pytest.raises(ValueError):
            pp.evaluate(["zzz"])


class TestLemma39:
    """sequential -> mod-thresh."""

    @pytest.mark.parametrize(
        "sp,alphabet,max_len",
        [
            (seq_or(), [0, 1], 5),
            (seq_parity(), ["x", "y"], 6),
            (seq_threshold(3), ["x", "y"], 6),
            (seq_constant(), ["a", "b"], 4),
            (seq_mixed(), ["a", "b", "c"], 5),
        ],
    )
    def test_agreement(self, sp, alphabet, max_len):
        mt = sequential_to_modthresh(sp, alphabet)
        assert mt.agrees_with(sp.evaluate, alphabet, max_len=max_len)

    def test_clause_count_is_product_of_orbit_sizes(self):
        # threshold-3 over {x, y}: orbit of x has t=3, m=1 (4 classes);
        # y is ignored (t=0, m=1: 1 class) -> 4 combos, minus nothing
        # (all-zero repaired or skipped), one becomes the default.
        mt = sequential_to_modthresh(seq_threshold(3), ["x", "y"])
        assert len(mt.clauses) + 1 <= 4 * 1 + 1

    def test_pure_mod_function_generates_mod_atoms(self):
        mt = sequential_to_modthresh(seq_parity(), ["x", "y"])
        from repro.core.modthresh import ModAtom

        assert any(isinstance(a, ModAtom) for a in mt.atoms())


# ----------------------------------------------------------------------
# the full Theorem 3.7 cycle
# ----------------------------------------------------------------------
class TestTheorem37Cycle:
    @pytest.mark.parametrize(
        "sp,alphabet",
        [
            (seq_or(), [0, 1]),
            (seq_parity(), ["x", "y"]),
            (seq_threshold(2), ["x", "y"]),
            (seq_mixed(), ["a", "b"]),
        ],
    )
    def test_seq_to_mt_to_par_to_seq(self, sp, alphabet):
        mt = sequential_to_modthresh(sp, alphabet)
        pp = modthresh_to_parallel(mt, alphabet)
        sp2 = parallel_to_sequential(pp)
        assert sp2.agrees_with(sp.evaluate, alphabet, max_len=5)

    def test_composites(self):
        sp = seq_threshold(2)
        pp = sequential_to_parallel(sp, ["x", "y"])
        assert pp.agrees_with(sp.evaluate, ["x", "y"], max_len=5)

        mt = mt_two_coloring()
        sp2 = modthresh_to_sequential(mt, ["R", "B", "F", "_"])
        assert sp2.agrees_with(mt.evaluate, ["R", "B", "F", "_"], max_len=4)

    def test_converted_parallel_is_tree_invariant(self):
        sp = seq_parity()
        pp = sequential_to_parallel(sp, ["x", "y"])
        assert pp.is_sm(["x", "y"], max_len=4)


@settings(max_examples=30, deadline=None)
@given(st.lists(st.sampled_from(["x", "y"]), min_size=1, max_size=10))
def test_cycle_pointwise_on_random_inputs(seq):
    sp = seq_threshold(2)
    mt = sequential_to_modthresh(sp, ["x", "y"])
    pp = modthresh_to_parallel(mt, ["x", "y"])
    expected = sp.evaluate(seq)
    assert mt.evaluate(seq) == expected
    assert pp.evaluate(seq) == expected


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["a", "b"]), st.integers(min_value=0, max_value=9),
        min_size=1,
    ).filter(lambda d: sum(d.values()) > 0)
)
def test_mod3_conversion_on_random_multisets(counts):
    mt = mt_mod3()
    pp = modthresh_to_parallel(mt, ["a", "b"])
    ms = Multiset(counts)
    assert pp.evaluate(ms) == mt.evaluate(ms)


# ----------------------------------------------------------------------
# property-based round trips over RANDOM programs (not the fixed zoo)
# ----------------------------------------------------------------------
_RT_ALPHABET = ["a", "b"]


@st.composite
def counter_programs(draw):
    """Random valid-by-construction sequential SM programs.

    One independent saturating-mod counter per input symbol (tail ``t``,
    period ``m``), folded through a *random* output table over the bounded
    counter space.  Per-symbol counters commute, so every drawn program is
    order-independent — exactly the Definition 3.2 validity the Theorem
    3.7 constructions assume — while the random β makes the computed
    function essentially arbitrary over the orbit classes.
    """
    bounds = [
        (draw(st.integers(0, 2)), draw(st.integers(1, 3)))
        for _ in _RT_ALPHABET
    ]
    working = list(
        itertools.product(*(range(t + m) for t, m in bounds))
    )
    out = {
        w: draw(st.sampled_from(["r0", "r1", "r2"])) for w in working
    }

    def p(w, q):
        i = _RT_ALPHABET.index(q)
        t, m = bounds[i]
        c = w[i] + 1 if w[i] + 1 < t + m else t  # saturate into the cycle
        return w[:i] + (c,) + w[i + 1:]

    sp = SequentialProgram(
        frozenset(working), working[0], p, out.__getitem__, name="rand-ctr"
    )
    return sp, bounds


@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_random_program_full_theorem_37_cycle(data):
    """sequential → mod-thresh → parallel → sequential on random programs:
    all four formulations agree on random multisets."""
    sp, _bounds = data.draw(counter_programs())
    mt = sequential_to_modthresh(sp, _RT_ALPHABET)
    pp = modthresh_to_parallel(mt, _RT_ALPHABET)
    sp2 = parallel_to_sequential(pp)

    counts = data.draw(
        st.dictionaries(
            st.sampled_from(_RT_ALPHABET),
            st.integers(min_value=0, max_value=8),
            min_size=1,
        ).filter(lambda d: sum(d.values()) > 0)
    )
    ms = Multiset(counts)
    expected = sp.evaluate(ms)
    assert mt.evaluate(ms) == expected
    assert pp.evaluate(ms) == expected
    assert sp2.evaluate(ms) == expected


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_random_program_cycle_agrees_exhaustively(data):
    """The round-tripped program equals the original on *every* multiset up
    to length 4, not just sampled ones."""
    sp, _bounds = data.draw(counter_programs())
    sp2 = parallel_to_sequential(
        modthresh_to_parallel(
            sequential_to_modthresh(sp, _RT_ALPHABET), _RT_ALPHABET
        )
    )
    assert sp2.agrees_with(sp.evaluate, _RT_ALPHABET, max_len=4)
