"""Unit tests for repro.core.compile (rule → mod-thresh compilation)."""

import pytest

from repro.core.automaton import NeighborhoodView
from repro.core.compile import CompilationError, compile_rule
from repro.core.multiset import Multiset, iter_multisets


def coloring_rule(own, view):
    if view.at_least("F", 1):
        return "F"
    if view.at_least("R", 1) and view.at_least("B", 1):
        return "F"
    if view.at_least("R", 1):
        return "B"
    if view.at_least("B", 1):
        return "R"
    return own


ALPHABET = ["R", "B", "F", "_"]


class TestCompileRule:
    def test_agrees_with_rule_everywhere(self):
        from collections import Counter

        for own in ALPHABET:
            prog = compile_rule(coloring_rule, ALPHABET, own, max_threshold=1)
            for ms in iter_multisets(ALPHABET, 4):
                view = NeighborhoodView(Counter(dict(ms.items())))
                assert prog.evaluate(ms) == coloring_rule(own, view), (own, ms)

    def test_compiled_is_own_state_specific(self):
        prog_r = compile_rule(coloring_rule, ALPHABET, "R", max_threshold=1)
        prog_b = compile_rule(coloring_rule, ALPHABET, "_", max_threshold=1)
        # the only own-state dependence is the default (else) branch
        assert prog_r.evaluate(Multiset({"_": 3})) == "R"
        assert prog_b.evaluate(Multiset({"_": 3})) == "_"

    def test_threshold_bound_enforced(self):
        def needs_two(own, view):
            return "x" if view.at_least("a", 2) else own

        with pytest.raises(CompilationError):
            compile_rule(needs_two, ["a", "x"], "a", max_threshold=1)
        # with the right bound it compiles
        prog = compile_rule(needs_two, ["a", "x"], "a", max_threshold=2)
        assert prog.evaluate(Multiset({"a": 2})) == "x"
        assert prog.evaluate(Multiset({"a": 1})) == "a"

    def test_mod_bound_enforced(self):
        def parity(own, view):
            return "even" if view.count_mod("a", 2) == 0 else "odd"

        with pytest.raises(CompilationError):
            compile_rule(parity, ["a", "even", "odd"], "a", modulus=3)
        prog = compile_rule(parity, ["a", "even", "odd"], "a", modulus=2)
        assert prog.evaluate(Multiset({"a": 3})) == "odd"
        assert prog.evaluate(Multiset({"a": 4})) == "even"

    def test_mod_divisor_allowed(self):
        def parity(own, view):
            return "even" if view.count_mod("a", 2) == 0 else "odd"

        # modulus 4 is a multiple of every queried modulus (2): fine
        prog = compile_rule(parity, ["a", "even", "odd"], "a", modulus=4)
        for k in range(1, 9):
            assert prog.evaluate(Multiset({"a": k})) == ("even" if k % 2 == 0 else "odd")

    def test_support_rejected(self):
        def uses_support(own, view):
            return own if not view.support() else "x"

        with pytest.raises(CompilationError):
            compile_rule(uses_support, ["a", "x"], "a")

    def test_group_rejected(self):
        def uses_group(own, view):
            return "x" if view.group_at_least(["a", "b"], 2) else own

        with pytest.raises(CompilationError):
            compile_rule(uses_group, ["a", "b", "x"], "a", max_threshold=2)

    def test_unknown_state_rejected(self):
        def probes_alien(own, view):
            return "x" if view.at_least("alien", 1) else own

        with pytest.raises(CompilationError):
            compile_rule(probes_alien, ["a", "x"], "a")

    def test_per_state_bounds(self):
        def rule(own, view):
            if view.at_least("a", 3):
                return "hi"
            return own

        prog = compile_rule(
            rule, ["a", "hi"], "a", max_threshold=1,
            per_state_bounds={"a": (3, 1)},
        )
        assert prog.evaluate(Multiset({"a": 3})) == "hi"
        assert prog.evaluate(Multiset({"a": 2})) == "a"


class TestCompiledVsFormalPrograms:
    def test_two_coloring_module_cross_check(self):
        """The hand-written programs in two_coloring must equal the
        compiled versions of its rule."""
        from collections import Counter

        from repro.algorithms import two_coloring as tc

        formal = tc.programs()
        for own in tc.ALPHABET:
            compiled = compile_rule(
                tc.rule, sorted(tc.ALPHABET), own, max_threshold=1
            )
            for ms in iter_multisets(sorted(tc.ALPHABET), 3):
                assert compiled.evaluate(ms) == formal[own].evaluate(ms)
