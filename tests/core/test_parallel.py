"""Unit tests for repro.core.parallel (Definitions 3.3/3.4)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multiset import Multiset
from repro.core.parallel import ParallelProgram
from repro.core.trees import all_trees, left_comb, right_comb


def max_program():
    return ParallelProgram(
        frozenset({0, 1, 2}), lambda q: q, lambda a, b: max(a, b), lambda w: w,
        name="max",
    )


def sat_sum_program(cap=3):
    return ParallelProgram(
        frozenset(range(cap + 1)),
        lambda q: min(q, cap),
        lambda a, b: min(a + b, cap),
        lambda w: w,
        name="satsum",
    )


def subtract_program():
    """NOT a valid parallel SM program (subtraction is not associative)."""
    return ParallelProgram(
        frozenset(range(-50, 51)),
        lambda q: q,
        lambda a, b: max(-50, min(50, a - b)),
        lambda w: w,
    )


class TestEvaluation:
    def test_max_default_tree(self):
        assert max_program().evaluate([0, 2, 1]) == 2

    def test_explicit_trees_agree_for_valid(self):
        pp = max_program()
        vals = [1, 0, 2, 1]
        assert pp.evaluate(vals, tree=left_comb(4)) == pp.evaluate(
            vals, tree=right_comb(4)
        )

    def test_multiset_input(self):
        assert max_program().evaluate(Multiset({0: 3, 2: 1})) == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            max_program().evaluate([])

    def test_lift_leaving_w_detected(self):
        pp = ParallelProgram(frozenset({0}), lambda q: q, lambda a, b: 0, lambda w: w)
        with pytest.raises(ValueError):
            pp.evaluate([5])

    def test_combine_leaving_w_detected(self):
        pp = ParallelProgram(
            frozenset({0, 1}), lambda q: q, lambda a, b: a + b, lambda w: w
        )
        with pytest.raises(ValueError):
            pp.evaluate([1, 1])


class TestValidity:
    def test_max_is_sm(self):
        assert max_program().is_sm([0, 1, 2], max_len=3)

    def test_sat_sum_is_sm(self):
        assert sat_sum_program().is_sm([0, 1, 2], max_len=3)

    def test_subtract_not_sm(self):
        assert not subtract_program().is_sm([1, 2, 3], max_len=3)

    def test_assoc_comm_check(self):
        assert max_program().check_assoc_comm([0, 1, 2])
        assert sat_sum_program().check_assoc_comm([0, 1, 2, 3])
        assert not subtract_program().check_assoc_comm([1, 2])

    def test_reachable_closure(self):
        pp = sat_sum_program(cap=2)
        assert pp.reachable_states([1]) == {1, 2}


class TestFigure1Semantics:
    """Definition 3.4: the value must not depend on the reduction tree."""

    def test_all_trees_all_orders(self):
        pp = sat_sum_program()
        elements = [1, 1, 0, 2]
        import itertools

        results = set()
        for perm in set(itertools.permutations(elements)):
            for tree in all_trees(4):
                results.add(pp.evaluate(list(perm), tree=tree))
        assert len(results) == 1


@settings(max_examples=40)
@given(st.lists(st.sampled_from([0, 1, 2]), min_size=1, max_size=8))
def test_max_program_matches_builtin_max(vals):
    assert max_program().evaluate(vals) == max(vals)


@settings(max_examples=40)
@given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=10))
def test_sat_sum_matches_capped_sum(vals):
    assert sat_sum_program().evaluate(vals) == min(sum(vals), 3)
