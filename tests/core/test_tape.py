"""Tests for the Section 5 tape generalization."""

import pytest

from repro.core.multiset import iter_multisets
from repro.core.tape import (
    TapeProgramFamily,
    all_bitstrings,
    instantiate,
    parallel_working_bits,
    tape_sequential_to_parallel,
)


def bitor_family():
    return TapeProgramFamily(
        input_bits=lambda n: n,
        working_bits=lambda n: n,
        start=lambda n: "0" * n,
        process=lambda n, w, q: "".join(
            "1" if a == "1" or b == "1" else "0" for a, b in zip(w, q)
        ),
        output=lambda n, w: w,
        name="bitor",
    )


def parity_family():
    """Sums inputs mod 2 per bit — purely periodic orbits (tail 0)."""
    return TapeProgramFamily(
        input_bits=lambda n: n,
        working_bits=lambda n: n,
        start=lambda n: "0" * n,
        process=lambda n, w, q: "".join(
            str(int(a) ^ int(b)) for a, b in zip(w, q)
        ),
        output=lambda n, w: w,
        name="bitxor",
    )


def counter_family(cap=3):
    """Counts inputs equal to all-ones, saturating at ``cap``."""
    import math

    bits = max(1, math.ceil(math.log2(cap + 1)))
    return TapeProgramFamily(
        input_bits=lambda n: n,
        working_bits=lambda n: bits,
        start=lambda n: "0" * bits,
        process=lambda n, w, q: format(
            min(int(w, 2) + (1 if q == "1" * n else 0), cap), f"0{bits}b"
        ),
        output=lambda n, w: int(w, 2),
        name="count-ones",
    )


class TestAllBitstrings:
    def test_counts(self):
        assert all_bitstrings(0) == [""]
        assert len(all_bitstrings(3)) == 8
        assert all_bitstrings(1) == ["0", "1"]


class TestInstantiate:
    def test_member_is_sequential_program(self):
        sp = instantiate(bitor_family(), 2)
        assert sp.evaluate(["01", "10"]) == "11"
        assert sp.is_sm(all_bitstrings(2), max_len=3)

    def test_bad_start_length(self):
        fam = TapeProgramFamily(
            input_bits=lambda n: 1,
            working_bits=lambda n: 2,
            start=lambda n: "0",  # wrong length
            process=lambda n, w, q: w,
            output=lambda n, w: w,
        )
        with pytest.raises(ValueError):
            instantiate(fam, 1)


class TestUniformConstruction:
    @pytest.mark.parametrize("fam_fn,n", [
        (bitor_family, 1),
        (bitor_family, 2),
        (parity_family, 1),
        (parity_family, 2),
        (counter_family, 1),
    ])
    def test_parallel_agrees_with_sequential(self, fam_fn, n):
        fam = fam_fn()
        sp = instantiate(fam, n)
        pp = tape_sequential_to_parallel(fam, n)
        for ms in iter_multisets(all_bitstrings(fam.input_bits(n)), 3):
            assert pp.evaluate(ms) == sp.evaluate(ms), ms

    def test_parallel_tree_invariance(self):
        fam = parity_family()
        pp = tape_sequential_to_parallel(fam, 1)
        assert pp.is_sm(all_bitstrings(1), max_len=4)

    def test_working_bits_bound(self):
        """w'(N) = O(2^{q(N)} · w(N)) — the Section 5 bound."""
        fam = bitor_family()
        for n in (1, 2, 3):
            measured = parallel_working_bits(fam, n)
            q_n, w_n = fam.input_bits(n), fam.working_bits(n)
            # each per-input counter needs O(w) bits; constant here is small
            assert measured <= 4 * (2 ** q_n) * max(w_n, 1)

    def test_deep_multiplicities(self):
        """Counters must stay correct far beyond the orbit period."""
        fam = counter_family(cap=3)
        sp = instantiate(fam, 1)
        pp = tape_sequential_to_parallel(fam, 1)
        for ones in range(0, 9):
            for zeros in range(0, 3):
                if ones + zeros == 0:
                    continue
                ms = {"1": ones, "0": zeros}
                from repro.core.multiset import Multiset

                assert pp.evaluate(Multiset(ms)) == sp.evaluate(Multiset(ms))
