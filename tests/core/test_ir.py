"""Tests for the shared engine IR (:mod:`repro.core.ir`).

Lowering from all four front-end forms, bound inference for rule-based
automata, the compile-once cache, and the LoweringError taxonomy that
``api.py`` surfaces during capability negotiation.
"""

import pytest

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.ir import (
    CompiledAutomaton,
    LoweringError,
    clear_lowering_cache,
    lower,
    lowering_cache_info,
)
from repro.core.modthresh import (
    ModAtom,
    ModThreshProgram,
    ThreshAtom,
    at_least,
)
from repro.core.multiset import Multiset, iter_multisets
from repro.core.parallel import ParallelProgram
from repro.core.sequential import SequentialProgram


@pytest.fixture(autouse=True)
def _fresh_cache():
    clear_lowering_cache()
    yield
    clear_lowering_cache()


def _mt_programs():
    return {
        "a": ModThreshProgram(clauses=((at_least("b", 1), "b"),), default="a"),
        "b": ModThreshProgram(clauses=(), default="b"),
    }


# ----------------------------------------------------------------------
# lowering the four front-end forms
# ----------------------------------------------------------------------
class TestFrontEndForms:
    def test_modthresh_mapping(self):
        ca = lower(_mt_programs())
        assert isinstance(ca, CompiledAutomaton)
        assert ca.alphabet == ("a", "b")
        assert not ca.probabilistic and ca.randomness == 1
        assert all(isinstance(a, (ThreshAtom, ModAtom)) for a in ca.atoms)
        prog = ca.program_for("a")
        assert prog.clauses[0][1] == ca.code["b"]
        assert prog.default == ca.code["a"]

    def test_probabilistic_mapping(self):
        programs = {
            (q, i): ModThreshProgram(clauses=(), default=q)
            for q in ("a", "b")
            for i in range(3)
        }
        ca = lower(programs, randomness=3)
        assert ca.probabilistic and ca.randomness == 3
        assert len(ca.table) == 6

    def test_sequential_program_values(self):
        # Lemma 3.9 applied inside the mapping: a sequential threshold
        # program lowers to an equivalent mod-thresh cascade
        def p(w, q):
            return min(w + (1 if q == "hot" else 0), 2)

        sp = SequentialProgram(
            frozenset({0, 1, 2}), 0, p, lambda w: "hot" if w >= 2 else "cold"
        )
        ca = lower({"cold": sp, "hot": sp})
        mt = ca.source_programs["cold"]
        for ms in iter_multisets(["hot", "cold"], 4):
            assert mt.evaluate(ms) == sp.evaluate(ms)

    def test_parallel_program_values(self):
        # Lemma 3.5 ∘ 3.9: parallel OR over {0, 1}
        pp = ParallelProgram(
            frozenset({0, 1}), lambda q: q, lambda a, b: a | b, lambda w: w
        )
        ca = lower({0: pp, 1: pp})
        mt = ca.source_programs[0]
        for ms in iter_multisets([0, 1], 4):
            assert mt.evaluate(ms) == pp.evaluate(ms)

    def test_program_based_fssga(self):
        aut = FSSGA.from_programs(_mt_programs())
        ca = lower(aut)
        assert ca.alphabet == ("a", "b")

    def test_compiled_automaton_passes_through(self):
        ca = lower(_mt_programs())
        assert lower(ca) is ca

    def test_atom_table_is_shared(self):
        # the same proposition appearing in several cascades interns once
        atom = at_least("x", 2)
        programs = {
            q: ModThreshProgram(clauses=((atom, "x"),), default=q)
            for q in ("x", "y", "z")
        }
        ca = lower(programs)
        assert len(ca.atoms) == 1


# ----------------------------------------------------------------------
# rule-based lowering with bound inference
# ----------------------------------------------------------------------
class TestRuleBased:
    def test_hinted_rule_lowers(self):
        def rule(own, view):
            return "hit" if view.at_least("hit", 1) else own

        aut = FSSGA(
            frozenset({"hit", "miss"}), rule, compile_hints={"max_threshold": 1}
        )
        ca = lower(aut)
        assert set(ca.alphabet) == {"hit", "miss"}

    def test_bounds_inferred_from_true_hints(self):
        # compile_hints=True means "infer everything": the checker's
        # structured errors widen thresholds/moduli until the trace fits
        def rule(own, view):
            if view.at_least("a", 3):
                return "b"
            if view.count_mod("b", 2) == 0:
                return own
            return "a"

        aut = FSSGA(frozenset({"a", "b"}), rule, compile_hints=True)
        ca = lower(aut)
        threshes = [a.threshold for a in ca.atoms if isinstance(a, ThreshAtom)]
        mods = [a.modulus for a in ca.atoms if isinstance(a, ModAtom)]
        assert max(threshes) >= 3
        assert any(m % 2 == 0 for m in mods)

    def test_probabilistic_rule_lowers_per_draw(self):
        def rule(own, view, draw):
            if view.any("on"):
                return "on" if draw else "off"
            return own

        aut = ProbabilisticFSSGA(
            frozenset({"on", "off"}), 2, rule, compile_hints=True
        )
        ca = lower(aut)
        assert ca.probabilistic and ca.randomness == 2
        assert len(ca.table) == 4

    def test_rule_semantics_preserved(self):
        # compiled cascade ≡ raw rule on every bounded multiset
        def rule(own, view):
            if view.at_least("r", 1) and view.at_least("b", 1):
                return "f"
            if view.at_least("r", 1):
                return "b"
            return own

        states = ["b", "f", "r"]
        aut = FSSGA(frozenset(states), rule, compile_hints=True)
        ca = lower(aut)
        for own in states:
            mt = ca.source_programs[own]
            for ms in iter_multisets(states, 3):
                assert mt.evaluate(ms) == aut.transition(own, ms)

    def test_unhinted_rule_rejected(self):
        aut = FSSGA(frozenset({"a"}), lambda own, view: own)
        with pytest.raises(LoweringError, match="compile_hints"):
            lower(aut)

    def test_support_query_rejected(self):
        def rule(own, view):
            return max(view.support(), default=own)

        aut = FSSGA(frozenset({"a", "b"}), rule, compile_hints=True)
        with pytest.raises(LoweringError, match="not compilable"):
            lower(aut)

    def test_group_query_rejected(self):
        def rule(own, view):
            return "a" if view.group_at_least({"a", "b"}, 1) else own

        aut = FSSGA(frozenset({"a", "b"}), rule, compile_hints=True)
        with pytest.raises(LoweringError, match="not compilable"):
            lower(aut)

    def test_lazy_alphabet_rejected(self):
        class LazyQ:
            def __contains__(self, q):
                return True

        aut = FSSGA.__new__(FSSGA)
        aut.alphabet = LazyQ()
        aut.name = "lazy"
        aut._rule = lambda own, view: own
        aut._programs = None
        aut.compile_hints = {}
        with pytest.raises(LoweringError, match="alphabet"):
            lower(aut)

    def test_class_blowup_rejected(self):
        # 8 states × threshold 16 → 17^8 classes, far past max_classes
        states = frozenset(f"q{i}" for i in range(8))

        def rule(own, view):
            return own

        aut = FSSGA(
            states, rule, compile_hints={"max_threshold": 16}
        )
        with pytest.raises(LoweringError, match="max_classes"):
            lower(aut)

    def test_widened_alphabet_spans_all_of_q(self):
        # the rule never returns "spare", but nodes may start there: the
        # compiled alphabet must still include it
        def rule(own, view):
            return "a"

        aut = FSSGA(frozenset({"a", "spare"}), rule, compile_hints=True)
        ca = lower(aut)
        assert "spare" in ca.alphabet
        assert ca.program_for("spare") is not None

    def test_empty_mapping_rejected(self):
        with pytest.raises(LoweringError, match="empty"):
            lower({})

    def test_unsupported_object_rejected(self):
        with pytest.raises(LoweringError, match="cannot lower"):
            lower(42)

    def test_non_program_mapping_value_rejected(self):
        with pytest.raises(LoweringError, match="cannot lower program"):
            lower({"a": lambda ms: "a"})


# ----------------------------------------------------------------------
# as_automaton: the reference engine runs the same IR
# ----------------------------------------------------------------------
class TestAsAutomaton:
    def test_result_only_states_get_hold_programs(self):
        programs = {
            "a": ModThreshProgram(clauses=(), default="sink"),
        }
        ca = lower(programs)
        ref = ca.as_automaton()
        assert isinstance(ref, FSSGA)
        assert ref.alphabet == frozenset({"a", "sink"})
        # "sink" has no source cascade; the padded automaton holds it
        assert ref.transition("sink", Multiset({"a": 2})) == "sink"

    def test_probabilistic_round_trip(self):
        programs = {
            ("a", 0): ModThreshProgram(clauses=(), default="a"),
            ("a", 1): ModThreshProgram(clauses=(), default="b"),
        }
        ca = lower(programs, randomness=2)
        ref = ca.as_automaton()
        assert isinstance(ref, ProbabilisticFSSGA)
        assert ref.randomness == 2
        assert ref.transition("a", Multiset({"a": 1}), 1) == "b"
        # padded: "b" holds under every draw
        assert ref.transition("b", Multiset({"a": 1}), 0) == "b"


# ----------------------------------------------------------------------
# the compile-once cache
# ----------------------------------------------------------------------
class TestCache:
    def test_automaton_identity_cache(self):
        aut = FSSGA.from_programs(_mt_programs())
        first = lower(aut)
        again = lower(aut)
        assert again is first
        info = lowering_cache_info()
        assert info["hits"] == 1 and info["misses"] == 1
        assert info["automata"] == 1

    def test_mapping_value_cache(self):
        first = lower(_mt_programs())
        again = lower(_mt_programs())  # a *different* dict, equal by value
        assert again is first
        assert lowering_cache_info()["hits"] == 1

    def test_randomness_distinguishes_mapping_entries(self):
        programs = {
            (q, i): ModThreshProgram(clauses=(), default=q)
            for q in ("a",)
            for i in range(2)
        }
        ca2 = lower(programs, randomness=2)
        # no randomness: same dict reads as deterministic with tuple states
        ca_det = lower(programs)
        assert ca2 is not ca_det
        assert ca2.probabilistic and not ca_det.probabilistic

    def test_clear_resets_everything(self):
        lower(_mt_programs())
        clear_lowering_cache()
        info = lowering_cache_info()
        assert info == {"hits": 0, "misses": 0, "automata": 0, "mappings": 0}
