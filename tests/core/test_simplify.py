"""Tests for mod-thresh program minimization (repro.core.simplify)."""

from repro.core.convert import sequential_to_modthresh
from repro.core.modthresh import (
    FALSE,
    TRUE,
    ModThreshProgram,
    at_least,
    count_is_mod,
    exactly,
    fewer_than,
)
from repro.core.multiset import iter_multisets
from repro.core.sequential import SequentialProgram
from repro.core.simplify import (
    programs_equivalent,
    propositions_equivalent,
    prune_cascade,
    verification_bound,
)

ALPHA = ["a", "b"]


class TestVerificationBound:
    def test_combines_thresholds_and_moduli(self):
        prog = ModThreshProgram(
            clauses=(
                (fewer_than("a", 3), "x"),
                (count_is_mod("b", 0, 4), "y"),
            ),
            default="z",
        )
        assert verification_bound(prog) == 3 + 4

    def test_trivial_program(self):
        prog = ModThreshProgram(clauses=(), default="z")
        assert verification_bound(prog) == 2


class TestPropositionEquivalence:
    def test_demorgan(self):
        a = ~(at_least("a", 1) | at_least("b", 1))
        b = fewer_than("a", 1) & fewer_than("b", 1)
        assert propositions_equivalent(a, b, ALPHA)

    def test_exactly_expansion(self):
        a = exactly("a", 2)
        b = at_least("a", 2) & fewer_than("a", 3)
        assert propositions_equivalent(a, b, ALPHA)

    def test_inequivalent(self):
        assert not propositions_equivalent(
            at_least("a", 1), at_least("a", 2), ALPHA
        )

    def test_mod_wraparound(self):
        a = count_is_mod("a", 0, 2)
        b = count_is_mod("a", 0, 4) | count_is_mod("a", 2, 4)
        assert propositions_equivalent(a, b, ALPHA)


class TestProgramEquivalence:
    def test_reordered_disjoint_clauses(self):
        p1 = ModThreshProgram(
            clauses=((exactly("a", 0), "none"), (exactly("a", 1), "one")),
            default="many",
        )
        p2 = ModThreshProgram(
            clauses=((exactly("a", 1), "one"), (exactly("a", 0), "none")),
            default="many",
        )
        assert programs_equivalent(p1, p2, ALPHA)

    def test_different_defaults(self):
        p1 = ModThreshProgram(clauses=(), default="x")
        p2 = ModThreshProgram(clauses=(), default="y")
        assert not programs_equivalent(p1, p2, ALPHA)


class TestPrune:
    def test_drops_shadowed_clause(self):
        prog = ModThreshProgram(
            clauses=(
                (at_least("a", 1), "r1"),
                (at_least("a", 2), "r2"),  # shadowed by the first clause
            ),
            default="d",
        )
        pruned = prune_cascade(prog, ALPHA)
        assert len(pruned.clauses) == 1
        assert programs_equivalent(prog, pruned, ALPHA)

    def test_drops_default_tail(self):
        prog = ModThreshProgram(
            clauses=(
                (at_least("a", 1), "hit"),
                (at_least("b", 1), "d"),  # returns the default anyway... but
                # only when 'a' is absent — removal must be checked, and it
                # IS safe because the default is also "d".
            ),
            default="d",
        )
        pruned = prune_cascade(prog, ALPHA)
        assert len(pruned.clauses) == 1

    def test_keeps_necessary_clauses(self):
        prog = ModThreshProgram(
            clauses=(
                (at_least("a", 1) & at_least("b", 1), "both"),
                (at_least("a", 1), "only-a"),
            ),
            default="rest",
        )
        pruned = prune_cascade(prog, ALPHA)
        assert len(pruned.clauses) == 2
        assert programs_equivalent(prog, pruned, ALPHA)

    def test_false_clause_removed(self):
        prog = ModThreshProgram(
            clauses=((FALSE, "never"), (TRUE, "always")),
            default="d",
        )
        pruned = prune_cascade(prog, ALPHA)
        assert len(pruned.clauses) == 1
        assert pruned.clauses[0][1] == "always"

    def test_shrinks_lemma39_output(self):
        """The Lemma 3.9 construction is clause-heavy; pruning must shrink
        it without changing semantics."""
        sp = SequentialProgram(
            frozenset(range(3)),
            0,
            lambda w, q: min(w + (1 if q == "a" else 0), 2),
            lambda w: w >= 2,
            name="thr2",
        )
        mt = sequential_to_modthresh(sp, ALPHA)
        pruned = prune_cascade(mt, ALPHA)
        assert len(pruned.clauses) <= len(mt.clauses)
        for ms in iter_multisets(ALPHA, 6):
            assert pruned.evaluate(ms) == sp.evaluate(ms)
