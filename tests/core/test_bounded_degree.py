"""Tests for the Section 3.1 bounded-degree ε-automaton."""

from collections import Counter

import pytest

from repro.core.bounded_degree import EPSILON, BoundedDegreeAutomaton, as_fssga
from repro.network import NetworkState, generators
from repro.runtime.simulator import SynchronousSimulator


def majority_automaton(delta=4):
    """Adopt the majority neighbour state (ties keep own) — symmetric."""

    def f(own, padded):
        counts = Counter(q for q in padded if q != EPSILON)
        if not counts:
            return own
        best = max(counts.values())
        winners = sorted(q for q, c in counts.items() if c == best)
        if len(winners) == 1:
            return winners[0]
        return own

    return BoundedDegreeAutomaton({0, 1}, delta, f)


def first_slot_automaton(delta=3):
    """Copies the first slot — NOT symmetric."""

    def f(own, padded):
        return padded[0] if padded[0] != EPSILON else own

    return BoundedDegreeAutomaton({0, 1}, delta, f)


class TestPadding:
    def test_pad_fills_epsilon(self):
        bd = majority_automaton(4)
        assert bd.pad([1, 0]) == (1, 0, EPSILON, EPSILON)

    def test_pad_rejects_excess_degree(self):
        bd = majority_automaton(2)
        with pytest.raises(ValueError):
            bd.pad([0, 0, 1])

    def test_epsilon_not_allowed_in_alphabet(self):
        with pytest.raises(ValueError):
            BoundedDegreeAutomaton({EPSILON}, 2, lambda o, p: o)

    def test_transition_validation(self):
        bd = majority_automaton(3)
        with pytest.raises(ValueError):
            bd.transition(99, [0])
        bad = BoundedDegreeAutomaton({0}, 2, lambda o, p: "junk")
        with pytest.raises(ValueError):
            bad.transition(0, [0])


class TestSymmetryCheck:
    def test_majority_is_symmetric(self):
        assert majority_automaton().is_symmetric()

    def test_first_slot_is_not(self):
        assert not first_slot_automaton().is_symmetric()


class TestNetworkBound:
    def test_check_network(self):
        bd = majority_automaton(2)
        bd.check_network(generators.path_graph(5))
        with pytest.raises(ValueError):
            bd.check_network(generators.star_graph(5))


class TestFssgaEmbedding:
    def test_transitions_agree_pointwise(self):
        bd = majority_automaton(4)
        fssga = as_fssga(bd)
        cases = [
            [1, 1, 0],
            [0],
            [1, 0, 1, 0],
            [1, 1, 1, 1],
        ]
        for ns in cases:
            for own in (0, 1):
                assert fssga.transition(own, Counter(ns)) == bd.transition(own, ns)

    def test_execution_agrees_on_a_network(self):
        net = generators.cycle_graph(8)  # degree 2 <= Δ
        bd = majority_automaton(4)
        fssga = as_fssga(bd)
        init = NetworkState.from_function(net, lambda v: v % 3 == 0 and 1 or 0)

        sim = SynchronousSimulator(net.copy(), fssga, init.copy())
        sim.run(6)

        # direct bounded-degree execution
        state = dict(init.items())
        for _ in range(6):
            state = {
                v: bd.transition(state[v], [state[u] for u in net.neighbors(v)])
                for v in net
            }
        assert dict(sim.state.items()) == state

    def test_fssga_handles_degrees_beyond_delta_gracefully(self):
        """The embedding caps per-state counts at Δ; running on a graph
        with larger degrees is exactly where the bounded-degree model
        stops being faithful (the expressiveness gap)."""
        bd = majority_automaton(2)
        fssga = as_fssga(bd)
        # a node with 3 same-state neighbours: counts cap at Δ=2, then the
        # underlying transition still works (pads to Δ slots).
        assert fssga.transition(0, Counter({1: 3})) == 1
