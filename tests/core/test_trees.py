"""Unit tests for repro.core.trees (Definition 3.3 / Figure 1)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.trees import (
    Branch,
    Leaf,
    all_trees,
    balanced_tree,
    left_comb,
    num_leaves,
    random_tree_shape,
    render_tree,
    right_comb,
    tree_combine,
)


def catalan(n: int) -> int:
    return math.comb(2 * n, n) // (n + 1)


class TestShapes:
    @pytest.mark.parametrize("k", [1, 2, 3, 5, 8])
    def test_comb_and_balanced_leaf_counts(self, k):
        assert num_leaves(left_comb(k)) == k
        assert num_leaves(right_comb(k)) == k
        assert num_leaves(balanced_tree(k)) == k

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5, 6])
    def test_all_trees_catalan_count(self, k):
        assert len(list(all_trees(k))) == catalan(k - 1)

    def test_all_trees_distinct(self):
        trees = list(all_trees(5))
        assert len(set(trees)) == len(trees)

    def test_all_trees_leaf_order(self):
        # leaves must read 0..k-1 left to right for every shape
        def leaf_order(t):
            if isinstance(t, Leaf):
                return [t.index]
            return leaf_order(t.left) + leaf_order(t.right)

        for t in all_trees(5):
            assert leaf_order(t) == [0, 1, 2, 3, 4]

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            left_comb(0)
        with pytest.raises(ValueError):
            balanced_tree(0)

    @pytest.mark.parametrize("k", [1, 2, 7, 20])
    def test_random_tree_shape_leaves(self, k):
        assert num_leaves(random_tree_shape(k, rng=1)) == k


class TestCombine:
    def test_left_comb_is_sequential_fold(self):
        # p = string concat: left comb gives ((0+1)+2)+3
        out = tree_combine(lambda a, b: f"({a}{b})", left_comb(4), "abcd")
        assert out == "(((ab)c)d)"

    def test_right_comb_order(self):
        out = tree_combine(lambda a, b: f"({a}{b})", right_comb(4), "abcd")
        assert out == "(a(b(cd)))"

    def test_single_leaf(self):
        assert tree_combine(lambda a, b: a + b, Leaf(0), [42]) == 42

    def test_associative_op_tree_invariance(self):
        vals = [3, 1, 4, 1, 5, 9]
        results = {
            tree_combine(lambda a, b: a + b, t, vals) for t in all_trees(6)
        }
        assert results == {sum(vals)}

    def test_nonassociative_op_tree_sensitivity(self):
        # subtraction is not associative: different trees differ
        vals = [10, 3, 2]
        results = {
            tree_combine(lambda a, b: a - b, t, vals) for t in all_trees(3)
        }
        assert len(results) > 1

    def test_deep_comb_no_recursion_error(self):
        k = 50_000
        out = tree_combine(lambda a, b: a + b, left_comb(k), [1] * k)
        assert out == k


class TestRender:
    def test_render_figure1_style(self):
        t = Branch(Branch(Leaf(0), Leaf(1)), Leaf(2))
        assert render_tree(t) == "((0 1) 2)"
        assert render_tree(t, labels="xyz") == "((x y) z)"


@given(st.integers(min_value=1, max_value=9), st.integers(min_value=0, max_value=2**30))
def test_balanced_tree_depth_bound(k, seed):
    def depth(t):
        if isinstance(t, Leaf):
            return 0
        return 1 + max(depth(t.left), depth(t.right))

    assert depth(balanced_tree(k)) <= math.ceil(math.log2(k)) if k > 1 else True


@given(st.lists(st.integers(), min_size=1, max_size=7))
def test_max_combine_invariant_under_all_trees(vals):
    results = {tree_combine(max, t, vals) for t in all_trees(len(vals))}
    assert results == {max(vals)}
