"""Unit tests for repro.core.sequential (Definition 3.2)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.multiset import Multiset
from repro.core.sequential import SequentialProgram


def or_program():
    return SequentialProgram(
        frozenset({0, 1}), 0, lambda w, q: w | q, lambda w: w, name="or"
    )


def parity_program():
    return SequentialProgram(
        frozenset({0, 1}), 0, lambda w, q: w ^ q, lambda w: w, name="parity"
    )


def threshold2_program():
    """Counts inputs equal to 'x', saturating at 2."""
    def p(w, q):
        return min(w + (1 if q == "x" else 0), 2)

    return SequentialProgram(frozenset({0, 1, 2}), 0, p, lambda w: w, name="thr2")


def concat_program():
    """NOT an SM function: remembers the first input."""
    def p(w, q):
        return q if w == "∅" else w

    return SequentialProgram(
        frozenset({"∅", "a", "b"}), "∅", p, lambda w: w, name="first"
    )


class TestEvaluation:
    def test_or_on_sequences(self):
        sp = or_program()
        assert sp.evaluate([0, 0, 1]) == 1
        assert sp.evaluate([0, 0]) == 0

    def test_or_on_multisets(self):
        sp = or_program()
        assert sp.evaluate(Multiset({0: 5})) == 0
        assert sp.evaluate(Multiset({0: 2, 1: 1})) == 1

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            or_program().evaluate([])

    def test_callable_protocol(self):
        assert or_program()([1]) == 1

    def test_process_leaving_w_detected(self):
        sp = SequentialProgram(
            frozenset({0}), 0, lambda w, q: w + q, lambda w: w
        )
        with pytest.raises(ValueError):
            sp.evaluate([1])

    def test_start_not_in_w_rejected(self):
        with pytest.raises(ValueError):
            SequentialProgram(frozenset({1}), 0, lambda w, q: w, lambda w: w)


class TestValidity:
    def test_or_is_sm(self):
        assert or_program().is_sm([0, 1], max_len=4)

    def test_parity_is_sm(self):
        assert parity_program().is_sm([0, 1], max_len=4)

    def test_threshold_is_sm(self):
        assert threshold2_program().is_sm(["x", "y"], max_len=4)

    def test_first_input_is_not_sm(self):
        sp = concat_program()
        assert not sp.is_sm(["a", "b"], max_len=3)
        cex = sp.counterexample(["a", "b"], max_len=3)
        assert cex is not None
        p1, p2 = cex
        assert sorted(p1) == sorted(p2)
        assert sp.output(sp.fold(p1)) != sp.output(sp.fold(p2))

    def test_commutative_check_sufficient(self):
        assert or_program().check_commutative([0, 1])
        assert parity_program().check_commutative([0, 1])
        assert not concat_program().check_commutative(["a", "b"])

    def test_reachable_states(self):
        sp = threshold2_program()
        assert sp.reachable_states(["x", "y"]) == {0, 1, 2}

    def test_counterexample_none_for_valid(self):
        assert or_program().counterexample([0, 1], max_len=4) is None


class TestTables:
    def test_from_tables_roundtrip(self):
        transitions = {
            (0, "a"): 1,
            (0, "b"): 0,
            (1, "a"): 1,
            (1, "b"): 1,
        }
        sp = SequentialProgram.from_tables(transitions, 0, {0: "no", 1: "yes"})
        assert sp.evaluate(["b", "b"]) == "no"
        assert sp.evaluate(["b", "a"]) == "yes"
        assert sp.is_sm(["a", "b"], max_len=3)

    def test_from_tables_missing_transition(self):
        sp = SequentialProgram.from_tables({(0, "a"): 0}, 0, {0: 0})
        with pytest.raises(ValueError):
            sp.evaluate(["z"])

    def test_from_tables_missing_output(self):
        sp = SequentialProgram.from_tables({(0, "a"): 1, (1, "a"): 1}, 0, {0: 0})
        with pytest.raises(ValueError):
            sp.evaluate(["a"])


class TestAgreement:
    def test_agrees_with_itself(self):
        sp = or_program()
        assert sp.agrees_with(sp.evaluate, [0, 1], max_len=4)

    def test_disagrees_with_other(self):
        assert not or_program().agrees_with(
            parity_program().evaluate, [0, 1], max_len=4
        )


@settings(max_examples=50)
@given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=10))
def test_or_fold_order_independent(seq):
    sp = or_program()
    assert sp.evaluate(seq) == sp.evaluate(list(reversed(seq))) == max(seq)


@settings(max_examples=50)
@given(st.lists(st.sampled_from([0, 1]), min_size=1, max_size=10))
def test_parity_fold_matches_sum_mod_2(seq):
    assert parity_program().evaluate(seq) == sum(seq) % 2
