"""Tests for repro.agents.analysis (spectral walk ground truth)."""

import numpy as np
import pytest

from repro.agents.analysis import (
    exact_hitting_times,
    mixing_time_bound,
    occupancy_distribution,
    spectral_gap,
    stationary_distribution,
    transition_matrix,
)
from repro.network import generators


class TestTransitionMatrix:
    def test_row_stochastic(self):
        net = generators.petersen_graph()
        p, order = transition_matrix(net)
        assert np.allclose(p.sum(axis=1), 1.0)
        assert p.shape == (10, 10)

    def test_uniform_on_regular(self):
        net = generators.cycle_graph(5)
        p, order = transition_matrix(net)
        nz = p[p > 0]
        assert np.allclose(nz, 0.5)

    def test_isolated_node_rejected(self):
        from repro.network.graph import Network

        with pytest.raises(ValueError):
            transition_matrix(Network(nodes=[0]))


class TestStationary:
    def test_proportional_to_degree(self):
        net = generators.star_graph(4)
        pi = stationary_distribution(net)
        assert pi[0] == pytest.approx(4 / 8)
        assert pi[1] == pytest.approx(1 / 8)
        assert sum(pi.values()) == pytest.approx(1.0)

    def test_is_left_eigenvector(self):
        net = generators.lollipop_graph(4, 2)
        p, order = transition_matrix(net)
        pi = stationary_distribution(net)
        vec = np.array([pi[v] for v in order])
        assert np.allclose(vec @ p, vec)


class TestSpectral:
    def test_complete_graph_gap(self):
        # K_n: eigenvalues 1 and -1/(n-1): gap = 1 - 1/(n-1)
        net = generators.complete_graph(6)
        assert spectral_gap(net) == pytest.approx(1 - 1 / 5, abs=1e-9)

    def test_bipartite_gap_zero(self):
        # even cycles are bipartite: the walk is periodic, |λ| = 1 twice
        net = generators.cycle_graph(6)
        assert spectral_gap(net) == pytest.approx(0.0, abs=1e-9)
        assert mixing_time_bound(net) == float("inf")

    def test_mixing_bound_finite_on_nonbipartite(self):
        net = generators.petersen_graph()
        bound = mixing_time_bound(net)
        assert 0 < bound < 1000


class TestHittingTimes:
    def test_path_endpoint_formula(self):
        """On a path of n nodes, h(0 -> n-1) = (n-1)^2."""
        for n in (3, 5, 8):
            net = generators.path_graph(n)
            h = exact_hitting_times(net, n - 1)
            assert h[0] == pytest.approx((n - 1) ** 2)

    def test_complete_graph_formula(self):
        """On K_n, the hitting time between distinct nodes is n-1."""
        net = generators.complete_graph(7)
        h = exact_hitting_times(net, 0)
        for v in range(1, 7):
            assert h[v] == pytest.approx(6.0)

    def test_matches_empirical(self):
        from repro.agents.walks import empirical_hitting_time

        net = generators.cycle_graph(7)
        exact = exact_hitting_times(net, 3)[0]
        emp = empirical_hitting_time(net, 0, 3, trials=400, rng=1)
        assert abs(emp - exact) / exact < 0.2

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            exact_hitting_times(generators.path_graph(2), 99)


class TestCrossValidation:
    def test_fssga_walk_matches_spectral_stationary(self):
        """The emergent Algorithm 4.2 walk's occupancy converges to the
        exact stationary law computed spectrally."""
        from repro.algorithms.random_walk import run_walk

        net = generators.lollipop_graph(4, 2)
        obs = run_walk(net, 0, moves=1500, rng=9)
        emp = occupancy_distribution(obs.positions)
        pi = stationary_distribution(net)
        for v in net:
            assert abs(emp.get(v, 0.0) - pi[v]) < 0.08

    def test_claim21_bound_dominates_exact_hitting(self):
        """The paper's 2(3m+1)(3n) bound is valid for the lifted graph's
        exact hitting time to EXCEEDED."""
        from repro.agents.lifted_graph import EXCEEDED, build_lifted_graph, lifted_node
        from repro.agents.walks import theoretical_hitting_bound

        net = generators.cycle_graph(5)
        lifted = build_lifted_graph(net, (0, 1))
        h = exact_hitting_times(lifted, EXCEEDED)
        start = lifted_node(0, 0)
        assert h[start] <= theoretical_hitting_bound(net.num_nodes, net.num_edges)
