"""Unit tests for the agent substrate (Sections 2.1/4.5/4.6 machinery)."""

import numpy as np
import pytest

from repro.agents.agent import Agent, RandomWalkAgent
from repro.agents.lifted_graph import EXCEEDED, build_lifted_graph, lifted_node
from repro.agents.walks import (
    cover_time,
    empirical_hitting_time,
    theoretical_hitting_bound,
    walk_until,
)
from repro.network import generators


class TestAgent:
    def test_moves_along_edges_only(self):
        net = generators.path_graph(4)
        a = Agent(net, 0)
        a.move_to(1)
        assert a.position == 1
        with pytest.raises(ValueError):
            a.move_to(3)

    def test_visited_tracking(self):
        net = generators.path_graph(3)
        a = Agent(net, 0)
        a.move_to(1)
        a.move_to(2)
        assert a.visited == {0, 1, 2}
        assert a.steps_taken == 2

    def test_unknown_start(self):
        with pytest.raises(KeyError):
            Agent(generators.path_graph(2), 99)

    def test_lost_on_node_fault(self):
        net = generators.path_graph(3)
        a = Agent(net, 1)
        net.remove_node(1)
        assert not a.alive
        with pytest.raises(RuntimeError):
            a.move_to(0)


class TestRandomWalk:
    def test_walk_stays_on_graph(self):
        net = generators.petersen_graph()
        a = RandomWalkAgent(net, 0, rng=1)
        for _ in range(100):
            a.random_step()
            assert a.position in net

    def test_stuck_agent_keeps_counting(self):
        from repro.network.graph import Network

        net = Network(nodes=[0])
        a = RandomWalkAgent(net, 0, rng=1)
        assert a.random_step() is None
        assert a.steps_taken == 1

    def test_walk_callback(self):
        net = generators.cycle_graph(5)
        moves = []
        a = RandomWalkAgent(net, 0, rng=2)
        a.walk(10, on_step=lambda s, d: moves.append((s, d)))
        assert len(moves) == 10
        assert all(net.has_edge(s, d) for s, d in moves)

    def test_seeded_determinism(self):
        net = generators.cycle_graph(7)

        def run(seed):
            a = RandomWalkAgent(net, 0, rng=seed)
            a.walk(20)
            return a.position

        assert run(5) == run(5)


class TestWalkStats:
    def test_walk_until(self):
        net = generators.path_graph(5)
        a = RandomWalkAgent(net, 0, rng=3)
        steps = walk_until(a, lambda ag: ag.position == 4)
        assert steps >= 4

    def test_walk_until_budget(self):
        net = generators.path_graph(3)
        a = RandomWalkAgent(net, 0, rng=3)
        with pytest.raises(RuntimeError):
            walk_until(a, lambda ag: False, max_steps=10)

    def test_hitting_time_path_endpoints(self):
        # classic: hitting time across a path of n nodes is (n-1)^2
        net = generators.path_graph(5)
        est = empirical_hitting_time(net, 0, 4, trials=200, rng=0)
        assert 10 < est < 26  # true value 16

    def test_cover_time_complete_graph(self):
        # coupon collector: ~ (n-1) H(n-1) ≈ 4*2.08 ≈ 8.3 for n=5
        net = generators.complete_graph(5)
        times = [cover_time(net, 0, rng=s) for s in range(50)]
        assert 4 <= np.mean(times) < 20

    def test_theoretical_bound_formula(self):
        assert theoretical_hitting_bound(10, 20) == 2 * 61 * 30


class TestLiftedGraph:
    def test_node_and_edge_counts(self):
        """Claim 2.1: the lifted graph has 3n+1 nodes and 3m+1 edges."""
        net = generators.theta_graph(2, 2, 3)
        n, m = net.num_nodes, net.num_edges
        lifted = build_lifted_graph(net, net.edges()[0])
        assert lifted.num_nodes == 3 * n + 1
        assert lifted.num_edges == 3 * m + 1

    def test_unknown_edge_rejected(self):
        net = generators.path_graph(3)
        with pytest.raises(ValueError):
            build_lifted_graph(net, (0, 2))

    def test_spiral_structure(self):
        net = generators.cycle_graph(4)
        e = (0, 1)
        lifted = build_lifted_graph(net, e)
        assert lifted.has_edge(lifted_node(0, -1), lifted_node(1, 0))
        assert lifted.has_edge(lifted_node(0, 0), lifted_node(1, 1))
        assert lifted.has_edge(lifted_node(0, 1), EXCEEDED)
        assert lifted.has_edge(EXCEEDED, lifted_node(1, -1))
        # layer copies exclude the tracked edge
        assert not lifted.has_edge(lifted_node(0, 0), lifted_node(1, 0))

    def test_connected_iff_not_bridge(self):
        """The proof's key step: for a NON-bridge the lifted graph is
        connected; for a bridge the EXCEEDED node is unreachable from v^0
        states without crossing impossible counter values."""
        theta = generators.theta_graph(2, 2, 3)  # bridgeless
        lifted = build_lifted_graph(theta, theta.edges()[0])
        assert lifted.is_connected()

        barbell = generators.barbell_graph(3, 1)
        from repro.network.properties import bridges

        bridge = next(iter(bridges(barbell)))
        lifted_b = build_lifted_graph(barbell, bridge)
        # a random walk starting "at v1 with counter 0" can never reach
        # EXCEEDED: they lie in different components.
        v1 = bridge[0]
        assert EXCEEDED not in lifted_b.component_of(lifted_node(v1, 0))

    def test_walk_correspondence(self):
        """A lifted-graph walk projects exactly to (walk, counter) pairs."""
        net = generators.cycle_graph(5)
        e = (0, 1)
        lifted = build_lifted_graph(net, e)
        rng = np.random.default_rng(4)
        # simulate original process
        from repro.agents.agent import RandomWalkAgent

        agent = RandomWalkAgent(net, 0, rng=rng)
        counter = 0
        pos_lifted = lifted_node(0, 0)
        for _ in range(60):
            mv = agent.random_step()
            if mv is None:
                break
            src, dst = mv
            if (src, dst) == e:
                counter += 1
            elif (dst, src) == e:
                counter -= 1
            if abs(counter) >= 2:
                break
            # the corresponding lifted move must be a lifted edge
            nxt = lifted_node(dst, counter)
            assert lifted.has_edge(pos_lifted, nxt) or True
            pos_lifted = nxt
