"""Branch-level unit tests for the Algorithm 4.2 and 4.3 rule tables.

The integration tests show the emergent behaviour; these pin each printed
pseudocode branch on hand-constructed neighbourhoods, so a regression in
any single clause is caught at the clause.
"""

from collections import Counter

from repro.algorithms import random_walk as rw
from repro.algorithms import traversal as tr
from repro.core.automaton import NeighborhoodView


def view(counts: dict) -> NeighborhoodView:
    return NeighborhoodView(Counter(counts))


HEADS_DRAW = 0
TAILS_DRAW = 1


class TestRandomWalkClauses:
    """Algorithm 4.2, clause by clause."""

    def test_flip_eliminates_heads(self):
        assert rw.rule(rw.HEADS, view({rw.FLIP: 1}), HEADS_DRAW) == rw.ELIMINATED

    def test_flip_makes_blank_flip(self):
        assert rw.rule(rw.BLANK, view({rw.FLIP: 1}), HEADS_DRAW) == rw.HEADS
        assert rw.rule(rw.BLANK, view({rw.FLIP: 1}), TAILS_DRAW) == rw.TAILS

    def test_flip_makes_tails_reflip(self):
        assert rw.rule(rw.TAILS, view({rw.FLIP: 1}), TAILS_DRAW) == rw.TAILS
        assert rw.rule(rw.TAILS, view({rw.FLIP: 1}), HEADS_DRAW) == rw.HEADS

    def test_flip_leaves_eliminated(self):
        assert rw.rule(rw.ELIMINATED, view({rw.FLIP: 1}), TAILS_DRAW) == rw.ELIMINATED

    def test_notails_reflips_heads_only(self):
        assert rw.rule(rw.HEADS, view({rw.NOTAILS: 1}), TAILS_DRAW) == rw.TAILS
        assert rw.rule(rw.ELIMINATED, view({rw.NOTAILS: 1}), TAILS_DRAW) == rw.ELIMINATED
        assert rw.rule(rw.BLANK, view({rw.NOTAILS: 1}), TAILS_DRAW) == rw.BLANK

    def test_onetails_hands_walker_to_tails(self):
        assert rw.rule(rw.TAILS, view({rw.ONETAILS: 1}), HEADS_DRAW) == rw.FLIP

    def test_onetails_clears_everyone_else(self):
        for own in (rw.BLANK, rw.HEADS, rw.ELIMINATED):
            assert rw.rule(own, view({rw.ONETAILS: 1}), HEADS_DRAW) == rw.BLANK

    def test_waiting_walker_holds_coins_still(self):
        for own in (rw.HEADS, rw.TAILS, rw.ELIMINATED, rw.BLANK):
            assert rw.rule(own, view({rw.WAITING_FOR_FLIPS: 1}), TAILS_DRAW) == own

    def test_walker_reads_no_tails(self):
        assert (
            rw.rule(rw.WAITING_FOR_FLIPS, view({rw.HEADS: 3}), HEADS_DRAW)
            == rw.NOTAILS
        )

    def test_walker_reads_exactly_one_tails(self):
        assert (
            rw.rule(
                rw.WAITING_FOR_FLIPS,
                view({rw.HEADS: 2, rw.TAILS: 1}),
                HEADS_DRAW,
            )
            == rw.ONETAILS
        )

    def test_walker_reads_many_tails(self):
        assert (
            rw.rule(rw.WAITING_FOR_FLIPS, view({rw.TAILS: 2}), HEADS_DRAW)
            == rw.FLIP
        )

    def test_walker_cycle_states(self):
        assert rw.rule(rw.FLIP, view({rw.BLANK: 2}), HEADS_DRAW) == rw.WAITING_FOR_FLIPS
        assert rw.rule(rw.NOTAILS, view({rw.HEADS: 2}), HEADS_DRAW) == rw.WAITING_FOR_FLIPS
        assert rw.rule(rw.ONETAILS, view({rw.TAILS: 1}), HEADS_DRAW) == rw.BLANK


class TestTraversalClauses:
    """Algorithm 4.3's embedded clauses (status, sub) on constructed views."""

    def b(self, status, sub, orig=False):
        return (orig, status, sub)

    def test_visited_is_absorbing(self):
        own = self.b(tr.VISITED, tr.IDLE)
        assert tr.rule(own, view({self.b(tr.HAND, tr.SUB_FLIP): 1}), 0) == own

    def test_blank_elected_becomes_hand(self):
        own = self.b(tr.BLANK, tr.TAILS)
        out = tr.rule(own, view({self.b(tr.HAND, tr.SUB_ELECT): 1}), 0)
        assert out[1] == tr.HAND

    def test_blank_not_elected_clears(self):
        own = self.b(tr.BLANK, tr.HEADS)
        out = tr.rule(own, view({self.b(tr.HAND, tr.SUB_ELECT): 1}), 0)
        assert out == self.b(tr.BLANK, tr.IDLE)

    def test_blank_near_arm_is_ineligible(self):
        own = self.b(tr.BLANK, tr.IDLE)
        nb = {
            self.b(tr.HAND, tr.SUB_FLIP): 1,
            self.b(tr.ARM, tr.IDLE): 1,
        }
        assert tr.rule(own, view(nb), 1) == own  # refuses to flip

    def test_blank_without_arm_flips(self):
        own = self.b(tr.BLANK, tr.IDLE)
        out = tr.rule(own, view({self.b(tr.HAND, tr.SUB_FLIP): 1}), 1)
        assert out == self.b(tr.BLANK, tr.TAILS)

    def test_hand_retracts_without_participants(self):
        own = self.b(tr.HAND, tr.SUB_WAIT)
        out = tr.rule(own, view({self.b(tr.VISITED, tr.IDLE): 2}), 0)
        assert out[1] == tr.VISITED

    def test_hand_elects_on_single_tails(self):
        own = self.b(tr.HAND, tr.SUB_WAIT)
        nb = {
            self.b(tr.BLANK, tr.TAILS): 1,
            self.b(tr.BLANK, tr.HEADS): 2,
        }
        out = tr.rule(own, view(nb), 0)
        assert out[2] == tr.SUB_ELECT

    def test_hand_reruns_on_no_tails(self):
        own = self.b(tr.HAND, tr.SUB_WAIT)
        out = tr.rule(own, view({self.b(tr.BLANK, tr.HEADS): 2}), 0)
        assert out[2] == tr.SUB_NOTAILS

    def test_hand_reflips_on_many_tails(self):
        own = self.b(tr.HAND, tr.SUB_WAIT)
        out = tr.rule(own, view({self.b(tr.BLANK, tr.TAILS): 2}), 0)
        assert out[2] == tr.SUB_FLIP

    def test_hand_becomes_arm_after_elect(self):
        own = self.b(tr.HAND, tr.SUB_ELECT)
        out = tr.rule(own, view({self.b(tr.BLANK, tr.IDLE): 1}), 0)
        assert out[1] == tr.ARM

    def test_arm_retraction_rule_nonoriginator(self):
        own = self.b(tr.ARM, tr.IDLE)
        # two arm/hand neighbours: hold
        nb2 = {self.b(tr.ARM, tr.IDLE): 1, self.b(tr.HAND, tr.IDLE): 1}
        assert tr.rule(own, view(nb2), 0) == own
        # one arm neighbour: retract to hand
        nb1 = {self.b(tr.ARM, tr.IDLE): 1, self.b(tr.VISITED, tr.IDLE): 1}
        assert tr.rule(own, view(nb1), 0)[1] == tr.HAND

    def test_arm_retraction_rule_originator(self):
        own = self.b(tr.ARM, tr.IDLE, orig=True)
        # any arm/hand neighbour: hold
        nb = {self.b(tr.HAND, tr.IDLE): 1}
        assert tr.rule(own, view(nb), 0) == own
        # none: retract
        out = tr.rule(own, view({self.b(tr.VISITED, tr.IDLE): 1}), 0)
        assert out[1] == tr.HAND
