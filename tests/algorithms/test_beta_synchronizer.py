"""Tests for the β synchronizer baseline (sensitivity Θ(n), E14)."""

import pytest

from repro.algorithms.beta_synchronizer import BetaSynchronizer
from repro.network import generators
from repro.network.graph import canonical_edge


class TestFaultFree:
    def test_pulses_succeed(self):
        sync = BetaSynchronizer(generators.grid_graph(3, 3))
        assert sync.run(10) == 10
        assert not sync.broken

    def test_requires_connected(self):
        from repro.network.graph import Network

        with pytest.raises(ValueError):
            BetaSynchronizer(Network(nodes=[0, 1]))


class TestFragility:
    def test_tree_edge_fault_breaks_it(self):
        net = generators.grid_graph(3, 3)
        sync = BetaSynchronizer(net, root=0)
        sync.run(3)
        # delete an actual tree edge
        tree_edge = next(iter(sync._tree_edges))
        net.remove_edge(*tree_edge)
        assert sync.run(5) == 0
        assert sync.broken

    def test_nontree_edge_fault_harmless(self):
        net = generators.cycle_graph(6)
        sync = BetaSynchronizer(net, root=0)
        non_tree = [
            canonical_edge(u, v)
            for u, v in net.edges()
            if canonical_edge(u, v) not in sync._tree_edges
        ]
        assert non_tree
        net.remove_edge(*non_tree[0])
        assert sync.run(5) == 5

    def test_internal_node_fault_breaks_it(self):
        net = generators.path_graph(5)
        sync = BetaSynchronizer(net, root=0)
        net.remove_node(2)  # internal tree node
        assert not sync.pulse()
        assert sync.broken

    def test_broken_is_permanent(self):
        net = generators.path_graph(4)
        sync = BetaSynchronizer(net, root=0)
        net.remove_node(1)
        sync.pulse()
        # even restoring nothing: still broken forever
        assert not sync.pulse()


class TestCriticality:
    def test_critical_nodes_are_internal_plus_root(self):
        net = generators.path_graph(6)
        sync = BetaSynchronizer(net, root=0)
        crit = sync.critical_nodes()
        # in a path rooted at 0, every node but the far leaf is internal
        assert crit == {0, 1, 2, 3, 4}

    def test_theta_n_criticality(self):
        """The paper's point: a spanning tree may have ~n/2 internal
        nodes, so sensitivity is Θ(n)."""
        for n in (10, 20, 40):
            net = generators.path_graph(n)
            sync = BetaSynchronizer(net, root=0)
            assert len(sync.critical_nodes()) >= n // 2
