"""Branch-level unit tests for the Algorithm 4.1 BFS rule."""

from collections import Counter

from repro.algorithms import bfs
from repro.core.automaton import NeighborhoodView


def view(counts: dict) -> NeighborhoodView:
    return NeighborhoodView(Counter(counts))


def q(label, status=bfs.WAITING, orig=False, targ=False):
    return (orig, targ, label, status)


class TestLabelling:
    def test_originator_takes_label_zero(self):
        own = q(bfs.STAR, orig=True)
        out = bfs.rule(own, view({q(bfs.STAR): 1}))
        assert bfs.label_of(out) == 0

    def test_unlabelled_adopts_increment(self):
        own = q(bfs.STAR)
        out = bfs.rule(own, view({q(1): 1}))
        assert bfs.label_of(out) == 2

    def test_mod3_wraparound_adoption(self):
        own = q(bfs.STAR)
        out = bfs.rule(own, view({q(2): 1}))
        assert bfs.label_of(out) == 0

    def test_target_reports_found_on_labelling(self):
        own = q(bfs.STAR, targ=True)
        out = bfs.rule(own, view({q(0): 1}))
        assert bfs.status_of(out) == bfs.FOUND

    def test_no_labelled_neighbour_no_change(self):
        own = q(bfs.STAR)
        assert bfs.rule(own, view({q(bfs.STAR): 3})) == own


class TestStatusPropagation:
    def test_found_pulled_from_successor(self):
        own = q(1)
        out = bfs.rule(own, view({q(2, bfs.FOUND): 1}))
        assert bfs.status_of(out) == bfs.FOUND

    def test_found_predecessor_blocks_propagation(self):
        """The 'do nothing' clause: a found predecessor means this node is
        off the shortest path being reported."""
        own = q(1)
        nb = {q(0, bfs.FOUND): 1, q(2, bfs.FOUND): 1}
        assert bfs.rule(own, view(nb)) == own

    def test_failure_requires_no_unlabelled_neighbour(self):
        own = q(1)
        # all successors failed but a STAR neighbour remains: wait
        nb = {q(2, bfs.FAILED): 1, q(bfs.STAR): 1}
        assert bfs.rule(own, view(nb)) == own
        # no STAR: fail
        out = bfs.rule(own, view({q(2, bfs.FAILED): 1}))
        assert bfs.status_of(out) == bfs.FAILED

    def test_no_successors_at_all_fails(self):
        own = q(1)
        out = bfs.rule(own, view({q(0): 2}))
        assert bfs.status_of(out) == bfs.FAILED

    def test_found_and_failed_states_are_stable(self):
        for status in (bfs.FOUND, bfs.FAILED):
            own = q(1, status)
            assert bfs.rule(own, view({q(2, bfs.FAILED): 1})) == own
