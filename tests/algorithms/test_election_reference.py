"""Tests for the phase-level election reference model (Claims 4.1/4.2, E12)."""

import math

import numpy as np
import pytest

from repro.algorithms import election_reference as er
from repro.network import generators


class TestRunElection:
    @pytest.mark.parametrize("detection", ["optimistic", "nearest"])
    def test_unique_leader(self, detection):
        net = generators.connected_gnp_graph(30, 0.2, 1)
        out = er.run_election(net, rng=1, detection=detection)
        assert out.leader in net
        assert out.remaining_per_phase[-1] == 1

    def test_remaining_monotone_nonincreasing(self):
        net = generators.grid_graph(5, 5)
        out = er.run_election(net, rng=2)
        hist = out.remaining_per_phase
        assert all(a >= b for a, b in zip(hist, hist[1:]))
        assert hist[0] == net.num_nodes

    def test_disconnected_rejected(self):
        from repro.network.graph import Network

        with pytest.raises(ValueError):
            er.run_election(Network(edges=[(0, 1), (2, 3)]))

    def test_deterministic_with_seed(self):
        net = generators.cycle_graph(20)
        a = er.run_election(net, rng=7)
        b = er.run_election(net, rng=7)
        assert a.leader == b.leader and a.phases == b.phases


class TestClaim41:
    """Per-phase elimination probability >= 1/4 with >= 2 remaining."""

    @pytest.mark.parametrize("detection", ["optimistic", "nearest"])
    @pytest.mark.parametrize("remaining", [2, 5, 10])
    def test_elimination_probability_bound(self, detection, remaining):
        net = generators.connected_gnp_graph(20, 0.25, 3)
        p = er.phase_elimination_probability(
            net, remaining, trials=3000, rng=3, detection=detection
        )
        assert p >= 0.25 - 0.03  # Monte-Carlo tolerance

    def test_two_remaining_exact_probability(self):
        """With exactly two remaining nodes the optimistic elimination
        probability is exactly 1/4 (label 0 and the other has 1)."""
        net = generators.path_graph(6)
        p = er.phase_elimination_probability(
            net, 2, trials=6000, rng=5, detection="optimistic"
        )
        assert abs(p - 0.25) < 0.03

    def test_requires_two_remaining(self):
        with pytest.raises(ValueError):
            er.phase_elimination_probability(generators.path_graph(4), 1)


class TestPhaseCount:
    def test_phases_logarithmic(self):
        """Θ(log n) phases whp: mean phases across seeds must grow like
        log n, and stay within a small constant of log2(n)."""
        mean_phases = {}
        for n in (8, 32, 128):
            net = generators.cycle_graph(n)
            phases = [
                er.run_election(net, rng=s).phases for s in range(20)
            ]
            mean_phases[n] = float(np.mean(phases))
        for n, mp in mean_phases.items():
            assert mp <= 4 * math.log2(n) + 4, mean_phases
        # growth between sizes is additive (log-like), not multiplicative
        assert mean_phases[128] - mean_phases[8] < 12

    def test_total_time_n_log_n(self):
        for n in (16, 64):
            net = generators.cycle_graph(n)
            times = [er.run_election(net, rng=s).simulated_time for s in range(10)]
            assert float(np.mean(times)) <= 30 * n * math.log2(n)
