"""Tests for FSSGA 2-colouring (Section 4.1, experiment E6)."""

import pytest

from repro.algorithms import two_coloring as tc
from repro.network import generators
from repro.network.properties import is_bipartite
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator


class TestStickyVariant:
    def test_bipartite_succeeds(self, bipartite_graph):
        net = bipartite_graph
        aut, init = tc.build(net, next(iter(net)))
        sim = SynchronousSimulator(net, aut, init)
        steps = sim.run_until_stable()
        assert tc.succeeded(net, sim.state)
        assert steps <= net.diameter() + 2

    @pytest.mark.parametrize("n", [3, 5, 7, 9])
    def test_odd_cycle_fails(self, n):
        net = generators.cycle_graph(n)
        aut, init = tc.build(net, 0)
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        assert tc.failed(sim.state)
        # FAILED floods everywhere
        assert all(sim.state[v] == tc.FAILED for v in net)

    def test_petersen_fails(self):
        net = generators.petersen_graph()
        aut, init = tc.build(net, 0)
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        assert tc.failed(sim.state)

    def test_matches_ground_truth(self, small_connected_graph):
        net = small_connected_graph
        aut, init = tc.build(net, next(iter(net)))
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable(max_steps=500)
        assert tc.failed(sim.state) == (not is_bipartite(net))

    def test_colours_match_bfs_parity(self):
        net = generators.grid_graph(3, 4)
        aut, init = tc.build(net, 0)
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        dist = net.bfs_distances([0])
        for v in net:
            expected = tc.RED if dist[v] % 2 == 0 else tc.BLUE
            assert sim.state[v] == expected

    def test_asynchronous_equivalence(self):
        """Fixed point ⟺ proper colouring, under any fair schedule."""
        for seed in range(5):
            net = generators.grid_graph(3, 3)
            aut, init = tc.build(net, 0)
            sim = AsynchronousSimulator(net, aut, init, rng=seed)
            sim.run_fair_rounds(30)
            assert tc.succeeded(net, sim.state)
        for seed in range(5):
            net = generators.cycle_graph(7)
            aut, init = tc.build(net, 0)
            sim = AsynchronousSimulator(net, aut, init, rng=seed)
            sim.run_fair_rounds(60)
            assert tc.failed(sim.state)


class TestVerbatimVariant:
    def test_oscillates_on_paths(self):
        """The paper-verbatim cascade never consults a node's own state, so
        synchronous executions oscillate with period 2 (documented)."""
        net = generators.path_graph(4)
        aut, init = tc.build(net, 0, sticky=False)
        sim = SynchronousSimulator(net, aut, init)
        sim.run(2)
        snapshot2 = dict(sim.state.items())
        sim.run(2)
        assert dict(sim.state.items()) == snapshot2

    def test_odd_cycle_oscillates_without_detecting(self):
        net = generators.cycle_graph(3)
        aut, init = tc.build(net, 0, sticky=False)
        sim = SynchronousSimulator(net, aut, init)
        sim.run(20)
        assert not tc.failed(sim.state)  # the documented limitation

    def test_all_blank_is_absorbing_async(self):
        """A documented hazard of the verbatim cascade: asynchronously,
        activating the origin while its neighbours are still blank resets
        it, and the all-blank state is then absorbing."""
        from repro.runtime.scheduler import ScriptedScheduler

        net = generators.path_graph(4)
        aut, init = tc.build(net, 0, sticky=False)
        sched = ScriptedScheduler([0] + [0, 1, 2, 3] * 5)
        sim = AsynchronousSimulator(net, aut, init, scheduler=sched)
        sim.run(21)
        assert all(sim.state[v] == tc.BLANK for v in net)

    def test_formal_programs_match_rule(self):
        """The published cascade's formal ModThreshPrograms agree with the
        rule function on random neighbourhoods."""
        from collections import Counter

        import numpy as np

        from repro.core.automaton import NeighborhoodView

        progs = tc.programs()
        rng = np.random.default_rng(0)
        states = sorted(tc.ALPHABET)
        for _ in range(200):
            counts = Counter(
                {q: int(rng.integers(0, 4)) for q in states}
            )
            counts = Counter({q: c for q, c in counts.items() if c})
            if not counts:
                continue
            view = NeighborhoodView(counts)
            for own in states:
                assert progs[own].evaluate(
                    view._multiset()
                ) == tc.rule(own, view)


class TestStickyPrograms:
    def test_sticky_programs_match_sticky_rule(self):
        from collections import Counter

        import numpy as np

        from repro.core.automaton import NeighborhoodView

        progs = tc.sticky_programs()
        rng = np.random.default_rng(1)
        states = sorted(tc.ALPHABET)
        for _ in range(200):
            counts = Counter({q: int(rng.integers(0, 3)) for q in states})
            counts = Counter({q: c for q, c in counts.items() if c})
            if not counts:
                continue
            view = NeighborhoodView(counts)
            for own in states:
                assert progs[own].evaluate(
                    view._multiset()
                ) == tc.sticky_rule(own, view), (own, counts)

    def test_unknown_origin_rejected(self):
        with pytest.raises(KeyError):
            tc.build(generators.path_graph(2), 99)
