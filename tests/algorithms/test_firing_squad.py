"""Tests for the firing-squad extension (Section 5.2, path graphs)."""

import pytest

from repro.algorithms.firing_squad import (
    FiringSquadLine,
    run_firing_squad,
    space_time_diagram,
)


class TestSynchronization:
    @pytest.mark.parametrize("n", list(range(1, 33)))
    def test_all_fire_simultaneously(self, n):
        t, simultaneous = run_firing_squad(n)
        assert simultaneous, f"partial firing at n={n}"

    @pytest.mark.parametrize("n", [50, 75, 100, 137])
    def test_larger_lines(self, n):
        t, simultaneous = run_firing_squad(n)
        assert simultaneous

    def test_time_is_about_3n(self):
        """Minsky's construction fires at ≈ 3n."""
        for n in (10, 20, 50, 100):
            t, _ = run_firing_squad(n)
            assert 2 * n <= t <= 3 * n + 10, (n, t)

    def test_time_monotone_in_n(self):
        times = [run_firing_squad(n)[0] for n in range(4, 40)]
        assert all(a <= b for a, b in zip(times, times[1:]))

    def test_single_cell(self):
        assert run_firing_squad(1) == (1, True)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            FiringSquadLine(0)


class TestMechanics:
    def test_fired_cells_stay_fired(self):
        line = FiringSquadLine(6)
        for _ in range(40):
            line.step()
        assert line.all_fired
        snapshot = [c.role for c in line.cells]
        line.step()
        assert [c.role for c in line.cells] == snapshot

    def test_exactly_one_fast_signal_per_segment(self):
        """Between births, at most one fast signal exists per active
        segment (here: the single root segment early on)."""
        line = FiringSquadLine(12)
        for _ in range(8):  # before the first meet
            line.step()
            fast_count = sum(len(c.fast) for c in line.cells if c.role == "quiescent")
            assert fast_count <= 1

    def test_space_time_diagram_shape(self):
        frames = space_time_diagram(8)
        assert frames[0].startswith("G")
        assert frames[-1] == "F" * 8
        assert all(len(f) == 8 for f in frames)

    def test_generals_only_ever_increase(self):
        line = FiringSquadLine(10)
        prev_generals: set = set()
        for _ in range(60):
            line.step()
            gens = {
                i for i, c in enumerate(line.cells) if c.role in ("general", "fired")
            }
            assert prev_generals <= gens
            prev_generals = gens
            if line.all_fired:
                break
        assert line.all_fired
