"""Tests for the α synchronizer (Section 4.2, experiment E7)."""

import pytest

from repro.algorithms import synchronizer as alpha
from repro.algorithms import two_coloring as tc
from repro.core.automaton import FSSGA
from repro.core.sequential import SequentialProgram
from repro.network import NetworkState, generators
from repro.runtime.scheduler import ScriptedScheduler
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator


def epidemic_inner():
    return FSSGA(
        {0, 1}, lambda own, view: 1 if own == 1 or view.at_least(1, 1) else 0,
        name="epidemic",
    )


def epidemic_init(net):
    init = NetworkState.uniform(net, 0)
    init[next(iter(net))] = 1
    return init


def track_unwrapped_clocks(sim, net, rounds, per_round_cb=None):
    """Run fair rounds while tracking unwrapped (true) clock values."""
    clocks = {v: 0 for v in net}
    for r in range(rounds):
        order = net.nodes()
        sim.rng.shuffle(order)
        for v in order:
            before = sim.state[v][2]
            old = sim.state[v]
            new = sim.automaton.transition(
                old,
                __import__("collections").Counter(
                    sim.state[u] for u in net.neighbors(v)
                ),
            )
            if new != old:
                sim.state.set(v, new)
            if new[2] != before:
                clocks[v] += 1
        if per_round_cb:
            per_round_cb(r, clocks)
    return clocks


class TestWrapDeterministic:
    def test_async_equals_sync(self, small_connected_graph):
        """The headline property: a synchronized asynchronous run passes
        through exactly the synchronous execution's states."""
        net = small_connected_graph
        inner = epidemic_inner()
        init = epidemic_init(net)

        sync = SynchronousSimulator(net.copy(), inner, init.copy())
        sync_states = [dict(sync.state.items())]
        for _ in range(12):
            sync.step()
            sync_states.append(dict(sync.state.items()))

        comp = alpha.wrap(inner)
        asim = AsynchronousSimulator(net, comp, alpha.initial_state(init), rng=3)
        # track that each node's (current, clock-unwrapped) trajectory
        # matches the synchronous sequence
        unwrapped = {v: 0 for v in net}
        for _ in range(40):
            order = net.nodes()
            asim.rng.shuffle(order)
            for v in order:
                before_clock = asim.state[v][2]
                from collections import Counter

                new = comp.transition(
                    asim.state[v],
                    Counter(asim.state[u] for u in net.neighbors(v)),
                )
                asim.state.set(v, new)
                if new[2] != before_clock:
                    unwrapped[v] += 1
                    t = unwrapped[v]
                    if t < len(sync_states):
                        assert new[0] == sync_states[t][v], (v, t)

    def test_adjacent_clocks_within_one(self):
        net = generators.cycle_graph(8)
        inner = epidemic_inner()
        comp = alpha.wrap(inner)
        asim = AsynchronousSimulator(
            net, comp, alpha.initial_state(epidemic_init(net)), rng=9
        )
        clocks = {v: 0 for v in net}
        for _ in range(300):
            v = net.nodes()[int(asim.rng.integers(net.num_nodes))]
            from collections import Counter

            before = asim.state[v][2]
            new = comp.transition(
                asim.state[v], Counter(asim.state[u] for u in net.neighbors(v))
            )
            asim.state.set(v, new)
            if new[2] != before:
                clocks[v] += 1
            for a, b in net.edges():
                assert abs(clocks[a] - clocks[b]) <= 1

    def test_clock_advances_once_per_fair_round(self):
        """Paper: in k units of time each clock advances at least k times."""
        net = generators.grid_graph(3, 3)
        inner = epidemic_inner()
        comp = alpha.wrap(inner)
        asim = AsynchronousSimulator(
            net, comp, alpha.initial_state(epidemic_init(net)), rng=4
        )
        clocks = track_unwrapped_clocks(asim, net, rounds=10)
        assert all(c >= 10 for c in clocks.values())

    def test_adversarial_schedule_blocks_but_never_corrupts(self):
        """A scheduler that hammers one node cannot push its clock more
        than one ahead of a frozen neighbour."""
        net = generators.path_graph(3)
        inner = epidemic_inner()
        comp = alpha.wrap(inner)
        init = alpha.initial_state(epidemic_init(net))
        sched = ScriptedScheduler([0] * 50)
        asim = AsynchronousSimulator(net, comp, init, scheduler=sched, rng=0)
        asim.run(50)
        # node 0 advanced exactly once (to clock 1), then waits for node 1
        assert asim.state[0][2] == 1
        assert asim.state[1][2] == 0


class TestWrapProbabilistic:
    def test_composite_preserves_randomness(self):
        from repro.core.automaton import ProbabilisticFSSGA

        inner = ProbabilisticFSSGA({0, 1}, 2, lambda own, view, i: i)
        comp = alpha.wrap_probabilistic(inner)
        assert comp.randomness == 2
        net = generators.complete_graph(4)
        init = alpha.initial_state(NetworkState.uniform(net, 0))
        asim = AsynchronousSimulator(net, comp, init, rng=8)
        asim.run_fair_rounds(6)
        currents = {asim.state[v][0] for v in net}
        assert currents <= {0, 1}


class TestFormalTransform:
    def test_transform_matches_wrapper(self):
        """The paper's formal sequential-program construction agrees with
        the rule-level wrapper."""
        # inner: OR of neighbours (ignores own state)
        def or_p(w, q):
            return w | q

        programs = {
            q: SequentialProgram(
                frozenset({0, 1}), 0, or_p, lambda w: w, name=f"or[{q}]"
            )
            for q in (0, 1)
        }
        composite_programs = alpha.transform_programs(programs)
        formal = FSSGA.from_programs(composite_programs)

        inner_rule = FSSGA(
            {0, 1}, lambda own, view: 1 if view.at_least(1, 1) else 0
        )
        wrapper = alpha.wrap(inner_rule)

        from collections import Counter

        import itertools

        triples = list(itertools.product((0, 1), (0, 1), (0, 1, 2)))
        rng_cases = [
            Counter({triples[0]: 1}),
            Counter({(1, 0, 0): 2, (0, 1, 1): 1}),
            Counter({(0, 0, 2): 1, (1, 1, 0): 1}),
            Counter({(1, 1, 1): 3}),
        ]
        for own in triples:
            for counts in rng_cases:
                assert formal.transition(own, counts) == wrapper.transition(
                    own, counts
                ), (own, counts)

    def test_wait_sentinel_collision_rejected(self):
        bad = {
            0: SequentialProgram(
                frozenset({0, alpha.WAIT}), 0, lambda w, q: w, lambda w: 0
            )
        }
        with pytest.raises(ValueError):
            alpha.transform_programs(bad)


class TestSynchronizedAlgorithm:
    def test_two_coloring_through_synchronizer(self):
        """End-to-end: the sticky 2-colouring, designed for the synchronous
        model, runs correctly asynchronously once wrapped."""
        net = generators.grid_graph(3, 3)
        inner, init = tc.build(net, 0)
        comp = alpha.wrap(inner)
        asim = AsynchronousSimulator(net, comp, alpha.initial_state(init), rng=6)
        asim.run_fair_rounds(40)
        final = {v: asim.state[v][0] for v in net}
        ssim = SynchronousSimulator(net.copy(), inner, init.copy())
        ssim.run_until_stable()
        assert final == dict(ssim.state.items())
