"""Tests for the greedy tourist (Section 4.6, experiment E11)."""

import math

import pytest

from repro.algorithms.greedy_traversal import GreedyTourist, run_greedy_traversal
from repro.network import generators


class TestCompleteness:
    def test_visits_everything(self, small_connected_graph):
        net = small_connected_graph
        t = run_greedy_traversal(net, next(iter(net)), rng=1)
        assert t.done
        assert set(t.itinerary) == set(net.nodes())

    def test_itinerary_walks_edges(self):
        net = generators.grid_graph(3, 4)
        t = run_greedy_traversal(net, 0, rng=2)
        for a, b in zip(t.itinerary, t.itinerary[1:]):
            assert net.has_edge(a, b)

    def test_path_graph_is_linear_time(self):
        net = generators.path_graph(10)
        t = run_greedy_traversal(net, 0, rng=0)
        assert t.agent_steps == 9  # straight down the line


class TestComplexity:
    def test_agent_steps_n_log_n(self):
        """Paper: O(n log n) agent steps via [20]."""
        for n in (16, 32, 64):
            net = generators.connected_gnp_graph(n, min(0.9, 6.0 / n), 3)
            t = run_greedy_traversal(net, 0, rng=3)
            assert t.agent_steps <= 4 * n * max(1, math.log2(n)), (
                n,
                t.agent_steps,
            )

    def test_fssga_time_includes_election_cost(self):
        net = generators.complete_graph(20)
        t = run_greedy_traversal(net, 0, rng=1)
        # every move has >= 1 election round + 1 move round
        assert t.fssga_time >= 2 * t.agent_steps

    def test_relaxation_rounds_accumulate(self):
        net = generators.path_graph(8)
        t = run_greedy_traversal(net, 0, rng=0)
        assert t.relaxation_rounds >= t.agent_steps  # >= 1 round per move


class TestSensitivity:
    def test_survives_fault_away_from_agent(self):
        """Sensitivity 1: any non-agent failure leaves the traversal able
        to finish on the surviving graph."""
        net = generators.theta_graph(3, 3, 4)
        t = GreedyTourist(net, 0, rng=5)
        for _ in range(3):
            t.step()
        # delete a node that is not the agent and keeps the graph connected
        victim = None
        from repro.network.properties import articulation_points

        arts = articulation_points(net)
        for v in net.nodes():
            if v != t.position and v not in arts:
                victim = v
                break
        assert victim is not None
        net.remove_node(victim)
        t.unvisited.discard(victim)
        t.run()
        assert t.done

    def test_agent_loss_is_fatal(self):
        net = generators.cycle_graph(5)
        t = GreedyTourist(net, 0, rng=1)
        net.remove_node(t.position)
        with pytest.raises((RuntimeError, KeyError)):
            t.step()

    def test_stranded_detection(self):
        net = generators.path_graph(4)
        t = GreedyTourist(net, 0, rng=0)
        t.step()
        net.remove_edge(1, 2)  # disconnects the unvisited tail
        with pytest.raises(RuntimeError):
            t.run()


class TestMilgramComparison:
    def test_greedy_slower_but_lower_sensitivity(self):
        """E11's shape: Milgram uses exactly 2n-2 moves; the greedy tourist
        may use more agent steps, but its critical set is a single node
        versus Milgram's Θ(n) arm."""
        from repro.algorithms.traversal import run_traversal

        net = generators.connected_gnp_graph(20, 0.25, 9)
        milgram = run_traversal(net.copy(), 0, rng=9)
        greedy = run_greedy_traversal(net.copy(), 0, rng=9)
        assert milgram.hand_moves == 2 * net.num_nodes - 2
        assert greedy.agent_steps >= net.num_nodes - 1
