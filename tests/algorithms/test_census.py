"""Tests for the Flajolet–Martin census (paper Section 1, experiment E1)."""

import numpy as np
import pytest

from repro.algorithms import census
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.simulator import SynchronousSimulator


class TestSketchSampling:
    def test_at_most_one_bit(self):
        rng = np.random.default_rng(0)
        for _ in range(200):
            s = census.sample_sketch(8, rng)
            assert sum(s) <= 1

    def test_bit_probabilities(self):
        rng = np.random.default_rng(1)
        n = 20000
        hits = np.zeros(4)
        none = 0
        for _ in range(n):
            s = census.sample_sketch(4, rng)
            if sum(s) == 0:
                none += 1
            else:
                hits[s.index(1)] += 1
        assert abs(hits[0] / n - 0.5) < 0.02
        assert abs(hits[1] / n - 0.25) < 0.02
        assert abs(none / n - 2 ** -4) < 0.02


class TestDiffusion:
    def test_stabilizes_to_component_or(self):
        net = generators.connected_gnp_graph(40, 0.12, 7)
        aut, init = census.build(net, k=10, rng=7)
        expected = [0] * 10
        for v in net:
            for j, b in enumerate(init[v]):
                expected[j] |= b
        sim = SynchronousSimulator(net, aut, init, rng=7)
        steps = sim.run_until_stable()
        assert all(sim.state[v] == tuple(expected) for v in net)
        # OR floods at BFS speed: stabilization within diameter+1 steps
        assert steps <= net.diameter() + 2

    def test_or_rule_is_monotone(self):
        """Semi-lattice property: a node's sketch never loses bits."""
        net = generators.cycle_graph(8)
        aut, init = census.build(net, k=6, rng=3)
        sim = SynchronousSimulator(net, aut, init, rng=3)
        prev = {v: sim.state[v] for v in net}
        for _ in range(10):
            sim.step()
            for v in net:
                assert all(
                    old_b <= new_b for old_b, new_b in zip(prev[v], sim.state[v])
                )
            prev = {v: sim.state[v] for v in net}


class TestEstimates:
    def test_first_zero_index(self):
        assert census.first_zero_index((1, 1, 0, 1)) == 3
        assert census.first_zero_index((0, 0)) == 1
        assert census.first_zero_index((1, 1)) == 3

    def test_paper_formula_matches_calibration(self):
        s = (1, 1, 0, 0)
        assert census.estimate_paper(s) == pytest.approx(
            census.estimate(s), rel=0.02
        )

    def test_median_estimate_within_factor_two(self):
        """Paper: whp the estimate is within a factor of 2.  A single
        sketch is noisy, so we check the median over seeds."""
        n = 64
        estimates = []
        for seed in range(40):
            net = generators.cycle_graph(n)
            aut, init = census.build(net, k=12, rng=seed)
            sim = SynchronousSimulator(net, aut, init, rng=seed)
            sim.run_until_stable()
            estimates.append(census.estimate(sim.state[0]))
        med = float(np.median(estimates))
        assert n / 2 <= med <= 2 * n, med


class TestStochasticAveraging:
    """The build_averaged extension: c independent sketches per node."""

    def test_averaged_diffusion_stabilizes(self):
        net = generators.grid_graph(4, 4)
        aut, init = census.build_averaged(net, copies=3, k=8, rng=2)
        sim = SynchronousSimulator(net, aut, init, rng=2)
        steps = sim.run_until_stable()
        assert steps <= net.diameter() + 2
        # all nodes agree on all copies
        reference = sim.state[0]
        assert all(sim.state[v] == reference for v in net)

    def test_each_copy_is_component_or(self):
        net = generators.cycle_graph(10)
        aut, init = census.build_averaged(net, copies=2, k=6, rng=4)
        expected = [[0] * 6 for _ in range(2)]
        for v in net:
            for c, sketch in enumerate(init[v]):
                for j, b in enumerate(sketch):
                    expected[c][j] |= b
        sim = SynchronousSimulator(net, aut, init, rng=4)
        sim.run_until_stable()
        assert sim.state[0] == tuple(tuple(s) for s in expected)

    def test_averaging_tightens_accuracy(self):
        """More copies -> smaller log-error (the FM-paper fix)."""
        import numpy as np

        n = 64
        mean_err = {}
        for copies in (1, 8):
            errs = []
            for seed in range(20):
                net = generators.cycle_graph(n)
                aut, init = census.build_averaged(net, copies, k=12, rng=seed)
                sim = SynchronousSimulator(net, aut, init, rng=seed)
                sim.run_until_stable()
                est = census.estimate_averaged(sim.state[0])
                errs.append(abs(np.log2(est / n)))
            mean_err[copies] = float(np.mean(errs))
        assert mean_err[8] < mean_err[1]

    def test_invalid_copies(self):
        with pytest.raises(ValueError):
            census.build_averaged(generators.path_graph(2), copies=0)


class TestFaultTolerance:
    def test_non_disconnecting_faults_harmless(self):
        """0-sensitivity: edge faults that keep the network connected do
        not change the answer."""
        net = generators.theta_graph(3, 3, 4)
        aut, init = census.build(net, k=8, rng=5)
        expected = [0] * 8
        for v in net:
            for j, b in enumerate(init[v]):
                expected[j] |= b
        plan = FaultPlan([FaultEvent(2, "edge", net.edges()[0])])
        sim = SynchronousSimulator(net, aut, init, rng=5, fault_plan=plan)
        sim.run(30)
        assert net.is_connected()
        assert all(sim.state[v] == tuple(expected) for v in net)

    def test_disconnection_gives_component_bounds(self):
        """Paper: a disconnected component's estimate is between the OR of
        its own sketches and the OR of the original network's."""
        net = generators.barbell_graph(8, 1)
        bridge_edge = None
        from repro.network.properties import bridges

        bridge_edge = next(iter(bridges(net)))
        aut, init = census.build(net, k=10, rng=11)
        plan = FaultPlan([FaultEvent(1, "edge", bridge_edge)])
        sim = SynchronousSimulator(net, aut, init, rng=11, fault_plan=plan)
        sim.run(40)
        comps = net.connected_components()
        assert len(comps) == 2
        for comp in comps:
            # final sketch of the component >= OR of its own initial
            # sketches and <= OR of everyone's
            own = [0] * 10
            total = [0] * 10
            for v in comp:
                for j, b in enumerate(init[v]):
                    own[j] |= b
            for v in init:
                for j, b in enumerate(init[v]):
                    total[j] |= b
            final = sim.state[next(iter(comp))]
            assert all(o <= f <= t for o, f, t in zip(own, final, total))
