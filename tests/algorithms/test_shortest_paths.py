"""Tests for decentralized shortest paths (Section 2.2, experiment E3)."""

import pytest

from repro.algorithms import shortest_paths as sp
from repro.network import generators
from repro.runtime.faults import FaultEvent, FaultPlan
from repro.runtime.simulator import AsynchronousSimulator, SynchronousSimulator


class TestConvergence:
    @pytest.mark.parametrize(
        "net_fn,targets",
        [
            (lambda: generators.path_graph(8), [0]),
            (lambda: generators.grid_graph(4, 5), [0, 19]),
            (lambda: generators.cycle_graph(9), [3]),
            (lambda: generators.petersen_graph(), [0]),
        ],
    )
    def test_labels_equal_distance(self, net_fn, targets):
        net = net_fn()
        aut, init = sp.build(net, targets)
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        assert sp.stabilized(net, sim.state, targets, net.num_nodes)

    def test_convergence_within_d_rounds(self):
        """Paper: a node at distance d stabilizes within d rounds."""
        net = generators.path_graph(10)
        aut, init = sp.build(net, [0])
        sim = SynchronousSimulator(net, aut, init)
        dist = net.bfs_distances([0])
        for t in range(1, 10):
            sim.step()
            for v in net:
                if dist[v] <= t:
                    assert sp.labels(sim.state)[v] == dist[v]

    def test_cap_applies_without_targets_in_component(self):
        from repro.network.graph import Network

        net = Network(edges=[(0, 1), (2, 3)])
        aut, init = sp.build(net, [0], cap=4)
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        labels = sp.labels(sim.state)
        assert labels[2] == 4 and labels[3] == 4  # capped, no target nearby

    def test_asynchronous_convergence(self):
        net = generators.grid_graph(3, 4)
        aut, init = sp.build(net, [0])
        sim = AsynchronousSimulator(net, aut, init, rng=2)
        sim.run_fair_rounds(20)
        assert sp.stabilized(net, sim.state, [0], net.num_nodes)

    def test_unknown_target_rejected(self):
        with pytest.raises(KeyError):
            sp.build(generators.path_graph(3), [42])


class TestFaultRecovery:
    def test_zero_sensitivity_reconvergence(self):
        """After a fault, labels re-balance to the surviving graph's
        distances (the 0-sensitive 'balancing' behaviour)."""
        net = generators.grid_graph(4, 4)
        aut, init = sp.build(net, [0])
        plan = FaultPlan([FaultEvent(6, "edge", (0, 1)), FaultEvent(8, "node", 5)])
        sim = SynchronousSimulator(net, aut, init, fault_plan=plan)
        sim.run_until_stable(max_steps=200)
        assert sp.stabilized(net, sim.state, [0], net.num_nodes)

    def test_labels_can_increase_after_fault(self):
        """Deleting a shortcut must raise labels (not just lower them)."""
        net = generators.cycle_graph(8)
        aut, init = sp.build(net, [0])
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        assert sp.labels(sim.state)[7] == 1
        net.remove_edge(7, 0)
        sim2 = SynchronousSimulator(net, aut, sim.state)
        sim2.run_until_stable(max_steps=100)
        assert sp.labels(sim2.state)[7] == 7


class TestSelfStabilization:
    """The min+1 relaxation is a *balancing* rule (P1-P3): it converges
    from arbitrary label states, not just the fresh initialization —
    self-stabilization in the Section 5.2 sense, for this algorithm."""

    def test_converges_from_garbage_labels(self):
        import numpy as np

        rng = np.random.default_rng(3)
        net = generators.grid_graph(4, 4)
        cap = net.num_nodes
        aut, _init = sp.build(net, [0], cap=cap)
        from repro.network import NetworkState

        garbage = NetworkState.from_function(
            net,
            lambda v: (v == 0, int(rng.integers(0, cap + 1)) if v != 0 else 0),
        )
        sim = SynchronousSimulator(net, aut, garbage)
        sim.run_until_stable(max_steps=200)
        assert sp.stabilized(net, sim.state, [0], cap)

    def test_converges_from_all_zero_labels(self):
        """Even the adversarial all-zeros state (every node claims to be a
        target-distance 0) self-corrects."""
        net = generators.path_graph(8)
        cap = net.num_nodes
        aut, _init = sp.build(net, [0], cap=cap)
        from repro.network import NetworkState

        allzero = NetworkState.from_function(net, lambda v: (v == 0, 0))
        sim = SynchronousSimulator(net, aut, allzero)
        sim.run_until_stable(max_steps=200)
        assert sp.stabilized(net, sim.state, [0], cap)


class TestRouting:
    def test_route_follows_shortest_path(self):
        net = generators.grid_graph(5, 5)
        aut, init = sp.build(net, [0])
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        path = sp.route_packet(net, sim.state, 24, rng=0)
        assert path[0] == 24 and path[-1] == 0
        assert len(path) - 1 == net.bfs_distances([0])[24]
        for a, b in zip(path, path[1:]):
            assert net.has_edge(a, b)

    def test_route_to_nearest_of_multiple_sinks(self):
        net = generators.path_graph(10)
        aut, init = sp.build(net, [0, 9])
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable()
        path = sp.route_packet(net, sim.state, 7, rng=0)
        assert path[-1] == 9  # nearer sink

    def test_route_fails_on_unstabilized_labels(self):
        net = generators.path_graph(6)
        aut, init = sp.build(net, [0])
        with pytest.raises(RuntimeError):
            sp.route_packet(net, init, 5, rng=0)
