"""Tests for the emergent random walk (Section 4.4, Algorithm 4.2, E9)."""

import math
from collections import Counter

import numpy as np
import pytest

from repro.algorithms import random_walk as rw
from repro.network import generators
from repro.runtime.simulator import SynchronousSimulator


class TestProtocolInvariants:
    def test_exactly_one_walker_at_all_times(self):
        net = generators.petersen_graph()
        aut, init = rw.build(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=1)
        for _ in range(300):
            sim.step()
            holders = sim.state.nodes_in(rw.WALKER_STATES)
            assert len(holders) == 1

    def test_walker_moves_to_neighbours_only(self):
        net = generators.cycle_graph(7)
        obs = rw.run_walk(net, 0, moves=40, rng=2)
        for a, b in zip(obs.positions, obs.positions[1:]):
            assert net.has_edge(a, b)

    def test_coins_cleared_between_moves(self):
        """After a move completes, no heads/tails/eliminated linger
        adjacent to the new walker when it starts its election."""
        net = generators.star_graph(4)
        aut, init = rw.build(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=3)
        prev_holder = 0
        for _ in range(200):
            sim.step()
            holder = rw.walker_position(sim.state)
            if holder != prev_holder and sim.state[holder] == rw.FLIP:
                # fresh walker: its neighbourhood must hold no stale coins
                for u in net.neighbors(holder):
                    assert sim.state[u] in (rw.BLANK, rw.ONETAILS), sim.state[u]
                prev_holder = holder


class TestUniformity:
    def test_star_center_moves_uniformly(self):
        """From the hub of a star, each leaf must win equally often."""
        net = generators.star_graph(4)
        wins: Counter = Counter()
        for seed in range(120):
            obs = rw.run_walk(net, 0, moves=1, rng=seed)
            wins[obs.positions[1]] += 1
        total = sum(wins.values())
        for leaf in range(1, 5):
            assert 0.15 < wins[leaf] / total < 0.35

    def test_cycle_walk_is_symmetric(self):
        net = generators.cycle_graph(5)
        lefts = 0
        trials = 100
        for seed in range(trials):
            obs = rw.run_walk(net, 0, moves=1, rng=seed)
            if obs.positions[1] == 4:
                lefts += 1
        assert 30 <= lefts <= 70

    def test_stationary_distribution_proportional_to_degree(self):
        """Long-run occupancy of a random walk ∝ degree."""
        net = generators.lollipop_graph(4, 2)
        obs = rw.run_walk(net, 0, moves=1500, rng=5)
        occupancy = Counter(obs.positions)
        deg_sum = sum(net.degree(v) for v in net)
        for v in net:
            expected = net.degree(v) / deg_sum
            actual = occupancy[v] / len(obs.positions)
            assert abs(actual - expected) < 0.08, (v, actual, expected)


class TestRoundComplexity:
    def test_expected_rounds_logarithmic_in_degree(self):
        """Paper: at a node of degree d the walker leaves after expected
        Θ(log d) elimination rounds (≈ 2·log2 d + O(1) synchronous steps
        in this encoding)."""
        means = {}
        for leaves in (2, 8, 32):
            net = generators.star_graph(leaves)
            steps = []
            for seed in range(40):
                obs = rw.run_walk(net, 0, moves=1, rng=seed)
                steps.append(obs.steps_per_move[0])
            means[leaves] = float(np.mean(steps))
        # growth must be ~ additive per doubling (logarithmic), not linear
        assert means[8] < means[2] + 4 * 2 + 3
        assert means[32] < means[8] + 4 * 2 + 3
        growth_8_32 = means[32] - means[8]
        assert growth_8_32 < 4 * math.log2(32 / 8) + 4

    def test_degree_one_move_constant_rounds(self):
        net = generators.path_graph(2)
        steps = []
        for seed in range(60):
            obs = rw.run_walk(net, 0, moves=1, rng=seed)
            steps.append(obs.steps_per_move[0])
        assert float(np.mean(steps)) < 10


class TestBuild:
    def test_unknown_start(self):
        with pytest.raises(KeyError):
            rw.build(generators.path_graph(2), 99)

    def test_initial_state(self):
        net = generators.path_graph(3)
        aut, init = rw.build(net, 1)
        assert init[1] == rw.FLIP
        assert init[0] == init[2] == rw.BLANK
        assert aut.randomness == 2
