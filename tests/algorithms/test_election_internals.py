"""Unit tests for the leader election's internal rule machinery.

These pin the local semantics of Algorithm 4.4's components — phase
gating, NP evidence, cluster growth, colour propagation, the embedded
traversal — on hand-constructed neighbourhoods, complementing the
end-to-end tests in test_election.py.
"""

from collections import Counter

from repro.algorithms.election import (
    ElectionState,
    InnerState,
    STAR,
    _np_evidence,
    rule,
)
from repro.core.automaton import NeighborhoodView


def mk(
    phase=0,
    remain=False,
    label=0,
    np=-1,
    leader=False,
    clock=0,
    cdist=STAR,
    clabel=0,
    colour=0,
    colour_prev=0,
    colour_valid=0,
    tstat="blank",
    tsub="idle",
) -> ElectionState:
    inner = InnerState(cdist, clabel, colour, colour_prev, colour_valid, tstat, tsub)
    return ElectionState(phase, remain, label, np, leader, clock, inner, inner)


def view_of(*states: ElectionState) -> NeighborhoodView:
    return NeighborhoodView(Counter(states))


DRAW = 0  # label 0, colour 0, coin heads


class TestPhaseGating:
    def test_waits_for_straggler(self):
        own = mk(phase=1, clock=2)
        nb = mk(phase=0)
        assert rule(own, view_of(nb), DRAW) == own

    def test_advances_on_own_np(self):
        own = mk(phase=0, remain=True, label=1, np=0)
        out = rule(own, view_of(mk(phase=0)), DRAW)
        assert out.phase == 1
        assert out.np == -1
        assert out.clock == 0
        assert out.remain  # label 1 survives NP_0

    def test_np1_eliminates_label_zero(self):
        own = mk(phase=0, remain=True, label=0, np=1)
        out = rule(own, view_of(mk(phase=0)), DRAW)
        assert not out.remain
        assert out.cur.cdist == STAR  # eliminated nodes start unclaimed

    def test_np1_spares_label_one(self):
        own = mk(phase=0, remain=True, label=1, np=1)
        out = rule(own, view_of(mk(phase=0)), DRAW)
        assert out.remain
        assert out.cur.cdist == 0  # remaining nodes root a fresh cluster

    def test_advances_on_ahead_neighbour(self):
        own = mk(phase=0, remain=True, label=1)
        nb = mk(phase=1)
        out = rule(own, view_of(nb), DRAW)
        assert out.phase == 1

    def test_clock_gate_blocks_action(self):
        own = mk(phase=0, clock=1, cdist=1, colour_valid=2)
        behind = mk(phase=0, clock=0)
        out = rule(own, view_of(behind), DRAW)
        assert out == own  # waits: neighbour's round clock is behind


class TestNPPropagation:
    def test_neighbour_np_is_adopted(self):
        own = mk(phase=0, remain=False)
        nb = mk(phase=0, np=0)
        out = rule(own, view_of(nb), DRAW)
        assert out.np == 0

    def test_np_level_escalates_with_label_one(self):
        own = mk(phase=0, remain=True, label=1)
        nb = mk(phase=0, np=0)
        out = rule(own, view_of(nb), DRAW)
        assert out.np == 1

    def test_np_demotes_leader(self):
        own = mk(phase=0, leader=True, cdist=0, remain=True)
        nb = mk(phase=0, np=1)
        out = rule(own, view_of(nb), DRAW)
        assert not out.leader


class TestEvidence:
    def test_conflicting_cluster_labels(self):
        own = mk(cdist=1, clabel=0)
        eff = [
            InnerState(1, 1, 0, 0, 0, "blank", "idle"),
        ]
        assert _np_evidence(own, eff)

    def test_both_labels_among_neighbours(self):
        own = mk(cdist=STAR)
        eff = [
            InnerState(0, 0, 0, 0, 2, "blank", "idle"),
            InnerState(0, 1, 0, 0, 2, "blank", "idle"),
        ]
        assert _np_evidence(own, eff)

    def test_root_with_pred_is_evidence(self):
        own = mk(remain=True, cdist=0, clabel=0)
        eff = [InnerState(2, 0, 0, 0, 0, "blank", "idle")]
        assert _np_evidence(own, eff)

    def test_colour_mismatch_with_pred(self):
        own = mk(cdist=1, clabel=0, colour=1, colour_valid=2)
        eff = [InnerState(0, 0, 0, 0, 2, "blank", "idle")]
        # pred's colour_prev (0) != own colour (1)
        assert _np_evidence(own, eff)

    def test_consistent_cluster_is_silent(self):
        own = mk(cdist=1, clabel=0, colour=1, colour_prev=0, colour_valid=2)
        eff = [
            # pred: colour_prev equals own colour
            InnerState(0, 0, 0, 1, 2, "blank", "idle"),
            # same-dist neighbour with the same colour
            InnerState(1, 0, 1, 0, 2, "blank", "idle"),
        ]
        assert not _np_evidence(own, eff)

    def test_immature_colours_not_compared(self):
        own = mk(cdist=1, clabel=0, colour=1, colour_valid=1)
        eff = [InnerState(0, 0, 0, 0, 2, "blank", "idle")]
        assert not _np_evidence(own, eff)

    def test_two_hands_collide(self):
        own = mk(cdist=1, clabel=0)
        eff = [
            InnerState(0, 0, 0, 0, 2, "hand", "flip"),
            InnerState(2, 0, 0, 0, 2, "hand", "wait"),
        ]
        assert _np_evidence(own, eff)


class TestClusterGrowth:
    def test_adopts_first_cluster(self):
        own = mk(phase=0, cdist=STAR)
        nb = mk(phase=0, cdist=0, clabel=1, colour_valid=2)
        out = rule(own, view_of(nb), DRAW)
        assert out.cur.cdist == 1
        assert out.cur.clabel == 1
        assert out.clock == 1  # the adoption consumed a round

    def test_mod3_wraparound(self):
        own = mk(phase=0, cdist=STAR)
        nb = mk(phase=0, cdist=2, clabel=0, colour_valid=2)
        out = rule(own, view_of(nb), DRAW)
        assert out.cur.cdist == 0

    def test_no_growth_without_labelled_neighbour(self):
        own = mk(phase=0, cdist=STAR)
        nb = mk(phase=0, cdist=STAR)
        out = rule(own, view_of(nb), DRAW)
        assert out.cur.cdist == STAR
        assert out.clock == 1


class TestColourPropagation:
    def test_root_draws_fresh_colour(self):
        own = mk(phase=0, remain=True, cdist=0, colour=0, colour_valid=2)
        nb = mk(phase=0, cdist=1, colour_valid=0)
        draw_colour_1 = 0b010  # colour bit set
        out = rule(own, view_of(nb), draw_colour_1)
        assert out.cur.colour == 1
        assert out.cur.colour_prev == 0

    def test_leader_root_freezes_colour(self):
        own = mk(
            phase=0, remain=True, cdist=0, colour=0, colour_valid=2, leader=True,
            tstat="visited",
        )
        nb = mk(phase=0, cdist=1, colour=0, colour_valid=2, tstat="visited")
        out = rule(own, view_of(nb), 0b010)
        assert out.cur.colour == 0  # frozen despite the colour bit

    def test_nonroot_copies_pred(self):
        own = mk(phase=0, cdist=1, clabel=0, colour_valid=0)
        pred = mk(phase=0, cdist=0, clabel=0, colour=1, colour_valid=2, remain=True)
        out = rule(own, view_of(pred), DRAW)
        assert out.cur.colour == 1
        assert out.cur.colour_valid == 1

    def test_validity_matures(self):
        own = mk(phase=0, cdist=1, clabel=0, colour=1, colour_valid=1)
        pred = mk(phase=0, cdist=0, clabel=0, colour=0, colour_prev=1, colour_valid=2, remain=True)
        out = rule(own, view_of(pred), DRAW)
        assert out.cur.colour_valid == 2
        assert out.cur.colour_prev == 1
        assert out.cur.colour == 0
