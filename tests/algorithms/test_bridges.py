"""Tests for random-walk bridge finding (Section 2.1, Claim 2.1, E2)."""

import numpy as np
import pytest

from repro.algorithms.bridges import BridgeFinder, recommended_steps
from repro.agents.walks import theoretical_hitting_bound
from repro.network import generators
from repro.network.properties import bridges as true_bridges


class TestCounterInvariant:
    @pytest.mark.parametrize("seed", range(5))
    def test_bridge_counters_bounded(self, seed):
        """The paper's easy direction: a bridge counter stays in
        {-1, 0, 1} forever."""
        net = generators.barbell_graph(4, 2)
        tb = true_bridges(net)
        finder = BridgeFinder(net, 0, rng=seed)
        for _ in range(4000):
            finder.step()
            for u, v in tb:
                assert abs(finder.counter(u, v)) <= 1

    def test_counter_tracks_signed_crossings(self):
        net = generators.path_graph(3)
        finder = BridgeFinder(net, 0, rng=0)
        crossings = {e: 0 for e in net.edges()}
        for _ in range(200):
            before = finder.agent.position
            finder.step()
            after = finder.agent.position
            from repro.network.graph import canonical_edge

            e = canonical_edge(before, after)
            if (before, after) == e:
                crossings[e] += 1
            else:
                crossings[e] -= 1
            assert finder.counter(*e) == crossings[e]


class TestDetection:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: generators.barbell_graph(4, 2),
            lambda: generators.lollipop_graph(4, 3),
            lambda: generators.theta_graph(2, 3, 3),
            lambda: generators.petersen_graph(),
        ],
    )
    def test_exact_bridge_recovery(self, net_fn):
        net = net_fn()
        tb = true_bridges(net)
        finder = BridgeFinder(net, next(iter(net)), rng=7)
        finder.run_until_all_nonbridges_found(tb)
        assert finder.presumed_bridges() == tb
        assert finder.exceeded_edges() == set(net.edges()) - tb

    def test_tree_never_flags_anything(self):
        net = generators.random_tree(12, 3)
        finder = BridgeFinder(net, 0, rng=1)
        finder.run(5000)
        assert finder.exceeded_edges() == set()
        assert finder.presumed_bridges() == set(net.edges())

    def test_detection_times_recorded(self):
        net = generators.cycle_graph(6)
        finder = BridgeFinder(net, 0, rng=2)
        finder.run_until_all_nonbridges_found(set())
        times = finder.first_detection_times()
        assert set(times) == set(net.edges())
        assert all(t <= finder.steps for t in times.values())


class TestClaim21:
    def test_expected_detection_under_bound(self):
        """Claim 2.1: expected steps for a non-bridge to exceed ±1 is
        O(mn); the proof's bound is 2(3m+1)(3n)."""
        net = generators.cycle_graph(8)
        n, m = net.num_nodes, net.num_edges
        bound = theoretical_hitting_bound(n, m)
        times = []
        for seed in range(30):
            f = BridgeFinder(generators.cycle_graph(8), 0, rng=seed)
            f.run_until_all_nonbridges_found(set())
            times.append(f.steps)
        assert np.mean(times) < bound

    def test_recommended_steps_formula(self):
        assert recommended_steps(10, 20, confidence=2.0) == int(
            2.0 * 20 * 10 * np.log(10)
        )

    def test_high_probability_success(self):
        """With an O(c·m·n·log n) budget (the O(·) hides the hitting-time
        constant ~18 from the 2(3m+1)(3n) bound), all non-bridges are
        found in nearly every trial."""
        successes = 0
        trials = 20
        for seed in range(trials):
            net = generators.lollipop_graph(4, 2)
            tb = true_bridges(net)
            budget = recommended_steps(net.num_nodes, net.num_edges, 18.0)
            f = BridgeFinder(net, 0, rng=seed)
            f.run(budget)
            if f.presumed_bridges() == tb:
                successes += 1
        assert successes >= trials - 2


class TestSensitivity:
    def test_survives_non_critical_fault(self):
        """1-sensitivity: faults away from the agent are harmless."""
        net = generators.theta_graph(3, 3, 3)
        finder = BridgeFinder(net, 0, rng=4)
        finder.run(50)
        # delete an edge the agent is not sitting on
        pos = finder.agent.position
        victim = next(
            e for e in net.edges() if pos not in e
        )
        net.remove_edge(*victim)
        finder.run(2000)
        assert finder.agent.alive
        # remaining flagged edges are consistent: bridges of the original
        # graph are never flagged
        for e in true_bridges(generators.theta_graph(3, 3, 3)):
            assert e not in finder.exceeded_edges()

    def test_agent_loss_is_critical(self):
        net = generators.cycle_graph(5)
        finder = BridgeFinder(net, 0, rng=5)
        net.remove_node(finder.agent.position)
        assert not finder.step()
