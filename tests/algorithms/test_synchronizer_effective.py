"""Unit tests for the α synchronizer's effective-view mechanics."""

from collections import Counter

from repro.algorithms import synchronizer as alpha
from repro.algorithms.synchronizer import _effective_counts
from repro.core.automaton import FSSGA, NeighborhoodView


def view(counts: dict) -> NeighborhoodView:
    return NeighborhoodView(Counter(counts))


class TestEffectiveCounts:
    def test_behind_neighbour_forces_wait(self):
        # node at clock 1; a neighbour at clock 0 is behind
        v = view({("a", "b", 0): 1})
        assert _effective_counts(v, 1) is None

    def test_same_clock_uses_current(self):
        v = view({("cur", "prev", 2): 3})
        eff = _effective_counts(v, 2)
        assert eff == Counter({"cur": 3})

    def test_ahead_uses_previous(self):
        v = view({("cur", "prev", 0): 2})
        eff = _effective_counts(v, 2)  # 0 == (2+1) mod 3: ahead
        assert eff == Counter({"prev": 2})

    def test_mixed_clocks_merge(self):
        v = view({("x", "y", 1): 1, ("u", "w", 2): 2})
        eff = _effective_counts(v, 1)
        assert eff == Counter({"x": 1, "w": 2})

    def test_mod3_wraparound_behind(self):
        # clock 0's "behind" is 2
        v = view({("a", "b", 2): 1})
        assert _effective_counts(v, 0) is None


class TestWrapperSemantics:
    def test_wait_preserves_whole_triple(self):
        inner = FSSGA({0, 1}, lambda own, view: 1)
        comp = alpha.wrap(inner)
        own = (0, 0, 1)
        out = comp.transition(own, Counter({(0, 0, 0): 1}))
        assert out == own  # neighbour behind: full WAIT

    def test_advance_shifts_current_to_previous(self):
        inner = FSSGA({0, 1}, lambda own, view: 1 if view.at_least(1, 1) else 0)
        comp = alpha.wrap(inner)
        own = (0, 1, 1)
        out = comp.transition(own, Counter({(1, 0, 1): 1}))
        assert out == (1, 0, 2)  # new current, old current as previous, clock+1

    def test_ahead_neighbour_read_as_previous(self):
        inner = FSSGA({0, 1}, lambda own, view: 1 if view.at_least(1, 1) else 0)
        comp = alpha.wrap(inner)
        own = (0, 0, 1)
        # the neighbour advanced to clock 2; its round-1 value is its
        # PREVIOUS field (1), so the inner rule must see a 1.
        out = comp.transition(own, Counter({(0, 1, 2): 1}))
        assert out[0] == 1

    def test_initial_state_lift(self):
        from repro.network import NetworkState, generators

        init = alpha.initial_state(NetworkState({0: "a", 1: "b", 2: "c"}))
        assert init[1] == ("b", "b", 0)
        assert alpha.clock_of(init[0]) == 0
        assert alpha.current_of(init[2]) == "c"
