"""Tests for mod-3 BFS (Section 4.3, Algorithm 4.1, experiment E8)."""

import pytest

from repro.algorithms import bfs
from repro.network import generators
from repro.runtime.simulator import SynchronousSimulator


def run_bfs(net, originator, targets, max_steps=500):
    aut, init = bfs.build(net, originator, targets)
    sim = SynchronousSimulator(net, aut, init)
    sim.run_until_stable(max_steps=max_steps)
    return sim


class TestLabels:
    def test_labels_are_distance_mod_3(self, small_connected_graph):
        net = small_connected_graph
        origin = next(iter(net))
        sim = run_bfs(net, origin, [])
        assert bfs.labels_match_distance(net, sim.state, origin)

    def test_labelling_completes_in_eccentricity_steps(self):
        net = generators.path_graph(9)
        aut, init = bfs.build(net, 0, [8])
        sim = SynchronousSimulator(net, aut, init)
        dist = net.bfs_distances([0])
        for t in range(1, 10):
            sim.step()
            for v in net:
                if dist[v] < t:
                    assert bfs.label_of(sim.state[v]) == dist[v] % 3

    def test_unreachable_stays_unlabelled(self):
        from repro.network.graph import Network

        net = Network(edges=[(0, 1), (2, 3)])
        aut, init = bfs.build(net, 0, [])
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable(max_steps=100)
        assert bfs.label_of(sim.state[2]) == bfs.STAR
        assert bfs.label_of(sim.state[3]) == bfs.STAR


class TestSearchOutcome:
    def test_found_when_target_reachable(self):
        net = generators.grid_graph(4, 4)
        sim = run_bfs(net, 0, [15])
        assert bfs.originator_status(sim.state, 0) == bfs.FOUND

    def test_failed_when_no_target(self, small_connected_graph):
        net = small_connected_graph
        origin = next(iter(net))
        sim = run_bfs(net, origin, [])
        assert bfs.originator_status(sim.state, origin) == bfs.FAILED

    def test_failed_when_target_unreachable(self):
        from repro.network.graph import Network

        net = Network(edges=[(0, 1), (2, 3)])
        aut, init = bfs.build(net, 0, [3])
        sim = SynchronousSimulator(net, aut, init)
        sim.run_until_stable(max_steps=100)
        assert bfs.originator_status(sim.state, 0) == bfs.FAILED

    @pytest.mark.parametrize("target", [1, 7, 15])
    def test_found_regardless_of_distance(self, target):
        net = generators.grid_graph(4, 4)
        sim = run_bfs(net, 0, [target])
        assert bfs.originator_status(sim.state, 0) == bfs.FOUND

    def test_completion_time_linear_in_distance(self):
        """found must reach the originator within ~2·dist steps."""
        n = 12
        net = generators.path_graph(n)
        aut, init = bfs.build(net, 0, [n - 1])
        sim = SynchronousSimulator(net, aut, init)
        steps = sim.run_until(
            lambda st: bfs.originator_status(st, 0) == bfs.FOUND,
            max_steps=3 * n,
        )
        assert steps <= 2 * n + 2


class TestShortestPathProperty:
    def test_found_marks_shortest_paths_only(self):
        """'do nothing if a predecessor is found' keeps FOUND off
        non-shortest branches: in a lollipop, the tail beyond the target
        never reports found."""
        net = generators.path_graph(8)
        sim = run_bfs(net, 0, [4])
        # nodes past the target on the path: they lie beyond every shortest
        # path; they must not be FOUND
        for v in (6, 7):
            assert bfs.status_of(sim.state[v]) != bfs.FOUND
        # nodes on the unique shortest path 0..4 are found
        for v in range(5):
            assert bfs.status_of(sim.state[v]) == bfs.FOUND

    def test_multiple_targets_nearest_found(self):
        net = generators.path_graph(9)
        sim = run_bfs(net, 4, [0, 8])
        assert bfs.originator_status(sim.state, 4) == bfs.FOUND


class TestValidation:
    def test_unknown_originator(self):
        with pytest.raises(KeyError):
            bfs.build(generators.path_graph(2), 99)

    def test_unknown_target(self):
        with pytest.raises(KeyError):
            bfs.build(generators.path_graph(2), 0, [99])
