"""Tests for the local-rule leader election (Section 4.7, Algorithm 4.4)."""

import pytest

from repro.algorithms import election
from repro.network import generators
from repro.runtime.simulator import SynchronousSimulator


class TestElectionOutcome:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: generators.path_graph(5),
            lambda: generators.cycle_graph(6),
            lambda: generators.cycle_graph(7),
            lambda: generators.complete_graph(4),
            lambda: generators.grid_graph(3, 3),
            lambda: generators.star_graph(5),
        ],
    )
    def test_unique_leader(self, net_fn):
        net = net_fn()
        res = election.run_until_elected(net, rng=2006)
        assert res.leader in net

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds_path(self, seed):
        net = generators.path_graph(6)
        res = election.run_until_elected(net, rng=seed)
        assert res.leader in net

    @pytest.mark.parametrize("seed", range(6))
    def test_many_seeds_random_graph(self, seed):
        net = generators.connected_gnp_graph(10, 0.35, seed)
        res = election.run_until_elected(net, rng=seed)
        assert res.leader in net

    def test_medium_scale(self):
        """The local rules stay sound well beyond toy sizes."""
        net = generators.connected_gnp_graph(48, 0.12, 5)
        res = election.run_until_elected(net, rng=5)
        assert res.leader in net
        # near-linear total time: well under n^2 synchronous steps
        assert res.steps < net.num_nodes ** 2

    def test_leader_choice_varies_with_randomness(self):
        """Symmetry: on a vertex-transitive graph every node must be able
        to win (here: at least two distinct winners across seeds)."""
        winners = {
            election.run_until_elected(generators.cycle_graph(5), rng=s).leader
            for s in range(10)
        }
        assert len(winners) >= 2

    def test_requires_connected(self):
        from repro.network.graph import Network

        with pytest.raises(ValueError):
            election.run_until_elected(Network(edges=[(0, 1), (2, 3)]))

    def test_requires_two_nodes(self):
        from repro.network.graph import Network

        with pytest.raises(ValueError):
            election.run_until_elected(Network(nodes=[0]))


class TestInvariants:
    def test_at_least_one_remaining_always(self):
        """Paper: 'there is always at least one remaining node'."""
        net = generators.grid_graph(3, 3)
        aut, init = election.build(net, rng=4)
        sim = SynchronousSimulator(net, aut, init, rng=4)
        for _ in range(600):
            sim.step()
            assert len(election.remaining(sim.state)) >= 1

    def test_eliminated_never_return(self):
        """'once a node is eliminated, it never becomes remaining again'."""
        net = generators.cycle_graph(8)
        aut, init = election.build(net, rng=5)
        sim = SynchronousSimulator(net, aut, init, rng=5)
        ever_eliminated = set()
        for _ in range(600):
            sim.step()
            rem = set(election.remaining(sim.state))
            assert not (ever_eliminated & rem)
            ever_eliminated |= set(net.nodes()) - rem

    def test_premature_leaders_demoted(self):
        """On long paths premature leaders can appear (the paper notes
        this); they must be gone at termination."""
        net = generators.path_graph(10)
        res = election.run_until_elected(net, rng=3)
        assert res.leader in net  # termination reached a unique leader

    def test_all_states_well_formed(self):
        net = generators.complete_graph(4)
        aut, init = election.build(net, rng=6)
        sim = SynchronousSimulator(net, aut, init, rng=6)
        space = election._ElectionSpace()
        for _ in range(200):
            sim.step()
            for v in net:
                assert sim.state[v] in space


class TestStability:
    def test_leadership_is_stable_after_termination(self):
        """After the leader declares (and its colour stream freezes), the
        leadership configuration never changes again — only the round
        clocks keep cycling."""
        import numpy as np

        net = generators.cycle_graph(6)
        res = election.run_until_elected(net, rng=8)
        # re-simulate with the identical generator stream and confirm
        # stability past the recorded termination time
        gen = np.random.default_rng(8)
        aut, init = election.build(net, rng=gen)
        sim = SynchronousSimulator(net, aut, init, rng=gen)
        sim.run(res.steps)
        lead = election.leaders(sim.state)
        rem = election.remaining(sim.state)
        assert lead == rem == [res.leader]
        snapshot = {
            v: (q.phase, q.remain, q.leader, q.np, q.cur.cdist, q.cur.tstat)
            for v, q in sim.state.items()
        }
        sim.run(60)
        after = {
            v: (q.phase, q.remain, q.leader, q.np, q.cur.cdist, q.cur.tstat)
            for v, q in sim.state.items()
        }
        assert after == snapshot


class TestPhaseStatisticsJob:
    """Campaign-job form of the Claim 4.1 phase statistics."""

    def test_matches_in_process_api(self):
        import numpy as np

        out = election.phase_statistics_job(
            rng=np.random.default_rng(7), n=12, replicas=6, max_steps=2_000
        )
        stats = election.kernel_phase_statistics(
            generators.complete_graph(12),
            replicas=6,
            rng=np.random.default_rng(7),
            max_steps=2_000,
        )
        assert out["rounds"] == [int(r) for r in stats.rounds]
        assert out["mean_rounds"] == stats.mean_rounds

    def test_result_is_json_and_cites_manifest(self):
        import json

        out = election.phase_statistics_job(rng=3, n=8, replicas=4)
        json.dumps(out)  # plain data, no numpy scalars
        assert out["survivor_counts"] == [1] * 4
        assert len(out["manifest_hash"]) == 64
        # same spec, same hash (process-independent provenance)
        again = election.phase_statistics_job(rng=3, n=8, replicas=4)
        assert again == out

    def test_is_picklable(self):
        import pickle

        fn = pickle.loads(pickle.dumps(election.phase_statistics_job))
        assert fn is election.phase_statistics_job
        assert (
            pickle.loads(pickle.dumps(election.kernel_unique_survivor))
            is election.kernel_unique_survivor
        )
