"""Tests for Milgram's traversal (Section 4.5, Algorithm 4.3, E10)."""

import math

import numpy as np
import pytest

from repro.algorithms import traversal as tr
from repro.network import generators
from repro.runtime.simulator import SynchronousSimulator


class TestCompleteness:
    def test_visits_every_node(self, small_connected_graph):
        net = small_connected_graph
        run = tr.run_traversal(net, next(iter(net)), rng=1)
        assert run.hand_moves == 2 * net.num_nodes - 2

    @pytest.mark.parametrize("seed", range(4))
    def test_hand_moves_exactly_2n_minus_2(self, seed):
        """Paper: the arm traces a scan-first-search spanning tree, so the
        hand moves exactly 2n-2 times."""
        net = generators.connected_gnp_graph(12, 0.25, seed)
        run = tr.run_traversal(net, 0, rng=seed)
        assert run.hand_moves == 2 * net.num_nodes - 2

    def test_single_edge(self):
        net = generators.path_graph(2)
        run = tr.run_traversal(net, 0, rng=0)
        assert run.hand_moves == 2


class TestArmInvariant:
    @pytest.mark.parametrize(
        "net_fn",
        [
            lambda: generators.cycle_graph(8),
            lambda: generators.grid_graph(3, 3),
            lambda: generators.complete_graph(6),
            lambda: generators.wheel_graph(6),
        ],
    )
    def test_arm_is_induced_path_throughout(self, net_fn):
        """Milgram's property 3: the arm never touches or crosses itself."""
        net = net_fn()
        tr.run_traversal(net, 0, rng=3, check_invariant=True)

    def test_itinerary_is_tree_walk(self):
        """The hand's moves traverse each tree edge twice (down + up)."""
        net = generators.grid_graph(3, 4)
        run = tr.run_traversal(net, 0, rng=2)
        edge_uses = {}
        for a, b in zip(run.hand_positions, run.hand_positions[1:]):
            e = tuple(sorted((a, b), key=repr))
            edge_uses[e] = edge_uses.get(e, 0) + 1
        # every used edge appears exactly twice, and they form a tree
        assert all(c == 2 for c in edge_uses.values())
        assert len(edge_uses) == net.num_nodes - 1
        from repro.network.graph import Network

        tree = Network(edges=edge_uses.keys())
        assert tree.is_connected()
        assert tree.num_nodes == net.num_nodes

    def test_ends_at_originator(self):
        net = generators.petersen_graph()
        run = tr.run_traversal(net, 0, rng=4)
        assert run.hand_positions[0] == 0
        assert run.hand_positions[-1] == 0


class TestComplexity:
    def test_total_time_n_log_n(self):
        """Paper: 2n-2 moves at O(log n) expected rounds each gives
        O(n log n) synchronous steps."""
        times = {}
        for n in (8, 16, 32):
            net = generators.connected_gnp_graph(n, min(0.9, 4.0 / n + 0.2), 1)
            steps = []
            for seed in range(5):
                run = tr.run_traversal(net, 0, rng=seed)
                steps.append(run.steps)
            times[n] = float(np.mean(steps))
        for n in times:
            assert times[n] < 40 * n * math.log2(n), times

    def test_steps_scale_subquadratically(self):
        n_small, n_big = 10, 40
        t_small = float(
            np.mean(
                [
                    tr.run_traversal(
                        generators.cycle_graph(n_small), 0, rng=s
                    ).steps
                    for s in range(5)
                ]
            )
        )
        t_big = float(
            np.mean(
                [
                    tr.run_traversal(generators.cycle_graph(n_big), 0, rng=s).steps
                    for s in range(5)
                ]
            )
        )
        ratio = t_big / t_small
        # linear-with-log growth: ratio ≈ 4·(log 40 / log 10) ≈ 6.4 « 16 (quadratic)
        assert ratio < 10


class TestSensitivity:
    """Milgram's traversal is Θ(n)-sensitive: the whole arm is critical."""

    def test_arm_node_failure_breaks_traversal(self):
        """Killing an interior arm node mid-run severs the arm; the
        traversal never completes (contrast with the greedy tourist's
        1-sensitivity)."""
        import numpy as np

        net = generators.path_graph(8)  # the arm spans the path
        aut, init = tr.build(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=3)
        # run until the arm has at least 3 arm nodes
        arm_nodes = []
        for _ in range(3000):
            sim.step()
            arm_nodes = [v for v, q in sim.state.items() if q[1] == tr.ARM]
            if len(arm_nodes) >= 3:
                break
        assert len(arm_nodes) >= 3
        victim = sorted(arm_nodes)[1]  # an interior arm node
        net.remove_node(victim)
        sim.state.drop([victim])
        # the traversal must not be able to visit everything any more
        # (the victim is gone and the arm is severed); give it a generous
        # budget and verify it never reaches all-visited.
        for _ in range(4000):
            sim.step()
        statuses = {q[1] for q in sim.state.values()}
        assert tr.VISITED not in statuses or any(
            q[1] != tr.VISITED for q in sim.state.values()
        )

    def test_arm_grows_linear_on_paths(self):
        """On a path the arm reaches Θ(n) nodes — the criticality bound."""
        net = generators.path_graph(10)
        aut, init = tr.build(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=1)
        max_arm = 0
        for _ in range(5000):
            sim.step()
            arm = sum(1 for q in sim.state.values() if q[1] in (tr.ARM, tr.HAND))
            max_arm = max(max_arm, arm)
            if tr.all_visited(sim.state):
                break
        assert max_arm >= net.num_nodes - 1


class TestStates:
    def test_all_states_in_alphabet(self):
        net = generators.cycle_graph(5)
        aut, init = tr.build(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=1)
        for _ in range(100):
            sim.step()
            for v in net:
                assert sim.state[v] in tr.ALPHABET

    def test_unknown_originator(self):
        with pytest.raises(KeyError):
            tr.build(generators.path_graph(2), 99)

    def test_hand_position_unique(self):
        net = generators.grid_graph(3, 3)
        aut, init = tr.build(net, 0)
        sim = SynchronousSimulator(net, aut, init, rng=7)
        for _ in range(150):
            sim.step()
            tr.hand_position(sim.state)  # raises if duplicated
