"""Smoke tests: every example script must run to completion.

The examples replace the paper's Java applet; breaking them silently
would hollow out the demo surface, so they run (briefly) under pytest.
"""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parents[2] / "examples"


def _run(script: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "sensor_census.py",
        "traversal_demo.py",
        "equivalence_tour.py",
        "message_passing.py",
    ],
)
def test_example_runs_clean(script):
    result = _run(script)
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip()


def test_firing_squad_demo_small():
    result = _run("firing_squad_demo.py", "8")
    assert result.returncode == 0, result.stderr
    assert "simultaneous=True" in result.stdout


def test_election_demo():
    result = _run("election_demo.py")
    assert result.returncode == 0, result.stderr
    assert "is the leader" in result.stdout
