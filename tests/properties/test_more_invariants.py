"""A second round of property-based tests: conversions over 3-letter
alphabets, graph metric consistency, and simulator determinism."""

from hypothesis import given, settings, strategies as st

from repro.core.convert import (
    modthresh_to_parallel,
    parallel_to_sequential,
    sequential_to_modthresh,
)
from repro.core.multiset import iter_multisets
from repro.core.sequential import SequentialProgram
from repro.network import NetworkState, generators

ALPHA3 = ["a", "b", "c"]


# three independent per-state monoids: mod-m for 'a', saturating for 'b',
# presence bit for 'c'
@settings(max_examples=12, deadline=None)
@given(
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=1, max_value=2),
)
def test_three_letter_conversion_cycle(modulus, cap):
    def p(w, q):
        m, s, pres = w
        if q == "a":
            m = (m + 1) % modulus
        elif q == "b":
            s = min(s + 1, cap)
        else:
            pres = 1
        return (m, s, pres)

    working = frozenset(
        (x, y, z)
        for x in range(modulus)
        for y in range(cap + 1)
        for z in (0, 1)
    )
    sp = SequentialProgram(working, (0, 0, 0), p, lambda w: w, name="tri")
    mt = sequential_to_modthresh(sp, ALPHA3)
    pp = modthresh_to_parallel(mt, ALPHA3)
    sp2 = parallel_to_sequential(pp)
    for ms in iter_multisets(ALPHA3, 3):
        expected = sp.evaluate(ms)
        assert mt.evaluate(ms) == expected
        assert pp.evaluate(ms) == expected
        assert sp2.evaluate(ms) == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=25), st.integers(min_value=0, max_value=2**31))
def test_eccentricity_diameter_consistency(n, seed):
    net = generators.random_tree(n, seed)
    diam = net.diameter()
    eccs = [net.eccentricity(v) for v in net]
    assert max(eccs) == diam
    # the radius is at least half the diameter (rounded up)
    assert min(eccs) >= (diam + 1) // 2
    assert min(eccs) <= diam


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=3, max_value=15),
    st.integers(min_value=0, max_value=2**31),
)
def test_bfs_distances_triangle_inequality(n, seed):
    net = generators.connected_gnp_graph(n, 0.4, seed)
    nodes = net.nodes()
    d0 = net.bfs_distances([nodes[0]])
    d1 = net.bfs_distances([nodes[1]])
    base = d0[nodes[1]]
    for v in nodes:
        assert abs(d0[v] - d1[v]) <= base


@settings(max_examples=15, deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_probabilistic_simulation_replayable(seed):
    """Same seed, same trajectory — full determinism of the randomized
    engine."""
    from repro.core.automaton import ProbabilisticFSSGA
    from repro.runtime.simulator import SynchronousSimulator

    aut = ProbabilisticFSSGA(
        {0, 1}, 2, lambda own, view, i: i if view.at_least(1, 1) else own
    )
    net = generators.cycle_graph(8)
    init = NetworkState.uniform(net, 0)
    init[0] = 1

    def run():
        sim = SynchronousSimulator(net.copy(), aut, init.copy(), rng=seed)
        sim.run(10)
        return dict(sim.state.items())

    assert run() == run()


@settings(max_examples=20, deadline=None)
@given(
    st.dictionaries(
        st.integers(min_value=0, max_value=9),
        st.sampled_from(["x", "y", ("t", 1)]),
        min_size=1,
    )
)
def test_state_json_round_trip(assignment):
    from repro.network.io import state_from_json, state_to_json

    st_ = NetworkState(assignment)
    assert state_from_json(state_to_json(st_)) == st_
