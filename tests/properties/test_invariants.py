"""Property-based tests (hypothesis) on the library's core invariants.

These go beyond the unit tests by sampling *random instances* — random
commutative-monoid programs, random graphs, random fault sequences,
random mod-thresh cascades — and checking the paper's structural
guarantees on each.
"""

from collections import Counter

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.core.automaton import FSSGA, NeighborhoodView
from repro.core.convert import (
    modthresh_to_parallel,
    parallel_to_sequential,
    sequential_to_modthresh,
)
from repro.core.modthresh import (
    And,
    ModAtom,
    ModThreshProgram,
    Not,
    Or,
    ThreshAtom,
)
from repro.core.multiset import Multiset, iter_multisets
from repro.core.sequential import SequentialProgram
from repro.network import NetworkState, generators
from repro.runtime.simulator import SynchronousSimulator
from repro.runtime.vectorized import VectorizedSynchronousEngine

# ----------------------------------------------------------------------
# strategies
# ----------------------------------------------------------------------

ALPHA = ["a", "b"]

#: random commutative monoids on Z_m x saturating counters: guaranteed to
#: induce valid sequential SM programs.
monoid_params = st.tuples(
    st.integers(min_value=1, max_value=4),  # modulus for 'a'
    st.integers(min_value=1, max_value=3),  # saturation cap for 'b'
)


def make_monoid_program(modulus, cap):
    def p(w, q):
        mod_count, sat = w
        if q == "a":
            mod_count = (mod_count + 1) % modulus
        else:
            sat = min(sat + 1, cap)
        return (mod_count, sat)

    working = frozenset((x, y) for x in range(modulus) for y in range(cap + 1))
    return SequentialProgram(working, (0, 0), p, lambda w: w, name="monoid")


atoms = st.one_of(
    st.builds(
        ThreshAtom,
        st.sampled_from(ALPHA),
        st.integers(min_value=1, max_value=3),
    ),
    st.builds(
        lambda q, m, r: ModAtom(q, r % m, m),
        st.sampled_from(ALPHA),
        st.integers(min_value=1, max_value=3),
        st.integers(min_value=0, max_value=2),
    ),
)


def propositions(depth=2):
    return st.recursive(
        atoms,
        lambda children: st.one_of(
            st.builds(lambda a, b: And((a, b)), children, children),
            st.builds(lambda a, b: Or((a, b)), children, children),
            st.builds(Not, children),
        ),
        max_leaves=4,
    )


cascades = st.lists(
    st.tuples(propositions(), st.sampled_from(["r1", "r2", "r3"])),
    min_size=0,
    max_size=3,
).map(lambda cl: ModThreshProgram(clauses=tuple(cl), default="r0"))


# ----------------------------------------------------------------------
# Theorem 3.7 on random instances
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(monoid_params)
def test_random_monoid_programs_are_sm(params):
    sp = make_monoid_program(*params)
    assert sp.check_commutative(ALPHA)
    assert sp.is_sm(ALPHA, max_len=4)


@settings(max_examples=20, deadline=None)
@given(monoid_params)
def test_random_monoid_conversion_cycle(params):
    sp = make_monoid_program(*params)
    mt = sequential_to_modthresh(sp, ALPHA)
    pp = modthresh_to_parallel(mt, ALPHA)
    sp2 = parallel_to_sequential(pp)
    for ms in iter_multisets(ALPHA, 5):
        expected = sp.evaluate(ms)
        assert mt.evaluate(ms) == expected
        assert pp.evaluate(ms) == expected
        assert sp2.evaluate(ms) == expected


@settings(max_examples=30, deadline=None)
@given(cascades)
def test_random_cascade_to_parallel(mt):
    pp = modthresh_to_parallel(mt, ALPHA)
    for ms in iter_multisets(ALPHA, 4):
        assert pp.evaluate(ms) == mt.evaluate(ms)


@settings(max_examples=40, deadline=None)
@given(
    propositions(),
    st.dictionaries(
        st.sampled_from(ALPHA), st.integers(min_value=0, max_value=8)
    ).filter(lambda d: sum(d.values()) > 0),
)
def test_propositions_depend_only_on_multiplicities(prop, counts):
    """Symmetry for free: a proposition's value is a function of μ."""
    ms = Multiset(counts)
    seq = ms.elements()
    rev = list(reversed(seq))
    assert prop.evaluate(Multiset(seq)) == prop.evaluate(Multiset(rev))


# ----------------------------------------------------------------------
# graphs and faults
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=2, max_value=20),
    st.integers(min_value=0, max_value=40),
    st.randoms(use_true_random=False),
)
def test_fault_sequences_keep_graph_consistent(n, fault_count, rnd):
    """Any interleaving of node/edge deletions preserves the structural
    invariants: m equals len(edges()), adjacency stays symmetric."""
    net = generators.complete_graph(n)
    for _ in range(fault_count):
        if rnd.random() < 0.5 and net.num_edges > 0:
            edges = net.edges()
            u, v = edges[rnd.randrange(len(edges))]
            net.remove_edge(u, v)
        elif net.num_nodes > 0:
            nodes = net.nodes()
            net.remove_node(nodes[rnd.randrange(len(nodes))])
        assert net.num_edges == len(net.edges())
        for x in net:
            for y in net.neighbors(x):
                assert x in net.neighbors(y)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=2, max_value=40), st.integers(min_value=0, max_value=2**31))
def test_random_tree_bridges_are_all_edges(n, seed):
    from repro.network.properties import bridges

    net = generators.random_tree(n, seed)
    assert bridges(net) == set(net.edges())


@settings(max_examples=20, deadline=None)
@given(
    st.integers(min_value=4, max_value=25),
    st.floats(min_value=0.2, max_value=0.9),
    st.integers(min_value=0, max_value=2**31),
)
def test_gnp_components_partition_nodes(n, p, seed):
    net = generators.gnp_random_graph(n, p, seed)
    comps = net.connected_components()
    all_nodes = [v for comp in comps for v in comp]
    assert sorted(all_nodes) == sorted(net.nodes())


# ----------------------------------------------------------------------
# engine equivalence on random mod-thresh automata
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(
    st.lists(
        st.tuples(propositions(), st.sampled_from(ALPHA)),
        min_size=0,
        max_size=2,
    ),
    st.integers(min_value=0, max_value=2**31),
)
def test_vectorized_matches_reference_on_random_automata(clauses, seed):
    """For any total deterministic mod-thresh automaton, the vectorized
    engine and the reference interpreter agree step for step."""
    prog = ModThreshProgram(clauses=tuple(clauses), default="a")
    programs = {"a": prog, "b": prog}
    rng = np.random.default_rng(seed)
    net = generators.connected_gnp_graph(12, 0.3, rng)
    init = NetworkState.from_function(
        net, lambda v: "a" if rng.random() < 0.5 else "b"
    )
    ref = SynchronousSimulator(net.copy(), FSSGA.from_programs(programs), init.copy())
    vec = VectorizedSynchronousEngine(net, programs, init)
    for _ in range(4):
        ref.step()
        vec.step()
        assert vec.state == ref.state


# ----------------------------------------------------------------------
# NeighborhoodView consistency
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.dictionaries(
        st.sampled_from(["x", "y", "z"]), st.integers(min_value=0, max_value=9)
    )
)
def test_view_queries_agree_with_counter(counts):
    view = NeighborhoodView(Counter({k: v for k, v in counts.items() if v}))
    for q in ("x", "y", "z"):
        c = counts.get(q, 0)
        for t in (1, 2, 5):
            assert view.at_least(q, t) == (c >= t)
            assert view.fewer_than(q, t) == (c < t)
        for m in (1, 2, 3):
            assert view.count_mod(q, m) == c % m
        for k in (0, 1, 3):
            assert view.exactly(q, k) == (c == k)
    group_total = sum(counts.values())
    for t in (0, 1, 4):
        assert view.group_at_least(["x", "y", "z"], t) == (group_total >= t)
