"""ArtifactStore: append-only JSONL, content addressing, torn-line
tolerance, concurrent-writer safety, spec binding."""

import json
import multiprocessing

import pytest

from repro.campaigns.spec import CampaignSpec, content_hash
from repro.campaigns.store import (
    ArtifactStore,
    StoreMismatchError,
    deterministic_view,
)


def _spec(**overrides):
    base = dict(
        name="t", job="repro.campaigns.testing.ok_job", grid={"value": [1]}
    )
    base.update(overrides)
    return CampaignSpec(**base)


def _ok_record(h="h1", **extra):
    rec = {
        "job_hash": h,
        "status": "ok",
        "result": {"x": 1},
        "metrics": {"counters": {"steps": 3}, "series": {}},
        "wall_time": 0.5,
        "attempts": 2,
        "worker": 1234,
    }
    rec.update(extra)
    return rec


class TestAppendAndRead:
    def test_append_seals_content_hash(self, tmp_path):
        store = ArtifactStore(tmp_path)
        sealed = store.append(_ok_record())
        assert sealed["content_hash"] == content_hash(deterministic_view(sealed))
        [rec] = store.iter_records()
        assert rec == sealed

    def test_needs_job_hash(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(tmp_path).append({"status": "ok"})

    def test_latest_record_wins(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.append({"job_hash": "h", "status": "failed", "error": "x"})
        store.append(_ok_record("h"))
        assert store.records()["h"]["status"] == "ok"
        assert store.completed_hashes() == {"h"}

    def test_ok_never_displaced_by_failure(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.append(_ok_record("h"))
        store.append({"job_hash": "h", "status": "failed", "error": "later"})
        assert store.records()["h"]["status"] == "ok"

    def test_torn_tail_line_skipped(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.append(_ok_record("h1"))
        with open(store.artifacts_path, "a") as fh:
            fh.write('{"job_hash": "h2", "status": "o')  # killed mid-write
        assert set(store.records()) == {"h1"}

    def test_content_hash_ignores_volatile_fields(self, tmp_path):
        store = ArtifactStore(tmp_path)
        a = store.append(_ok_record("h1", wall_time=0.1, attempts=1, worker=1))
        b = store.append(_ok_record("h1", wall_time=9.9, attempts=3, worker=42))
        assert a["content_hash"] == b["content_hash"]

    def test_deterministic_view_strips_cache_counters_and_time_series(self):
        view = deterministic_view(
            _ok_record(
                metrics={
                    "counters": {"steps": 3, "lowering_cache_hits": 7,
                                 "lowering_cache_misses": 1},
                    "series": {"active_fraction": [1.0], "run_wall_time": [0.2]},
                }
            )
        )
        assert view["metrics"]["counters"] == {"steps": 3}
        assert view["metrics"]["series"] == {"active_fraction": [1.0]}
        assert "wall_time" not in view and "attempts" not in view

    def test_torn_tail_repaired_under_concurrent_append_path(self, tmp_path):
        # the O_APPEND writer must start cleanly after a torn tail, in one
        # write — the next record parses and only the torn line is lost
        store = ArtifactStore(tmp_path)
        with open(store.artifacts_path, "w") as fh:
            fh.write('{"job_hash": "dead", "status": "o')  # killed mid-write
        store.append(_ok_record("h1"))
        assert set(store.records()) == {"h1"}
        with open(store.artifacts_path, "rb") as fh:
            assert fh.read().endswith(b"}\n")

    def test_verify_detects_corruption(self, tmp_path):
        store = ArtifactStore(tmp_path)
        sealed = store.append(_ok_record("h1"))
        assert store.verify() == []
        tampered = dict(sealed, result={"x": 999})
        with open(store.artifacts_path, "w") as fh:
            fh.write(json.dumps(tampered) + "\n")
        assert store.verify() == ["h1"]


def _hammer_worker(root, writer_id, count, payload):
    """Append ``count`` long records from one process (hammer helper)."""
    store = ArtifactStore(root)
    for i in range(count):
        store.append(
            {
                "job_hash": f"w{writer_id}-r{i}",
                "status": "ok",
                "result": {"writer": writer_id, "i": i, "payload": payload},
            }
        )


class TestConcurrentWriters:
    def test_multiprocess_append_hammer_no_torn_lines(self, tmp_path):
        # several processes hammer one artifacts.jsonl with multi-KB lines;
        # every line must parse and every record must survive intact —
        # the regression the single-write + flock append guards against
        writers, per_writer = 4, 25
        payload = "x" * 16384  # well past any stdio buffer boundary
        procs = [
            multiprocessing.Process(
                target=_hammer_worker,
                args=(str(tmp_path), w, per_writer, payload),
            )
            for w in range(writers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join(timeout=120)
            assert p.exitcode == 0
        store = ArtifactStore(tmp_path)
        with open(store.artifacts_path, "rb") as fh:
            lines = fh.read().split(b"\n")
        assert lines[-1] == b""  # file ends on a record boundary
        parsed = [json.loads(line) for line in lines[:-1]]  # no torn lines
        assert len(parsed) == writers * per_writer
        assert {rec["job_hash"] for rec in parsed} == {
            f"w{w}-r{i}" for w in range(writers) for i in range(per_writer)
        }
        for rec in parsed:
            assert rec["result"]["payload"] == payload
        assert store.verify() == []


class TestSpecBinding:
    def test_round_trip(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_spec() is None
        spec = _spec()
        store.write_spec(spec)
        assert store.load_spec() == spec
        store.write_spec(spec)  # idempotent

    def test_mismatched_spec_refused(self, tmp_path):
        store = ArtifactStore(tmp_path)
        store.write_spec(_spec())
        with pytest.raises(StoreMismatchError):
            store.write_spec(_spec(grid={"value": [1, 2]}))

    def test_status(self, tmp_path):
        store = ArtifactStore(tmp_path)
        spec = _spec(grid={"value": [1, 2, 3]})
        store.write_spec(spec)
        jobs = spec.expand()
        store.append(_ok_record(jobs[0].job_hash))
        store.append({"job_hash": jobs[1].job_hash, "status": "failed",
                      "error": "x"})
        st = store.status()
        assert st["total"] == 3 and st["ok"] == 1
        assert st["failed"] == 1 and st["pending"] == 2


def _identity_worker(root, barrier, queue):
    """First-call ``identity()`` from one process (race helper)."""
    barrier.wait()
    queue.put(ArtifactStore(root).identity())


class TestStoreIdentity:
    def test_identity_is_stable_and_nonempty(self, tmp_path):
        store = ArtifactStore(tmp_path)
        token = store.identity()
        assert token and len(token) == 32
        assert store.identity() == token  # cached
        assert ArtifactStore(tmp_path).identity() == token  # persisted
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    def test_loser_of_publish_race_reads_complete_token(self, tmp_path, monkeypatch):
        # a sibling replica publishes between our read and our link: the
        # link must fail and we must adopt the sibling's token in full —
        # never a torn/empty read.  (The old O_CREAT|O_EXCL open-then-write
        # published an *empty* file first, and a concurrent reader cached
        # "" forever, breaking /cluster/healthz shared_store agreement.)
        import os as _os

        path = tmp_path / ArtifactStore.IDENTITY_FILE
        real_link = _os.link

        def racing_link(src, dst, *args, **kwargs):
            path.write_text("cafebabe" * 4 + "\n", encoding="utf-8")
            return real_link(src, dst, *args, **kwargs)  # FileExistsError

        monkeypatch.setattr(_os, "link", racing_link)
        assert ArtifactStore(tmp_path).identity() == "cafebabe" * 4
        leftovers = [p.name for p in tmp_path.iterdir() if p.name.endswith(".tmp")]
        assert leftovers == []

    @pytest.mark.skipif(
        "fork" not in multiprocessing.get_all_start_methods(),
        reason="fork start method unavailable",
    )
    def test_concurrent_first_callers_agree_on_one_token(self, tmp_path):
        # N processes race the very first identity() on a fresh store —
        # exactly the cluster-startup pattern where the bug was observed
        # (replica r1 reading the winner's file before its token landed)
        ctx = multiprocessing.get_context("fork")
        n = 8
        barrier = ctx.Barrier(n)
        queue = ctx.Queue()
        procs = [
            ctx.Process(target=_identity_worker, args=(str(tmp_path), barrier, queue))
            for _ in range(n)
        ]
        for p in procs:
            p.start()
        tokens = [queue.get(timeout=60) for _ in range(n)]
        for p in procs:
            p.join(timeout=60)
            assert p.exitcode == 0
        assert len(set(tokens)) == 1
        assert tokens[0] and len(tokens[0]) == 32
