"""CampaignSpec / JobSpec: grid expansion, hashing, seed derivation."""

import numpy as np
import pytest

from repro.campaigns.spec import (
    CampaignSpec,
    JobSpec,
    canonical_json,
    content_hash,
    resolve_dotted,
)


def _spec(**overrides):
    base = dict(
        name="t",
        job="repro.campaigns.testing.ok_job",
        grid={"value": [1, 2, 3]},
        seeds=2,
        entropy=99,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestResolveDotted:
    def test_resolves_function(self):
        from repro.campaigns.testing import ok_job

        assert resolve_dotted("repro.campaigns.testing.ok_job") is ok_job

    def test_resolves_nested_attribute(self):
        fn = resolve_dotted("repro.campaigns.spec.CampaignSpec.from_json")
        assert callable(fn)

    def test_bad_module(self):
        with pytest.raises(ValueError):
            resolve_dotted("no.such.module.attr")

    def test_bad_attribute(self):
        with pytest.raises(ValueError):
            resolve_dotted("repro.campaigns.testing.nope")

    def test_undotted(self):
        with pytest.raises(ValueError):
            resolve_dotted("ok_job")


class TestExpansion:
    def test_grid_times_seeds(self):
        spec = _spec()
        jobs = spec.expand()
        assert len(jobs) == len(spec) == 6
        assert [j.index for j in jobs] == list(range(6))

    def test_deterministic_order(self):
        a = [j.job_hash for j in _spec().expand()]
        b = [j.job_hash for j in _spec().expand()]
        assert a == b

    def test_axes_sorted_not_insertion_ordered(self):
        s1 = _spec(grid={"a": [1, 2], "b": [10]})
        s2 = _spec(grid={"b": [10], "a": [1, 2]})
        assert [j.params for j in s1.expand()] == [j.params for j in s2.expand()]
        assert s1.spec_hash == s2.spec_hash

    def test_fixed_params_merged(self):
        spec = _spec(fixed={"draws": 7})
        assert all(j.params["draws"] == 7 for j in spec.expand())

    def test_grid_point_wins_over_fixed(self):
        spec = _spec(fixed={"value": 0})
        assert sorted(j.params["value"] for j in spec.expand()) == [1, 1, 2, 2, 3, 3]

    def test_validation(self):
        with pytest.raises(ValueError):
            _spec(seeds=0)
        with pytest.raises(ValueError):
            _spec(retries=-1)
        with pytest.raises(TypeError):
            _spec(grid={"value": 3})


class TestHashing:
    def test_job_hashes_unique(self):
        hashes = [j.job_hash for j in _spec().expand()]
        assert len(set(hashes)) == len(hashes)

    def test_hash_depends_on_entropy(self):
        a = _spec(entropy=1).expand()[0].job_hash
        b = _spec(entropy=2).expand()[0].job_hash
        assert a != b

    def test_hash_ignores_execution_policy(self):
        assert (
            _spec(timeout=1.0, retries=0).spec_hash
            == _spec(timeout=99.0, retries=5).spec_hash
        )

    def test_canonical_json_sorted(self):
        assert canonical_json({"b": 1, "a": [2, {"z": 0, "y": 1}]}) == (
            '{"a":[2,{"y":1,"z":0}],"b":1}'
        )
        assert content_hash({"a": 1, "b": 2}) == content_hash({"b": 2, "a": 1})


class TestSeeds:
    def test_rng_is_pure_function_of_spec(self):
        job = _spec().expand()[3]
        x = JobSpec.from_payload(job.payload()).make_rng().integers(0, 1 << 30, 8)
        y = job.make_rng().integers(0, 1 << 30, 8)
        assert (x == y).all()

    def test_streams_differ_across_jobs_and_seeds(self):
        jobs = _spec().expand()
        draws = {tuple(j.make_rng().integers(0, 1 << 30, 4)) for j in jobs}
        assert len(draws) == len(jobs)

    def test_spawn_key_is_index(self):
        job = _spec().expand()[4]
        ss = job.seed_sequence()
        assert ss.entropy == 99 and tuple(ss.spawn_key) == (4,)
        direct = np.random.default_rng(
            np.random.SeedSequence(entropy=99, spawn_key=(4,))
        )
        assert direct.integers(1 << 20) == job.make_rng().integers(1 << 20)


class TestSerialization:
    def test_json_round_trip(self):
        spec = _spec(fixed={"draws": 2}, timeout=5.0, retries=1, backoff=0.2)
        again = CampaignSpec.from_json(spec.to_json())
        assert again == spec
        assert again.spec_hash == spec.spec_hash

    def test_tampered_hash_rejected(self):
        data = _spec().to_dict()
        data["grid"] = {"value": [9]}
        with pytest.raises(ValueError, match="spec_hash mismatch"):
            CampaignSpec.from_dict(data)

    def test_payload_round_trip(self):
        job = _spec().expand()[1]
        assert JobSpec.from_payload(job.payload()) == job
        assert JobSpec.from_payload(job.payload()).job_hash == job.job_hash

    def test_resolve_job(self):
        assert callable(_spec().resolve_job())
        with pytest.raises(ValueError):
            _spec(job="repro.no_such_module.fn").resolve_job()
