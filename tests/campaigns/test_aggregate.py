"""Aggregation: counter conservation, summary determinism and ordering."""

import json

from repro.campaigns import CampaignSpec, run_campaign, summarize
from repro.campaigns.aggregate import combined_metrics, write_summary
from repro.campaigns.spec import content_hash


def _records(*counter_dicts):
    return {
        f"h{i}": {
            "job_hash": f"h{i}",
            "status": "ok",
            "metrics": {"counters": counters, "series": {"x": [float(i)]}},
        }
        for i, counters in enumerate(counter_dicts)
    }


class TestCombinedMetrics:
    def test_counters_add(self):
        merged = combined_metrics(
            _records({"steps": 3, "draws": 10}, {"steps": 4}, {"draws": 1})
        )
        assert merged.counters == {"steps": 7, "draws": 11}

    def test_series_concatenate_in_hash_order(self):
        recs = _records({"a": 1}, {"a": 1}, {"a": 1})
        merged = combined_metrics(recs)
        assert merged.series["x"] == [0.0, 1.0, 2.0]
        # insertion order of the dict must not matter
        shuffled = {h: recs[h] for h in ["h2", "h0", "h1"]}
        assert combined_metrics(shuffled).series["x"] == [0.0, 1.0, 2.0]

    def test_non_ok_records_excluded(self):
        recs = _records({"steps": 5})
        recs["hbad"] = {"job_hash": "hbad", "status": "failed", "error": "x"}
        assert combined_metrics(recs).counters == {"steps": 5}


class TestSummary:
    def _run(self, tmp_path, name):
        spec = CampaignSpec(
            name="agg",
            job="repro.campaigns.testing.ok_job",
            grid={"value": [0, 1], "draws": [2, 5]},
            seeds=2,
            entropy=7,
        )
        return spec, run_campaign(spec, tmp_path / name, workers=0)

    def test_counters_conserved_across_jobs(self, tmp_path):
        spec, res = self._run(tmp_path, "s")
        summary = summarize(res.store, spec)
        # test_draws counts rng draws per job: draws axis is [2, 5],
        # 2 values x 2 seeds each -> (2+5) * 4 total
        assert summary["metrics"]["counters"]["test_draws"] == (2 + 5) * 4
        assert summary["metrics"]["counters"]["test_jobs"] == len(spec)

    def test_artifacts_sorted_by_hash(self, tmp_path):
        spec, res = self._run(tmp_path, "s")
        hashes = [a["content_hash"] for a in summarize(res.store)["artifacts"]]
        job_order = [a["job_hash"] for a in summarize(res.store)["artifacts"]]
        assert job_order == sorted(job_order)
        assert len(set(hashes)) == len(hashes)

    def test_summary_content_hash_self_consistent(self, tmp_path):
        spec, res = self._run(tmp_path, "s")
        summary = summarize(res.store)
        recorded = summary.pop("content_hash")
        assert recorded == content_hash(summary)

    def test_summary_excludes_volatile_fields(self, tmp_path):
        spec, res = self._run(tmp_path, "s")
        text = write_summary(res.store).read_text()
        data = json.loads(text)
        for artifact in data["artifacts"]:
            assert "wall_time" not in artifact
            assert "attempts" not in artifact
            assert "worker" not in artifact

    def test_summary_ignores_foreign_records(self, tmp_path):
        """Records whose job hash is not in the spec's grid (e.g. from an
        older grid) don't leak into the summary."""
        spec, res = self._run(tmp_path, "s")
        baseline = write_summary(res.store).read_bytes()
        res.store.append(
            {
                "job_hash": "deadbeef",
                "status": "ok",
                "result": {"x": 1},
                "metrics": {"counters": {"test_jobs": 99}, "series": {}},
            }
        )
        assert write_summary(res.store).read_bytes() == baseline
