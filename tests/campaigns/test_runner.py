"""run_campaign: parallel execution, worker failure paths, resume
determinism.

The crash/hang/flake jobs come from :mod:`repro.campaigns.testing` —
package-level so forked/spawned workers can resolve them by dotted name.
"""

import json

import pytest

from repro.campaigns import (
    CampaignSpec,
    run_campaign,
    summarize,
    write_summary,
)
from repro.campaigns.store import ArtifactStore


def _spec(job="repro.campaigns.testing.ok_job", **overrides):
    base = dict(
        name="t",
        job=job,
        grid={"value": [0, 1, 2, 3]},
        seeds=1,
        entropy=5,
        retries=1,
        backoff=0.01,
    )
    base.update(overrides)
    return CampaignSpec(**base)


class TestHappyPath:
    def test_inline_executes_all(self, tmp_path):
        res = run_campaign(_spec(), tmp_path / "s", workers=0)
        assert res.ok and res.executed == 4 and res.skipped == 0
        store = ArtifactStore(tmp_path / "s")
        assert len(store.completed_hashes()) == 4
        for rec in store.records().values():
            assert rec["attempts"] == 1
            assert rec["metrics"]["counters"]["test_draws"] == 4

    def test_pooled_matches_inline_bytes(self, tmp_path):
        spec = _spec()
        run_campaign(spec, tmp_path / "a", workers=0)
        run_campaign(spec, tmp_path / "b", workers=2)
        a = write_summary(ArtifactStore(tmp_path / "a")).read_bytes()
        b = write_summary(ArtifactStore(tmp_path / "b")).read_bytes()
        assert a == b

    def test_results_deterministic_per_job(self, tmp_path):
        spec = _spec()
        r1 = run_campaign(spec, tmp_path / "a", workers=0)
        r2 = run_campaign(spec, tmp_path / "b", workers=2)
        recs1, recs2 = r1.store.records(), r2.store.records()
        assert recs1.keys() == recs2.keys()
        for h in recs1:
            assert recs1[h]["result"] == recs2[h]["result"]
            assert recs1[h]["content_hash"] == recs2[h]["content_hash"]

    def test_resume_skips_completed(self, tmp_path):
        spec = _spec()
        run_campaign(spec, tmp_path / "s", workers=0)
        res = run_campaign(spec, tmp_path / "s", workers=0)
        assert res.skipped == 4 and res.executed == 0

    def test_no_resume_reexecutes(self, tmp_path):
        spec = _spec()
        run_campaign(spec, tmp_path / "s", workers=0)
        res = run_campaign(spec, tmp_path / "s", workers=0, resume=False)
        assert res.skipped == 0 and res.executed == 4

    def test_progress_events(self, tmp_path):
        events = []
        run_campaign(
            _spec(), tmp_path / "s", workers=0,
            progress=lambda ev, info: events.append(ev),
        )
        assert events[0] == "campaign_start" and events[-1] == "campaign_end"
        assert events.count("job_done") == 4


class TestResumeDeterminism:
    """The kill-and-resume acceptance criterion: a campaign interrupted
    mid-run and resumed re-executes only the missing jobs and the final
    aggregate is byte-identical, at any worker count."""

    @pytest.mark.parametrize("resume_workers", [0, 2, 3])
    def test_interrupted_then_resumed_summary_is_byte_identical(
        self, tmp_path, resume_workers
    ):
        spec = _spec(grid={"value": [0, 1, 2, 3, 4, 5]})
        # the uninterrupted baseline
        run_campaign(spec, tmp_path / "full", workers=0)
        baseline = write_summary(ArtifactStore(tmp_path / "full")).read_bytes()

        # simulate a mid-run kill: keep only the first 2 artifact lines
        run_campaign(spec, tmp_path / "cut", workers=0)
        store = ArtifactStore(tmp_path / "cut")
        lines = store.artifacts_path.read_text().splitlines()
        store.artifacts_path.write_text("\n".join(lines[:2]) + "\n")
        (store.root / "summary.json").unlink(missing_ok=True)

        res = run_campaign(spec, tmp_path / "cut", workers=resume_workers)
        assert res.skipped == 2 and res.executed == 4
        assert write_summary(store).read_bytes() == baseline

    def test_resume_after_torn_write(self, tmp_path):
        spec = _spec(grid={"value": [0, 1, 2]})
        run_campaign(spec, tmp_path / "full", workers=0)
        baseline = write_summary(ArtifactStore(tmp_path / "full")).read_bytes()

        run_campaign(spec, tmp_path / "cut", workers=0)
        store = ArtifactStore(tmp_path / "cut")
        text = store.artifacts_path.read_text().splitlines()
        # keep one whole record plus half of the next (killed mid-append)
        store.artifacts_path.write_text(text[0] + "\n" + text[1][: len(text[1]) // 2])
        res = run_campaign(spec, tmp_path / "cut", workers=0)
        assert res.skipped == 1 and res.executed == 2
        assert write_summary(store).read_bytes() == baseline


class TestFailurePaths:
    def test_flaky_job_retry_accounting(self, tmp_path):
        scratch = tmp_path / "scratch"
        scratch.mkdir()
        spec = _spec(
            job="repro.campaigns.testing.flaky_job",
            grid={"value": [0, 1]},
            fixed={"fail_first": 2, "scratch_dir": str(scratch)},
            retries=3,
        )
        res = run_campaign(spec, tmp_path / "s", workers=2)
        assert res.ok
        for rec in res.store.records().values():
            assert rec["status"] == "ok" and rec["attempts"] == 3
        # the runner's accounting matches what the workers actually saw
        for marker in scratch.glob("attempts-*"):
            assert marker.read_text() == "3"

    @pytest.mark.parametrize("workers", [0, 2])
    def test_retries_exhausted_records_failure(self, tmp_path, workers):
        spec = _spec(
            job="repro.campaigns.testing.erroring_job",
            fixed={"fail_values": [2]},
            retries=2,
        )
        res = run_campaign(spec, tmp_path / f"s{workers}", workers=workers)
        assert not res.ok and len(res.failed) == 1 and res.executed == 3
        [failed] = [
            r for r in res.store.records().values() if r["status"] == "failed"
        ]
        assert failed["attempts"] == 3  # retries + 1
        assert "injected failure" in failed["error"]

    def test_failed_jobs_rerun_on_resume(self, tmp_path):
        """completed_hashes() holds only ok jobs, so resume skips the
        successes and re-attempts the failure."""
        spec = _spec(
            job="repro.campaigns.testing.erroring_job",
            fixed={"fail_values": [2]},
            retries=0,
        )
        res = run_campaign(spec, tmp_path / "s", workers=0)
        assert not res.ok and res.executed == 3  # executed = successes
        res2 = run_campaign(spec, tmp_path / "s", workers=0)
        assert res2.skipped == 3 and len(res2.failed) == 1 and not res2.ok

    def test_crash_isolation(self, tmp_path):
        """A worker dying via os._exit fails its own job after retries —
        the other jobs complete and the campaign survives the broken
        pools."""
        spec = _spec(
            job="repro.campaigns.testing.crashing_job",
            grid={"value": [0, 1, 2, 3]},
            fixed={"crash_values": [2]},
            retries=1,
        )
        res = run_campaign(spec, tmp_path / "s", workers=2)
        assert len(res.failed) == 1 and res.executed == 3
        recs = res.store.records()
        ok_values = sorted(
            r["params"]["value"] for r in recs.values() if r["status"] == "ok"
        )
        assert ok_values == [0, 1, 3]
        [failed] = [r for r in recs.values() if r["status"] == "failed"]
        assert failed["params"]["value"] == 2
        assert "died" in failed["error"] or "broken" in failed["error"]

    def test_timeout_kills_hung_worker(self, tmp_path):
        spec = _spec(
            job="repro.campaigns.testing.hanging_job",
            grid={"value": [0, 1, 2]},
            fixed={"hang_values": [1], "sleep": 120.0},
            timeout=0.75,
            retries=0,
        )
        res = run_campaign(spec, tmp_path / "s", workers=2)
        assert res.wall_time < 60  # the hang did not run its 120 s sleep
        assert len(res.failed) == 1 and res.executed == 2
        [failed] = [
            r for r in res.store.records().values() if r["status"] == "failed"
        ]
        assert failed["params"]["value"] == 1
        assert "timeout" in failed["error"]

    def test_crash_survivors_deterministic_across_schedules(self, tmp_path):
        """Jobs that complete around a crashing sibling produce the same
        content-addressed artifacts under different worker counts (hence
        different crash interleavings) — broken pools don't perturb
        surviving results.

        A pool break charges an attempt to every job that was in flight
        (the culprit is indistinguishable from its siblings), and the
        crasher breaks the pool retries+1 times, so an innocent sibling
        can be caught in more than one break — retries=3 gives innocents
        enough headroom to recover under any interleaving (an innocent
        only fails if it is in flight during all four breaks).  The crash
        for value 2 is deterministic, so there is no inline baseline —
        the job would take down the coordinator itself."""
        spec = _spec(
            job="repro.campaigns.testing.crashing_job",
            fixed={"crash_values": [2]},
            retries=3,
        )
        a = run_campaign(spec, tmp_path / "a", workers=2)
        b = run_campaign(spec, tmp_path / "b", workers=3)
        assert not a.ok and not b.ok
        recs_a, recs_b = a.store.records(), b.store.records()
        ok_a = {h: r for h, r in recs_a.items() if r["status"] == "ok"}
        ok_b = {h: r for h, r in recs_b.items() if r["status"] == "ok"}
        assert len(ok_a) == len(ok_b) == 3
        for h, rec in ok_a.items():
            assert ok_b[h]["content_hash"] == rec["content_hash"]


class TestSummaries:
    def test_summary_counts_failures(self, tmp_path):
        spec = _spec(
            job="repro.campaigns.testing.erroring_job",
            fixed={"fail_values": [0]},
            retries=0,
        )
        res = run_campaign(spec, tmp_path / "s", workers=0)
        summary = summarize(res.store)
        assert summary["jobs"] == {
            "total": 4, "ok": 3, "failed": 1, "pending": 1,
        }
        assert len(summary["artifacts"]) == 3

    def test_summary_is_valid_canonical_json(self, tmp_path):
        res = run_campaign(_spec(), tmp_path / "s", workers=0)
        path = write_summary(res.store)
        data = json.loads(path.read_text())
        assert data["spec_hash"] == res.spec_hash
        assert data["metrics"]["counters"]["test_jobs"] == 4
