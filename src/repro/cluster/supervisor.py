"""Replica process supervision and cluster-level aggregation endpoints.

:class:`ClusterSupervisor` is deliberately *not* a coordinator: replicas
coordinate through the shared store (claims + spool), so the supervisor
only (a) spawns and watches N ``repro serve`` processes over one store
directory, and (b) serves read-only aggregate views over their
``/metrics``:

``GET /cluster/healthz``
    supervisor liveness + per-replica health probes (pool state, store
    identity — which must agree across replicas, or the cluster is
    misconfigured).
``GET /cluster/metrics``
    the element-wise **sum** of every replica's counters (cluster-wide
    ``cache_hits + inflight_dedups + lease_waits`` is how the
    execute-once invariant is audited), plus each replica's raw
    snapshot under ``per_replica``.
``GET /cluster/replicas``
    pid/port/alive for each spawned replica.

Replicas get per-replica ports (``base+1 … base+N``) by default, or all
share ``base+1`` via SO_REUSEPORT (``reuse_port=True``, Linux) and let
the kernel spread accepts.  Each replica is its own session
(``start_new_session=True``) so killing one — as the takeover torture
test does with ``SIGKILL`` to the process group — takes down its worker
pool with it, emulating machine death rather than a polite shutdown.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import time
from typing import Optional

from repro.campaigns.spec import canonical_json

__all__ = ["ClusterSupervisor"]


async def _fetch_json(host: str, port: int, path: str, timeout: float = 5.0):
    """GET ``path`` from one replica; parsed JSON or ``None`` on any
    failure (a dead replica must not take the aggregate endpoint down)."""
    from repro.service.loadgen import http_request

    try:
        status, _, body = await http_request(
            host, port, "GET", path, timeout=timeout
        )
        if status != 200:
            return None
        return json.loads(body.decode("utf-8"))
    except (OSError, asyncio.TimeoutError, ValueError):
        return None


class ClusterSupervisor:
    """N ``repro serve`` replicas over one store, plus aggregate views."""

    def __init__(
        self,
        store_dir,
        *,
        replicas: int = 2,
        host: str = "127.0.0.1",
        port: int = 8870,
        workers: int = 2,
        queue_limit: int = 64,
        lease_ttl: float = 10.0,
        progress_stride: int = 1,
        tenants: Optional[str] = None,
        sse_keepalive: float = 15.0,
        reuse_port: bool = False,
        retries: int = 0,
        timeout: Optional[float] = None,
    ) -> None:
        if replicas < 1:
            raise ValueError("a cluster needs at least 1 replica")
        self.store_dir = str(store_dir)
        self.replicas = int(replicas)
        self.host = host
        self.port = int(port)
        self.workers = int(workers)
        self.queue_limit = int(queue_limit)
        self.lease_ttl = float(lease_ttl)
        self.progress_stride = int(progress_stride)
        self.tenants = tenants
        self.sse_keepalive = float(sse_keepalive)
        self.reuse_port = bool(reuse_port)
        self.retries = int(retries)
        self.timeout = timeout
        self._procs: list[subprocess.Popen] = []
        self._server: Optional[asyncio.AbstractServer] = None

    # -- replica processes ---------------------------------------------
    def replica_port(self, index: int) -> int:
        """The port replica ``index`` listens on (all the same under
        SO_REUSEPORT)."""
        return self.port + 1 if self.reuse_port else self.port + 1 + index

    def replica_id(self, index: int) -> str:
        return f"r{index}"

    def _replica_argv(self, index: int) -> list[str]:
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--store", self.store_dir,
            "--host", self.host,
            "--port", str(self.replica_port(index)),
            "--workers", str(self.workers),
            "--queue-limit", str(self.queue_limit),
            "--replica-id", self.replica_id(index),
            "--lease-ttl", str(self.lease_ttl),
            "--progress-stride", str(self.progress_stride),
            "--sse-keepalive", str(self.sse_keepalive),
            "--retries", str(self.retries),
        ]
        if self.tenants is not None:
            argv += ["--tenants", self.tenants]
        if self.reuse_port:
            argv += ["--reuse-port"]
        if self.timeout is not None:
            argv += ["--timeout", str(self.timeout)]
        return argv

    def start(self) -> None:
        """Spawn the replica processes (each in its own session, so a
        SIGKILL to its process group also reaps its pool workers —
        machine-death semantics for the takeover tests)."""
        env = dict(os.environ)
        src = os.path.join(
            os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
        )
        env["PYTHONPATH"] = (
            src + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src
        )
        for index in range(self.replicas):
            self._procs.append(
                subprocess.Popen(
                    self._replica_argv(index),
                    stdout=subprocess.DEVNULL,
                    stderr=subprocess.DEVNULL,
                    start_new_session=True,
                    env=env,
                )
            )

    def kill_replica(self, index: int, sig: int = signal.SIGKILL) -> None:
        """Signal one replica's whole process group (replica + its pool
        workers) — the torture tests' SIGKILL entry point."""
        proc = self._procs[index]
        if proc.poll() is not None:
            return
        try:
            os.killpg(proc.pid, sig)
        except ProcessLookupError:  # pragma: no cover - exit race
            pass

    def stop(self) -> None:
        """Tear every replica down (TERM, then KILL stragglers)."""
        for proc in self._procs:
            if proc.poll() is None:
                try:
                    os.killpg(proc.pid, signal.SIGTERM)
                except ProcessLookupError:
                    continue
        deadline = time.monotonic() + 3.0
        for proc in self._procs:
            while proc.poll() is None and time.monotonic() < deadline:
                time.sleep(0.02)
            if proc.poll() is None:
                try:
                    os.killpg(proc.pid, signal.SIGKILL)
                except ProcessLookupError:
                    pass
                proc.wait()

    def replica_states(self) -> list[dict]:
        return [
            {
                "replica": self.replica_id(index),
                "port": self.replica_port(index),
                "pid": proc.pid,
                "alive": proc.poll() is None,
            }
            for index, proc in enumerate(self._procs)
        ]

    async def wait_healthy(self, timeout: float = 30.0) -> bool:
        """Poll every live replica's ``/healthz`` until all answer ok."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            healths = await asyncio.gather(
                *(
                    _fetch_json(self.host, state["port"], "/healthz")
                    for state in self.replica_states()
                    if state["alive"]
                )
            )
            if healths and all(
                h is not None and h.get("ok") for h in healths
            ):
                return True
            await asyncio.sleep(0.1)
        return False

    # -- aggregation ---------------------------------------------------
    async def cluster_metrics(self) -> dict:
        """Summed counters across live replicas + raw per-replica views."""
        states = self.replica_states()
        snapshots = await asyncio.gather(
            *(
                _fetch_json(self.host, state["port"], "/metrics")
                if state["alive"]
                else asyncio.sleep(0, result=None)
                for state in states
            )
        )
        counters: dict[str, int] = {}
        per_replica: dict[str, Optional[dict]] = {}
        for state, snap in zip(states, snapshots):
            per_replica[state["replica"]] = snap
            if snap is None:
                continue
            for name, value in (snap.get("counters") or {}).items():
                counters[name] = counters.get(name, 0) + int(value)
        return {
            "replicas": len(states),
            "alive": sum(1 for s in states if s["alive"]),
            "counters": counters,
            "per_replica": per_replica,
        }

    async def cluster_healthz(self) -> dict:
        states = self.replica_states()
        healths = await asyncio.gather(
            *(
                _fetch_json(self.host, state["port"], "/healthz")
                if state["alive"]
                else asyncio.sleep(0, result=None)
                for state in states
            )
        )
        identities = {
            h.get("store_identity") for h in healths if h is not None
        }
        return {
            "ok": all(h is not None and h.get("ok") for h in healths),
            "store": self.store_dir,
            "shared_store": len(identities) == 1,
            "replicas": [
                dict(state, health=health)
                for state, health in zip(states, healths)
            ],
        }

    # -- the supervisor's own HTTP endpoint ----------------------------
    async def _handle(self, reader, writer) -> None:
        from repro.service.http import _error, _json_response, _read_request

        try:
            parsed = await _read_request(reader)
            if parsed is None:
                return
            method, target, _headers, _body = parsed
            path = target.split("?", 1)[0].rstrip("/") or "/"
            if method != "GET":
                _error(writer, 405, f"{method} not allowed on {path}")
            elif path == "/cluster/metrics":
                _json_response(writer, 200, await self.cluster_metrics())
            elif path == "/cluster/healthz":
                _json_response(writer, 200, await self.cluster_healthz())
            elif path == "/cluster/replicas":
                _json_response(
                    writer, 200, {"replicas": self.replica_states()}
                )
            else:
                _error(writer, 404, f"no route for {path!r}")
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                if not writer.is_closing():
                    await writer.drain()
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def serve(self) -> asyncio.AbstractServer:
        """Bind the supervisor's aggregate endpoint on the base port."""
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        return self._server

    async def run_forever(self) -> None:
        """``repro cluster``'s main loop: spawn, bind, serve until
        cancelled, then tear everything down."""
        self.start()
        try:
            await self.serve()
            healthy = await self.wait_healthy()
            banner = {
                "cluster": f"http://{self.host}:{self.port}/cluster/metrics",
                "replicas": [
                    f"http://{self.host}:{s['port']}"
                    for s in self.replica_states()
                ],
                "store": self.store_dir,
                "healthy": healthy,
            }
            print(canonical_json(banner), flush=True)
            await self._server.serve_forever()
        finally:
            if self._server is not None:
                self._server.close()
                await self._server.wait_closed()
            self.stop()
