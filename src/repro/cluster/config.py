"""Persistent tenant/quota configuration with mtime-based hot reload.

Cluster quotas can't live in CLI flags: N replicas each get their own
command line, and an operator changing a tenant's budget should not have
to restart the fleet.  :class:`TenantQuotaConfig` reads one JSON or TOML
file shared by every replica::

    {"default": {"burst": 20, "rate": 2.0},
     "tenants": {"alice": {"burst": 100, "rate": 10.0},
                 "batch":  {"burst": 5,  "rate": 0.0}}}

or the TOML spelling (Python 3.11+, via stdlib ``tomllib``)::

    [default]
    burst = 20
    rate = 2.0
    [tenants.alice]
    burst = 100
    rate = 10.0

``lookup(tenant)`` returns the ``(burst, rate)`` pair for a tenant —
its own entry, else ``default``, else ``None`` meaning *no quota* —
re-reading the file first whenever its mtime (or existence) changed.
Each successful reload bumps ``generation``, which is how a
:class:`~repro.service.jobs.JobManager` knows to drop its cached token
buckets so new budgets take effect immediately rather than when a
bucket happens to drain.  A malformed edit never takes down admission:
the previous config stays live and the error is kept on ``last_error``
for ``/healthz`` to surface.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional

try:  # stdlib since 3.11; the JSON spelling works everywhere
    import tomllib
except ImportError:  # pragma: no cover - Python < 3.11
    tomllib = None

__all__ = ["TenantQuotaConfig"]


def _parse_quota(entry) -> tuple[float, float]:
    if not isinstance(entry, dict):
        raise ValueError(f"quota entry must be a table/object, got {entry!r}")
    burst = float(entry["burst"])
    rate = float(entry.get("rate", 0.0))
    if burst <= 0:
        raise ValueError("burst must be > 0")
    if rate < 0:
        raise ValueError("rate must be >= 0")
    return burst, rate


class TenantQuotaConfig:
    """One quota file, watched by mtime, shared by all replicas."""

    def __init__(self, path) -> None:
        self.path = Path(path)
        self.generation = 0
        self.last_error: Optional[str] = None
        self._stamp: Optional[tuple] = None
        self._default: Optional[tuple[float, float]] = None
        self._tenants: dict[str, tuple[float, float]] = {}
        self.reload()

    # -- loading -------------------------------------------------------
    def _read(self) -> dict:
        if self.path.suffix == ".toml":
            if tomllib is None:
                raise RuntimeError(
                    "TOML quota config needs Python >= 3.11 (tomllib); "
                    "use the JSON spelling instead"
                )
            with open(self.path, "rb") as fh:
                return tomllib.load(fh)
        return json.loads(self.path.read_text(encoding="utf-8"))

    def reload(self) -> bool:
        """Re-read the file; ``True`` iff a new config took effect.

        Parse or validation errors leave the previous config (and
        ``generation``) untouched and record the failure on
        ``last_error`` — a fat-fingered edit must not strip quotas off a
        live cluster.
        """
        try:
            raw = self._read()
            if not isinstance(raw, dict):
                raise ValueError("quota config must be a table/object")
            default = (
                _parse_quota(raw["default"]) if "default" in raw else None
            )
            tenants = {
                str(name): _parse_quota(entry)
                for name, entry in (raw.get("tenants") or {}).items()
            }
        except FileNotFoundError:
            self.last_error = f"{self.path} does not exist"
            return False
        except (ValueError, KeyError, TypeError, OSError) as exc:
            self.last_error = f"{type(exc).__name__}: {exc}"
            return False
        self._default = default
        self._tenants = tenants
        self.last_error = None
        self.generation += 1
        self._stamp = self._current_stamp()
        return True

    def _current_stamp(self) -> Optional[tuple]:
        try:
            st = os.stat(self.path)
        except OSError:
            return None
        return (st.st_mtime_ns, st.st_size)

    def maybe_reload(self) -> bool:
        """Reload iff the file changed since the last load; ``True`` iff
        a new config took effect.  Cheap (one ``stat``) — callers run it
        on the admission path."""
        stamp = self._current_stamp()
        if stamp == self._stamp:
            return False
        self._stamp = stamp
        return self.reload()

    # -- queries -------------------------------------------------------
    def lookup(self, tenant: str) -> Optional[tuple[float, float]]:
        """``(burst, rate)`` for ``tenant``; ``None`` means unmetered."""
        self.maybe_reload()
        return self._tenants.get(tenant, self._default)

    def snapshot(self) -> dict:
        """Config state for ``/healthz``/``/metrics`` surfaces."""
        return {
            "path": str(self.path),
            "generation": self.generation,
            "tenants": sorted(self._tenants),
            "default": list(self._default) if self._default else None,
            "last_error": self.last_error,
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TenantQuotaConfig({str(self.path)!r}, "
            f"generation={self.generation})"
        )
