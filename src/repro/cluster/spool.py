"""Per-job event spools: SSE from any replica, for any job.

A spool is one append-only JSONL file per job hash,
``spool/<job_hash>.jsonl`` under the shared store root, holding the same
tagged event encoding as :meth:`repro.runtime.telemetry.EventStream.dumps`
(one ``{"type": tag, ...fields}`` object per line).  The *executing*
replica appends its :class:`~repro.runtime.telemetry.JobEvent` lifecycle
transitions, and its worker processes append
:class:`~repro.runtime.telemetry.StepProgressEvent` frames at a stride
from inside the running job; *every* replica can then serve ``GET
/jobs/<hash>/events`` by tailing the spool with the same byte-offset
cursor discipline as :meth:`ArtifactStore.tail_records` — no cross-replica
RPC, the filesystem is the bus.

Spool appends reuse the claim ledger's locked ``O_APPEND`` write but skip
the fsync: progress frames are advisory (a lost frame means a subscriber
sees the next stride instead), while claims and artifacts are correctness
state.  The spool of a finished job is small and static; callers that
re-execute a job after takeover simply keep appending — readers tolerate
a restarted lifecycle mid-stream, and the terminal event still arrives
exactly once per *observed* completion.
"""

from __future__ import annotations

import dataclasses
import json
import os
from pathlib import Path

try:  # advisory lock; absent off-POSIX
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.cluster.claims import append_jsonl_line
from repro.runtime.telemetry import (
    StepProgressEvent,
    _EVENT_TAGS,
    _TAG_CLASSES,
    _jsonable,
)

__all__ = ["EventSpool", "SpoolProgress"]

SPOOL_DIR = "spool"


def encode_event(event) -> bytes:
    """One tagged JSONL payload, exactly the ``EventStream.dumps`` line."""
    obj = {"type": _EVENT_TAGS.get(type(event).__name__, type(event).__name__)}
    obj.update(_jsonable(event))
    return json.dumps(obj, default=repr).encode("utf-8")


def decode_event(line: bytes):
    """The typed event for one spool line, or ``None`` if unparseable or
    of an unknown tag (newer writers must not break older readers)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError:
        return None
    tag = obj.pop("type", None)
    event_cls = _TAG_CLASSES.get(tag)
    if event_cls is None:
        return None
    names = {f.name for f in dataclasses.fields(event_cls)}
    return event_cls(**{k: v for k, v in obj.items() if k in names})


class EventSpool:
    """The spool directory of one shared store."""

    def __init__(self, root) -> None:
        self.root = Path(root) / SPOOL_DIR
        self.root.mkdir(parents=True, exist_ok=True)

    def path(self, job_hash: str) -> Path:
        return self.root / f"{job_hash}.jsonl"

    def append(self, job_hash: str, event) -> None:
        """Append one typed event to the job's spool (no fsync — progress
        is advisory)."""
        fd = os.open(
            self.path(job_hash), os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            append_jsonl_line(fd, encode_event(event), fsync=False)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)

    def read(self, job_hash: str, offset: int = 0) -> tuple[list, int]:
        """Typed events at or after byte ``offset``; ``(events,
        new_offset)`` with the same complete-lines-only cursor contract as
        :meth:`ArtifactStore.tail_records`."""
        path = self.path(job_hash)
        try:
            with open(path, "rb") as fh:
                fh.seek(offset)
                data = fh.read()
        except FileNotFoundError:
            return [], offset
        end = data.rfind(b"\n")
        if end < 0:
            return [], offset
        events = []
        for line in data[:end].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            event = decode_event(line)
            if event is not None:
                events.append(event)
        return events, offset + end + 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"EventSpool({str(self.root)!r})"


class SpoolProgress:
    """A picklable per-job progress callback for worker processes.

    Jobs that accept a ``progress=`` keyword call it as
    ``progress(step, active_fraction=..., counters=...)``; every
    ``stride``-th call (plus the first) appends a
    :class:`StepProgressEvent` to the job's spool.  Holds only the store
    root path and scalars, so it crosses the ``ProcessPoolExecutor``
    pickle boundary — the worker opens the spool file itself.
    """

    __slots__ = ("store_root", "job_hash", "stride", "replica", "_calls")

    def __init__(
        self, store_root, job_hash: str, *, stride: int = 1, replica=None
    ) -> None:
        if stride < 1:
            raise ValueError("progress stride must be >= 1")
        self.store_root = str(store_root)
        self.job_hash = job_hash
        self.stride = int(stride)
        self.replica = replica
        self._calls = 0

    def __call__(self, step: int, active_fraction=None, counters=None) -> None:
        emit = self._calls % self.stride == 0
        self._calls += 1
        if not emit:
            return
        EventSpool(self.store_root).append(
            self.job_hash,
            StepProgressEvent(
                job_hash=self.job_hash,
                step=int(step),
                active_fraction=(
                    float(active_fraction)
                    if active_fraction is not None
                    else None
                ),
                counters=dict(counters) if counters else None,
                replica=self.replica,
            ),
        )

    def __getstate__(self):
        return (
            self.store_root,
            self.job_hash,
            self.stride,
            self.replica,
            self._calls,
        )

    def __setstate__(self, state):
        (
            self.store_root,
            self.job_hash,
            self.stride,
            self.replica,
            self._calls,
        ) = state
