"""Multi-replica serving over one shared artifact store.

``repro.cluster`` turns the single-process front door of
``repro.service`` into a horizontally replicated one.  The shared
:class:`~repro.campaigns.store.ArtifactStore` directory is the *only*
coordination point — no message bus, no consensus service — extended by
two sidecar structures that follow the store's flock + ``O_APPEND``
append discipline:

* ``claims.jsonl`` (:class:`~repro.cluster.claims.ClaimLedger`) — a
  lease ledger replicas consult before executing a job, upgrading the
  per-process in-flight dedupe of ``repro.service.jobs.JobManager`` to
  cluster-wide execute-once with heartbeat renewal and stale-lease
  takeover after a replica dies;
* ``spool/<job_hash>.jsonl`` (:class:`~repro.cluster.spool.EventSpool`)
  — per-job typed event logs that workers and the executing replica
  append to and *any* replica tails to serve SSE, including per-step
  :class:`~repro.runtime.telemetry.StepProgressEvent` frames emitted
  from inside running jobs.

:class:`~repro.cluster.supervisor.ClusterSupervisor` (``python -m repro
cluster --replicas N``) spawns and monitors the replica processes and
aggregates their ``/metrics`` into ``/cluster/metrics``;
:class:`~repro.cluster.config.TenantQuotaConfig` replaces quota CLI
flags with a persistent JSON/TOML file reloaded on mtime change.
"""

from repro.cluster.claims import ClaimLedger, Lease
from repro.cluster.config import TenantQuotaConfig
from repro.cluster.spool import EventSpool, SpoolProgress
from repro.cluster.supervisor import ClusterSupervisor

__all__ = [
    "ClaimLedger",
    "Lease",
    "EventSpool",
    "SpoolProgress",
    "TenantQuotaConfig",
    "ClusterSupervisor",
]
