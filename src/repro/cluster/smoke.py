"""End-to-end cluster smoke check (the CI gate for ``repro.cluster``).

Boots a real 2-replica cluster (``ClusterSupervisor`` spawning
``python -m repro serve`` subprocesses) over one temporary store, then
asserts the cluster contract:

1. ``GET /cluster/healthz`` on the supervisor reports every replica ok
   and ``shared_store: true`` (all replicas see one store identity).
2. Duplicate submissions of one job to *different* replicas execute
   exactly once cluster-wide: every response is ``200`` with a
   byte-identical sealed record, summed counters show
   ``jobs_executed == 1`` and
   ``cache_hits + inflight_dedups + lease_waits == N - 1``.
3. A paced job submitted to replica 0 streams ``step_progress`` SSE
   frames from replica 1 — per-step progress is visible from a replica
   that is *not* executing the job.
4. SIGKILL of the executing replica mid-job: the surviving replica's
   duplicate submission takes the lease over, re-executes, and answers
   ``200`` with an ``ok`` record whose result is identical to a clean
   single-process execution; the store verifies clean.

Run it locally with ``python -m repro.cluster.smoke``; exit code 0 means
the cluster clusters.
"""

from __future__ import annotations

import asyncio
import json
import socket
import tempfile
import time
from pathlib import Path

from repro.campaigns.runner import execute_job
from repro.campaigns.spec import JobSpec, canonical_json
from repro.campaigns.store import ArtifactStore
from repro.cluster.supervisor import ClusterSupervisor
from repro.service.loadgen import http_request

__all__ = ["run_smoke", "main"]

HOST = "127.0.0.1"


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind((HOST, 0))
        return sock.getsockname()[1]


def _payload(campaign: str, **params) -> dict:
    merged = {"n": 16, "k": 4}
    merged.update(params)
    return {
        "campaign": campaign,
        "job": "repro.service.workload.gossip_sum_job",
        "params": merged,
        "seed_index": 0,
        "index": 0,
        "entropy": 2006,
        "job_hash": "",
    }


def _body(payload: dict) -> bytes:
    return canonical_json(
        {k: v for k, v in payload.items() if k != "job_hash"}
    ).encode("utf-8")


async def _submit(port: int, payload: dict, *, timeout: float = 120.0):
    """POST one job with wait=1; ``None`` if the replica died mid-talk."""
    try:
        return await http_request(
            HOST, port, "POST", "/jobs?wait=1", _body(payload),
            headers={"X-Tenant": "cluster-smoke"}, timeout=timeout,
        )
    except (OSError, asyncio.IncompleteReadError, IndexError, ValueError):
        return None


async def _sse_frames(port: int, path: str, *, timeout: float = 60.0):
    """Every ``data:`` frame of one SSE response, until the end frame."""
    reader, writer = await asyncio.open_connection(HOST, port)
    try:
        writer.write(
            f"GET {path} HTTP/1.1\r\nHost: {HOST}\r\nConnection: close"
            "\r\n\r\n".encode("latin-1")
        )
        await writer.drain()

        async def read_frames():
            status_line = await reader.readline()
            assert b"200" in status_line, status_line
            frames = []
            while True:
                line = await reader.readline()
                if not line or line.startswith(b"event: end"):
                    return frames
                if line.startswith(b"data: "):
                    frames.append(json.loads(line[len(b"data: "):]))

        return await asyncio.wait_for(read_frames(), timeout)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except ConnectionError:
            pass


async def run_smoke(store_dir: str) -> dict:
    """The checks; returns a small report dict, raises on any failure."""
    supervisor = ClusterSupervisor(
        store_dir, replicas=2, host=HOST, port=_free_port(),
        workers=2, lease_ttl=2.0, progress_stride=1, sse_keepalive=5.0,
    )
    supervisor.start()
    server = None
    try:
        server = await supervisor.serve()
        assert await supervisor.wait_healthy(60.0), "replicas never came up"
        ports = [supervisor.replica_port(0), supervisor.replica_port(1)]

        # 1. aggregate health: both replicas up, one shared store
        status, _, health_body = await http_request(
            HOST, supervisor.port, "GET", "/cluster/healthz"
        )
        assert status == 200, status
        health = json.loads(health_body)
        assert health["ok"] and health["shared_store"], health

        # 2. duplicate submissions across replicas: execute-once
        dup = _payload("cluster-smoke-dup")
        answers = await asyncio.gather(
            _submit(ports[0], dup), _submit(ports[1], dup)
        )
        answers += await asyncio.gather(
            _submit(ports[0], dup), _submit(ports[1], dup)
        )
        bodies = set()
        for answer in answers:
            assert answer is not None, "a healthy replica dropped a request"
            status, _, body = answer
            assert status == 200, (status, body)
            bodies.add(body)
        assert len(bodies) == 1, "responses were not byte-identical"
        metrics = await supervisor.cluster_metrics()
        counters = metrics["counters"]
        assert counters.get("jobs_executed", 0) == 1, counters
        dedupes = (
            counters.get("cache_hits", 0)
            + counters.get("inflight_dedups", 0)
            + counters.get("lease_waits", 0)
        )
        assert dedupes == len(answers) - 1, counters

        # 3. per-step SSE from the replica that is NOT executing
        paced = _payload(
            "cluster-smoke-sse", pace=0.02, extra_rounds=30
        )
        paced_hash = JobSpec.from_payload(paced).job_hash
        status, headers, _ = await http_request(
            HOST, ports[0], "POST", "/jobs", _body(paced),
            headers={"X-Tenant": "cluster-smoke"},
        )
        assert status == 202, status
        assert headers.get("x-repro-outcome") == "accepted", headers
        frames = await _sse_frames(ports[1], f"/jobs/{paced_hash}/events")
        step_frames = [f for f in frames if f.get("type") == "step_progress"]
        assert step_frames, "no step_progress frames from the peer replica"
        terminal = [
            f for f in frames
            if f.get("type") == "job"
            and f.get("status") in ("done", "failed", "cached")
        ]
        assert terminal and terminal[-1]["status"] in ("done", "cached"), frames

        # 4. SIGKILL the executor mid-job; the duplicate waiter takes over
        doomed = _payload("cluster-smoke-kill", pace=0.05, extra_rounds=80)
        task_victim = asyncio.ensure_future(_submit(ports[0], doomed))
        await asyncio.sleep(1.0)  # replica 0 claims + starts executing
        task_survivor = asyncio.ensure_future(_submit(ports[1], doomed))
        await asyncio.sleep(1.0)
        supervisor.kill_replica(0)
        answer = await asyncio.wait_for(task_survivor, 120.0)
        await task_victim
        assert answer is not None, "survivor never answered"
        status, _, body = answer
        assert status == 200, (status, body)
        record = json.loads(body)
        assert record["status"] == "ok", record
        metrics = await supervisor.cluster_metrics()
        assert metrics["alive"] == 1, metrics
        assert metrics["counters"].get("lease_takeovers", 0) >= 1, (
            metrics["counters"]
        )
        # the takeover's re-execution equals a clean single-process run
        local = execute_job(JobSpec.from_payload(doomed).payload())
        assert local["status"] == "ok"
        assert local["result"] == record["result"], "takeover diverged"

        bad = ArtifactStore(store_dir).verify()
        assert bad == [], f"corrupted artifacts: {bad}"
        return {
            "duplicate_answers": len(answers),
            "step_frames": len(step_frames),
            "takeovers": metrics["counters"].get("lease_takeovers", 0),
            "counters": metrics["counters"],
        }
    finally:
        if server is not None:
            server.close()
            await server.wait_closed()
        supervisor.stop()


def main() -> int:
    t0 = time.monotonic()
    with tempfile.TemporaryDirectory(prefix="repro-cluster-smoke-") as tmp:
        report = asyncio.run(run_smoke(str(Path(tmp) / "store")))
    report["seconds"] = round(time.monotonic() - t0, 2)
    print("cluster smoke OK:", json.dumps(report, sort_keys=True))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
