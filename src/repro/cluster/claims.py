"""Store-level claim records: cluster-wide execute-once via leases.

The ledger is one append-only JSONL sidecar, ``claims.jsonl``, living
next to ``artifacts.jsonl`` in the shared store directory and written
with the exact same discipline (single ``os.write`` on an ``O_APPEND``
descriptor under an advisory ``flock``, torn-tail repair under the
lock).  Three record kinds form a tiny lease state machine per job
hash::

    claim      {"kind","job_hash","lease","replica","pid","deadline"}
    heartbeat  {"kind","job_hash","lease","deadline"}
    release    {"kind","job_hash","lease","outcome"}

A *live* lease is the latest claim for a hash that has not been released
and whose deadline (as renewed by heartbeats) is in the future.  Because
every mutation happens under the exclusive flock *after* replaying the
ledger tail, append order is authoritative: at most one replica can
observe "no live lease" and append a claim, which is what makes the
cross-process execute-once guarantee hold without any server-side
coordinator.

Liveness uses the wall clock (``time.time``) — deadlines must be
comparable across processes — so the usual lease caveat applies: a
replica paused longer than its TTL (e.g. a stop-the-world debugger) can
lose a lease it thinks it holds and a survivor may re-execute the job.
That is safe here by construction: jobs are deterministic functions of
their spec, so a duplicated execution appends a byte-identical record
and the store's ok-wins merge keeps exactly one logical artifact.

State replay is incremental: each :class:`ClaimLedger` remembers the
byte offset it has parsed and, under the lock, reads only the new tail —
``O(new records)`` per operation, not ``O(ledger)``.
"""

from __future__ import annotations

import json
import os
import time
import uuid
from dataclasses import dataclass
from pathlib import Path
from typing import Optional

try:  # advisory lock; absent off-POSIX (appends fall back to O_APPEND only)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["Lease", "ClaimLedger", "append_jsonl_line"]

CLAIMS_FILE = "claims.jsonl"


def append_jsonl_line(
    fd: int, payload: bytes, *, fsync: bool = True
) -> None:
    """Append one JSONL line on an already-locked ``O_APPEND`` fd.

    Repairs a torn tail (a writer killed mid-append leaves a final line
    with no newline) by prefixing a newline, exactly like
    :meth:`repro.campaigns.store.ArtifactStore.append` — the caller must
    hold the exclusive flock so the tail is stable while we look at it.
    """
    size = os.fstat(fd).st_size
    torn_tail = size > 0 and os.pread(fd, 1, size - 1) != b"\n"
    os.write(fd, (b"\n" if torn_tail else b"") + payload + b"\n")
    if fsync:
        os.fsync(fd)


@dataclass(frozen=True)
class Lease:
    """One replica's right to execute one job, until ``deadline``."""

    job_hash: str
    lease_id: str
    replica: str
    deadline: float


class ClaimLedger:
    """The claim sidecar of one shared store, seen by one replica.

    All public methods are synchronous file operations (open, flock,
    pread tail, one append) — microseconds of IO under no contention,
    bounded by the longest concurrent append under contention.  An
    asyncio host should treat them like any other small blocking call.
    """

    def __init__(
        self,
        root,
        replica_id: str,
        *,
        ttl: float = 10.0,
        clock=time.time,
    ) -> None:
        if ttl <= 0:
            raise ValueError("lease ttl must be > 0")
        self.path = Path(root) / CLAIMS_FILE
        self.replica_id = str(replica_id)
        self.ttl = float(ttl)
        self.clock = clock
        self._offset = 0
        self._seq = 0
        # job_hash -> {"lease","replica","deadline","released"}
        self._state: dict[str, dict] = {}

    # -- ledger replay -------------------------------------------------
    def _refresh(self, fd: int) -> None:
        """Fold the unread ledger tail into ``_state`` (lock held)."""
        size = os.fstat(fd).st_size
        if size <= self._offset:
            return
        data = os.pread(fd, size - self._offset, self._offset)
        end = data.rfind(b"\n")
        if end < 0:
            return  # only a torn tail so far; re-read once it is repaired
        for line in data[:end].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                rec = json.loads(line)
            except json.JSONDecodeError:
                continue  # repaired torn tail
            self._apply(rec)
        self._offset += end + 1

    def _apply(self, rec: dict) -> None:
        kind = rec.get("kind")
        job_hash = rec.get("job_hash")
        if not job_hash:
            return
        cur = self._state.get(job_hash)
        if kind == "claim":
            # appends only happen after observing no live lease, so a new
            # claim always supersedes whatever came before it
            self._state[job_hash] = {
                "lease": rec.get("lease"),
                "replica": rec.get("replica"),
                "deadline": float(rec.get("deadline", 0.0)),
                "released": False,
            }
        elif kind == "heartbeat":
            if cur is not None and cur["lease"] == rec.get("lease"):
                cur["deadline"] = float(rec.get("deadline", cur["deadline"]))
        elif kind == "release":
            if cur is not None and cur["lease"] == rec.get("lease"):
                cur["released"] = True

    def _live(self, job_hash: str, now: float) -> Optional[dict]:
        cur = self._state.get(job_hash)
        if cur is None or cur["released"] or cur["deadline"] <= now:
            return None
        return cur

    # -- locked file access --------------------------------------------
    def _locked_fd(self) -> int:
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_EX)
        return fd

    def _unlock(self, fd: int) -> None:
        if fcntl is not None:
            fcntl.flock(fd, fcntl.LOCK_UN)
        os.close(fd)

    def _append(self, fd: int, rec: dict) -> None:
        append_jsonl_line(
            fd, json.dumps(rec, sort_keys=True).encode("utf-8")
        )

    # -- lease operations ----------------------------------------------
    def acquire(self, job_hash: str) -> Optional[Lease]:
        """Lease ``job_hash`` for this replica, or ``None`` if another
        replica holds a live lease.

        A stale or released lease is silently superseded — this is both
        first-claim and takeover; callers distinguish them by whether
        :meth:`peek` reported a holder beforehand.
        """
        fd = self._locked_fd()
        try:
            self._refresh(fd)
            now = self.clock()
            cur = self._live(job_hash, now)
            if cur is not None and cur["replica"] != self.replica_id:
                return None
            self._seq += 1
            lease_id = (
                f"{self.replica_id}-{os.getpid()}-{self._seq}-"
                f"{uuid.uuid4().hex[:8]}"
            )
            deadline = now + self.ttl
            self._append(
                fd,
                {
                    "kind": "claim",
                    "job_hash": job_hash,
                    "lease": lease_id,
                    "replica": self.replica_id,
                    "pid": os.getpid(),
                    "deadline": deadline,
                    "ts": now,
                },
            )
            self._state[job_hash] = {
                "lease": lease_id,
                "replica": self.replica_id,
                "deadline": deadline,
                "released": False,
            }
            return Lease(job_hash, lease_id, self.replica_id, deadline)
        finally:
            self._unlock(fd)

    def heartbeat(self, lease: Lease) -> bool:
        """Renew ``lease``; ``False`` means it was lost to a takeover
        (the holder should expect a duplicate, byte-identical execution
        to land — not an error, but worth a counter)."""
        fd = self._locked_fd()
        try:
            self._refresh(fd)
            now = self.clock()
            cur = self._state.get(lease.job_hash)
            if cur is None or cur["released"] or cur["lease"] != lease.lease_id:
                return False
            deadline = now + self.ttl
            self._append(
                fd,
                {
                    "kind": "heartbeat",
                    "job_hash": lease.job_hash,
                    "lease": lease.lease_id,
                    "deadline": deadline,
                    "ts": now,
                },
            )
            cur["deadline"] = deadline
            return True
        finally:
            self._unlock(fd)

    def release(self, lease: Lease, outcome: str = "done") -> None:
        """Close ``lease``; idempotent if it was already superseded."""
        fd = self._locked_fd()
        try:
            self._refresh(fd)
            cur = self._state.get(lease.job_hash)
            self._append(
                fd,
                {
                    "kind": "release",
                    "job_hash": lease.job_hash,
                    "lease": lease.lease_id,
                    "outcome": outcome,
                    "ts": self.clock(),
                },
            )
            if cur is not None and cur["lease"] == lease.lease_id:
                cur["released"] = True
        finally:
            self._unlock(fd)

    def peek(self, job_hash: str) -> Optional[dict]:
        """The live lease for ``job_hash`` (holder info dict), or ``None``.

        Read-only: refreshes under the lock, appends nothing.
        """
        fd = self._locked_fd()
        try:
            self._refresh(fd)
            cur = self._live(job_hash, self.clock())
            return dict(cur) if cur is not None else None
        finally:
            self._unlock(fd)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClaimLedger({str(self.path)!r}, replica={self.replica_id!r}, "
            f"ttl={self.ttl})"
        )
