"""Command-line demo runner: ``python -m repro <demo> [args]``.

A minimal text UI over the example scenarios, so the library can be
poked without writing code — the role the paper's Java applet played.

Demos:

* ``two-coloring [n]``     — 2-colour a cycle of n nodes (default 8)
* ``census [n]``           — Flajolet–Martin estimate on G(n, p)
* ``walk [moves]``         — emergent random walk on the Petersen graph
* ``traversal [n]``        — Milgram traversal of a random graph
* ``election [n]``         — local-rule leader election
* ``firing-squad [n]``     — space-time diagram of the path firing squad
* ``equivalence``          — a Theorem 3.7 conversion round trip
"""

from __future__ import annotations

import sys


def _two_coloring(n: int = 8) -> None:
    from repro.algorithms import two_coloring
    from repro.network import generators

    net = generators.cycle_graph(n)
    res = two_coloring.run_two_coloring(net, origin=0)
    verdict = (
        "FAILED (odd cycle)" if two_coloring.failed(res.final_state) else "2-coloured"
    )
    print(f"C{n}: {verdict} in {res.steps} rounds ({res.engine} engine)")
    print({v: res.final_state[v] for v in net})


def _census(n: int = 64) -> None:
    from repro.algorithms import census
    from repro.network import generators

    net = generators.connected_gnp_graph(n, min(0.9, 4.0 / n + 0.05), 1)
    res = census.run_census(net, rng=1)
    print(f"n = {n}; estimate = {census.estimate(res.final_state[0]):.1f} "
          f"(diffused in {res.steps} rounds, {res.engine} engine)")


def _walk(moves: int = 25) -> None:
    from repro.algorithms.random_walk import run_walk
    from repro.network import generators

    net = generators.petersen_graph()
    obs = run_walk(net, 0, moves=moves, rng=0)
    print(" -> ".join(map(str, obs.positions)))
    print(f"mean rounds/move: {sum(obs.steps_per_move) / len(obs.steps_per_move):.1f}")


def _traversal(n: int = 12) -> None:
    from repro.algorithms.traversal import run_traversal
    from repro.network import generators

    net = generators.connected_gnp_graph(n, min(0.9, 4.0 / n + 0.1), 2)
    run = run_traversal(net, 0, rng=2)
    print(f"hand moves: {run.hand_moves} (2n-2 = {2 * n - 2}); steps: {run.steps}")
    print(" -> ".join(map(str, run.hand_positions)))


def _election(n: int = 8) -> None:
    from repro.algorithms.election import run_until_elected
    from repro.network import generators

    net = generators.connected_gnp_graph(n, min(0.9, 5.0 / n), 3)
    res = run_until_elected(net, rng=3)
    print(f"leader: node {res.leader} after {res.steps} synchronous steps")


def _firing_squad(n: int = 12) -> None:
    from repro.algorithms.firing_squad import space_time_diagram

    for t, frame in enumerate(space_time_diagram(n)):
        print(f"t={t:3d}  {frame}")


def _equivalence() -> None:
    from repro.core.convert import (
        modthresh_to_parallel,
        sequential_to_modthresh,
    )
    from repro.core.multiset import iter_multisets
    from repro.core.sequential import SequentialProgram

    sp = SequentialProgram(
        frozenset(range(3)), 0, lambda w, q: min(w + (q == "x"), 2),
        lambda w: w >= 2, name="two-or-more-x",
    )
    mt = sequential_to_modthresh(sp, ["x", "y"])
    pp = modthresh_to_parallel(mt, ["x", "y"])
    print(f"sequential '{sp.name}' -> {len(mt.clauses)}+1 mod-thresh clauses "
          f"-> parallel with |W| = {len(pp.working_states)}")
    agree = all(
        sp.evaluate(ms) == mt.evaluate(ms) == pp.evaluate(ms)
        for ms in iter_multisets(["x", "y"], 5)
    )
    print(f"all three agree on every multiset up to size 5: {agree}")


_DEMOS = {
    "two-coloring": _two_coloring,
    "census": _census,
    "walk": _walk,
    "traversal": _traversal,
    "election": _election,
    "firing-squad": _firing_squad,
    "equivalence": _equivalence,
}


def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help") or argv[0] not in _DEMOS:
        print(__doc__)
        return 0 if argv and argv[0] in ("-h", "--help") else 1
    demo = _DEMOS[argv[0]]
    args = [int(a) for a in argv[1:]]
    demo(*args)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
