"""Command-line runner: ``python -m repro <demo|campaign> [args]``.

A minimal text UI over the example scenarios — the role the paper's Java
applet played — plus the campaign orchestrator front end.

Demos (append ``--seed S`` to re-seed the randomized ones):

* ``two-coloring [n]``     — 2-colour a cycle of n nodes (default 8)
* ``census [n]``           — Flajolet–Martin estimate on G(n, p)
* ``walk [moves]``         — emergent random walk on the Petersen graph
* ``traversal [n]``        — Milgram traversal of a random graph
* ``election [n]``         — local-rule leader election
* ``firing-squad [n]``     — space-time diagram of the path firing squad
* ``equivalence``          — a Theorem 3.7 conversion round trip

Campaigns (sharded parallel experiment sweeps, ``repro.campaigns``):

* ``campaign run    (--spec FILE | --preset NAME) --store DIR [--jobs N]
  [--no-resume]`` — execute a campaign into an artifact store
* ``campaign resume --store DIR [--jobs N]`` — continue an interrupted
  campaign from its own stored spec
* ``campaign status --store DIR`` — completion census of a store
* ``campaign presets`` — list the built-in campaign presets

``--jobs N`` sets the worker-process count (``0`` = in-process
sequential; default = the scheduler-visible CPU count).

Serving (asyncio HTTP/SSE front door, ``repro.service``):

* ``serve --store DIR [--host H] [--port P] [--workers N]
  [--queue-limit N] [--quota-burst B --quota-rate R]`` — accept
  JobSpec/CampaignSpec submissions over HTTP, dedupe them against the
  artifact store, and stream job progress as Server-Sent Events.
  Cluster flags (``--replica-id R``) add store-level claim leases,
  per-step event spooling (``--progress-stride``), a shared tenant
  quota file (``--tenants``) and SO_REUSEPORT binding (``--reuse-port``)

Cluster (multi-replica serving over one store, ``repro.cluster``):

* ``cluster --store DIR --replicas N [--port P] [--lease-ttl S]
  [--tenants FILE] [--reuse-port]`` — spawn N ``serve`` replicas over
  one shared store (supervisor on P, replicas on P+1…), aggregate
  their metrics at ``/cluster/metrics``, and tear them down on Ctrl-C

Exit codes:

* ``0`` — success (campaign: every job completed)
* ``1`` — usage error: unknown demo/subcommand, bad flags, unknown
  preset, unreadable spec file
* ``2`` — campaign failure: the store directory is missing, belongs to a
  different campaign (identity mismatch), or holds a corrupt/tampered
  spec — always a one-line message, never a traceback — or the campaign
  finished but some jobs exhausted their retry budget (completed work is
  in the store; rerun to retry the rest)
"""

from __future__ import annotations

import sys
from typing import Optional


def _two_coloring(n: int = 8, seed: Optional[int] = None) -> None:
    from repro.algorithms import two_coloring
    from repro.network import generators

    net = generators.cycle_graph(n)
    res = two_coloring.run_two_coloring(net, origin=0)
    verdict = (
        "FAILED (odd cycle)" if two_coloring.failed(res.final_state) else "2-coloured"
    )
    print(f"C{n}: {verdict} in {res.steps} rounds ({res.engine} engine)")
    print({v: res.final_state[v] for v in net})


def _census(n: int = 64, seed: Optional[int] = None) -> None:
    from repro.algorithms import census
    from repro.network import generators

    seed = 1 if seed is None else seed
    net = generators.connected_gnp_graph(n, min(0.9, 4.0 / n + 0.05), seed)
    res = census.run_census(net, rng=seed)
    print(f"n = {n}; estimate = {census.estimate(res.final_state[0]):.1f} "
          f"(diffused in {res.steps} rounds, {res.engine} engine)")


def _walk(moves: int = 25, seed: Optional[int] = None) -> None:
    from repro.algorithms.random_walk import run_walk
    from repro.network import generators

    net = generators.petersen_graph()
    obs = run_walk(net, 0, moves=moves, rng=0 if seed is None else seed)
    print(" -> ".join(map(str, obs.positions)))
    print(f"mean rounds/move: {sum(obs.steps_per_move) / len(obs.steps_per_move):.1f}")


def _traversal(n: int = 12, seed: Optional[int] = None) -> None:
    from repro.algorithms.traversal import run_traversal
    from repro.network import generators

    seed = 2 if seed is None else seed
    net = generators.connected_gnp_graph(n, min(0.9, 4.0 / n + 0.1), seed)
    run = run_traversal(net, 0, rng=seed)
    print(f"hand moves: {run.hand_moves} (2n-2 = {2 * n - 2}); steps: {run.steps}")
    print(" -> ".join(map(str, run.hand_positions)))


def _election(n: int = 8, seed: Optional[int] = None) -> None:
    from repro.algorithms.election import run_until_elected
    from repro.network import generators

    seed = 3 if seed is None else seed
    net = generators.connected_gnp_graph(n, min(0.9, 5.0 / n), seed)
    res = run_until_elected(net, rng=seed)
    print(f"leader: node {res.leader} after {res.steps} synchronous steps")


def _firing_squad(n: int = 12, seed: Optional[int] = None) -> None:
    from repro.algorithms.firing_squad import space_time_diagram

    for t, frame in enumerate(space_time_diagram(n)):
        print(f"t={t:3d}  {frame}")


def _equivalence(seed: Optional[int] = None) -> None:
    from repro.core.convert import (
        modthresh_to_parallel,
        sequential_to_modthresh,
    )
    from repro.core.multiset import iter_multisets
    from repro.core.sequential import SequentialProgram

    sp = SequentialProgram(
        frozenset(range(3)), 0, lambda w, q: min(w + (q == "x"), 2),
        lambda w: w >= 2, name="two-or-more-x",
    )
    mt = sequential_to_modthresh(sp, ["x", "y"])
    pp = modthresh_to_parallel(mt, ["x", "y"])
    print(f"sequential '{sp.name}' -> {len(mt.clauses)}+1 mod-thresh clauses "
          f"-> parallel with |W| = {len(pp.working_states)}")
    agree = all(
        sp.evaluate(ms) == mt.evaluate(ms) == pp.evaluate(ms)
        for ms in iter_multisets(["x", "y"], 5)
    )
    print(f"all three agree on every multiset up to size 5: {agree}")


_DEMOS = {
    "two-coloring": _two_coloring,
    "census": _census,
    "walk": _walk,
    "traversal": _traversal,
    "election": _election,
    "firing-squad": _firing_squad,
    "equivalence": _equivalence,
}


# ----------------------------------------------------------------------
# campaign subcommand
# ----------------------------------------------------------------------
def _campaign_presets() -> dict:
    from repro.campaigns import CampaignSpec

    return {
        # tiny grid for CI smoke runs: ~8 jobs, seconds of work
        "smoke": CampaignSpec(
            name="smoke",
            job="repro.algorithms.election.phase_statistics_job",
            grid={"n": [8, 16]},
            fixed={"replicas": 8, "max_steps": 2_000},
            seeds=2,
            entropy=2006,
            timeout=300.0,
            retries=2,
        ),
        # the Claim 4.1 ~log2(n) phase sweep (E19's workload)
        "election-phases": CampaignSpec(
            name="election-phases",
            job="repro.algorithms.election.phase_statistics_job",
            grid={"n": [32, 64, 128, 256]},
            fixed={"replicas": 64, "max_steps": 10_000},
            seeds=4,
            entropy=2006,
            timeout=600.0,
            retries=2,
        ),
        # k-sensitivity kernel sweep under random decreasing faults (E14)
        "fault-sweep": CampaignSpec(
            name="fault-sweep",
            job="repro.sensitivity.harness.fault_sweep_job",
            grid={"n": [16, 24, 32], "num_faults": [2, 4, 8]},
            fixed={"replicas": 8, "fault_window": 6},
            seeds=4,
            entropy=14,
            timeout=600.0,
            retries=2,
        ),
        # accuracy-vs-churn-rate resilience curve for the election kernel
        # (E22): one grid column per curve point, aggregated by rate
        "churn-resilience": CampaignSpec(
            name="churn-resilience",
            job="repro.sensitivity.harness.churn_resilience_job",
            grid={"n": [16, 24, 32], "num_events": [0, 2, 4, 8]},
            fixed={"replicas": 8, "churn_window": 8, "p_up": 0.4},
            seeds=4,
            entropy=22,
            timeout=600.0,
            retries=2,
        ),
        # tiny churn grid for the CI smoke-campaign step: ~6 jobs
        "churn-smoke": CampaignSpec(
            name="churn-smoke",
            job="repro.sensitivity.harness.churn_resilience_job",
            grid={"num_events": [0, 3, 6]},
            fixed={
                "n": 16, "replicas": 4, "churn_window": 6, "p_up": 0.4,
                "max_steps": 2_000,
            },
            seeds=2,
            entropy=22,
            timeout=300.0,
            retries=2,
        ),
    }


def _print_progress(event: str, info: dict) -> None:
    if event == "campaign_start":
        print(
            f"campaign: {info['total']} jobs "
            f"({info['skipped']} already done, {info['pending']} to run, "
            f"{info['workers']} workers)"
        )
    elif event == "job_done":
        print(f"  done   {info['job_hash'][:12]}")
    elif event == "job_retry":
        print(
            f"  retry  {info['job_hash'][:12]} "
            f"(attempt {info['attempt']}: {info.get('error')})"
        )
    elif event == "job_failed":
        print(f"  FAILED {info['job_hash'][:12]}")
    elif event == "campaign_end":
        print(
            f"campaign: {info['executed']} executed, {info['failed']} failed "
            f"in {info['wall_time']:.2f}s"
        )


def _campaign_main(argv: list[str]) -> int:
    import argparse
    import json

    from repro.campaigns import (
        ArtifactStore,
        CampaignSpec,
        StoreMismatchError,
        run_campaign,
        write_summary,
    )

    parser = argparse.ArgumentParser(
        prog="python -m repro campaign",
        description="Sharded parallel experiment sweeps (repro.campaigns).",
    )
    sub = parser.add_subparsers(dest="action", required=True)

    p_run = sub.add_parser("run", help="execute a campaign into a store")
    src = p_run.add_mutually_exclusive_group(required=True)
    src.add_argument("--spec", help="path to a CampaignSpec JSON file")
    src.add_argument("--preset", help="built-in campaign name (see presets)")
    p_run.add_argument("--store", required=True, help="artifact directory")
    p_run.add_argument(
        "--jobs", type=int, default=None,
        help="worker processes (0 = in-process sequential; default: CPUs)",
    )
    p_run.add_argument(
        "--no-resume", action="store_true",
        help="re-execute jobs even if a completed artifact exists",
    )
    p_run.add_argument(
        "--quiet", action="store_true", help="suppress per-job progress lines"
    )

    p_resume = sub.add_parser(
        "resume", help="continue an interrupted campaign from its stored spec"
    )
    p_resume.add_argument("--store", required=True)
    p_resume.add_argument("--jobs", type=int, default=None)
    p_resume.add_argument("--quiet", action="store_true")

    p_status = sub.add_parser("status", help="completion census of a store")
    p_status.add_argument("--store", required=True)

    sub.add_parser("presets", help="list built-in campaigns")

    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 1 if exc.code else 0

    if args.action == "presets":
        for name, spec in _campaign_presets().items():
            print(
                f"{name}: {spec.job} — {len(spec)} jobs "
                f"(grid {spec.grid}, seeds={spec.seeds})"
            )
        return 0

    def open_store(path):
        """An existing store and its bound spec, or (None, None) after a
        one-line stderr message — store problems are exit code 2, and they
        must never escape as tracebacks."""
        import os

        if not os.path.isdir(path):
            print(f"no campaign at {path} (no such store directory)",
                  file=sys.stderr)
            return None, None
        store = ArtifactStore(path)
        try:
            spec = store.load_spec()
        except (ValueError, OSError) as exc:
            # tampered/corrupt campaign.json (e.g. spec_hash mismatch)
            print(f"unusable campaign.json at {path}: {exc}", file=sys.stderr)
            return None, None
        if spec is None:
            print(f"no campaign at {path} (missing campaign.json)",
                  file=sys.stderr)
            return None, None
        return store, spec

    if args.action == "status":
        store, _ = open_store(args.store)
        if store is None:
            return 2
        print(json.dumps(store.status(), indent=2, sort_keys=True))
        return 0

    if args.action == "resume":
        store, spec = open_store(args.store)
        if store is None:
            return 2
    else:  # run
        if args.preset is not None:
            presets = _campaign_presets()
            if args.preset not in presets:
                print(
                    f"unknown preset {args.preset!r}; "
                    f"available: {', '.join(presets)}",
                    file=sys.stderr,
                )
                return 1
            spec = presets[args.preset]
        else:
            try:
                with open(args.spec, "r", encoding="utf-8") as fh:
                    spec = CampaignSpec.from_json(fh.read())
            except (OSError, ValueError, TypeError, KeyError) as exc:
                print(f"cannot load spec {args.spec}: {exc}", file=sys.stderr)
                return 1

    progress = None if getattr(args, "quiet", False) else _print_progress
    try:
        result = run_campaign(
            spec,
            args.store,
            workers=args.jobs,
            resume=not getattr(args, "no_resume", False),
            progress=progress,
        )
    except StoreMismatchError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except ValueError as exc:
        # the target store holds a corrupt/tampered campaign.json
        print(f"unusable store at {args.store}: {exc}", file=sys.stderr)
        return 2
    summary_path = write_summary(result.store, spec)
    print(f"summary: {summary_path}")
    if result.failed:
        print(
            f"{len(result.failed)} job(s) failed after retries; "
            f"completed artifacts are kept — rerun to retry",
            file=sys.stderr,
        )
        return 2
    return 0


# ----------------------------------------------------------------------
# serve subcommand
# ----------------------------------------------------------------------
def _serve_main(argv: list[str]) -> int:
    import argparse
    import asyncio

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="asyncio HTTP/SSE front door for the campaign layer "
                    "(repro.service)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8765)
    parser.add_argument(
        "--store", required=True,
        help="artifact store directory (created if missing; completed "
             "artifacts in it are served as cache hits)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes"
    )
    parser.add_argument(
        "--queue-limit", type=int, default=64,
        help="max admitted-but-unfinished jobs before 503 backpressure",
    )
    parser.add_argument(
        "--quota-burst", type=float, default=None,
        help="per-tenant token-bucket burst (default: no quotas)",
    )
    parser.add_argument(
        "--quota-rate", type=float, default=0.0,
        help="per-tenant token refill per second",
    )
    parser.add_argument("--retries", type=int, default=0)
    parser.add_argument(
        "--timeout", type=float, default=None, help="per-job wait budget (s)"
    )
    parser.add_argument(
        "--replica-id", default=None,
        help="cluster mode: this replica's name; enables store-level "
             "claim leases and event spooling",
    )
    parser.add_argument(
        "--lease-ttl", type=float, default=10.0,
        help="cluster mode: lease seconds before a silent replica's "
             "in-flight jobs become claimable by survivors",
    )
    parser.add_argument(
        "--progress-stride", type=int, default=1,
        help="cluster mode: spool a StepProgressEvent every N job steps",
    )
    parser.add_argument(
        "--tenants", default=None,
        help="path to a JSON/TOML tenant quota file (mtime-reloaded; "
             "overrides --quota-burst/--quota-rate)",
    )
    parser.add_argument(
        "--sse-keepalive", type=float, default=15.0,
        help="idle seconds between ': keep-alive' SSE comment frames",
    )
    parser.add_argument(
        "--reuse-port", action="store_true",
        help="bind with SO_REUSEPORT so replicas can share one port",
    )
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 1 if exc.code else 0

    from repro.service.http import serve
    from repro.service.jobs import JobManager

    tenant_config = None
    if args.tenants is not None:
        from repro.cluster.config import TenantQuotaConfig

        tenant_config = TenantQuotaConfig(args.tenants)

    async def _serve_forever() -> None:
        manager = JobManager(
            args.store,
            workers=args.workers,
            queue_limit=args.queue_limit,
            quota_burst=args.quota_burst,
            quota_rate=args.quota_rate,
            retries=args.retries,
            timeout=args.timeout,
            replica_id=args.replica_id,
            lease_ttl=args.lease_ttl,
            progress_stride=args.progress_stride,
            tenant_config=tenant_config,
            sse_keepalive=args.sse_keepalive,
        )
        manager.start()
        server = await serve(
            manager, args.host, args.port, reuse_port=args.reuse_port
        )
        addr = server.sockets[0].getsockname()
        replica = f", replica {args.replica_id}" if args.replica_id else ""
        print(
            f"repro.service on http://{addr[0]}:{addr[1]} "
            f"(store {args.store}, {manager.workers} workers{replica})",
            flush=True,
        )
        try:
            await server.serve_forever()
        finally:
            server.close()
            await server.wait_closed()
            await manager.close()

    try:
        asyncio.run(_serve_forever())
    except KeyboardInterrupt:
        pass
    return 0


# ----------------------------------------------------------------------
# cluster subcommand
# ----------------------------------------------------------------------
def _cluster_main(argv: list[str]) -> int:
    import argparse
    import asyncio

    parser = argparse.ArgumentParser(
        prog="python -m repro cluster",
        description="run N repro.service replicas over one shared store "
                    "(repro.cluster)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument(
        "--port", type=int, default=8870,
        help="supervisor port; replicas take port+1.. (or share port+1 "
             "with --reuse-port)",
    )
    parser.add_argument("--store", required=True, help="shared store dir")
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument(
        "--workers", type=int, default=2, help="worker processes per replica"
    )
    parser.add_argument("--queue-limit", type=int, default=64)
    parser.add_argument("--lease-ttl", type=float, default=10.0)
    parser.add_argument("--progress-stride", type=int, default=1)
    parser.add_argument(
        "--tenants", default=None, help="shared tenant quota file (JSON/TOML)"
    )
    parser.add_argument("--sse-keepalive", type=float, default=15.0)
    parser.add_argument("--reuse-port", action="store_true")
    parser.add_argument("--retries", type=int, default=0)
    parser.add_argument("--timeout", type=float, default=None)
    try:
        args = parser.parse_args(argv)
    except SystemExit as exc:
        return 1 if exc.code else 0

    from repro.cluster.supervisor import ClusterSupervisor

    supervisor = ClusterSupervisor(
        args.store,
        replicas=args.replicas,
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        lease_ttl=args.lease_ttl,
        progress_stride=args.progress_stride,
        tenants=args.tenants,
        sse_keepalive=args.sse_keepalive,
        reuse_port=args.reuse_port,
        retries=args.retries,
        timeout=args.timeout,
    )
    try:
        asyncio.run(supervisor.run_forever())
    except KeyboardInterrupt:
        pass
    finally:
        supervisor.stop()
    return 0


# ----------------------------------------------------------------------
# dispatcher
# ----------------------------------------------------------------------
def main(argv: list[str]) -> int:
    if not argv or argv[0] in ("-h", "--help"):
        print(__doc__)
        return 0 if argv else 1
    if argv[0] == "campaign":
        return _campaign_main(argv[1:])
    if argv[0] == "serve":
        return _serve_main(argv[1:])
    if argv[0] == "cluster":
        return _cluster_main(argv[1:])
    if argv[0] not in _DEMOS:
        print(__doc__)
        return 1
    demo = _DEMOS[argv[0]]
    seed: Optional[int] = None
    positional: list[int] = []
    rest = argv[1:]
    i = 0
    while i < len(rest):
        arg = rest[i]
        if arg == "--seed":
            if i + 1 >= len(rest):
                print("--seed needs an integer argument", file=sys.stderr)
                return 1
            seed, i = int(rest[i + 1]), i + 2
        elif arg.startswith("--seed="):
            seed, i = int(arg.split("=", 1)[1]), i + 1
        else:
            positional.append(int(arg))
            i += 1
    demo(*positional, seed=seed)
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
