"""Isotonic web automata and the Section 5.1 mutual simulations.

The IWA model (Milgram [14]): a single finite-state agent walks a graph
whose nodes carry labels from a finite set.  Each rule is conditional on
the agent's state, the current node's label, and the presence/absence of a
particular label in the neighbourhood; firing a rule relabels the current
node, moves the agent to a neighbour carrying a specified label, and
changes the agent's state.

The paper states (details omitted there) that the models simulate each
other: an IWA computes one synchronous FSSGA round in O(m) primitive steps
(Milgram traversal + the Lemma 3.8 finite-counter technique), and an FSSGA
simulates an IWA with O(log Δ) delay per IWA step (local symmetry breaking
to choose the agent's next destination).  This package supplies concrete
constructions for both directions and measures the stated slowdowns (E13).
"""

from repro.iwa.model import IWA, IWARule, IWAExecution
from repro.iwa.simulate import (
    IwaRoundSimulator,
    FssgaIwaSimulator,
)

__all__ = [
    "IWA",
    "IWARule",
    "IWAExecution",
    "IwaRoundSimulator",
    "FssgaIwaSimulator",
]
