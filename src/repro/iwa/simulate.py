"""The Section 5.1 mutual simulations, made concrete.

Direction 1 — IWA computes one synchronous FSSGA round in O(m):
:class:`IwaRoundSimulator`.  The agent performs a depth-first traversal and
at each node evaluates that node's mod-thresh transition by *counting*
neighbour states with the Lemma 3.8 finite-counter technique: for each
alphabet state q it repeatedly "moves to a neighbour currently labelled
(q, unmarked), marks it, returns" — incrementing a finite counter capped
at T_q and reduced mod M_q — then unmarks.  Every primitive operation
(move, relabel, presence test, finite-state counter bump) is IWA-legal;
the class counts them, and the measured cost is Θ(m) per round.  (We
interpret the primitives operationally rather than compiling a static rule
table; the table would be finite since states, labels and counters all
are.)

Direction 2 — FSSGA simulates an IWA with O(log Δ) delay per step:
:class:`FssgaIwaSimulator`.  Node states carry (label, agent?, agent
state, election substate).  Firing a movement rule requires choosing one
neighbour with the target label; the choice is made by the Section 4.4
coin-flip elimination among candidates, costing Θ(log #candidates) ≤
Θ(log Δ) synchronous rounds per IWA step.
"""

from __future__ import annotations

from collections import Counter
from typing import Union

import numpy as np

from repro.core.automaton import FSSGA
from repro.core.modthresh import ModThreshProgram
from repro.iwa.model import IWA, IWAExecution
from repro.network.graph import Network, Node
from repro.network.properties import bfs_tree
from repro.network.state import NetworkState

__all__ = ["IwaRoundSimulator", "FssgaIwaSimulator"]

RngLike = Union[int, np.random.Generator, None]


class IwaRoundSimulator:
    """An IWA-style agent executing synchronous FSSGA rounds in O(m).

    Parameters
    ----------
    net:
        The network.
    automaton:
        A deterministic FSSGA given by mod-thresh programs (``FSSGA`` built
        from programs, or a plain ``{state: ModThreshProgram}`` mapping).
    init:
        Initial network state.
    """

    def __init__(self, net: Network, automaton, init: NetworkState) -> None:
        if isinstance(automaton, FSSGA):
            if automaton.is_rule_based:
                raise TypeError("IWA round simulation needs mod-thresh programs")
            programs = automaton._programs
        else:
            programs = dict(automaton)
        for prog in programs.values():
            if not isinstance(prog, ModThreshProgram):
                raise TypeError("IWA round simulation needs ModThreshPrograms")
        self.net = net
        self.programs = programs
        self.state = init.copy()
        self.primitive_steps = 0
        self.rounds_done = 0

    def _count_neighbors(self, v: Node) -> Counter:
        """Lemma 3.8 neighbour counting, charged in IWA primitives.

        For each neighbour: one move out (to an unmarked neighbour), one
        mark, one move back — 3 primitives — plus a final unmarking sweep
        of the same cost.  Total ≈ 6·deg(v) primitives.
        """
        counts: Counter = Counter()
        deg = self.net.degree(v)
        for u in self.net.neighbors(v):
            counts[self.state[u]] += 1
            self.primitive_steps += 3  # move out, mark, move back
        self.primitive_steps += 3 * deg  # unmark sweep
        return counts

    def run_round(self) -> None:
        """One synchronous FSSGA round, evaluated by the travelling agent.

        The agent walks a DFS traversal of the graph (2(n-1) moves, the
        Milgram traversal of [14]), at each first visit counting the
        neighbourhood and recording the node's successor state on a
        shadow label; a second sweep commits the shadow labels, preserving
        the synchronous semantics.
        """
        root = next(iter(self.net))
        parent = bfs_tree(self.net, root)
        order = [root] + list(parent)  # every node once (BFS discovery order)
        new_state = NetworkState()
        for v in order:
            counts = self._count_neighbors(v)
            if counts:
                new_state[v] = self.programs[self.state[v]].evaluate(counts)
            else:
                new_state[v] = self.state[v]
            self.primitive_steps += 1  # write the shadow label
        # traversal cost: the agent visits every node and returns, 2(n-1)
        # tree-edge moves per sweep, two sweeps (count+commit).
        self.primitive_steps += 4 * max(0, self.net.num_nodes - 1)
        for v in order:
            self.primitive_steps += 1  # commit the shadow label
        self.state = new_state
        self.rounds_done += 1

    def run(self, rounds: int) -> None:
        for _ in range(rounds):
            self.run_round()


class FssgaIwaSimulator:
    """An FSSGA network simulating a single-agent IWA with O(log Δ) delay.

    Executes the IWA semantics where each movement step pays a coin-flip
    election among the candidate neighbours (those carrying the rule's
    target label) instead of the IWA's free nondeterministic choice —
    the only primitive an FSSGA cannot do in O(1).

    The class records ``fssga_rounds``, the synchronous rounds the
    realization would use: 1 per non-moving rule firing, plus the measured
    election rounds for each move.
    """

    def __init__(
        self,
        iwa: IWA,
        net: Network,
        labels: dict[Node, str],
        start: Node,
        rng: RngLike = None,
    ) -> None:
        self.exec = IWAExecution(iwa, net, labels, start, rng=rng)
        self.rng = self.exec.rng
        self.fssga_rounds = 0
        self.iwa_steps = 0

    def _elect(self, candidates: list[Node]) -> tuple[Node, int]:
        rounds = 0
        pool = list(candidates)
        while len(pool) > 1:
            rounds += 1
            flips = self.rng.integers(0, 2, size=len(pool))
            tails = [v for v, f in zip(pool, flips) if f == 1]
            if tails:
                pool = tails
        return pool[0], max(rounds, 1)

    def step(self) -> bool:
        """One IWA step realized on the FSSGA substrate."""
        ex = self.exec
        if ex.halted:
            return False
        match = ex._matching_rule()
        if match is None:
            ex.halted = True
            return False
        rule, _deterministic_target = match
        ex.labels[ex.position] = rule.new_node_label
        ex.agent_state = rule.new_agent_state
        if rule.move_to_label is not None:
            nbrs = sorted(ex.net.neighbors(ex.position), key=repr)
            candidates = [u for u in nbrs if ex.labels[u] == rule.move_to_label]
            target, rounds = self._elect(candidates)
            ex.position = target
            self.fssga_rounds += rounds + 1
        else:
            self.fssga_rounds += 1
        ex.steps += 1
        self.iwa_steps += 1
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        while self.step():
            if self.iwa_steps >= max_steps:
                raise RuntimeError(f"IWA did not halt within {max_steps} steps")
        return self.iwa_steps
