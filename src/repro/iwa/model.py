"""The isotonic web automaton (IWA) machine.

An :class:`IWA` is a finite rule table; an :class:`IWAExecution` runs it on
a labelled network.  Rules fire in priority (list) order; a rule matches
when the agent state and the current node's label agree and its
neighbourhood guard (presence or absence of a given label among the
neighbours) holds.  Its effect relabels the current node, optionally moves
the agent to a neighbour carrying a specified label, and sets the next
agent state — exactly the repertoire Section 5.1 describes.

Movement targets are chosen deterministically (smallest by repr) by
default; the FSSGA simulation replaces this choice with the randomized
O(log Δ) election, which is the only capability gap between the models.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

import numpy as np

from repro.network.graph import Network, Node

__all__ = ["IWARule", "IWA", "IWAExecution"]


@dataclass(frozen=True)
class IWARule:
    """One conditional rule of an IWA.

    ``guard_label``/``guard_present``: the rule requires that some
    neighbour carries ``guard_label`` (if present) or that none does (if
    absent); ``None`` means unconditional.

    ``move_to_label``: after relabelling, step to any neighbour carrying
    this label; ``None`` means stay put.  If no such neighbour exists the
    rule does not match.
    """

    agent_state: str
    node_label: str
    new_node_label: str
    new_agent_state: str
    guard_label: Optional[str] = None
    guard_present: bool = True
    move_to_label: Optional[str] = None


class IWA:
    """A finite-state agent program: an ordered rule list."""

    def __init__(self, rules: list[IWARule], start_state: str) -> None:
        if not rules:
            raise ValueError("an IWA needs at least one rule")
        self.rules = list(rules)
        self.start_state = start_state

    def states(self) -> set[str]:
        out = {self.start_state}
        for r in self.rules:
            out.add(r.agent_state)
            out.add(r.new_agent_state)
        return out

    def labels(self) -> set[str]:
        out = set()
        for r in self.rules:
            out.add(r.node_label)
            out.add(r.new_node_label)
            if r.guard_label is not None:
                out.add(r.guard_label)
            if r.move_to_label is not None:
                out.add(r.move_to_label)
        return out


class IWAExecution:
    """Run an IWA on a labelled network."""

    def __init__(
        self,
        iwa: IWA,
        net: Network,
        labels: dict[Node, str],
        start: Node,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> None:
        missing = [v for v in net if v not in labels]
        if missing:
            raise ValueError(f"labels missing for {missing[:5]!r}")
        self.iwa = iwa
        self.net = net
        self.labels = dict(labels)
        self.position = start
        self.agent_state = iwa.start_state
        self.steps = 0
        self.halted = False
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)

    def _matching_rule(self) -> Optional[tuple[IWARule, Optional[Node]]]:
        here = self.labels[self.position]
        nbrs = sorted(self.net.neighbors(self.position), key=repr)
        nbr_labels = {self.labels[u] for u in nbrs}
        for rule in self.iwa.rules:
            if rule.agent_state != self.agent_state or rule.node_label != here:
                continue
            if rule.guard_label is not None:
                present = rule.guard_label in nbr_labels
                if present != rule.guard_present:
                    continue
            target: Optional[Node] = None
            if rule.move_to_label is not None:
                candidates = [
                    u for u in nbrs if self.labels[u] == rule.move_to_label
                ]
                if not candidates:
                    continue
                target = candidates[0]
            return rule, target
        return None

    def step(self) -> bool:
        """Fire the first matching rule; returns False when halted."""
        if self.halted:
            return False
        match = self._matching_rule()
        if match is None:
            self.halted = True
            return False
        rule, target = match
        self.labels[self.position] = rule.new_node_label
        self.agent_state = rule.new_agent_state
        if target is not None:
            self.position = target
        self.steps += 1
        return True

    def run(self, max_steps: int = 1_000_000) -> int:
        """Run until halted; returns the number of steps taken."""
        while self.step():
            if self.steps >= max_steps:
                raise RuntimeError(f"IWA did not halt within {max_steps} steps")
        return self.steps
