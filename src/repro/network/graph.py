"""Simple undirected graphs with fault (deletion) and churn support.

The :class:`Network` class is the substrate for every simulation in this
package.  It is deliberately small and dependency-free: adjacency sets over
hashable node identifiers, with O(1) amortised edge insertion/removal and
O(deg) node removal.  Deletions model the paper's *decreasing benign faults*
(Section 1); the churn layer (:mod:`repro.runtime.churn`) additionally
re-adds nodes and edges mid-run, using the batch :meth:`Network.add_nodes`
/ :meth:`Network.add_edges` constructors, which amortise cache
invalidation over the whole batch.

For vectorized engines, :meth:`Network.to_csr` exports a
``scipy.sparse.csr_matrix`` adjacency plus a stable node ordering.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Hashable, Iterable, Iterator
from typing import Optional

import numpy as np
from scipy import sparse

Node = Hashable
Edge = tuple[Node, Node]

__all__ = ["Network", "Node", "Edge", "canonical_edge"]


def canonical_edge(u: Node, v: Node) -> Edge:
    """Return a canonical (sorted-by-repr) orientation of the edge ``{u, v}``.

    Undirected edges are stored both ways in the adjacency structure; when a
    single canonical tuple is needed (e.g. as a dictionary key for edge
    counters) we order the endpoints deterministically.
    """
    a, b = sorted((u, v), key=repr)
    return (a, b)


class Network:
    """A simple undirected graph with deletion faults.

    Parameters
    ----------
    nodes:
        Optional iterable of initial node identifiers (any hashable).
    edges:
        Optional iterable of ``(u, v)`` pairs.  Endpoints are added
        automatically.

    Notes
    -----
    Self-loops and parallel edges are rejected: the FSSGA model reads the
    states of *neighbours*, and the paper's graphs are simple.
    """

    def __init__(
        self,
        nodes: Optional[Iterable[Node]] = None,
        edges: Optional[Iterable[Edge]] = None,
    ) -> None:
        self._adj: dict[Node, set[Node]] = {}
        self._num_edges = 0
        self._csr_cache: Optional[tuple] = None
        #: CSR exports actually built (cache misses) — telemetry reads the
        #: delta across a run to report export-cache effectiveness
        self.csr_rebuilds = 0
        self._symmetry = None
        self._orbit_cache = None
        #: orbit partitions actually computed (cache misses), mirroring
        #: :attr:`csr_rebuilds` for the symmetry layer
        self.orbit_rebuilds = 0
        if nodes is not None:
            for v in nodes:
                self.add_node(v)
        if edges is not None:
            for u, v in edges:
                self.add_edge(u, v)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_node(self, v: Node) -> None:
        """Add an isolated node (no-op if already present)."""
        if v not in self._adj:
            self._adj[v] = set()
            self._csr_cache = None
            self._orbit_cache = None

    def add_edge(self, u: Node, v: Node) -> None:
        """Add the undirected edge ``{u, v}``, creating endpoints as needed."""
        if u == v:
            raise ValueError(f"self-loop {u!r} not allowed in a simple network")
        self.add_node(u)
        self.add_node(v)
        if v not in self._adj[u]:
            self._adj[u].add(v)
            self._adj[v].add(u)
            self._num_edges += 1
            self._csr_cache = None
            self._orbit_cache = None

    def add_nodes(self, nodes: Iterable[Node]) -> int:
        """Add many nodes at once; returns how many were actually new.

        Reserves the whole batch under a *single* CSR/orbit cache
        invalidation (per-node :meth:`add_node` invalidates per call), so
        lowering a churn plan's union topology stays O(batch) instead of
        O(batch × cache churn).  Insertion order is preserved.
        """
        added = 0
        for v in nodes:
            if v not in self._adj:
                self._adj[v] = set()
                added += 1
        if added:
            self._csr_cache = None
            self._orbit_cache = None
        return added

    def add_edges(self, edges: Iterable[Edge]) -> int:
        """Add many edges at once; returns how many were actually new.

        The batch counterpart of :meth:`add_edge` (endpoints are created
        as needed), with one cache invalidation for the whole batch.
        """
        added = 0
        for u, v in edges:
            if u == v:
                raise ValueError(
                    f"self-loop {u!r} not allowed in a simple network"
                )
            for w in (u, v):
                if w not in self._adj:
                    self._adj[w] = set()
                    added += 1  # a fresh endpoint also dirties the caches
            if v not in self._adj[u]:
                self._adj[u].add(v)
                self._adj[v].add(u)
                self._num_edges += 1
                added += 1
        if added:
            self._csr_cache = None
            self._orbit_cache = None
        return added

    # ------------------------------------------------------------------
    # faults (deletions)
    # ------------------------------------------------------------------
    def remove_edge(self, u: Node, v: Node) -> None:
        """Delete the edge ``{u, v}`` (an edge fault)."""
        if u not in self._adj or v not in self._adj[u]:
            raise KeyError(f"edge ({u!r}, {v!r}) not in network")
        self._adj[u].discard(v)
        self._adj[v].discard(u)
        self._num_edges -= 1
        self._csr_cache = None
        self._orbit_cache = None

    def remove_node(self, v: Node) -> None:
        """Delete node ``v`` and all incident edges (a node fault)."""
        if v not in self._adj:
            raise KeyError(f"node {v!r} not in network")
        for u in list(self._adj[v]):
            self.remove_edge(u, v)
        del self._adj[v]
        self._csr_cache = None
        self._orbit_cache = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """``n = |V|``."""
        return len(self._adj)

    @property
    def num_edges(self) -> int:
        """``m = |E|``."""
        return self._num_edges

    def __len__(self) -> int:
        return len(self._adj)

    def __contains__(self, v: Node) -> bool:
        return v in self._adj

    def __iter__(self) -> Iterator[Node]:
        return iter(self._adj)

    def nodes(self) -> list[Node]:
        """All node identifiers, in insertion order."""
        return list(self._adj)

    def edges(self) -> list[Edge]:
        """Each undirected edge exactly once, canonically oriented.

        Dedup is by already-visited endpoint and orientation by a per-call
        repr cache, so the export costs two dict probes per stored entry
        rather than a ``sorted(key=repr)`` call per edge — this runs on
        every manifest snapshot and union-topology build, where the
        per-edge constant is the whole cost.
        """
        out: list[Edge] = []
        done: set = set()
        rep = {v: repr(v) for v in self._adj}
        for u in self._adj:
            ru = rep[u]
            for v in self._adj[u]:
                if v not in done:
                    out.append((u, v) if ru <= rep[v] else (v, u))
            done.add(u)
        return out

    def has_edge(self, u: Node, v: Node) -> bool:
        return u in self._adj and v in self._adj[u]

    def neighbors(self, v: Node) -> set[Node]:
        """The (live) neighbour set of ``v``.  Do not mutate the result."""
        return self._adj[v]

    def degree(self, v: Node) -> int:
        return len(self._adj[v])

    def max_degree(self) -> int:
        """Δ, the maximum degree (0 for an empty or edgeless network)."""
        return max((len(s) for s in self._adj.values()), default=0)

    # ------------------------------------------------------------------
    # connectivity
    # ------------------------------------------------------------------
    def component_of(self, v: Node) -> set[Node]:
        """The node set of the connected component containing ``v``."""
        seen = {v}
        frontier = deque([v])
        while frontier:
            u = frontier.popleft()
            for w in self._adj[u]:
                if w not in seen:
                    seen.add(w)
                    frontier.append(w)
        return seen

    def connected_components(self) -> list[set[Node]]:
        """All connected components, largest-first."""
        remaining = set(self._adj)
        comps: list[set[Node]] = []
        while remaining:
            v = next(iter(remaining))
            comp = self.component_of(v)
            comps.append(comp)
            remaining -= comp
        comps.sort(key=len, reverse=True)
        return comps

    def is_connected(self) -> bool:
        """True iff the network is connected (the empty network is not)."""
        if not self._adj:
            return False
        v = next(iter(self._adj))
        return len(self.component_of(v)) == len(self._adj)

    def bfs_distances(self, sources: Iterable[Node]) -> dict[Node, int]:
        """Hop distance from the nearest source, for every reachable node."""
        dist: dict[Node, int] = {}
        frontier = deque()
        for s in sources:
            if s not in self._adj:
                raise KeyError(f"source {s!r} not in network")
            if s not in dist:
                dist[s] = 0
                frontier.append(s)
        while frontier:
            u = frontier.popleft()
            for w in self._adj[u]:
                if w not in dist:
                    dist[w] = dist[u] + 1
                    frontier.append(w)
        return dist

    def eccentricity(self, v: Node) -> int:
        """Greatest hop distance from ``v`` within its component."""
        return max(self.bfs_distances([v]).values())

    def diameter(self) -> int:
        """Diameter of a connected network (raises if disconnected)."""
        if not self.is_connected():
            raise ValueError("diameter undefined on a disconnected network")
        return max(self.eccentricity(v) for v in self._adj)

    # ------------------------------------------------------------------
    # symmetry
    # ------------------------------------------------------------------
    def declare_symmetry(self, group) -> None:
        """Attach an :class:`~repro.network.symmetry.AutomorphismGroup`.

        Every generator is verified against the current topology
        (:class:`~repro.network.symmetry.SymmetryError` on failure) before
        the declaration sticks.  The declaration is *not* revoked by later
        mutations — consumers such as the quotient engine re-verify at
        lowering time and report a stale group as their blocker — but the
        cached orbit partition is invalidated exactly like the CSR cache.
        Pass ``None`` to clear the declaration.
        """
        if group is not None:
            group.verify(self)
        self._symmetry = group
        self._orbit_cache = None

    @property
    def symmetry(self):
        """The declared automorphism group, or ``None``."""
        return self._symmetry

    def orbit_partition(self):
        """The cached orbit partition under the declared group.

        Raises :class:`ValueError` when no group is declared.  The result
        is invalidated by every node/edge mutation (and by re-declaring),
        mirroring :meth:`to_csr`; :attr:`orbit_rebuilds` counts actual
        recomputations.
        """
        if self._symmetry is None:
            raise ValueError(
                "no automorphism group declared; call declare_symmetry() first"
            )
        if self._orbit_cache is None:
            from repro.network.symmetry import orbit_partition

            self._orbit_cache = orbit_partition(self, self._symmetry)
            self.orbit_rebuilds += 1
        return self._orbit_cache

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def copy(self) -> "Network":
        g = Network()
        g._adj = {v: set(nbrs) for v, nbrs in self._adj.items()}
        g._num_edges = self._num_edges
        g._symmetry = self._symmetry
        return g

    def subgraph(self, nodes: Iterable[Node]) -> "Network":
        """The induced subgraph on ``nodes`` (all of which must exist)."""
        keep = set(nodes)
        missing = keep - set(self._adj)
        if missing:
            raise KeyError(f"nodes not in network: {sorted(map(repr, missing))}")
        g = Network()
        for v in self._adj:
            if v in keep:
                g.add_node(v)
        for u, v in self.edges():
            if u in keep and v in keep:
                g.add_edge(u, v)
        return g

    def is_subgraph_of(self, other: "Network") -> bool:
        """True iff every node and edge of ``self`` exists in ``other``."""
        for v in self._adj:
            if v not in other:
                return False
        return all(other.has_edge(u, v) for u, v in self.edges())

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def node_index(self) -> dict[Node, int]:
        """A stable node → row-index map (insertion order)."""
        return {v: i for i, v in enumerate(self._adj)}

    def to_csr(self) -> tuple[sparse.csr_matrix, list[Node]]:
        """Adjacency matrix in CSR form plus the node ordering used.

        The matrix is symmetric 0/1 with an empty diagonal.  Used by the
        vectorized synchronous engine to count neighbour states via a single
        sparse mat-mat product per step.

        The result is cached on the instance and invalidated by every
        node/edge mutation, so fault lowering (which re-exports the CSR
        only at topology changes) and repeated engine construction on a
        static network pay the export once.  Callers must treat the
        returned matrix and order as read-only snapshots.
        """
        if self._csr_cache is not None:
            return self._csr_cache
        order = self.nodes()
        index = {v: i for i, v in enumerate(order)}
        n = len(order)
        # build the CSR arrays directly from the adjacency sets (each row's
        # entries are distinct by construction, so no COO deduplication pass)
        indptr = np.zeros(n + 1, dtype=np.int64)
        cols = np.empty(2 * self._num_edges, dtype=np.int64)
        k = 0
        for i, v in enumerate(order):
            for u in self._adj[v]:
                cols[k] = index[u]
                k += 1
            indptr[i + 1] = k
        data = np.ones(k, dtype=np.int64)
        mat = sparse.csr_matrix((data, cols[:k], indptr), shape=(n, n))
        mat.sort_indices()
        self.csr_rebuilds += 1
        self._csr_cache = (mat, order)
        return self._csr_cache

    def to_networkx(self):
        """Export to a :class:`networkx.Graph` (for cross-validation only)."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(self._adj)
        g.add_edges_from(self.edges())
        return g

    @classmethod
    def from_networkx(cls, g) -> "Network":
        """Import a simple undirected :class:`networkx.Graph`."""
        net = cls(nodes=g.nodes(), edges=((u, v) for u, v in g.edges() if u != v))
        return net

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Network(n={self.num_nodes}, m={self.num_edges})"
