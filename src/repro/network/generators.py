"""Network generators used throughout the tests, examples and benchmarks.

Every generator returns a fresh :class:`~repro.network.graph.Network` whose
nodes are consecutive integers starting at 0 (except where documented).
Randomized generators take an explicit ``rng`` (``numpy.random.Generator``)
or integer seed so that every experiment is replayable.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.network.graph import Network

__all__ = [
    "path_graph",
    "cycle_graph",
    "circulant_graph",
    "complete_graph",
    "star_graph",
    "wheel_graph",
    "grid_graph",
    "torus_graph",
    "hypercube_graph",
    "binary_tree",
    "random_tree",
    "gnp_random_graph",
    "gnm_random_graph",
    "random_regular_graph",
    "connected_gnp_graph",
    "barbell_graph",
    "lollipop_graph",
    "theta_graph",
    "caterpillar_graph",
    "complete_bipartite_graph",
    "petersen_graph",
]

RngLike = Union[int, np.random.Generator, None]


def _rng(seed: RngLike) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def path_graph(n: int) -> Network:
    """P_n: nodes 0..n-1 in a line."""
    if n < 1:
        raise ValueError("path_graph requires n >= 1")
    return Network(nodes=range(n), edges=((i, i + 1) for i in range(n - 1)))


def cycle_graph(n: int) -> Network:
    """C_n: a cycle on n >= 3 nodes."""
    if n < 3:
        raise ValueError("cycle_graph requires n >= 3")
    g = path_graph(n)
    g.add_edge(n - 1, 0)
    return g


def circulant_graph(n: int, offsets) -> Network:
    """The circulant C_n(offsets): node i joined to i ± d for each offset d.

    Circulants are vertex-transitive — the rotation ``i → i + 1 (mod n)``
    is an automorphism whatever the offsets — which makes them the natural
    multi-degree family for symmetry-quotient tests
    (``C_n((1,))`` is the cycle, ``C_n(range(1, n//2 + 1))`` is K_n).
    """
    if n < 3:
        raise ValueError("circulant_graph requires n >= 3")
    offs = sorted({int(d) % n for d in offsets} - {0})
    if not offs:
        raise ValueError("circulant_graph needs at least one nonzero offset")
    g = Network(nodes=range(n))
    for i in range(n):
        for d in offs:
            j = (i + d) % n
            if i != j and not g.has_edge(i, j):
                g.add_edge(i, j)
    return g


def complete_graph(n: int) -> Network:
    """K_n."""
    if n < 1:
        raise ValueError("complete_graph requires n >= 1")
    return Network(
        nodes=range(n),
        edges=((i, j) for i in range(n) for j in range(i + 1, n)),
    )


def star_graph(n_leaves: int) -> Network:
    """A star: hub 0 joined to leaves 1..n_leaves."""
    if n_leaves < 1:
        raise ValueError("star_graph requires at least one leaf")
    return Network(edges=((0, i) for i in range(1, n_leaves + 1)))


def wheel_graph(n_rim: int) -> Network:
    """Hub 0 joined to a rim cycle 1..n_rim."""
    if n_rim < 3:
        raise ValueError("wheel_graph requires a rim of >= 3 nodes")
    g = star_graph(n_rim)
    for i in range(1, n_rim):
        g.add_edge(i, i + 1)
    g.add_edge(n_rim, 1)
    return g


def grid_graph(rows: int, cols: int) -> Network:
    """rows x cols grid; node (r, c) is the integer r*cols + c."""
    if rows < 1 or cols < 1:
        raise ValueError("grid dimensions must be positive")
    g = Network(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            if c + 1 < cols:
                g.add_edge(v, v + 1)
            if r + 1 < rows:
                g.add_edge(v, v + cols)
    return g


def torus_graph(rows: int, cols: int) -> Network:
    """rows x cols torus (grid with wraparound); needs both dims >= 3."""
    if rows < 3 or cols < 3:
        raise ValueError("torus dimensions must be >= 3 to stay simple")
    g = Network(nodes=range(rows * cols))
    for r in range(rows):
        for c in range(cols):
            v = r * cols + c
            g.add_edge(v, r * cols + (c + 1) % cols)
            g.add_edge(v, ((r + 1) % rows) * cols + c)
    return g


def hypercube_graph(dim: int) -> Network:
    """The dim-dimensional hypercube Q_dim on 2**dim nodes."""
    if dim < 1:
        raise ValueError("hypercube dimension must be >= 1")
    n = 1 << dim
    g = Network(nodes=range(n))
    for v in range(n):
        for b in range(dim):
            u = v ^ (1 << b)
            if u > v:
                g.add_edge(v, u)
    return g


def binary_tree(height: int) -> Network:
    """Complete binary tree of the given height (height 0 = single node)."""
    if height < 0:
        raise ValueError("height must be >= 0")
    n = (1 << (height + 1)) - 1
    g = Network(nodes=range(n))
    for v in range(n):
        for child in (2 * v + 1, 2 * v + 2):
            if child < n:
                g.add_edge(v, child)
    return g


def random_tree(n: int, rng: RngLike = None) -> Network:
    """A uniformly random labelled tree on n nodes (via Prüfer sequences)."""
    if n < 1:
        raise ValueError("random_tree requires n >= 1")
    if n == 1:
        return Network(nodes=[0])
    if n == 2:
        return Network(edges=[(0, 1)])
    import heapq

    gen = _rng(rng)
    prufer = [int(x) for x in gen.integers(0, n, size=n - 2)]
    degree = [1] * n
    for x in prufer:
        degree[x] += 1
    g = Network(nodes=range(n))
    leaves = [v for v in range(n) if degree[v] == 1]
    heapq.heapify(leaves)
    for x in prufer:
        leaf = heapq.heappop(leaves)
        g.add_edge(leaf, x)
        degree[x] -= 1
        if degree[x] == 1:
            heapq.heappush(leaves, x)
    u = heapq.heappop(leaves)
    v = heapq.heappop(leaves)
    g.add_edge(u, v)
    return g


def gnp_random_graph(n: int, p: float, rng: RngLike = None) -> Network:
    """Erdős–Rényi G(n, p)."""
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must lie in [0, 1]")
    gen = _rng(rng)
    g = Network(nodes=range(n))
    if p == 0.0 or n < 2:
        return g
    # vectorized upper-triangle coin flips
    iu, ju = np.triu_indices(n, k=1)
    mask = gen.random(iu.shape[0]) < p
    for u, v in zip(iu[mask], ju[mask]):
        g.add_edge(int(u), int(v))
    return g


def gnm_random_graph(n: int, m: int, rng: RngLike = None) -> Network:
    """Uniform random graph with exactly n nodes and m edges."""
    max_m = n * (n - 1) // 2
    if m > max_m:
        raise ValueError(f"m={m} exceeds the maximum {max_m} for n={n}")
    gen = _rng(rng)
    chosen = gen.choice(max_m, size=m, replace=False)
    g = Network(nodes=range(n))
    # decode linear index into upper-triangle (u, v)
    iu, ju = np.triu_indices(n, k=1)
    for idx in chosen:
        g.add_edge(int(iu[idx]), int(ju[idx]))
    return g


def random_regular_graph(n: int, d: int, rng: RngLike = None) -> Network:
    """A random d-regular simple graph via the pairing model (with retries)."""
    if (n * d) % 2 != 0:
        raise ValueError("n*d must be even for a d-regular graph")
    if d >= n:
        raise ValueError("need d < n")
    gen = _rng(rng)
    for _ in range(200):
        stubs = np.repeat(np.arange(n), d)
        gen.shuffle(stubs)
        edges = set()
        ok = True
        for i in range(0, len(stubs), 2):
            u, v = int(stubs[i]), int(stubs[i + 1])
            if u == v or (min(u, v), max(u, v)) in edges:
                ok = False
                break
            edges.add((min(u, v), max(u, v)))
        if ok:
            return Network(nodes=range(n), edges=edges)
    raise RuntimeError(f"failed to sample a simple {d}-regular graph on {n} nodes")


def connected_gnp_graph(n: int, p: float, rng: RngLike = None) -> Network:
    """G(n, p) resampled until connected (p should be above the threshold)."""
    gen = _rng(rng)
    for _ in range(500):
        g = gnp_random_graph(n, p, gen)
        if g.is_connected():
            return g
    raise RuntimeError(f"could not sample a connected G({n}, {p}) in 500 tries")


def barbell_graph(clique: int, bridge_len: int) -> Network:
    """Two K_clique cliques joined by a path of bridge_len edges.

    Every edge of the connecting path is a bridge; clique edges are not.
    """
    if clique < 3:
        raise ValueError("cliques must have >= 3 nodes to contain non-bridges")
    if bridge_len < 1:
        raise ValueError("bridge_len must be >= 1")
    g = complete_graph(clique)
    offset = clique + bridge_len - 1
    for i in range(clique):
        for j in range(i + 1, clique):
            g.add_edge(offset + i, offset + j)
    # path from node 0 of clique A to node offset of clique B
    chain = [0] + [clique + i for i in range(bridge_len - 1)] + [offset]
    for a, b in zip(chain, chain[1:]):
        g.add_edge(a, b)
    return g


def lollipop_graph(clique: int, tail: int) -> Network:
    """K_clique with a path of ``tail`` extra nodes hanging off node 0."""
    if clique < 3 or tail < 1:
        raise ValueError("need clique >= 3 and tail >= 1")
    g = complete_graph(clique)
    prev = 0
    for i in range(tail):
        g.add_edge(prev, clique + i)
        prev = clique + i
    return g


def theta_graph(len_a: int, len_b: int, len_c: int) -> Network:
    """Two terminals joined by three internally disjoint paths.

    Path lengths (in edges) must each be >= 1 and at most one may equal 1
    (to keep the graph simple).  No edge of a theta graph is a bridge.
    """
    lens = [len_a, len_b, len_c]
    if any(x < 1 for x in lens):
        raise ValueError("path lengths must be >= 1")
    if sum(1 for x in lens if x == 1) > 1:
        raise ValueError("at most one path may have length 1 (simple graph)")
    g = Network(nodes=[0, 1])
    nxt = 2
    for length in lens:
        prev = 0
        for _ in range(length - 1):
            g.add_edge(prev, nxt)
            prev = nxt
            nxt += 1
        g.add_edge(prev, 1)
    return g


def caterpillar_graph(spine: int, legs_per_node: int) -> Network:
    """A path of ``spine`` nodes, each with ``legs_per_node`` pendant leaves."""
    if spine < 1 or legs_per_node < 0:
        raise ValueError("need spine >= 1 and legs_per_node >= 0")
    g = path_graph(spine)
    nxt = spine
    for v in range(spine):
        for _ in range(legs_per_node):
            g.add_edge(v, nxt)
            nxt += 1
    return g


def complete_bipartite_graph(a: int, b: int) -> Network:
    """K_{a,b}: parts 0..a-1 and a..a+b-1."""
    if a < 1 or b < 1:
        raise ValueError("both parts must be nonempty")
    return Network(
        nodes=range(a + b),
        edges=((i, a + j) for i in range(a) for j in range(b)),
    )


def petersen_graph() -> Network:
    """The Petersen graph (3-regular, girth 5, bridgeless, non-bipartite)."""
    g = cycle_graph(5)
    for i in range(5):
        g.add_edge(i, 5 + i)
        g.add_edge(5 + i, 5 + (i + 2) % 5)
    return g
