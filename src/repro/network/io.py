"""Network and state serialization.

Plain-text edge lists (one ``u v`` pair per line, ``#``-comments allowed,
isolated nodes listed alone) and JSON round trips for networks and
network states — enough to persist benchmark workloads and exchange
topologies with other tools.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.network.graph import Network
from repro.network.state import NetworkState

__all__ = [
    "to_edge_list",
    "from_edge_list",
    "save_edge_list",
    "load_edge_list",
    "network_to_json",
    "network_from_json",
    "state_to_json",
    "state_from_json",
]


def to_edge_list(net: Network) -> str:
    """The network as an edge-list string (isolated nodes on their own
    lines)."""
    lines = [f"# n={net.num_nodes} m={net.num_edges}"]
    covered = set()
    for u, v in net.edges():
        lines.append(f"{u} {v}")
        covered.add(u)
        covered.add(v)
    for v in net.nodes():
        if v not in covered:
            lines.append(f"{v}")
    return "\n".join(lines) + "\n"


def from_edge_list(text: str) -> Network:
    """Parse an edge-list string; integer tokens become int node ids."""

    def parse(tok: str):
        try:
            return int(tok)
        except ValueError:
            return tok

    net = Network()
    for raw in text.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        parts = line.split()
        if len(parts) == 1:
            net.add_node(parse(parts[0]))
        elif len(parts) == 2:
            net.add_edge(parse(parts[0]), parse(parts[1]))
        else:
            raise ValueError(f"malformed edge-list line: {raw!r}")
    return net


def save_edge_list(net: Network, path: Union[str, Path]) -> None:
    Path(path).write_text(to_edge_list(net))


def load_edge_list(path: Union[str, Path]) -> Network:
    return from_edge_list(Path(path).read_text())


def network_to_json(net: Network) -> str:
    """JSON with explicit node and edge arrays (node ids must be JSON
    scalars)."""
    return json.dumps(
        {
            "nodes": net.nodes(),
            "edges": [[u, v] for u, v in net.edges()],
        }
    )


def network_from_json(text: str) -> Network:
    data = json.loads(text)
    net = Network(nodes=data["nodes"])
    for u, v in data["edges"]:
        net.add_edge(u, v)
    return net


def state_to_json(state: NetworkState) -> str:
    """JSON for states whose values are JSON-serialisable (lists stand in
    for tuples and are restored as tuples on load)."""
    return json.dumps([[v, q] for v, q in state.items()])


def _detuple(value):
    if isinstance(value, list):
        return tuple(_detuple(x) for x in value)
    return value


def state_from_json(text: str) -> NetworkState:
    data = json.loads(text)
    return NetworkState({v: _detuple(q) for v, q in data})
