"""Network substrate: mutable fault-prone graphs, generators, and states.

This subpackage provides the graph model underlying every FSSGA execution
(Pritchard & Vempala, SPAA 2006).  Networks are simple undirected graphs
supporting *decreasing benign faults*: nodes and edges may be deleted at any
time, but never added once an execution begins (paper, Section 1).
"""

from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.network import generators
from repro.network import properties
from repro.network import symmetry
from repro.network.symmetry import (
    AutomorphismGroup,
    OrbitPartition,
    SymmetryError,
    detect_symmetry,
)

__all__ = [
    "Network",
    "NetworkState",
    "generators",
    "properties",
    "symmetry",
    "AutomorphismGroup",
    "OrbitPartition",
    "SymmetryError",
    "detect_symmetry",
]
