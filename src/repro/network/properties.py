"""Ground-truth graph properties used to validate FSSGA algorithms.

These are classical *centralized* algorithms (Tarjan bridges, BFS
2-colouring, spanning trees).  FSSGA implementations in
:mod:`repro.algorithms` are checked against the answers computed here.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.network.graph import Edge, Network, Node, canonical_edge

__all__ = [
    "two_coloring",
    "is_bipartite",
    "bridges",
    "articulation_points",
    "spanning_tree",
    "bfs_tree",
    "bfs_layers",
]


def two_coloring(net: Network) -> Optional[dict[Node, int]]:
    """A proper 2-colouring (values 0/1), or ``None`` if not bipartite.

    Works per component; colour 0 is assigned to the first node seen in
    each component.
    """
    colour: dict[Node, int] = {}
    for start in net:
        if start in colour:
            continue
        colour[start] = 0
        frontier = deque([start])
        while frontier:
            u = frontier.popleft()
            for w in net.neighbors(u):
                if w not in colour:
                    colour[w] = 1 - colour[u]
                    frontier.append(w)
                elif colour[w] == colour[u]:
                    return None
    return colour


def is_bipartite(net: Network) -> bool:
    """True iff the network admits a proper 2-colouring."""
    return two_coloring(net) is not None


def bridges(net: Network) -> set[Edge]:
    """All bridges (cut edges), canonically oriented, via Tarjan low-links.

    Iterative DFS so large path graphs do not hit the recursion limit.
    """
    disc: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Optional[Node]] = {}
    out: set[Edge] = set()
    timer = 0
    for root in net:
        if root in disc:
            continue
        parent[root] = None
        stack: list[tuple[Node, iter]] = [(root, iter(net.neighbors(root)))]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w not in disc:
                    parent[w] = v
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, iter(net.neighbors(w))))
                    advanced = True
                    break
                elif w != parent[v]:
                    low[v] = min(low[v], disc[w])
            if not advanced:
                stack.pop()
                p = parent[v]
                if p is not None:
                    low[p] = min(low[p], low[v])
                    if low[v] > disc[p]:
                        out.add(canonical_edge(p, v))
    return out


def articulation_points(net: Network) -> set[Node]:
    """All cut vertices, via the same low-link machinery (iterative)."""
    disc: dict[Node, int] = {}
    low: dict[Node, int] = {}
    parent: dict[Node, Optional[Node]] = {}
    child_count: dict[Node, int] = {}
    out: set[Node] = set()
    timer = 0
    for root in net:
        if root in disc:
            continue
        parent[root] = None
        child_count[root] = 0
        stack: list[tuple[Node, iter]] = [(root, iter(net.neighbors(root)))]
        disc[root] = low[root] = timer
        timer += 1
        while stack:
            v, it = stack[-1]
            advanced = False
            for w in it:
                if w not in disc:
                    parent[w] = v
                    child_count[w] = 0
                    child_count[v] = child_count.get(v, 0) + 1
                    disc[w] = low[w] = timer
                    timer += 1
                    stack.append((w, iter(net.neighbors(w))))
                    advanced = True
                    break
                elif w != parent[v]:
                    low[v] = min(low[v], disc[w])
            if not advanced:
                stack.pop()
                p = parent[v]
                if p is not None:
                    low[p] = min(low[p], low[v])
                    if parent[p] is not None and low[v] >= disc[p]:
                        out.add(p)
        if child_count[root] >= 2:
            out.add(root)
    return out


def bfs_tree(net: Network, root: Node) -> dict[Node, Node]:
    """BFS parent pointers (root excluded) for the component of ``root``."""
    parent: dict[Node, Node] = {}
    seen = {root}
    frontier = deque([root])
    while frontier:
        u = frontier.popleft()
        for w in net.neighbors(u):
            if w not in seen:
                seen.add(w)
                parent[w] = u
                frontier.append(w)
    return parent


def spanning_tree(net: Network, root: Optional[Node] = None) -> Network:
    """A BFS spanning tree of a connected network, as a new Network."""
    if not net.is_connected():
        raise ValueError("spanning tree requires a connected network")
    if root is None:
        root = next(iter(net))
    parent = bfs_tree(net, root)
    tree = Network(nodes=net.nodes())
    for child, par in parent.items():
        tree.add_edge(child, par)
    return tree


def bfs_layers(net: Network, root: Node) -> list[set[Node]]:
    """Nodes grouped by hop distance from ``root`` (layer 0 = {root})."""
    dist = net.bfs_distances([root])
    if not dist:
        return []
    layers: list[set[Node]] = [set() for _ in range(max(dist.values()) + 1)]
    for v, d in dist.items():
        layers[d].add(v)
    return layers
