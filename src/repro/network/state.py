"""Network states: the instantaneous description σ : V → Q.

The paper (Section 3.1) calls a map from nodes to automaton states a
*network state* or *instantaneous description*.  :class:`NetworkState` is a
thin mapping wrapper with the operations simulations need: uniform
initialisation, per-node update, state counting, and structural equality.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Hashable, Iterable, Iterator, Mapping
from typing import Callable, Optional

from repro.network.graph import Network, Node

State = Hashable

__all__ = ["NetworkState", "State"]


class NetworkState(Mapping):
    """An assignment of one automaton state to every node of a network.

    Instances are mutable via :meth:`set` / ``state[v] = q`` but iteration
    order is the underlying dict order (insertion order of assignment).
    """

    def __init__(self, assignment: Optional[Mapping[Node, State]] = None) -> None:
        self._map: dict[Node, State] = dict(assignment) if assignment else {}

    # -- constructors ---------------------------------------------------
    @classmethod
    def uniform(cls, net: Network, state: State) -> "NetworkState":
        """Every node of ``net`` in the same state (the paper's usual init)."""
        return cls({v: state for v in net})

    @classmethod
    def from_function(
        cls, net: Network, fn: Callable[[Node], State]
    ) -> "NetworkState":
        """Initialise each node ``v`` to ``fn(v)``."""
        return cls({v: fn(v) for v in net})

    # -- mapping protocol ------------------------------------------------
    def __getitem__(self, v: Node) -> State:
        return self._map[v]

    def __iter__(self) -> Iterator[Node]:
        return iter(self._map)

    def __len__(self) -> int:
        return len(self._map)

    def __setitem__(self, v: Node, q: State) -> None:
        self._map[v] = q

    def set(self, v: Node, q: State) -> None:
        """Assign state ``q`` to node ``v``."""
        self._map[v] = q

    # -- queries -----------------------------------------------------------
    def counts(self) -> Counter:
        """Multiplicity of each state over all nodes."""
        return Counter(self._map.values())

    def nodes_in(self, states: Iterable[State]) -> list[Node]:
        """All nodes whose state is in ``states`` (insertion order)."""
        wanted = set(states)
        return [v for v, q in self._map.items() if q in wanted]

    def restrict(self, nodes: Iterable[Node]) -> "NetworkState":
        """The state restricted to a node subset (e.g. after faults)."""
        keep = set(nodes)
        return NetworkState({v: q for v, q in self._map.items() if v in keep})

    def drop(self, nodes: Iterable[Node]) -> None:
        """Remove assignments for nodes that left the network."""
        for v in nodes:
            self._map.pop(v, None)

    def copy(self) -> "NetworkState":
        return NetworkState(self._map)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, NetworkState):
            return self._map == other._map
        if isinstance(other, Mapping):
            return self._map == dict(other)
        return NotImplemented

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"NetworkState({self._map!r})"
