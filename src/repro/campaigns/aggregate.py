"""Campaign-level aggregation: deterministic summaries and merged telemetry.

The aggregate **summary** is the campaign's quotable artifact: every
completed job's deterministic view (result, counters, manifest hash),
ordered by job hash, plus campaign-wide counter totals and a content hash
over the whole object.  Volatile execution data (wall times, retry
counts, worker pids — see :data:`repro.campaigns.store.VOLATILE_KEYS`)
never enters it, so

* a campaign interrupted at any instant and resumed — at any worker
  count — writes a **byte-identical** ``summary.json`` to an
  uninterrupted run, and
* counters are *conserved* under sharding: the campaign totals computed
  from per-worker :class:`~repro.runtime.telemetry.MetricsRegistry`
  snapshots equal the totals of the same jobs run sequentially in one
  process (asserted in ``tests/campaigns`` and benchmarked in E19).
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional

from repro.campaigns.spec import CampaignSpec, content_hash
from repro.campaigns.store import ArtifactStore, deterministic_view
from repro.runtime.telemetry import MetricsRegistry

__all__ = [
    "combined_metrics",
    "summarize",
    "write_summary",
]


def combined_metrics(records: dict) -> MetricsRegistry:
    """Merge per-job metric snapshots into one campaign-level registry.

    Counters add (they are conserved quantities: steps, node updates,
    RNG draws, fault events).  Series concatenate in job-hash order, so
    the merged registry is independent of completion order.
    """
    merged = MetricsRegistry()
    for job_hash in sorted(records):
        rec = records[job_hash]
        if rec.get("status") != "ok":
            continue
        snapshot = rec.get("metrics") or {}
        for name, value in sorted((snapshot.get("counters") or {}).items()):
            merged.inc(name, int(value))
        for name, values in sorted((snapshot.get("series") or {}).items()):
            for v in values:
                merged.observe(name, v)
    return merged


def summarize(
    store: ArtifactStore, spec: Optional[CampaignSpec] = None
) -> dict:
    """The deterministic campaign summary (see module docstring).

    ``pending``/``failed`` counts are included (they describe the grid,
    not the execution path to it: an interrupted-then-resumed campaign
    ends with the same completion census as an uninterrupted one).
    """
    spec = spec or store.load_spec()
    if spec is None:
        raise ValueError(f"store {store.root} has no campaign.json")
    records = store.records()
    job_hashes = [j.job_hash for j in spec.expand()]
    wanted = set(job_hashes)
    ok_views = {
        h: deterministic_view(records[h])
        for h in records
        if h in wanted and records[h].get("status") == "ok"
    }
    merged = combined_metrics(ok_views)
    # each artifact entry carries its content address (the hash is itself
    # a pure function of the deterministic view, so byte-identity holds)
    artifacts = []
    for h in sorted(ok_views):
        entry = dict(ok_views[h])
        entry["content_hash"] = records[h].get("content_hash")
        artifacts.append(entry)
    # series can be bulky and their determinism is already captured by the
    # per-artifact views; the campaign level keeps the conserved counters
    summary = {
        "campaign": spec.name,
        "spec_hash": spec.spec_hash,
        "jobs": {
            "total": len(job_hashes),
            "ok": len(artifacts),
            "failed": sum(
                1
                for h in wanted
                if records.get(h, {}).get("status") == "failed"
            ),
            "pending": sum(
                1
                for h in job_hashes
                if records.get(h, {}).get("status") != "ok"
            ),
        },
        "metrics": {"counters": dict(sorted(merged.counters.items()))},
        "artifacts": artifacts,
    }
    summary["content_hash"] = content_hash(summary)
    return summary


def write_summary(
    store: ArtifactStore, spec: Optional[CampaignSpec] = None
) -> Path:
    """Write ``summary.json`` in canonical form; returns its path.

    Canonical JSON (sorted keys, compact separators) over deterministic
    content is what makes the kill-and-resume acceptance check literal:
    equal campaigns produce equal *bytes*.
    """
    summary = summarize(store, spec)
    store.write_canonical(store.summary_path, summary)
    return store.summary_path
