"""Sharded, fault-tolerant, resumable experiment campaigns.

The subsystem that turns the ad-hoc experiment loops (election phase
statistics, fault-sensitivity sweeps, EXPERIMENTS.md drivers) into
declarative parallel sweeps:

* :mod:`repro.campaigns.spec` — :class:`CampaignSpec` grids over dotted
  job names with spec-derived per-job RNG streams;
* :mod:`repro.campaigns.runner` — :func:`run_campaign` on a process pool
  with per-job timeouts, bounded retries and crash isolation;
* :mod:`repro.campaigns.store` — the content-addressed JSONL
  :class:`ArtifactStore` that makes interruption safe and resume a
  set-difference;
* :mod:`repro.campaigns.aggregate` — byte-deterministic summaries and
  campaign-level telemetry merged from per-worker registries.

Quickstart::

    from repro.campaigns import CampaignSpec, run_campaign, write_summary

    spec = CampaignSpec(
        name="election-phases",
        job="repro.algorithms.election.phase_statistics_job",
        grid={"n": [32, 64, 128]},
        fixed={"replicas": 32},
        seeds=4,
        entropy=2006,
    )
    result = run_campaign(spec, "campaign-out", workers=4)
    print(write_summary(result.store).read_text())
"""

from repro.campaigns.aggregate import combined_metrics, summarize, write_summary
from repro.campaigns.runner import CampaignRunResult, execute_job, run_campaign
from repro.campaigns.spec import (
    CampaignSpec,
    JobSpec,
    canonical_json,
    content_hash,
    resolve_dotted,
)
from repro.campaigns.store import ArtifactStore, StoreMismatchError

__all__ = [
    "CampaignSpec",
    "JobSpec",
    "resolve_dotted",
    "canonical_json",
    "content_hash",
    "ArtifactStore",
    "StoreMismatchError",
    "run_campaign",
    "execute_job",
    "CampaignRunResult",
    "combined_metrics",
    "summarize",
    "write_summary",
]
