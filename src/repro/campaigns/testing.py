"""Injectable campaign jobs for exercising the runner's failure paths.

These live in the package (not under ``tests/``) because workers resolve
jobs by dotted import path: a spawned/forked worker can always import
``repro.campaigns.testing`` but has no guarantee the test tree is on its
path.  They are also the documented way for downstream users to smoke
their own campaign deployments (hang the pool, crash a worker, verify
retry accounting) without writing throwaway modules.

Every job follows the campaign convention ``fn(rng, metrics, **params)``
and returns a JSON-able dict.
"""

from __future__ import annotations

import os
import time
from pathlib import Path

__all__ = [
    "ok_job",
    "erroring_job",
    "flaky_job",
    "crashing_job",
    "hanging_job",
]


def ok_job(rng=None, metrics=None, *, value=0, draws=4):
    """Deterministic happy path: consume ``draws`` RNG values, count them."""
    xs = rng.integers(0, 1000, size=draws) if draws else []
    if metrics is not None:
        metrics.inc("test_jobs", 1)
        metrics.inc("test_draws", int(len(xs)))
    return {"value": value, "draw_sum": int(sum(int(x) for x in xs))}


def erroring_job(rng=None, metrics=None, *, value=0, fail_values=()):
    """Raise (an ordinary exception) whenever ``value`` is listed."""
    if value in tuple(fail_values):
        raise ValueError(f"injected failure for value={value}")
    return ok_job(rng=rng, metrics=metrics, value=value)


def flaky_job(rng=None, metrics=None, *, value=0, fail_first=1, scratch_dir=None):
    """Fail the first ``fail_first`` attempts, then succeed.

    Cross-attempt state lives in ``scratch_dir`` (one counter file per
    ``value``), which also gives tests an attempt count measured *inside*
    the workers to check against the runner's accounting.
    """
    if scratch_dir is None:
        raise ValueError("flaky_job needs scratch_dir")
    marker = Path(scratch_dir) / f"attempts-{value}"
    seen = int(marker.read_text()) if marker.exists() else 0
    marker.write_text(str(seen + 1))
    if seen < fail_first:
        raise RuntimeError(f"injected flake {seen + 1}/{fail_first}")
    return ok_job(rng=rng, metrics=metrics, value=value)


def crashing_job(rng=None, metrics=None, *, value=0, crash_values=()):
    """Kill the worker process outright (no exception, no cleanup) for
    listed values — the BrokenProcessPool path."""
    if value in tuple(crash_values):
        os._exit(17)
    return ok_job(rng=rng, metrics=metrics, value=value)


def hanging_job(rng=None, metrics=None, *, value=0, hang_values=(), sleep=3600.0):
    """Sleep far past any sane budget for listed values — the timeout-kill
    path."""
    if value in tuple(hang_values):
        time.sleep(sleep)
    return ok_job(rng=rng, metrics=metrics, value=value)
