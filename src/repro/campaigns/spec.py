"""Declarative campaign specifications.

A *campaign* is a sweep of independent, seeded experiment jobs — the shape
of every quantitative claim in EXPERIMENTS.md (election phases over
hundreds of runs, Flajolet–Martin accuracy, fault-sensitivity sweeps) and
the same fan-out/aggregate decomposition the separable-function protocols
of Mosk-Aoyama & Shah exploit.  A :class:`CampaignSpec` declares the grid
*by value*: the job function is named by its dotted import path and every
grid axis holds plain JSON values, so each expanded :class:`JobSpec` is
picklable, hashable and reconstructible in any worker process.

Determinism contract
--------------------
* :meth:`CampaignSpec.expand` enumerates the grid in a fixed order
  (sorted axis names, declared value order, then seed replicates), so a
  job's ``index`` is a pure function of the spec.
* Each job's RNG is ``default_rng(SeedSequence(entropy, spawn_key=
  (index,)))`` — bitwise-independent of worker count, scheduling order
  and retries, because nothing about *execution* enters the derivation.
* :attr:`JobSpec.job_hash` is a content hash of the job's identity
  (campaign entropy, job function, parameters, seed replicate, index),
  which is what the artifact store keys on: re-running an unchanged spec
  skips every completed job, while changing any input re-executes exactly
  the affected jobs.
"""

from __future__ import annotations

import hashlib
import importlib
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Optional

import numpy as np

__all__ = [
    "resolve_dotted",
    "canonical_json",
    "content_hash",
    "JobSpec",
    "CampaignSpec",
]


def resolve_dotted(name: str) -> Any:
    """Import ``pkg.module.attr`` and return the attribute.

    The attribute part may be nested (``pkg.mod.Class.method``); the
    longest importable module prefix wins.
    """
    parts = name.split(".")
    if len(parts) < 2:
        raise ValueError(f"not a dotted name: {name!r}")
    last_err: Optional[Exception] = None
    for cut in range(len(parts) - 1, 0, -1):
        module_name = ".".join(parts[:cut])
        try:
            obj: Any = importlib.import_module(module_name)
        except ImportError as exc:
            last_err = exc
            continue
        try:
            for attr in parts[cut:]:
                obj = getattr(obj, attr)
        except AttributeError as exc:
            raise ValueError(
                f"module {module_name!r} has no attribute "
                f"{'.'.join(parts[cut:])!r}"
            ) from exc
        return obj
    raise ValueError(f"cannot import any module prefix of {name!r}") from last_err


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, compact separators, no NaN."""
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False, default=repr
    )


def content_hash(obj: Any) -> str:
    """sha256 hex digest of the canonical JSON form of ``obj``."""
    return hashlib.sha256(canonical_json(obj).encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class JobSpec:
    """One expanded grid point: everything a worker needs, by value.

    ``params`` are the job function's keyword arguments; ``index`` is the
    job's position in the deterministic grid enumeration and doubles as
    the RNG spawn key; ``seed_index`` is the replicate number within the
    grid point (also folded into ``index``).
    """

    campaign: str
    job: str
    params: dict = field(default_factory=dict)
    seed_index: int = 0
    index: int = 0
    entropy: int = 0

    @property
    def job_hash(self) -> str:
        """Content hash of the job's identity — the artifact-store key."""
        return content_hash(
            {
                "campaign": self.campaign,
                "job": self.job,
                "params": self.params,
                "seed_index": self.seed_index,
                "index": self.index,
                "entropy": self.entropy,
            }
        )

    def seed_sequence(self) -> np.random.SeedSequence:
        """This job's root seed sequence (see the module determinism
        contract)."""
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=(self.index,)
        )

    def make_rng(self) -> np.random.Generator:
        return np.random.default_rng(self.seed_sequence())

    def resolve(self) -> Callable:
        """The job function this spec names."""
        fn = resolve_dotted(self.job)
        if not callable(fn):
            raise TypeError(f"{self.job!r} resolved to a non-callable: {fn!r}")
        return fn

    def payload(self) -> dict:
        """The picklable dict shipped to worker processes."""
        return {
            "campaign": self.campaign,
            "job": self.job,
            "params": dict(self.params),
            "seed_index": self.seed_index,
            "index": self.index,
            "entropy": self.entropy,
            "job_hash": self.job_hash,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "JobSpec":
        return cls(
            campaign=payload["campaign"],
            job=payload["job"],
            params=dict(payload["params"]),
            seed_index=payload["seed_index"],
            index=payload["index"],
            entropy=payload["entropy"],
        )


@dataclass
class CampaignSpec:
    """A declarative experiment sweep.

    Parameters
    ----------
    name:
        Human-readable campaign name (part of every job's identity hash).
    job:
        Dotted path of the job function.  The campaign convention: the
        function accepts ``(rng, metrics, **params)`` where ``rng`` is a
        pre-seeded :class:`numpy.random.Generator`, ``metrics`` a
        :class:`~repro.runtime.telemetry.MetricsRegistry`, and returns a
        JSON-able dict.  A ``"manifest_hash"`` key in the result is
        lifted into the artifact record (see ``repro.campaigns.runner``).
    grid:
        ``{param_name: [values...]}``; the cartesian product over sorted
        parameter names defines the grid points.  Values must be plain
        JSON data.
    fixed:
        Parameters passed to every job unchanged (merged under the grid
        point, which wins on collision).
    seeds:
        Seed replicates per grid point — each gets an independent RNG
        stream but identical parameters.
    entropy:
        Campaign-level base entropy for :class:`numpy.random.SeedSequence`.
    timeout:
        Per-job wall-clock budget in seconds (``None`` = unlimited).
    retries:
        How many times a failed/crashed/timed-out job is re-attempted
        (total attempts = ``retries + 1``).
    backoff:
        Base delay in seconds before re-attempting a failed job, doubled
        per attempt.
    """

    name: str
    job: str
    grid: dict = field(default_factory=dict)
    fixed: dict = field(default_factory=dict)
    seeds: int = 1
    entropy: int = 0
    timeout: Optional[float] = None
    retries: int = 2
    backoff: float = 0.05

    def __post_init__(self) -> None:
        if self.seeds < 1:
            raise ValueError("seeds must be >= 1")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        for axis, values in self.grid.items():
            if not isinstance(values, (list, tuple)):
                raise TypeError(
                    f"grid axis {axis!r} must be a list of values, got "
                    f"{type(values).__name__}"
                )

    def grid_points(self) -> list[dict]:
        """The parameter dicts, in deterministic enumeration order."""
        axes = sorted(self.grid)
        points = []
        for combo in itertools.product(*(self.grid[a] for a in axes)):
            params = dict(self.fixed)
            params.update(dict(zip(axes, combo)))
            points.append(params)
        return points

    def expand(self) -> list[JobSpec]:
        """All jobs: grid points × seed replicates, deterministically
        indexed."""
        jobs = []
        index = 0
        for params in self.grid_points():
            for seed_index in range(self.seeds):
                jobs.append(
                    JobSpec(
                        campaign=self.name,
                        job=self.job,
                        params=params,
                        seed_index=seed_index,
                        index=index,
                        entropy=self.entropy,
                    )
                )
                index += 1
        return jobs

    def __len__(self) -> int:
        points = 1
        for values in self.grid.values():
            points *= len(values)
        return points * self.seeds

    @property
    def spec_hash(self) -> str:
        """Content hash of the identity-bearing fields.

        Execution policy (timeout/retries/backoff/worker count) is *not*
        identity: tightening a timeout must not invalidate completed
        artifacts.
        """
        return content_hash(
            {
                "name": self.name,
                "job": self.job,
                "grid": self.grid,
                "fixed": self.fixed,
                "seeds": self.seeds,
                "entropy": self.entropy,
            }
        )

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "job": self.job,
            "grid": self.grid,
            "fixed": self.fixed,
            "seeds": self.seeds,
            "entropy": self.entropy,
            "timeout": self.timeout,
            "retries": self.retries,
            "backoff": self.backoff,
            "spec_hash": self.spec_hash,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, data: dict) -> "CampaignSpec":
        known = {f for f in cls.__dataclass_fields__}
        kwargs = {k: v for k, v in data.items() if k in known}
        spec = cls(**kwargs)
        recorded = data.get("spec_hash")
        if recorded is not None and recorded != spec.spec_hash:
            raise ValueError(
                f"spec_hash mismatch: recorded {recorded[:12]}…, "
                f"recomputed {spec.spec_hash[:12]}…"
            )
        return spec

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        return cls.from_dict(json.loads(text))

    def validate(self) -> None:
        """Resolve the job function and sanity-check the convention."""
        self.resolve_job()

    def resolve_job(self) -> Callable:
        fn = resolve_dotted(self.job)
        if not callable(fn):
            raise TypeError(f"{self.job!r} resolved to a non-callable: {fn!r}")
        return fn
