"""Content-addressed, resumable JSONL artifact store.

One campaign = one directory::

    <root>/
      campaign.json     the CampaignSpec that owns this store
      artifacts.jsonl   append-only job records, one JSON object per line
      summary.json      deterministic aggregate (written by aggregate.py)

Artifacts are keyed by :attr:`~repro.campaigns.spec.JobSpec.job_hash` —
the content hash of the job's identity — and each ``"ok"`` record also
carries its own ``content_hash`` over the *deterministic view* of the
record (result, stripped metrics, manifest hash) plus the job's
:class:`~repro.runtime.telemetry.RunManifest` content hash when the job
reports one.  Resume therefore reduces to a set lookup: jobs whose hash
already has an ``"ok"`` record are skipped, everything else re-runs.

Appends are safe under *concurrent writers*: each record goes down as a
single ``os.write`` of the full line on an ``O_APPEND`` file descriptor
(the kernel serializes the offset) under an advisory ``flock``, which
also gates the torn-tail repair.  One campaign coordinator, several
service workers (``repro.service``), or a mix can therefore share one
``artifacts.jsonl`` without interleaving partial lines.  A half-written
final line from a killed writer is detected and ignored on load, and the
completed job simply re-runs — append-only storage makes interruption at
any instant safe.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Iterator, Optional

try:  # advisory append lock; absent off-POSIX (appends fall back to O_APPEND only)
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX
    fcntl = None

from repro.campaigns.spec import CampaignSpec, canonical_json, content_hash

__all__ = [
    "StoreMismatchError",
    "deterministic_view",
    "ArtifactStore",
    "VOLATILE_KEYS",
    "NONDETERMINISTIC_SERIES",
    "NONDETERMINISTIC_COUNTERS",
]


class StoreMismatchError(RuntimeError):
    """The store belongs to a different campaign spec."""


#: Record fields that legitimately differ between executions of the same
#: job (timing, scheduling, retry history) — excluded from content hashes
#: and from the aggregate summary so kill-and-resume stays byte-identical.
VOLATILE_KEYS = ("wall_time", "attempts", "worker", "content_hash", "error")

#: Metric series whose values are wall-clock measurements.
NONDETERMINISTIC_SERIES = ("run_wall_time",)

#: Metric counters that measure *process history*, not the job: a forked
#: worker inherits its parent's warm lowering cache, so hit/miss splits
#: depend on scheduling.  (``steps``/``node_updates``/``rng_draws``/
#: ``fault_events``/``csr_rebuilds`` are conserved job quantities and
#: stay.)
NONDETERMINISTIC_COUNTERS = ("lowering_cache_hits", "lowering_cache_misses")


def deterministic_view(record: dict) -> dict:
    """The record minus every execution-dependent field.

    Two executions of the same job (different worker counts, schedules,
    retry histories, machines of the same software stack) produce equal
    deterministic views — this is the object the ``content_hash`` signs
    and the aggregate summary is built from.
    """
    view = {k: v for k, v in record.items() if k not in VOLATILE_KEYS}
    metrics = view.get("metrics")
    if isinstance(metrics, dict):
        cleaned = dict(metrics)
        if isinstance(metrics.get("series"), dict):
            cleaned["series"] = {
                k: v
                for k, v in metrics["series"].items()
                if k not in NONDETERMINISTIC_SERIES
            }
        if isinstance(metrics.get("counters"), dict):
            cleaned["counters"] = {
                k: v
                for k, v in metrics["counters"].items()
                if k not in NONDETERMINISTIC_COUNTERS
            }
        view["metrics"] = cleaned
    return view


class ArtifactStore:
    """Append-only JSONL artifacts under one campaign directory."""

    SPEC_FILE = "campaign.json"
    ARTIFACTS_FILE = "artifacts.jsonl"
    SUMMARY_FILE = "summary.json"
    IDENTITY_FILE = "identity"

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._identity: Optional[str] = None

    @property
    def spec_path(self) -> Path:
        return self.root / self.SPEC_FILE

    @property
    def artifacts_path(self) -> Path:
        return self.root / self.ARTIFACTS_FILE

    @property
    def summary_path(self) -> Path:
        return self.root / self.SUMMARY_FILE

    # -- identity ------------------------------------------------------
    def identity(self) -> str:
        """A stable random token naming this store *instance*.

        Created once and then immutable: replicas of one cluster report
        it from ``/healthz``, which is how an operator — or the cluster
        smoke test — confirms N processes really share one store rather
        than each talking to a private directory that happens to have the
        same path string on a different mount.

        Publication is atomic: the token is fully written to a private
        temp file first and then ``os.link``ed into place (link fails
        with ``FileExistsError`` if a sibling won, giving ``O_EXCL``
        semantics).  A plain ``O_CREAT | O_EXCL`` open-then-write would
        let a concurrent reader observe the file created but not yet
        written and cache an empty token — exactly the state a second
        replica races into on startup.
        """
        if self._identity is not None:
            return self._identity
        path = self.root / self.IDENTITY_FILE
        token = self._read_identity(path)
        if token is None:
            import uuid

            token = uuid.uuid4().hex
            tmp = self.root / f".{self.IDENTITY_FILE}.{os.getpid()}.{id(self):x}.tmp"
            tmp.write_text(token + "\n", encoding="utf-8")
            try:
                os.link(tmp, path)
            except FileExistsError:
                token = self._read_identity(path) or ""
            finally:
                tmp.unlink(missing_ok=True)
        self._identity = token
        return token

    @staticmethod
    def _read_identity(path: Path) -> Optional[str]:
        try:
            token = path.read_text(encoding="utf-8").strip()
        except FileNotFoundError:
            return None
        return token or None

    # -- spec ----------------------------------------------------------
    def write_spec(self, spec: CampaignSpec) -> None:
        """Bind this store to ``spec``; idempotent for the same spec.

        A store already bound to a *different* spec raises
        :class:`StoreMismatchError` — resuming under changed identity
        would silently mix incompatible artifacts.
        """
        existing = self.load_spec()
        if existing is not None:
            if existing.spec_hash != spec.spec_hash:
                raise StoreMismatchError(
                    f"store {self.root} holds campaign "
                    f"{existing.name!r} ({existing.spec_hash[:12]}…), "
                    f"refusing to run {spec.name!r} "
                    f"({spec.spec_hash[:12]}…) into it"
                )
            return
        self.spec_path.write_text(spec.to_json() + "\n", encoding="utf-8")

    def load_spec(self) -> Optional[CampaignSpec]:
        if not self.spec_path.exists():
            return None
        return CampaignSpec.from_json(self.spec_path.read_text(encoding="utf-8"))

    # -- artifacts -----------------------------------------------------
    def append(self, record: dict) -> dict:
        """Seal and append one job record; returns the sealed record.

        ``record`` must carry ``job_hash``.  ``"ok"`` records get a
        ``content_hash`` over their deterministic view.  The line (plus,
        when a killed writer left a torn tail, the repairing newline) goes
        down as one ``os.write`` on an ``O_APPEND`` descriptor and is
        fsynced before returning, so a record either exists completely or
        (if the process dies mid-write) is dropped by the tolerant reader.
        An advisory ``flock`` serializes concurrent writers — several
        processes appending to one store never interleave partial lines.
        """
        if "job_hash" not in record:
            raise ValueError("artifact record needs a job_hash")
        sealed = dict(record)
        if sealed.get("status") == "ok":
            sealed["content_hash"] = content_hash(deterministic_view(sealed))
        line = json.dumps(sealed, sort_keys=True, default=repr).encode("utf-8")
        # O_RDWR (not O_WRONLY): the torn-tail check reads the last byte
        fd = os.open(self.artifacts_path, os.O_RDWR | os.O_CREAT | os.O_APPEND, 0o644)
        try:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_EX)
            # a writer killed mid-append leaves a torn final line with no
            # newline; start cleanly after it so the new record stays
            # parseable (checked under the lock — the tail is stable)
            size = os.fstat(fd).st_size
            torn_tail = size > 0 and os.pread(fd, 1, size - 1) != b"\n"
            payload = (b"\n" if torn_tail else b"") + line + b"\n"
            os.write(fd, payload)
            os.fsync(fd)
        finally:
            if fcntl is not None:
                fcntl.flock(fd, fcntl.LOCK_UN)
            os.close(fd)
        return sealed

    def iter_records(self) -> Iterator[dict]:
        """All parseable records in append order (torn tail lines are
        skipped)."""
        if not self.artifacts_path.exists():
            return
        with open(self.artifacts_path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    yield json.loads(line)
                except json.JSONDecodeError:
                    # a coordinator killed mid-append leaves at most one
                    # torn line; the job it described simply re-runs
                    continue

    def tail_records(self, offset: int = 0) -> tuple[list, int]:
        """Records appended at or after byte ``offset``; incremental read.

        Returns ``(records, new_offset)`` where ``new_offset`` points just
        past the last *complete* line — an in-progress append (no trailing
        newline yet) is left for the next call, so pollers never observe a
        torn record and never re-parse the same line twice.  This is what
        lets a cluster replica watch a store other replicas are writing
        at ``O(new bytes)`` instead of ``O(file)`` per poll.
        """
        path = self.artifacts_path
        if not path.exists():
            return [], offset
        with open(path, "rb") as fh:
            fh.seek(offset)
            data = fh.read()
        end = data.rfind(b"\n")
        if end < 0:
            return [], offset
        records = []
        for line in data[:end].split(b"\n"):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # a repaired torn tail from a killed writer
        return records, offset + end + 1

    def records(self) -> dict:
        """Latest record per job hash (an ``"ok"`` is never displaced by
        a later failure — completed work is immutable)."""
        latest: dict = {}
        for rec in self.iter_records():
            key = rec.get("job_hash")
            if key is None:
                continue
            if latest.get(key, {}).get("status") == "ok" and rec.get("status") != "ok":
                continue
            latest[key] = rec
        return latest

    def completed_hashes(self) -> set:
        """Hashes of jobs with a completed (``"ok"``) artifact."""
        return {
            h for h, rec in self.records().items() if rec.get("status") == "ok"
        }

    def verify(self) -> list:
        """Re-hash every completed artifact; returns the corrupted hashes."""
        bad = []
        for h, rec in self.records().items():
            if rec.get("status") != "ok":
                continue
            if rec.get("content_hash") != content_hash(deterministic_view(rec)):
                bad.append(h)
        return bad

    # -- status --------------------------------------------------------
    def status(self, spec: Optional[CampaignSpec] = None) -> dict:
        """Completion summary against ``spec`` (default: the bound spec)."""
        spec = spec or self.load_spec()
        recs = self.records()
        out = {
            "root": str(self.root),
            "artifacts": len(recs),
            "ok": sum(1 for r in recs.values() if r.get("status") == "ok"),
            "failed": sum(1 for r in recs.values() if r.get("status") == "failed"),
        }
        if spec is not None:
            hashes = [j.job_hash for j in spec.expand()]
            done = self.completed_hashes()
            out.update(
                campaign=spec.name,
                spec_hash=spec.spec_hash,
                total=len(hashes),
                pending=sum(1 for h in hashes if h not in done),
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ArtifactStore({str(self.root)!r})"


def _write_canonical(path: Path, obj: dict) -> None:
    """Canonical (sorted, compact) JSON — byte-identical for equal
    content."""
    path.write_text(canonical_json(obj) + "\n", encoding="utf-8")


# aggregate.py uses this; exported here so the store owns all file formats
ArtifactStore.write_canonical = staticmethod(_write_canonical)
