"""Fault-tolerant parallel campaign execution.

:func:`run_campaign` shards a :class:`~repro.campaigns.spec.CampaignSpec`
across a :class:`concurrent.futures.ProcessPoolExecutor` with

* **windowed submission** — at most ``workers`` jobs in flight, so a
  submitted job starts immediately and its wall-clock timeout measures
  actual execution;
* **per-job timeouts** — a job exceeding ``spec.timeout`` has its worker
  process killed (a hung worker cannot be cancelled cooperatively), the
  pool is rebuilt, and innocent in-flight jobs are resubmitted with fresh
  timers;
* **bounded retries with exponential backoff** — errors, crashes and
  timeouts all consume one of ``spec.retries + 1`` attempts; the backoff
  clock never blocks other jobs;
* **crash isolation** — a worker dying mid-job (segfault, ``os._exit``)
  breaks the whole pool by :class:`ProcessPoolExecutor` semantics, so the
  runner rebuilds it and retries the jobs that were in flight: one dying
  worker fails (at most) one job's attempt, never the campaign;
* **resume** — jobs whose hash already has a completed artifact in the
  store are skipped before anything is submitted.

Determinism: a job's RNG derives from its spec
(:meth:`~repro.campaigns.spec.JobSpec.seed_sequence`), never from
execution, so results are bitwise-identical at any worker count,
scheduling order or retry history — which is what makes kill-and-resume
aggregates byte-identical (see ``repro.campaigns.aggregate``).
"""

from __future__ import annotations

import heapq
import inspect
import os
import time
import traceback
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Optional

from repro.campaigns.spec import CampaignSpec, JobSpec
from repro.campaigns.store import ArtifactStore
from repro.runtime.telemetry import MetricsRegistry, _jsonable

__all__ = [
    "execute_job",
    "execute_job_async",
    "run_campaign",
    "CampaignRunResult",
]


def _accepts_progress(fn) -> bool:
    """True iff ``fn`` takes a ``progress`` keyword (explicit or **kwargs
    is *not* enough — silently swallowing the callback would hide a wiring
    mistake)."""
    try:
        params = inspect.signature(fn).parameters
    except (TypeError, ValueError):  # pragma: no cover - builtins etc.
        return False
    param = params.get("progress")
    return param is not None and param.kind in (
        inspect.Parameter.KEYWORD_ONLY,
        inspect.Parameter.POSITIONAL_OR_KEYWORD,
    )


def _progress_callback(payload: dict, context: dict):
    """Build the per-step progress callback a cluster context asks for.

    ``context`` carries ``store_root`` (+ optional ``stride``/``replica``)
    and turns into a :class:`~repro.cluster.spool.SpoolProgress` that
    appends :class:`~repro.runtime.telemetry.StepProgressEvent` frames to
    the job's event spool.  Imported lazily — batch campaigns (context
    ``None``) never touch the cluster package.
    """
    from repro.cluster.spool import SpoolProgress

    return SpoolProgress(
        context["store_root"],
        payload["job_hash"],
        stride=int(context.get("stride", 1)),
        replica=context.get("replica"),
    )


def execute_job(payload: dict, context: Optional[dict] = None) -> dict:
    """Run one job inside a worker process; always returns a record.

    The job function is resolved from its dotted name, handed a freshly
    derived RNG and a private :class:`MetricsRegistry`, and its JSON-able
    result is wrapped into an artifact record.  Ordinary exceptions are
    caught and reported as ``status="error"`` records — they cost the job
    an attempt but never poison the pool.  (Hard crashes and hangs are
    the coordinator's problem, by design.)

    ``context`` (cluster mode only) requests per-step progress streaming:
    jobs whose function accepts a ``progress`` keyword get a spool-backed
    callback; jobs that don't are run exactly as before — progress is an
    observability channel, never part of the job's identity or result.
    """
    job = JobSpec.from_payload(payload)
    t0 = perf_counter()
    try:
        fn = job.resolve()
        metrics = MetricsRegistry()
        kwargs = dict(job.params)
        if context is not None and _accepts_progress(fn):
            kwargs["progress"] = _progress_callback(payload, context)
        result = fn(rng=job.make_rng(), metrics=metrics, **kwargs)
        record = {
            "job_hash": payload["job_hash"],
            "status": "ok",
            "job": job.job,
            "params": job.params,
            "seed_index": job.seed_index,
            "index": job.index,
            "result": _jsonable(result),
            "metrics": _jsonable(metrics.snapshot()),
            "wall_time": perf_counter() - t0,
            "worker": os.getpid(),
        }
        if isinstance(result, dict) and "manifest_hash" in result:
            record["manifest_hash"] = result["manifest_hash"]
        return record
    except Exception as exc:
        return {
            "job_hash": payload["job_hash"],
            "status": "error",
            "job": job.job,
            "params": job.params,
            "seed_index": job.seed_index,
            "index": job.index,
            "error": "".join(
                traceback.format_exception_only(type(exc), exc)
            ).strip(),
            "wall_time": perf_counter() - t0,
            "worker": os.getpid(),
        }


async def execute_job_async(
    executor: ProcessPoolExecutor,
    payload: dict,
    *,
    retries: int = 0,
    backoff: float = 0.0,
    timeout: Optional[float] = None,
    on_retry: Optional[Callable] = None,
    context: Optional[dict] = None,
) -> dict:
    """Async-submittable facade over :func:`execute_job`.

    The batch runner above owns its own event loop (``wait`` +
    ``time.sleep``); an asyncio host like ``repro.service`` must never
    block its loop that way, so this coroutine runs the job on
    ``executor`` via ``run_in_executor`` and does every retry backoff
    with ``asyncio.sleep``.  Semantics mirror one job's slice of the
    pooled runner: errors, crashes and timeouts each cost one of
    ``retries + 1`` attempts, backoff doubles per attempt, and the
    returned record always carries ``attempts``.  A broken pool is
    reported in the record (``pool_broken=True``) rather than raised —
    the caller owns the executor and decides whether to rebuild it.

    ``timeout`` bounds the *wait*, not the worker: a timed-out worker
    process keeps running until the caller rebuilds the pool (the same
    hung-worker reality the batch runner handles with a pool kill).
    """
    import asyncio

    loop = asyncio.get_running_loop()
    attempt = 0
    while True:
        attempt += 1
        pool_broken = False
        try:
            fut = loop.run_in_executor(executor, execute_job, payload, context)
            record = await (
                asyncio.wait_for(fut, timeout) if timeout is not None else fut
            )
        except asyncio.TimeoutError:
            record = _failure_record(
                payload, attempt, f"timeout after {timeout}s (wait budget)"
            )
            record["status"] = "error"
            pool_broken = True  # the worker is still occupied — unusable
        except BrokenProcessPool:
            record = _failure_record(
                payload, attempt, "worker process died (pool broken)"
            )
            record["status"] = "error"
            pool_broken = True
        record["attempts"] = attempt
        if pool_broken:
            # retrying on this executor is futile — every submit would
            # fail instantly; hand the record back so the caller can
            # rebuild the pool and decide about the remaining budget
            record["pool_broken"] = True
            return record
        if record["status"] == "ok" or attempt > retries:
            return record
        if on_retry is not None:
            on_retry(attempt, record.get("error"))
        if backoff:
            await asyncio.sleep(backoff * (2 ** (attempt - 1)))


@dataclass
class CampaignRunResult:
    """What one :func:`run_campaign` invocation did."""

    spec_hash: str
    total: int
    executed: int
    skipped: int
    failed: list = field(default_factory=list)
    wall_time: float = 0.0
    store: Optional[ArtifactStore] = None

    @property
    def ok(self) -> bool:
        return not self.failed


def _kill_executor(executor: ProcessPoolExecutor) -> None:
    """Hard-stop a pool whose worker may be hung.

    ``shutdown(cancel_futures=True)`` cannot interrupt a *running* call,
    so the worker processes are killed first; the broken pool is then
    discarded.  (``_processes`` is a CPython implementation detail, but it
    is the only per-process handle the executor exposes and has been
    stable across every supported version.)
    """
    for proc in list(getattr(executor, "_processes", {}).values()):
        try:
            proc.kill()
        except Exception:  # pragma: no cover - already-dead race
            pass
    executor.shutdown(wait=False, cancel_futures=True)


def _failure_record(payload: dict, attempts: int, error: str) -> dict:
    return {
        "job_hash": payload["job_hash"],
        "status": "failed",
        "job": payload["job"],
        "params": payload["params"],
        "seed_index": payload["seed_index"],
        "index": payload["index"],
        "attempts": attempts,
        "error": error,
    }


def _notify(progress: Optional[Callable], event: str, **info) -> None:
    if progress is not None:
        progress(event, info)


def _run_inline(
    pending: list[dict],
    spec: CampaignSpec,
    store: ArtifactStore,
    progress: Optional[Callable],
) -> list[str]:
    """workers=0: execute sequentially in-process (the baseline path —
    same artifacts, no pool)."""
    failed = []
    for payload in pending:
        record = None
        for attempt in range(1, spec.retries + 2):
            record = execute_job(payload)
            record["attempts"] = attempt
            if record["status"] == "ok":
                break
            _notify(
                progress, "job_retry", job_hash=payload["job_hash"],
                attempt=attempt, error=record.get("error"),
            )
            if attempt <= spec.retries and spec.backoff:
                time.sleep(spec.backoff * (2 ** (attempt - 1)))
        if record["status"] == "ok":
            store.append(record)
            _notify(progress, "job_done", job_hash=payload["job_hash"])
        else:
            store.append(
                _failure_record(
                    payload, record["attempts"], record.get("error", "?")
                )
            )
            failed.append(payload["job_hash"])
            _notify(progress, "job_failed", job_hash=payload["job_hash"])
    return failed


def _run_pooled(
    pending: list[dict],
    spec: CampaignSpec,
    store: ArtifactStore,
    workers: int,
    progress: Optional[Callable],
    poll_interval: float,
) -> list[str]:
    """The windowed executor loop (see module docstring)."""
    failed: list[str] = []
    attempts: dict[str, int] = {}
    queue = deque(pending)
    backoff_heap: list[tuple[float, int, dict]] = []  # (ready_at, tiebreak, payload)
    tiebreak = 0
    inflight: dict = {}  # future -> (payload, started_at)
    executor = ProcessPoolExecutor(max_workers=workers)

    def submit(payload: dict) -> None:
        fut = executor.submit(execute_job, payload)
        inflight[fut] = (payload, time.monotonic())

    def reschedule(payload: dict, error: str) -> None:
        nonlocal tiebreak
        n = attempts[payload["job_hash"]]
        if n <= spec.retries:
            _notify(
                progress, "job_retry", job_hash=payload["job_hash"],
                attempt=n, error=error,
            )
            delay = spec.backoff * (2 ** (n - 1)) if spec.backoff else 0.0
            tiebreak += 1
            heapq.heappush(
                backoff_heap, (time.monotonic() + delay, tiebreak, payload)
            )
        else:
            store.append(_failure_record(payload, n, error))
            failed.append(payload["job_hash"])
            _notify(progress, "job_failed", job_hash=payload["job_hash"])

    def rebuild_pool() -> None:
        nonlocal executor
        _kill_executor(executor)
        # innocent in-flight jobs go back to the head of the queue with
        # fresh timers and no attempt charged — their worker was healthy
        for payload, _ in inflight.values():
            queue.appendleft(payload)
        inflight.clear()
        executor = ProcessPoolExecutor(max_workers=workers)

    try:
        while queue or inflight or backoff_heap:
            now = time.monotonic()
            while backoff_heap and backoff_heap[0][0] <= now:
                queue.append(heapq.heappop(backoff_heap)[2])
            while queue and len(inflight) < workers:
                payload = queue.popleft()
                try:
                    submit(payload)
                except BrokenProcessPool:
                    # the pool broke under an earlier crash before wait()
                    # could report it; this job never ran — no attempt
                    queue.appendleft(payload)
                    rebuild_pool()
            if not inflight:
                if backoff_heap:
                    time.sleep(
                        max(0.0, min(backoff_heap[0][0] - time.monotonic(), 0.2))
                    )
                continue

            done, _ = wait(
                inflight, timeout=poll_interval, return_when=FIRST_COMPLETED
            )
            pool_broken = False
            for fut in done:
                payload, _ = inflight.pop(fut)
                key = payload["job_hash"]
                attempts[key] = attempts.get(key, 0) + 1
                try:
                    record = fut.result()
                except BrokenProcessPool:
                    pool_broken = True
                    reschedule(payload, "worker process died (pool broken)")
                    continue
                except Exception as exc:  # pragma: no cover - defensive
                    pool_broken = True
                    reschedule(payload, f"executor failure: {exc!r}")
                    continue
                if record["status"] == "ok":
                    record["attempts"] = attempts[key]
                    store.append(record)
                    _notify(progress, "job_done", job_hash=key)
                else:
                    reschedule(payload, record.get("error", "?"))
            if pool_broken:
                rebuild_pool()
                continue

            if spec.timeout is not None:
                now = time.monotonic()
                timed_out = [
                    fut
                    for fut, (_, started) in inflight.items()
                    if now - started > spec.timeout
                ]
                if timed_out:
                    # the hung workers can only be stopped by killing the
                    # pool; charge the overdue jobs, spare the rest
                    for fut in timed_out:
                        payload, started = inflight.pop(fut)
                        key = payload["job_hash"]
                        attempts[key] = attempts.get(key, 0) + 1
                        reschedule(
                            payload,
                            f"timeout after {now - started:.2f}s "
                            f"(budget {spec.timeout}s)",
                        )
                    rebuild_pool()
    except BaseException:
        _kill_executor(executor)
        raise
    executor.shutdown(wait=True)
    return failed


def run_campaign(
    spec: CampaignSpec,
    store_dir,
    *,
    workers: Optional[int] = None,
    resume: bool = True,
    progress: Optional[Callable] = None,
    poll_interval: float = 0.05,
) -> CampaignRunResult:
    """Execute every job of ``spec`` into the store at ``store_dir``.

    Parameters
    ----------
    workers:
        Process count.  ``None`` uses the scheduler-visible CPU count;
        ``0`` runs the jobs sequentially in-process (no pool — the
        deterministic baseline the parallel path is conformance-tested
        against).
    resume:
        Skip jobs that already have a completed artifact (default).
        ``resume=False`` re-executes everything; completed artifacts are
        still never displaced (append-only store, ok-wins merge).
    progress:
        Optional ``callback(event, info)`` for ``job_done`` /
        ``job_retry`` / ``job_failed`` notifications.

    Returns a :class:`CampaignRunResult`; inspect ``failed`` (or
    ``result.ok``) for jobs that exhausted their retry budget.  Completed
    work is in the store regardless — a failed campaign is resumable.
    """
    t0 = perf_counter()
    if workers is None:
        try:
            workers = len(os.sched_getaffinity(0))
        except AttributeError:  # pragma: no cover - non-Linux
            workers = os.cpu_count() or 1
    store = ArtifactStore(store_dir)
    store.write_spec(spec)
    jobs = spec.expand()
    done = store.completed_hashes() if resume else set()
    pending = [j.payload() for j in jobs if j.job_hash not in done]
    skipped = len(jobs) - len(pending)
    _notify(
        progress, "campaign_start", total=len(jobs), pending=len(pending),
        skipped=skipped, workers=workers,
    )
    if not pending:
        failed = []
    elif workers == 0:
        failed = _run_inline(pending, spec, store, progress)
    else:
        failed = _run_pooled(
            pending, spec, store, workers, progress, poll_interval
        )
    result = CampaignRunResult(
        spec_hash=spec.spec_hash,
        total=len(jobs),
        executed=len(pending) - len(failed),
        skipped=skipped,
        failed=failed,
        wall_time=perf_counter() - t0,
        store=store,
    )
    _notify(
        progress, "campaign_end", executed=result.executed,
        failed=len(failed), wall_time=result.wall_time,
    )
    return result
