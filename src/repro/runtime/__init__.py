"""Execution engines for FSSGA systems.

* :mod:`repro.runtime.simulator` — reference synchronous and asynchronous
  interpreters (Section 3.4 evolution rules).
* :mod:`repro.runtime.scheduler` — activation orders for the asynchronous
  model (random, round-robin, scripted/adversarial).
* :mod:`repro.runtime.churn` — the topology-dynamics layer: typed
  down/up events, :class:`~repro.runtime.churn.ChurnPlan` schedules, and
  process generators (regional outages, adversarial targeting, growth).
* :mod:`repro.runtime.faults` — decreasing benign fault plans (node/edge
  deletions at scheduled times), now the deletion-only subclass of the
  churn layer.
* :mod:`repro.runtime.vectorized` — a numpy/scipy synchronous engine for
  mod-thresh automata (one sparse mat-mat product per step).
* :mod:`repro.runtime.backends` — the pluggable array-backend layer under
  the engines: one shared counts → atoms → cascades step kernel with
  numpy (default), array-API and optional numba-JIT implementations, all
  bitwise-identical.
* :mod:`repro.runtime.batched` — R independent replicas of one automaton
  evolved in a single stacked computation per step, with spawned
  per-replica RNG streams and per-replica quiescence masks.
* :mod:`repro.runtime.quotient` — the symmetry-quotient engine: one
  simulated representative per automorphism orbit, lifted back to full
  states, at n/k cost on networks with a declared group.
* :mod:`repro.runtime.trace` — execution traces for replay and assertions.
* :mod:`repro.runtime.telemetry` — metrics registry, the typed event
  stream every trace/observer is a view over, and run manifests with
  bitwise deterministic :func:`~repro.runtime.telemetry.replay`.
* :mod:`repro.runtime.message_passing` — the Section 3 remark made
  concrete: local-broadcast message passing simulated with outbox buffers.
* :mod:`repro.runtime.api` — the single front door :func:`run`: engine
  auto-selection, one termination policy, pluggable step observers.
"""

from repro.runtime.api import (
    MetricsObserver,
    RunResult,
    StepObserver,
    TraceObserver,
    run,
    supports_vectorized,
)
from repro.runtime.backends import (
    BACKENDS,
    DEFAULT_MAX_STEPS,
    ArrayBackend,
    ArrayApiBackend,
    NumbaBackend,
    NumpyBackend,
    available_backends,
    resolve_backend,
)
from repro.runtime.batched import (
    BatchedRunResult,
    BatchedSynchronousEngine,
    run_replicas,
)
from repro.runtime.churn import (
    ChurnPlan,
    TopologyEvent,
    adversarial_plan,
    growth_plan,
    random_churn_plan,
    regional_outage_plan,
)
from repro.runtime.faults import FaultEvent, FaultPlan, random_fault_plan
from repro.runtime.scheduler import (
    RandomScheduler,
    RoundRobinScheduler,
    ScriptedScheduler,
    random_fair_rounds,
)
from repro.runtime.simulator import (
    AsynchronousSimulator,
    SynchronousSimulator,
)
from repro.runtime.message_passing import MessagePassingAlgorithm
from repro.runtime.telemetry import (
    EventStream,
    MetricsRegistry,
    ReplayMismatchError,
    RunManifest,
    StepEvent,
    replay,
)
from repro.runtime.quotient import OrbitBroadcastRng, QuotientSynchronousEngine
from repro.runtime.trace import Trace
from repro.runtime.vectorized import VectorizedSynchronousEngine

__all__ = [
    "run",
    "RunResult",
    "StepObserver",
    "TraceObserver",
    "MetricsObserver",
    "supports_vectorized",
    "BatchedRunResult",
    "BatchedSynchronousEngine",
    "run_replicas",
    "FaultEvent",
    "FaultPlan",
    "random_fault_plan",
    "TopologyEvent",
    "ChurnPlan",
    "regional_outage_plan",
    "adversarial_plan",
    "growth_plan",
    "random_churn_plan",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    "random_fair_rounds",
    "AsynchronousSimulator",
    "SynchronousSimulator",
    "MessagePassingAlgorithm",
    "Trace",
    "VectorizedSynchronousEngine",
    "QuotientSynchronousEngine",
    "OrbitBroadcastRng",
    "EventStream",
    "MetricsRegistry",
    "StepEvent",
    "RunManifest",
    "ReplayMismatchError",
    "replay",
    "ArrayBackend",
    "NumpyBackend",
    "ArrayApiBackend",
    "NumbaBackend",
    "BACKENDS",
    "DEFAULT_MAX_STEPS",
    "available_backends",
    "resolve_backend",
]
