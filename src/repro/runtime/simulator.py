"""Reference FSSGA simulators (paper, Section 3.4 evolution rules).

:class:`SynchronousSimulator` applies the successor rule to every node at
once; :class:`AsynchronousSimulator` activates one node at a time under a
pluggable :class:`~repro.runtime.scheduler.Scheduler`.  Both support fault
and churn plans (events applied before the step whose time has arrived —
down events delete topology, up events restore or grow it, with arriving
nodes booting in their event's declared state), execution traces,
deterministic seeding, and probabilistic automata (each activation draws
``i`` uniformly from ``{0, …, r-1}``, n independent draws per synchronous
step, per Definition 3.11).  These simulators *are* the conformance
oracle: they mutate the dict-backed network directly, and the array
engines must match them bitwise.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Optional, Union

import numpy as np

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.network.graph import Network, Node
from repro.network.state import NetworkState
from repro.runtime.backends import DEFAULT_MAX_STEPS
from repro.runtime.churn import ChurnPlan, count_down_events
from repro.runtime.scheduler import RandomScheduler, Scheduler
from repro.runtime.telemetry import MetricsRegistry, coerce_rng
from repro.runtime.trace import Trace

Automaton = Union[FSSGA, ProbabilisticFSSGA]

__all__ = ["SynchronousSimulator", "AsynchronousSimulator"]


class _BaseSimulator:
    def __init__(
        self,
        net: Network,
        automaton: Automaton,
        init: NetworkState,
        rng: Union[int, np.random.Generator, None] = None,
        fault_plan: Optional[ChurnPlan] = None,
        trace: Optional[Trace] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        missing = [v for v in net if v not in init]
        if missing:
            raise ValueError(f"initial state missing for nodes {missing[:5]!r}…")
        self.net = net
        self.automaton = automaton
        self.state = init.copy()
        self.rng = coerce_rng(rng)
        if fault_plan is not None:
            fault_plan.ensure_fresh()  # cursor contract: full schedule re-applies
        self.fault_plan = fault_plan
        self.trace = trace
        self.metrics = metrics
        self.time = 0

    @property
    def probabilistic(self) -> bool:
        return isinstance(self.automaton, ProbabilisticFSSGA)

    def _apply_faults(self) -> list:
        if self.fault_plan is None:
            return []
        return self.fault_plan.apply_due(self.net, self.time, self.state)

    def _successor(self, v: Node) -> object:
        neighbors = Counter(self.state[u] for u in self.net.neighbors(v))
        own = self.state[v]
        if self.probabilistic:
            draw = int(self.rng.integers(self.automaton.randomness))
            return self.automaton.transition(own, neighbors, draw)
        return self.automaton.transition(own, neighbors)

    def run_until(
        self,
        predicate: Callable[[NetworkState], bool],
        max_steps: int = DEFAULT_MAX_STEPS,
    ) -> int:
        """Step until ``predicate(state)`` holds; returns steps taken.

        The predicate is checked *before* each step, so an initially
        satisfied predicate returns 0; at most ``max_steps`` calls to
        :meth:`step` are made before :class:`RuntimeError`.  The return
        value counts executed steps — the same convention as
        :func:`repro.runtime.api.run` (note that :meth:`run_until_stable`
        also counts executed steps, its last one being the no-change step
        that confirms the fixed point).
        """
        for steps in range(max_steps):
            if predicate(self.state):
                return steps
            self.step()
        if predicate(self.state):
            return max_steps
        raise RuntimeError(f"predicate not reached within {max_steps} steps")


class SynchronousSimulator(_BaseSimulator):
    """Lock-step evolution: ``σ'(v) = f[σ(v)](σ(Γ(v)))`` for every v at once."""

    def step(self) -> dict:
        """One synchronous step; returns the ``{node: (old, new)}`` delta."""
        faults = self._apply_faults()
        old = self.state
        changes: dict = {}
        new = NetworkState()
        for v in self.net:
            succ = self._successor(v)
            new[v] = succ
            if succ != old[v]:
                changes[v] = (old[v], succ)
        self.state = new
        if self.trace is not None:
            self.trace.record(self.time, changes, faults, state=new)
        met = self.metrics
        if met is not None:
            met.inc("steps")
            met.inc("node_updates", len(changes))
            if faults:
                downs = count_down_events(faults)
                if downs:
                    met.inc("fault_events", downs)
                met.inc("churn_events", len(faults))
            if self.probabilistic:
                met.inc("rng_draws", len(self.net))
        self.time += 1
        return changes

    def run(self, steps: int) -> None:
        """Run exactly ``steps`` synchronous steps."""
        for _ in range(steps):
            self.step()

    def run_until_stable(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Step until a fixed point (no node changes); returns steps taken.

        Only meaningful for deterministic automata whose executions
        converge; probabilistic automata may never reach a syntactic fixed
        point.  Raises :class:`RuntimeError` at the step budget.
        """
        for steps in range(1, max_steps + 1):
            if not self.step() and (
                self.fault_plan is None or self.fault_plan.exhausted
            ):
                return steps
        raise RuntimeError(f"no fixed point within {max_steps} steps")


class AsynchronousSimulator(_BaseSimulator):
    """One-node-at-a-time evolution under a scheduler.

    ``time`` counts individual activations.  :meth:`run_fair_rounds` runs
    whole "units of time" in which every live node activates exactly once in
    a random order — the fairness assumption of the synchronizer analysis.
    """

    def __init__(
        self,
        net: Network,
        automaton: Automaton,
        init: NetworkState,
        scheduler: Optional[Scheduler] = None,
        rng: Union[int, np.random.Generator, None] = None,
        fault_plan: Optional[ChurnPlan] = None,
        trace: Optional[Trace] = None,
        metrics: Optional[MetricsRegistry] = None,
    ) -> None:
        super().__init__(net, automaton, init, rng, fault_plan, trace, metrics)
        self.scheduler = scheduler if scheduler is not None else RandomScheduler()

    def step(self) -> dict:
        """Activate one scheduled node; returns the (≤1 entry) delta."""
        faults = self._apply_faults()
        v = self.scheduler.next_node(self.net, self.state, self.time, self.rng)
        changes: dict = {}
        if v is not None:
            old = self.state[v]
            new = self._successor(v)
            if new != old:
                self.state.set(v, new)
                changes[v] = (old, new)
        if self.trace is not None:
            self.trace.record(self.time, changes, faults, state=self.state)
        met = self.metrics
        if met is not None:
            met.inc("steps")
            met.inc("node_updates", len(changes))
            if faults:
                downs = count_down_events(faults)
                if downs:
                    met.inc("fault_events", downs)
                met.inc("churn_events", len(faults))
            if self.probabilistic and v is not None:
                met.inc("rng_draws")
        self.time += 1
        return changes

    def run(self, activations: int) -> None:
        for _ in range(activations):
            self.step()

    def run_fair_rounds(self, rounds: int) -> None:
        """Run ``rounds`` units of time: per unit, every live node activates
        exactly once in a fresh random order (overrides the scheduler)."""
        for _ in range(rounds):
            order = self.net.nodes()
            self.rng.shuffle(order)
            for v in order:
                faults = self._apply_faults()
                changes: dict = {}
                if v in self.net:
                    old = self.state[v]
                    new = self._successor(v)
                    if new != old:
                        self.state.set(v, new)
                        changes[v] = (old, new)
                if self.trace is not None:
                    self.trace.record(self.time, changes, faults, state=self.state)
                self.time += 1
