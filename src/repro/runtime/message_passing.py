"""Message passing over read-all state communication (paper, Section 3).

The paper's remark: "we note that this model can simulate the ubiquitous
message-passing model, by using message buffers."  This module makes the
construction concrete for *local-broadcast* message passing — the variant
compatible with the model's symmetry: a node cannot address an individual
neighbour (it cannot even distinguish them), but it can publish a message
that all neighbours read.

Encoding: each node's FSSGA state is the pair ``(algorithm state,
outbox)`` where the outbox holds the multiset of messages published this
round, drawn from a finite message alphabet with bounded multiplicity —
so the composite alphabet stays finite.  One synchronous FSSGA step
implements one message-passing round: every node reads the multiset union
of its neighbours' outboxes (a symmetric read), runs its handler, and
replaces its own outbox with the handler's sends.

The handler interface mirrors a classic message-passing algorithm::

    def handler(state, inbox: Counter) -> (new_state, messages_to_send)

where ``inbox`` counts received messages and ``messages_to_send`` is an
iterable of messages broadcast to all neighbours next round.

Limits (inherent to the model, documented rather than hidden):

* point-to-point sends need neighbour identity, which (S2) forbids; any
  routing must be expressed through message *content* (as the paper's
  algorithms do, e.g. BFS labels);
* the outbox multiplicity is capped (default 1 per message type): a
  finite-state node cannot count unboundedly many pending messages.
"""

from __future__ import annotations

from collections import Counter
from typing import Callable, Hashable, Iterable, Union

import numpy as np

from repro.core.automaton import FSSGA, NeighborhoodView
from repro.network.graph import Network
from repro.network.state import NetworkState

State = Hashable
Message = Hashable

#: handler(state, inbox) -> (new_state, iterable of messages)
Handler = Callable[[State, Counter], tuple]

__all__ = ["MessagePassingAlgorithm", "as_fssga", "run_rounds"]


class MessagePassingAlgorithm:
    """A local-broadcast message-passing algorithm.

    Parameters
    ----------
    states:
        The finite algorithm-state set.
    messages:
        The finite message alphabet.
    handler:
        The per-round transition (see module docstring).
    outbox_cap:
        Maximum multiplicity of each message type in an outbox (keeps the
        composite FSSGA alphabet finite).  Extra copies are dropped.
    """

    def __init__(
        self,
        states: Iterable[State],
        messages: Iterable[Message],
        handler: Handler,
        outbox_cap: int = 1,
    ) -> None:
        self.states = frozenset(states)
        self.messages = frozenset(messages)
        if not self.states:
            raise ValueError("need at least one algorithm state")
        if outbox_cap < 1:
            raise ValueError("outbox_cap must be >= 1")
        self.handler = handler
        self.outbox_cap = outbox_cap

    def encode(self, state: State, sends: Iterable[Message] = ()) -> tuple:
        """The composite FSSGA state ``(state, outbox)``."""
        counts = Counter(sends)
        unknown = set(counts) - self.messages
        if unknown:
            raise ValueError(f"messages outside the alphabet: {sorted(map(repr, unknown))}")
        outbox = tuple(
            sorted(
                ((m, min(c, self.outbox_cap)) for m, c in counts.items() if c),
                key=repr,
            )
        )
        if state not in self.states:
            raise ValueError(f"state {state!r} not in the algorithm's state set")
        return (state, outbox)


def as_fssga(algo: MessagePassingAlgorithm, name: str = "") -> FSSGA:
    """The FSSGA simulating one message-passing round per synchronous step.

    The rule reconstructs each neighbour's published outbox from the
    composite states (a symmetric read: only the multiset of neighbour
    states is used) and feeds the merged inbox to the handler.
    """

    class _Space:
        def __contains__(self, q: object) -> bool:
            if not (isinstance(q, tuple) and len(q) == 2):
                return False
            state, outbox = q
            if state not in algo.states or not isinstance(outbox, tuple):
                return False
            for item in outbox:
                if not (isinstance(item, tuple) and len(item) == 2):
                    return False
                m, c = item
                if m not in algo.messages or not 1 <= c <= algo.outbox_cap:
                    return False
            return True

        def __len__(self) -> int:
            return len(algo.states) * (algo.outbox_cap + 1) ** len(algo.messages)

    def rule(own: tuple, view: NeighborhoodView) -> tuple:
        state, _outbox = own
        # Merge the neighbours' outboxes into the inbox.  The exact counts
        # are engine-level bookkeeping: a *finite-state* handler must read
        # the inbox only through bounded thresholds/mods (counts of each
        # message are finite sums of composite-state multiplicities, so
        # such queries expand to mod-thresh atoms, as in the synchronizer
        # wrapper); handing the handler a Counter keeps its code natural.
        inbox: Counter = Counter()
        for (q_state, outbox), count in view._counts.items():
            for m, c in outbox:
                inbox[m] += c * count
        new_state, sends = algo.handler(state, inbox)
        return algo.encode(new_state, sends)

    return FSSGA(_Space(), rule, name=name or "message-passing")


def run_rounds(
    net: Network,
    algo: MessagePassingAlgorithm,
    init: dict,
    rounds: int,
    rng: Union[int, np.random.Generator, None] = None,
) -> NetworkState:
    """Convenience: run ``rounds`` message-passing rounds.

    ``init`` maps each node to its starting ``(state, sends)`` pair (or
    just a state, meaning an empty outbox).
    """
    from repro.runtime.simulator import SynchronousSimulator

    def lift(v):
        val = init[v]
        try:
            if val in algo.states:
                return algo.encode(val)
        except TypeError:
            pass  # unhashable -> must be a (state, sends) pair
        state, sends = val
        return algo.encode(state, sends)

    start = NetworkState({v: lift(v) for v in net})
    sim = SynchronousSimulator(net, as_fssga(algo), start, rng=rng)
    sim.run(rounds)
    return NetworkState({v: q for v, q in sim.state.items()})
