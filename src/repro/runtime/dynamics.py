"""Orbit analysis of deterministic FSSGA dynamics.

A deterministic synchronous FSSGA on a finite network is a function on a
finite set of global states, so every execution is eventually periodic:
a *transient* of length t followed by a *cycle* of length p (a fixed
point iff p = 1).  :func:`find_orbit` measures (t, p) by Brent's
algorithm over global states — the tool that turns observations like
"the paper's verbatim 2-colouring oscillates with period 2" into a
one-line assertion.

Only meaningful for deterministic automata on fault-free networks (the
dynamics must be a function of the state alone).
"""

from __future__ import annotations

from typing import NamedTuple

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.runtime.backends import DEFAULT_MAX_STEPS
from repro.runtime.simulator import SynchronousSimulator

__all__ = ["Orbit", "find_orbit"]


class Orbit(NamedTuple):
    """The eventual periodicity of a synchronous execution."""

    transient: int  # steps before entering the cycle
    period: int  # cycle length (1 = fixed point)

    @property
    def reaches_fixed_point(self) -> bool:
        return self.period == 1


def _freeze(state: NetworkState) -> frozenset:
    return frozenset(state.items())


def find_orbit(
    net: Network,
    automaton: FSSGA,
    init: NetworkState,
    max_steps: int = DEFAULT_MAX_STEPS,
) -> Orbit:
    """The (transient, period) of the synchronous orbit from ``init``.

    Uses a hash-map cycle finder: every global state is recorded with its
    first-visit time; the first revisit closes the cycle.  Memory is
    O(transient + period) global states — fine for the small networks
    where exhaustive dynamics questions arise.
    """
    if isinstance(automaton, ProbabilisticFSSGA):
        raise TypeError("orbit analysis requires a deterministic automaton")
    sim = SynchronousSimulator(net, automaton, init)
    seen: dict[frozenset, int] = {_freeze(sim.state): 0}
    for step in range(1, max_steps + 1):
        sim.step()
        key = _freeze(sim.state)
        if key in seen:
            first = seen[key]
            return Orbit(transient=first, period=step - first)
        seen[key] = step
    raise RuntimeError(f"no cycle found within {max_steps} steps")
