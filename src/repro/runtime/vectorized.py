"""Vectorized synchronous engine over the shared compiler IR.

The hot loop of a synchronous FSSGA step is, for every node, counting the
multiplicity of each state among its neighbours.  With states encoded as
integers ``0..s-1`` and the state vector one-hot encoded, the whole count
table is a single sparse mat-mat product::

    counts = A @ one_hot(σ)        # (n × s), counts[v, q] = μ_q(Γ(v))

The engine executes a :class:`~repro.core.ir.CompiledAutomaton` — anything
:func:`repro.core.ir.lower` accepts (mod-thresh program mappings, automata
built from programs of any Theorem 3.7 form, rule-based automata declaring
``compile_hints``) runs here.  The counts → atom-table → cascade hot loop
itself lives behind the pluggable
:class:`~repro.runtime.backends.ArrayBackend` seam (``backend="auto"``
selects the extracted numpy/scipy code, bitwise-identical to the historical
inline loops); this module keeps everything around it: CSR construction,
fault masking, live-node slicing, telemetry and state decoding.  It is
benchmarked against the reference interpreter in
``benchmarks/bench_engines.py`` (experiment E15) and across backends in
``benchmarks/bench_backends.py`` (experiment E21).

Fault plans are lowered rather than interpreted: events fire against the
live :class:`~repro.network.graph.Network` *before* the step whose time has
arrived (the reference contract), and each topology change updates an
incremental :class:`_FaultMask` over the construction-time CSR — node
faults flip alive flags, edge faults zero the two stored entries — so a
fault costs O(faults + nnz) slicing instead of an O(n + m) Python re-export
of the whole adjacency.  Between fault firings the step kernel runs on the
live-compacted arrays at full vector speed; dead nodes are excluded from
counts, draws and decoding, so probabilistic executions stay
bitwise-identical to the reference interpreter, which draws once per live
node in insertion order.

The proposition/cascade evaluators formerly defined here moved to
:mod:`repro.runtime.backends.kernels`; the historical private names
(``_prop_bool``, ``_AtomTable``, ``_ctree_bool``, ``_resolve_compiled``)
remain as re-export shims for existing importers.  They stay shape-generic
over any counts tensor whose *last* axis indexes the alphabet, so the
batched engine reuses them on ``(R, n, s)`` replica stacks with no code
divergence between the single-replica and batched paths.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional, Union

import numpy as np
from scipy import sparse

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.ir import CompiledAutomaton, lower
from repro.core.modthresh import ModThreshProgram
from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.runtime.backends import (
    DEFAULT_MAX_STEPS,
    ArrayBackend,
    resolve_backend,
)
from repro.runtime.backends.kernels import (
    AtomTable,
    ctree_bool,
    prop_bool,
    resolve_compiled,
)
from repro.runtime.faults import FaultPlan
from repro.runtime.telemetry import MetricsRegistry, coerce_rng

__all__ = ["VectorizedSynchronousEngine"]

# Historical private names, now shared by all engines via the backends
# package.  Kept as shims so pre-backend importers keep working.
_AtomTable = AtomTable
_prop_bool = prop_bool
_ctree_bool = ctree_bool
_resolve_compiled = resolve_compiled


# ----------------------------------------------------------------------
# shared machinery (used by both the single-replica and batched engines)
# ----------------------------------------------------------------------
def _normalize_programs(
    programs: Union[Mapping, FSSGA, ProbabilisticFSSGA],
    randomness: Optional[int],
) -> tuple[dict, bool, int]:
    """Unpack automata/mappings into ``(programs, probabilistic, r)``.

    Retained for callers that want the raw program dict; the engines
    themselves now go through :func:`repro.core.ir.lower`.
    """
    if isinstance(programs, FSSGA):
        if programs.is_rule_based:
            raise TypeError(
                "vectorized engine needs explicit ModThreshPrograms; "
                "declare compile_hints on rule-based automata (or compile "
                "them with repro.core.compile) first"
            )
        programs = programs._programs  # program dict
    elif isinstance(programs, ProbabilisticFSSGA):
        if programs.is_rule_based:
            raise TypeError(
                "vectorized engine needs explicit ModThreshPrograms; "
                "declare compile_hints on rule-based automata (or compile "
                "them with repro.core.compile) first"
            )
        randomness = programs.randomness
        programs = programs._programs

    keys = list(programs.keys())
    probabilistic = bool(keys) and isinstance(keys[0], tuple) and (
        randomness is not None
    )
    if probabilistic:
        if randomness is None or randomness < 1:
            raise ValueError("probabilistic programs need randomness >= 1")
        randomness = int(randomness)
    else:
        randomness = 1
    return dict(programs), probabilistic, randomness


def _build_alphabet(programs: Mapping, probabilistic: bool) -> list:
    """Own states plus anything the programs can output, sorted by repr."""
    if probabilistic:
        own_states = {k[0] for k in programs}
    else:
        own_states = set(programs)
    alphabet = set(own_states)
    for prog in programs.values():
        if not isinstance(prog, ModThreshProgram):
            raise TypeError(f"expected ModThreshProgram, got {type(prog)!r}")
        alphabet.update(prog.results())
    return sorted(alphabet, key=repr)


def _resolve_program(
    prog: ModThreshProgram,
    counts: np.ndarray,
    mask: np.ndarray,
    new_sigma: np.ndarray,
    code: Mapping,
) -> None:
    """Resolve one source-form cascade for the masked entries into ``new_sigma``.

    ``np.select`` has exactly the first-match semantics of a Definition 3.6
    cascade, evaluated for every entry of the leading shape at once.
    """
    if not prog.clauses:
        new_sigma[mask] = code[prog.default]
        return
    conds = [prop_bool(p, counts, code) for p, _ in prog.clauses]
    out = np.select(
        conds,
        [np.int64(code[r]) for _, r in prog.clauses],
        default=np.int64(code[prog.default]),
    )
    new_sigma[mask] = out[mask]


class _FaultMask:
    """A fault plan lowered to alive-node / alive-edge masks over the
    construction-time CSR.

    Node faults flip an alive flag; edge faults zero the edge's two stored
    entries (the matrix is copy-on-first-edge-fault, so fault-free and
    node-fault-only runs never duplicate the adjacency).  ``live_view``
    slices the masked matrix down to the surviving rows/columns — stored
    zeros contribute nothing to neighbour counts or degree sums, so the
    sliced view is numerically identical to re-exporting the mutated
    network, at O(nnz) array cost instead of an O(n + m) Python rebuild.
    Live positions stay in construction order (ascending original row),
    preserving the cross-engine draw-order contract.
    """

    __slots__ = ("_A", "_alive", "_pos0", "_copied")

    def __init__(self, adjacency: sparse.csr_matrix, pos0: Mapping) -> None:
        self._A = adjacency
        self._alive = np.ones(adjacency.shape[0], dtype=bool)
        self._pos0 = pos0
        self._copied = False

    def apply(self, fired: list) -> None:
        """Fold applied fault events into the masks."""
        for ev in fired:
            if ev.kind == "node":
                self._alive[self._pos0[ev.target]] = False
            else:
                if not self._copied:
                    self._A = self._A.copy()
                    self._copied = True
                u, v = ev.target
                for a, b in ((u, v), (v, u)):
                    i, j = self._pos0[a], self._pos0[b]
                    lo, hi = self._A.indptr[i], self._A.indptr[i + 1]
                    hit = np.nonzero(self._A.indices[lo:hi] == j)[0]
                    self._A.data[lo + hit] = 0

    def live_view(self) -> tuple[np.ndarray, sparse.csr_matrix, np.ndarray]:
        """``(live_positions, live_adjacency, live_degrees)``."""
        live = np.flatnonzero(self._alive)
        sub = self._A[live][:, live]
        deg = np.asarray(sub.sum(axis=1)).ravel()
        return live, sub, deg


class VectorizedSynchronousEngine:
    """Synchronous FSSGA evolution with numpy/scipy inner loops.

    Parameters
    ----------
    net:
        The network.  With a ``fault_plan`` the engine mutates ``net``
        exactly as the reference simulator does (events fire before the
        step whose time has arrived) and recomputes its live-node arrays
        at each topology change.
    programs:
        Anything :func:`repro.core.ir.lower` accepts: ``{q:
        ModThreshProgram}``, ``{(q, i): ModThreshProgram}`` (then
        ``randomness`` must be given), an :class:`FSSGA` /
        :class:`ProbabilisticFSSGA` built from programs of any Theorem 3.7
        form, a rule-based automaton declaring ``compile_hints``, or a
        pre-lowered :class:`~repro.core.ir.CompiledAutomaton`.
    init:
        Initial :class:`~repro.network.state.NetworkState`.
    randomness:
        ``r`` of Definition 3.11 for probabilistic program mappings.
    rng:
        Seed or Generator for probabilistic draws.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` lowered into
        per-step live-node masks.  A plan whose cursor was already
        consumed by a previous run is auto-reset.
    metrics:
        Optional :class:`~repro.runtime.telemetry.MetricsRegistry`
        receiving the engine-agnostic counters (``steps``,
        ``node_updates``, ``rng_draws``, ``fault_events``).  ``None``
        (default) costs one branch per step.  The resolved backend name
        is recorded as the registry's ``backend`` tag.
    backend:
        Which :class:`~repro.runtime.backends.ArrayBackend` executes the
        counts → atoms → cascades hot loop: ``"auto"`` / ``"numpy"`` (the
        bitwise-reference default), ``"array-api"``, ``"numba"`` (raises
        :class:`~repro.core.ir.BackendLoweringError` with blocker
        ``"numba-unavailable"`` when numba is missing), or a live
        :class:`~repro.runtime.backends.ArrayBackend` instance.
    """

    def __init__(
        self,
        net: Network,
        programs: Union[Mapping, FSSGA, ProbabilisticFSSGA, CompiledAutomaton],
        init: NetworkState,
        randomness: Optional[int] = None,
        rng: Union[int, np.random.Generator, None] = None,
        fault_plan: Optional[FaultPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Union[str, ArrayBackend, None] = "auto",
    ) -> None:
        self._ir = lower(programs, randomness)
        self._probabilistic = self._ir.probabilistic
        self.randomness = self._ir.randomness
        self.alphabet: list = list(self._ir.alphabet)
        self._code = dict(self._ir.code)
        self._programs = dict(self._ir.source_programs)

        self._net = net
        self.adjacency, self._order = net.to_csr()
        self._n = len(self._order)
        self.rng = coerce_rng(rng)
        self.time = 0

        sigma = np.empty(self._n, dtype=np.int64)
        for idx, v in enumerate(self._order):
            sigma[idx] = self._code[init[v]]
        self._sigma = sigma
        self._degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()

        if fault_plan is not None and fault_plan.consumed:
            fault_plan.reset()  # a reused plan re-applies its full schedule
        self.fault_plan = fault_plan
        self.backend = resolve_backend(backend)
        self.metrics = metrics
        if metrics is not None:
            metrics.set_tag("backend", self.backend.name)
        self.last_faults: list = []
        # original row of each node, for scattering live-subset results back
        self._pos0 = {v: i for i, v in enumerate(self._order)}
        self._fault_mask: Optional[_FaultMask] = None
        self._live_pos: Optional[np.ndarray] = None  # None ⇒ no fault yet
        self._live_adj = self.adjacency
        self._live_deg = self._degrees

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Node count at construction (dead nodes keep their rows)."""
        return self._n

    @property
    def live_count(self) -> int:
        """Nodes currently alive (== rng draws consumed per step)."""
        return self._n if self._live_pos is None else len(self._live_pos)

    def _one_hot(self) -> sparse.csr_matrix:
        n = self._n
        data = np.ones(n, dtype=np.int64)
        return sparse.csr_matrix(
            (data, (np.arange(n), self._sigma)), shape=(n, len(self.alphabet))
        )

    def _refresh_topology(self, fired: list) -> None:
        """Fold fired fault events into the incremental live masks."""
        if self._fault_mask is None:
            self._fault_mask = _FaultMask(self.adjacency, self._pos0)
        self._fault_mask.apply(fired)
        self._live_pos, self._live_adj, self._live_deg = (
            self._fault_mask.live_view()
        )

    def step(self) -> bool:
        """One synchronous step; returns True iff any live node changed."""
        self.last_faults = []
        if self.fault_plan is not None:
            fired = self.fault_plan.apply_due(self._net, self.time)
            if fired:
                self.last_faults = fired
                self._refresh_topology(fired)

        if self._live_pos is None:
            sig = self._sigma
            adj, deg = self.adjacency, self._degrees
        else:
            sig = self._sigma[self._live_pos]
            adj, deg = self._live_adj, self._live_deg
        m = sig.shape[0]
        live = deg > 0
        if self._probabilistic:
            # one draw per live node, matching the reference interpreter's
            # per-node draw order (insertion order == CSR row order)
            draws = self.backend.draw(self.rng, self.randomness, m)
        else:
            draws = None
        new_sig = self.backend.step(adj, sig, live, draws, self._ir)
        met = self.metrics
        if met is None:
            changed = self.backend.any_changed(new_sig, sig)
        else:
            updates = self.backend.updates(new_sig, sig)
            changed = updates > 0
            met.inc("steps")
            met.inc("node_updates", updates)
            if self._probabilistic:
                met.inc("rng_draws", m)
            if self.last_faults:
                met.inc("fault_events", len(self.last_faults))
        if self._live_pos is None:
            self._sigma = new_sig
        else:
            full = self._sigma.copy()
            full[self._live_pos] = new_sig
            self._sigma = full
        self.time += 1
        return changed

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def run_until_stable(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Step to a fixed point; returns steps taken (deterministic only).

        With a fault plan, stability additionally requires the plan to be
        exhausted (a pending fault can destabilise a fixed point)."""
        for steps in range(1, max_steps + 1):
            changed = self.step()
            if not changed and (
                self.fault_plan is None or self.fault_plan.exhausted
            ):
                return steps
        raise RuntimeError(f"no fixed point within {max_steps} steps")

    # ------------------------------------------------------------------
    @property
    def state(self) -> NetworkState:
        """Decode the current σ (live nodes only) to a :class:`NetworkState`."""
        if self._live_pos is None:
            return NetworkState(
                {v: self.alphabet[self._sigma[i]] for i, v in enumerate(self._order)}
            )
        return NetworkState(
            {v: self.alphabet[self._sigma[self._pos0[v]]] for v in self._net}
        )

    def state_counts(self) -> dict:
        """Multiplicity of each alphabet state over live nodes (vectorized)."""
        sig = self._sigma if self._live_pos is None else self._sigma[self._live_pos]
        binc = np.bincount(sig, minlength=len(self.alphabet))
        return {q: int(binc[i]) for i, q in enumerate(self.alphabet)}
