"""Vectorized synchronous engine over the shared compiler IR.

The hot loop of a synchronous FSSGA step is, for every node, counting the
multiplicity of each state among its neighbours.  With states encoded as
integers ``0..s-1`` and the state vector one-hot encoded, the whole count
table is a single sparse mat-mat product::

    counts = A @ one_hot(σ)        # (n × s), counts[v, q] = μ_q(Γ(v))

The engine executes a :class:`~repro.core.ir.CompiledAutomaton` — anything
:func:`repro.core.ir.lower` accepts (mod-thresh program mappings, automata
built from programs of any Theorem 3.7 form, rule-based automata declaring
``compile_hints``) runs here.  The counts → atom-table → cascade hot loop
itself lives behind the pluggable
:class:`~repro.runtime.backends.ArrayBackend` seam (``backend="auto"``
selects the extracted numpy/scipy code, bitwise-identical to the historical
inline loops); this module keeps everything around it: CSR construction,
fault masking, live-node slicing, telemetry and state decoding.  It is
benchmarked against the reference interpreter in
``benchmarks/bench_engines.py`` (experiment E15) and across backends in
``benchmarks/bench_backends.py`` (experiment E21).

Churn plans (and their deletion-only :class:`FaultPlan` subclass) are
lowered rather than interpreted: events fire against the live
:class:`~repro.network.graph.Network` *before* the step whose time has
arrived (the reference contract), and each topology change updates an
incremental :class:`_ChurnMask` over the construction-time CSR — down
events flip alive flags or zero the edge's two stored entries, up events
flip them back — so a topology change costs O(events + nnz) slicing
instead of an O(n + m) Python re-export of the whole adjacency.  Plans
that *add* topology (``node-up`` / ``edge-up``) lower their **union**
topology into the construction-time CSR with not-yet-arrived entries
masked dead, so arrivals also stay on the vector fast path.  Between
event firings the step kernel runs on the live-compacted arrays at full
vector speed; dead nodes are excluded from counts, draws and decoding,
and arrivals are drawn for in reference re-insertion order, so
probabilistic executions stay bitwise-identical to the reference
interpreter, which draws once per live node in insertion order.

The proposition/cascade evaluators formerly defined here moved to
:mod:`repro.runtime.backends.kernels`; the historical private names
(``_prop_bool``, ``_AtomTable``, ``_ctree_bool``, ``_resolve_compiled``)
remain as re-export shims for existing importers.  They stay shape-generic
over any counts tensor whose *last* axis indexes the alphabet, so the
batched engine reuses them on ``(R, n, s)`` replica stacks with no code
divergence between the single-replica and batched paths.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional, Union

import numpy as np
from scipy import sparse

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.ir import CompiledAutomaton, lower
from repro.core.modthresh import ModThreshProgram
from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.runtime.backends import (
    DEFAULT_MAX_STEPS,
    ArrayBackend,
    resolve_backend,
)
from repro.runtime.backends.kernels import (
    AtomTable,
    ctree_bool,
    prop_bool,
    resolve_compiled,
)
from repro.runtime.churn import (
    EDGE_DOWN,
    EDGE_UP,
    NODE_DOWN,
    NODE_UP,
    ChurnPlan,
    canonical_kind,
    count_down_events,
)
from repro.runtime.telemetry import MetricsRegistry, coerce_rng

__all__ = ["VectorizedSynchronousEngine"]

# Historical private names, now shared by all engines via the backends
# package.  Kept as shims so pre-backend importers keep working.
_AtomTable = AtomTable
_prop_bool = prop_bool
_ctree_bool = ctree_bool
_resolve_compiled = resolve_compiled


# ----------------------------------------------------------------------
# shared machinery (used by both the single-replica and batched engines)
# ----------------------------------------------------------------------
def _normalize_programs(
    programs: Union[Mapping, FSSGA, ProbabilisticFSSGA],
    randomness: Optional[int],
) -> tuple[dict, bool, int]:
    """Unpack automata/mappings into ``(programs, probabilistic, r)``.

    Retained for callers that want the raw program dict; the engines
    themselves now go through :func:`repro.core.ir.lower`.
    """
    if isinstance(programs, FSSGA):
        if programs.is_rule_based:
            raise TypeError(
                "vectorized engine needs explicit ModThreshPrograms; "
                "declare compile_hints on rule-based automata (or compile "
                "them with repro.core.compile) first"
            )
        programs = programs._programs  # program dict
    elif isinstance(programs, ProbabilisticFSSGA):
        if programs.is_rule_based:
            raise TypeError(
                "vectorized engine needs explicit ModThreshPrograms; "
                "declare compile_hints on rule-based automata (or compile "
                "them with repro.core.compile) first"
            )
        randomness = programs.randomness
        programs = programs._programs

    keys = list(programs.keys())
    probabilistic = bool(keys) and isinstance(keys[0], tuple) and (
        randomness is not None
    )
    if probabilistic:
        if randomness is None or randomness < 1:
            raise ValueError("probabilistic programs need randomness >= 1")
        randomness = int(randomness)
    else:
        randomness = 1
    return dict(programs), probabilistic, randomness


def _build_alphabet(programs: Mapping, probabilistic: bool) -> list:
    """Own states plus anything the programs can output, sorted by repr."""
    if probabilistic:
        own_states = {k[0] for k in programs}
    else:
        own_states = set(programs)
    alphabet = set(own_states)
    for prog in programs.values():
        if not isinstance(prog, ModThreshProgram):
            raise TypeError(f"expected ModThreshProgram, got {type(prog)!r}")
        alphabet.update(prog.results())
    return sorted(alphabet, key=repr)


def _resolve_program(
    prog: ModThreshProgram,
    counts: np.ndarray,
    mask: np.ndarray,
    new_sigma: np.ndarray,
    code: Mapping,
) -> None:
    """Resolve one source-form cascade for the masked entries into ``new_sigma``.

    ``np.select`` has exactly the first-match semantics of a Definition 3.6
    cascade, evaluated for every entry of the leading shape at once.
    """
    if not prog.clauses:
        new_sigma[mask] = code[prog.default]
        return
    conds = [prop_bool(p, counts, code) for p, _ in prog.clauses]
    out = np.select(
        conds,
        [np.int64(code[r]) for _, r in prog.clauses],
        default=np.int64(code[prog.default]),
    )
    new_sigma[mask] = out[mask]


class _ChurnMask:
    """A churn plan lowered to alive-node / alive-edge masks over the
    construction-time CSR.

    For deletion-only plans this is the historical fault mask: node-down
    flips an alive flag, edge-down zeros the edge's two stored entries
    (the matrix is copy-on-first-data-mutation, so fault-free and
    node-fault-only runs never duplicate the adjacency), and ``live_view``
    slices the masked matrix down to the surviving rows/columns — stored
    zeros contribute nothing to neighbour counts or degree sums, so the
    sliced view is numerically identical to re-exporting the mutated
    network, at O(nnz) array cost instead of an O(n + m) Python rebuild.

    Plans that *add* topology lower through the same representation: the
    engine exports the plan's **union topology** (every node and edge the
    schedule can ever produce) as the construction-time CSR, not-yet-
    arrived rows start with ``initial_alive`` False and their edge entries
    stored as explicit zeros, and up events flip flags/entries back on —
    so arrivals never leave the vector fast path.  Two extra pieces make
    resurrection exact: ``track_edges`` (on whenever the plan has node
    arrivals) makes node-down also zero the node's incident stored
    entries, because a returning node re-attaches only the edges its
    ``node-up`` event lists; and an insertion *stamp* per row reproduces
    the reference network's dict order — initial nodes keep ascending
    construction order, (re)arrivals move to the back in firing order —
    which is exactly the order the reference interpreter draws in, so
    probabilistic churn runs stay bitwise identical.
    """

    __slots__ = (
        "_A", "_alive", "_pos0", "_copied", "_stamp", "_next_stamp",
        "_track_edges",
    )

    def __init__(
        self,
        adjacency: sparse.csr_matrix,
        pos0: Mapping,
        initial_alive: Optional[np.ndarray] = None,
        track_edges: bool = False,
        dead_edges: tuple = (),
    ) -> None:
        n = adjacency.shape[0]
        self._A = adjacency
        self._alive = (
            np.ones(n, dtype=bool)
            if initial_alive is None
            else np.asarray(initial_alive, dtype=bool).copy()
        )
        self._pos0 = pos0
        self._copied = False
        self._stamp = np.arange(n, dtype=np.int64)
        self._next_stamp = n
        self._track_edges = track_edges
        if track_edges:
            # arrivals always mutate stored data, and sharing the union
            # pattern with a cached CSR would leak masked values — copy up
            # front instead of lazily
            self._A = self._A.copy()
            self._copied = True
        for i, j in dead_edges:
            # union-pattern edges not present at t = 0 (a not-yet-arrived
            # endpoint, or a future edge-up) start as explicit zeros
            self._set_pair(i, j, 0)

    def _ensure_copied(self) -> None:
        if not self._copied:
            self._A = self._A.copy()
            self._copied = True

    def _set_pair(self, i: int, j: int, value: int) -> None:
        """Set the stored entries (i, j) and (j, i) to ``value`` (no-op for
        pattern-absent pairs, mirroring a preempted event)."""
        for a, b in ((i, j), (j, i)):
            lo, hi = self._A.indptr[a], self._A.indptr[a + 1]
            hit = np.nonzero(self._A.indices[lo:hi] == b)[0]
            self._A.data[lo + hit] = value

    def _zero_incident(self, i: int) -> None:
        """Zero every stored entry of row ``i`` and its mirrors (a downed
        node's edges die with it; a later ``node-up`` re-attaches only the
        edges it lists)."""
        lo, hi = self._A.indptr[i], self._A.indptr[i + 1]
        for j in self._A.indices[lo:hi]:
            self._set_pair(i, int(j), 0)

    def apply(self, fired: list) -> list:
        """Fold applied topology events into the masks.

        Returns ``(row, boot_state)`` pairs for node arrivals — the engine
        scatters these into its σ array (all replicas, for the batched
        engine) before computing the step the events precede.
        """
        boots: list = []
        for ev in fired:
            kind = canonical_kind(ev.kind)
            if kind == NODE_DOWN:
                i = self._pos0[ev.target]
                self._alive[i] = False
                if self._track_edges:
                    self._zero_incident(i)
            elif kind == EDGE_DOWN:
                self._ensure_copied()
                u, v = ev.target
                self._set_pair(self._pos0[u], self._pos0[v], 0)
            elif kind == NODE_UP:
                i = self._pos0[ev.target]
                self._alive[i] = True
                self._stamp[i] = self._next_stamp  # re-insertion at the back
                self._next_stamp += 1
                for u in ev.edges:
                    j = self._pos0.get(u)
                    if j is not None and self._alive[j] and j != i:
                        self._set_pair(i, j, 1)
                boots.append((i, ev.state))
            else:  # EDGE_UP
                u, v = ev.target
                self._set_pair(self._pos0[u], self._pos0[v], 1)
        return boots

    def live_view(self) -> tuple[np.ndarray, sparse.csr_matrix, np.ndarray]:
        """``(live_positions, live_adjacency, live_degrees)``.

        Live positions follow the insertion stamps (identical to ascending
        original row until the first arrival fires), preserving the
        cross-engine draw-order contract.
        """
        live = np.flatnonzero(self._alive)
        if self._next_stamp != self._stamp.shape[0]:
            live = live[np.argsort(self._stamp[live], kind="stable")]
        sub = self._A[live][:, live]
        deg = np.asarray(sub.sum(axis=1)).ravel()
        return live, sub, deg


#: Historical name for the deletion-only mask, kept for importers.
_FaultMask = _ChurnMask


def _lowered_topology(net: Network, plan: Optional[ChurnPlan]) -> tuple:
    """The construction-time CSR for a (possibly churned) run.

    Deletion-only (or absent) plans export the live network exactly as
    before; plans that add topology export the plan's **union topology**
    — every node and edge the schedule can ever produce — so arrivals are
    pre-allocated rows/entries that later just flip alive.
    """
    if plan is not None and plan.has_additions:
        return plan.union_topology(net).to_csr()
    return net.to_csr()


def _build_churn_mask(
    net: Network,
    plan: ChurnPlan,
    adjacency: sparse.csr_matrix,
    pos0: Mapping,
    code: Mapping,
) -> _ChurnMask:
    """The eager mask for a plan with arrivals, over the union CSR.

    Rows of nodes absent at t = 0 start dead, as do union-pattern edges
    not present at t = 0 (either a not-yet-arrived endpoint or a future
    ``edge-up``).  Node-up boot states are validated against the
    automaton alphabet here — at construction, not mid-run.
    """
    for v, q in plan.boot_states().items():
        if q not in code:
            raise ValueError(
                f"node-up boot state {q!r} for {v!r} is not in the "
                f"automaton alphabet {sorted(map(repr, code))}"
            )
    alive0 = np.fromiter(
        (v in net for v in pos0), dtype=bool, count=len(pos0)
    )
    # union-pattern entries absent at t = 0 are exactly the pairs the
    # events contribute (union = net ∪ event additions), so collect them
    # from the event list in O(event edges) instead of scanning the nnz
    dead: set = set()
    for ev in plan.events():
        kind = canonical_kind(ev.kind)
        if kind == NODE_UP:
            i = pos0.get(ev.target)
            if i is None:
                continue
            for u in ev.edges:
                j = pos0.get(u)
                if j is not None and j != i and not net.has_edge(ev.target, u):
                    dead.add((i, j))
        elif kind == EDGE_UP:
            u, v = ev.target
            i, j = pos0.get(u), pos0.get(v)
            if i is not None and j is not None and not net.has_edge(u, v):
                dead.add((i, j))
    return _ChurnMask(
        adjacency, pos0,
        initial_alive=alive0, track_edges=True, dead_edges=sorted(dead),
    )


class VectorizedSynchronousEngine:
    """Synchronous FSSGA evolution with numpy/scipy inner loops.

    Parameters
    ----------
    net:
        The network.  With a ``fault_plan`` the engine mutates ``net``
        exactly as the reference simulator does (events fire before the
        step whose time has arrived) and recomputes its live-node arrays
        at each topology change.
    programs:
        Anything :func:`repro.core.ir.lower` accepts: ``{q:
        ModThreshProgram}``, ``{(q, i): ModThreshProgram}`` (then
        ``randomness`` must be given), an :class:`FSSGA` /
        :class:`ProbabilisticFSSGA` built from programs of any Theorem 3.7
        form, a rule-based automaton declaring ``compile_hints``, or a
        pre-lowered :class:`~repro.core.ir.CompiledAutomaton`.
    init:
        Initial :class:`~repro.network.state.NetworkState`.
    randomness:
        ``r`` of Definition 3.11 for probabilistic program mappings.
    rng:
        Seed or Generator for probabilistic draws.
    fault_plan:
        Optional :class:`~repro.runtime.faults.FaultPlan` or
        :class:`~repro.runtime.churn.ChurnPlan` lowered into per-step
        live-node masks.  Plans that add topology (``node-up`` /
        ``edge-up``) lower the plan's *union* topology into the
        construction-time CSR with not-yet-arrived entries masked dead,
        so churn runs keep the vector fast path; every ``node-up`` boot
        state must belong to the automaton alphabet.  A plan whose
        cursor was already consumed by a previous run is auto-reset.
    metrics:
        Optional :class:`~repro.runtime.telemetry.MetricsRegistry`
        receiving the engine-agnostic counters (``steps``,
        ``node_updates``, ``rng_draws``, ``fault_events``).  ``None``
        (default) costs one branch per step.  The resolved backend name
        is recorded as the registry's ``backend`` tag.
    backend:
        Which :class:`~repro.runtime.backends.ArrayBackend` executes the
        counts → atoms → cascades hot loop: ``"auto"`` / ``"numpy"`` (the
        bitwise-reference default), ``"array-api"``, ``"numba"`` (raises
        :class:`~repro.core.ir.BackendLoweringError` with blocker
        ``"numba-unavailable"`` when numba is missing), or a live
        :class:`~repro.runtime.backends.ArrayBackend` instance.
    """

    def __init__(
        self,
        net: Network,
        programs: Union[Mapping, FSSGA, ProbabilisticFSSGA, CompiledAutomaton],
        init: NetworkState,
        randomness: Optional[int] = None,
        rng: Union[int, np.random.Generator, None] = None,
        fault_plan: Optional[ChurnPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Union[str, ArrayBackend, None] = "auto",
    ) -> None:
        self._ir = lower(programs, randomness)
        self._probabilistic = self._ir.probabilistic
        self.randomness = self._ir.randomness
        self.alphabet: list = list(self._ir.alphabet)
        self._code = dict(self._ir.code)
        self._programs = dict(self._ir.source_programs)

        if fault_plan is not None:
            fault_plan.ensure_fresh()  # cursor contract: full schedule re-applies
        self.fault_plan = fault_plan

        self._net = net
        self.adjacency, self._order = _lowered_topology(net, fault_plan)
        self._n = len(self._order)
        self.rng = coerce_rng(rng)
        self.time = 0

        sigma = np.empty(self._n, dtype=np.int64)
        for idx, v in enumerate(self._order):
            # not-yet-arrived union rows hold a placeholder until their
            # node-up event scatters the boot state in
            sigma[idx] = self._code[init[v]] if v in net else 0
        self._sigma = sigma
        self._degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()

        self.backend = resolve_backend(backend)
        self.metrics = metrics
        if metrics is not None:
            metrics.set_tag("backend", self.backend.name)
        self.last_faults: list = []
        # original row of each node, for scattering live-subset results back
        self._pos0 = {v: i for i, v in enumerate(self._order)}
        self._fault_mask: Optional[_ChurnMask] = None
        self._live_pos: Optional[np.ndarray] = None  # None ⇒ no fault yet
        self._live_adj = self.adjacency
        self._live_deg = self._degrees
        if fault_plan is not None and fault_plan.has_additions:
            # arrivals need the eager mask: the t = 0 live view must
            # already exclude not-yet-arrived rows and dead edge entries
            self._fault_mask = _build_churn_mask(
                net, fault_plan, self.adjacency, self._pos0, self._code
            )
            self._live_pos, self._live_adj, self._live_deg = (
                self._fault_mask.live_view()
            )

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Row count of the lowered topology: the construction-time node
        count, plus any not-yet-arrived union rows when the plan adds
        topology (dead and unarrived nodes keep their rows)."""
        return self._n

    @property
    def live_count(self) -> int:
        """Nodes currently alive (== rng draws consumed per step)."""
        return self._n if self._live_pos is None else len(self._live_pos)

    def _one_hot(self) -> sparse.csr_matrix:
        n = self._n
        data = np.ones(n, dtype=np.int64)
        return sparse.csr_matrix(
            (data, (np.arange(n), self._sigma)), shape=(n, len(self.alphabet))
        )

    def _refresh_topology(self, fired: list) -> None:
        """Fold fired topology events into the incremental live masks."""
        if self._fault_mask is None:
            self._fault_mask = _FaultMask(self.adjacency, self._pos0)
        boots = self._fault_mask.apply(fired)
        for i, q in boots:
            # an arriving node boots in its event's declared state
            self._sigma[i] = self._code[q]
        self._live_pos, self._live_adj, self._live_deg = (
            self._fault_mask.live_view()
        )

    def step(self) -> bool:
        """One synchronous step; returns True iff any live node changed."""
        self.last_faults = []
        if self.fault_plan is not None:
            fired = self.fault_plan.apply_due(self._net, self.time)
            if fired:
                self.last_faults = fired
                self._refresh_topology(fired)

        if self._live_pos is None:
            sig = self._sigma
            adj, deg = self.adjacency, self._degrees
        else:
            sig = self._sigma[self._live_pos]
            adj, deg = self._live_adj, self._live_deg
        m = sig.shape[0]
        live = deg > 0
        if self._probabilistic:
            # one draw per live node, matching the reference interpreter's
            # per-node draw order (insertion order == CSR row order)
            draws = self.backend.draw(self.rng, self.randomness, m)
        else:
            draws = None
        new_sig = self.backend.step(adj, sig, live, draws, self._ir)
        met = self.metrics
        if met is None:
            changed = self.backend.any_changed(new_sig, sig)
        else:
            updates = self.backend.updates(new_sig, sig)
            changed = updates > 0
            met.inc("steps")
            met.inc("node_updates", updates)
            if self._probabilistic:
                met.inc("rng_draws", m)
            if self.last_faults:
                downs = count_down_events(self.last_faults)
                if downs:
                    met.inc("fault_events", downs)
                met.inc("churn_events", len(self.last_faults))
        if self._live_pos is None:
            self._sigma = new_sig
        else:
            full = self._sigma.copy()
            full[self._live_pos] = new_sig
            self._sigma = full
        self.time += 1
        return changed

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def run_until_stable(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Step to a fixed point; returns steps taken (deterministic only).

        With a fault plan, stability additionally requires the plan to be
        exhausted (a pending fault can destabilise a fixed point)."""
        for steps in range(1, max_steps + 1):
            changed = self.step()
            if not changed and (
                self.fault_plan is None or self.fault_plan.exhausted
            ):
                return steps
        raise RuntimeError(f"no fixed point within {max_steps} steps")

    # ------------------------------------------------------------------
    @property
    def state(self) -> NetworkState:
        """Decode the current σ (live nodes only) to a :class:`NetworkState`."""
        if self._live_pos is None:
            return NetworkState(
                {v: self.alphabet[self._sigma[i]] for i, v in enumerate(self._order)}
            )
        return NetworkState(
            {v: self.alphabet[self._sigma[self._pos0[v]]] for v in self._net}
        )

    def state_counts(self) -> dict:
        """Multiplicity of each alphabet state over live nodes (vectorized)."""
        sig = self._sigma if self._live_pos is None else self._sigma[self._live_pos]
        binc = np.bincount(sig, minlength=len(self.alphabet))
        return {q: int(binc[i]) for i, q in enumerate(self.alphabet)}
