"""Vectorized synchronous engine for mod-thresh automata.

The hot loop of a synchronous FSSGA step is, for every node, counting the
multiplicity of each state among its neighbours.  With states encoded as
integers ``0..s-1`` and the state vector one-hot encoded, the whole count
table is a single sparse mat-mat product::

    counts = A @ one_hot(σ)        # (n × s), counts[v, q] = μ_q(Γ(v))

Mod-thresh propositions then evaluate as numpy boolean arrays over
``counts`` columns, and each own-state's clause cascade resolves with
``np.select``.  This follows the HPC guides' vectorize-the-hot-loop advice
and is benchmarked against the reference interpreter in
``benchmarks/bench_engines.py`` (experiment E15).

The engine accepts deterministic automata given as ``{own_state:
ModThreshProgram}`` (or an :class:`~repro.core.automaton.FSSGA` built from
programs), and probabilistic automata given as ``{(own_state, draw):
ModThreshProgram}`` with a draw count ``r``.

The proposition/cascade evaluators in this module are shape-generic: they
operate on any counts tensor whose *last* axis indexes the alphabet, so
:class:`~repro.runtime.batched.BatchedSynchronousEngine` reuses them on
``(R, n, s)`` stacks of replica counts with no code divergence between the
single-replica and batched paths.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import Optional, Union

import numpy as np
from scipy import sparse

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.modthresh import (
    And,
    ModAtom,
    ModThreshProgram,
    Not,
    Or,
    Proposition,
    ThreshAtom,
    _Const,
)
from repro.network.graph import Network
from repro.network.state import NetworkState

__all__ = ["VectorizedSynchronousEngine"]


# ----------------------------------------------------------------------
# shared machinery (used by both the single-replica and batched engines)
# ----------------------------------------------------------------------
def _normalize_programs(
    programs: Union[Mapping, FSSGA, ProbabilisticFSSGA],
    randomness: Optional[int],
) -> tuple[dict, bool, int]:
    """Unpack automata/mappings into ``(programs, probabilistic, r)``."""
    if isinstance(programs, FSSGA):
        if programs.is_rule_based:
            raise TypeError(
                "vectorized engine needs explicit ModThreshPrograms; "
                "compile rule-based automata with repro.core.compile first"
            )
        programs = programs._programs  # program dict
    elif isinstance(programs, ProbabilisticFSSGA):
        if programs.is_rule_based:
            raise TypeError(
                "vectorized engine needs explicit ModThreshPrograms; "
                "compile rule-based automata with repro.core.compile first"
            )
        randomness = programs.randomness
        programs = programs._programs

    keys = list(programs.keys())
    probabilistic = bool(keys) and isinstance(keys[0], tuple) and (
        randomness is not None
    )
    if probabilistic:
        if randomness is None or randomness < 1:
            raise ValueError("probabilistic programs need randomness >= 1")
        randomness = int(randomness)
    else:
        randomness = 1
    return dict(programs), probabilistic, randomness


def _build_alphabet(programs: Mapping, probabilistic: bool) -> list:
    """Own states plus anything the programs can output, sorted by repr."""
    if probabilistic:
        own_states = {k[0] for k in programs}
    else:
        own_states = set(programs)
    alphabet = set(own_states)
    for prog in programs.values():
        if not isinstance(prog, ModThreshProgram):
            raise TypeError(f"expected ModThreshProgram, got {type(prog)!r}")
        alphabet.update(prog.results())
    return sorted(alphabet, key=repr)


def _prop_bool(prop: Proposition, counts: np.ndarray, code: Mapping) -> np.ndarray:
    """Evaluate a proposition over a counts tensor ``(..., s)`` → bool ``(...)``.

    The leading shape is arbitrary: ``(n,)`` for the single-replica engine,
    ``(R, n)`` for the batched one.
    """
    shape = counts.shape[:-1]
    if isinstance(prop, ThreshAtom):
        col = code.get(prop.state)
        if col is None:
            return np.ones(shape, dtype=bool)  # state never occurs
        return counts[..., col] < prop.threshold
    if isinstance(prop, ModAtom):
        col = code.get(prop.state)
        if col is None:
            return np.full(shape, prop.residue == 0)
        return counts[..., col] % prop.modulus == prop.residue
    if isinstance(prop, And):
        out = np.ones(shape, dtype=bool)
        for c in prop.children:
            out &= _prop_bool(c, counts, code)
        return out
    if isinstance(prop, Or):
        out = np.zeros(shape, dtype=bool)
        for c in prop.children:
            out |= _prop_bool(c, counts, code)
        return out
    if isinstance(prop, Not):
        return ~_prop_bool(prop.child, counts, code)
    if isinstance(prop, _Const):
        return np.full(shape, prop.evaluate(None))  # constant
    raise TypeError(f"unexpected proposition {prop!r}")


def _resolve_program(
    prog: ModThreshProgram,
    counts: np.ndarray,
    mask: np.ndarray,
    new_sigma: np.ndarray,
    code: Mapping,
) -> None:
    """Resolve one cascade for the masked entries into ``new_sigma``.

    ``np.select`` has exactly the first-match semantics of a Definition 3.6
    cascade, evaluated for every entry of the leading shape at once.
    """
    if not prog.clauses:
        new_sigma[mask] = code[prog.default]
        return
    conds = [_prop_bool(p, counts, code) for p, _ in prog.clauses]
    out = np.select(
        conds,
        [np.int64(code[r]) for _, r in prog.clauses],
        default=np.int64(code[prog.default]),
    )
    new_sigma[mask] = out[mask]


class VectorizedSynchronousEngine:
    """Synchronous FSSGA evolution with numpy/scipy inner loops.

    Parameters
    ----------
    net:
        The (static) network.  The vectorized engine does not support mid-run
        faults; use the reference simulator for fault experiments.
    programs:
        ``{q: ModThreshProgram}`` for deterministic automata, or
        ``{(q, i): ModThreshProgram}`` for probabilistic ones (then
        ``randomness`` must be given).  An :class:`FSSGA` built from programs
        is also accepted.
    init:
        Initial :class:`~repro.network.state.NetworkState`.
    randomness:
        ``r`` of Definition 3.11 for probabilistic automata.
    rng:
        Seed or Generator for probabilistic draws.
    """

    def __init__(
        self,
        net: Network,
        programs: Union[Mapping, FSSGA, ProbabilisticFSSGA],
        init: NetworkState,
        randomness: Optional[int] = None,
        rng: Union[int, np.random.Generator, None] = None,
    ) -> None:
        programs, self._probabilistic, self.randomness = _normalize_programs(
            programs, randomness
        )
        self.alphabet: list = _build_alphabet(programs, self._probabilistic)
        self._code = {q: i for i, q in enumerate(self.alphabet)}
        self._programs = programs

        self.adjacency, self._order = net.to_csr()
        self._n = len(self._order)
        self.rng = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
        self.time = 0

        sigma = np.empty(self._n, dtype=np.int64)
        for idx, v in enumerate(self._order):
            sigma[idx] = self._code[init[v]]
        self._sigma = sigma
        self._degrees = np.asarray(self.adjacency.sum(axis=1)).ravel()

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self._n

    def _one_hot(self) -> sparse.csr_matrix:
        n = self._n
        data = np.ones(n, dtype=np.int64)
        return sparse.csr_matrix(
            (data, (np.arange(n), self._sigma)), shape=(n, len(self.alphabet))
        )

    def step(self) -> bool:
        """One synchronous step; returns True iff any node changed."""
        counts = np.asarray((self.adjacency @ self._one_hot()).todense())
        new_sigma = self._sigma.copy()  # isolated nodes keep their state
        live = self._degrees > 0
        if self._probabilistic:
            draws = self.rng.integers(self.randomness, size=self._n)
            for q, code in self._code.items():
                for i in range(self.randomness):
                    key = (q, i)
                    if key not in self._programs:
                        continue
                    mask = live & (self._sigma == code) & (draws == i)
                    if mask.any():
                        _resolve_program(
                            self._programs[key], counts, mask, new_sigma, self._code
                        )
        else:
            for q, prog in self._programs.items():
                code = self._code[q]
                mask = live & (self._sigma == code)
                if mask.any():
                    _resolve_program(prog, counts, mask, new_sigma, self._code)
        changed = bool((new_sigma != self._sigma).any())
        self._sigma = new_sigma
        self.time += 1
        return changed

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def run_until_stable(self, max_steps: int = 100_000) -> int:
        """Step to a fixed point; returns steps taken (deterministic only)."""
        for steps in range(1, max_steps + 1):
            if not self.step():
                return steps
        raise RuntimeError(f"no fixed point within {max_steps} steps")

    # ------------------------------------------------------------------
    @property
    def state(self) -> NetworkState:
        """Decode the current σ back to a :class:`NetworkState`."""
        return NetworkState(
            {v: self.alphabet[self._sigma[i]] for i, v in enumerate(self._order)}
        )

    def state_counts(self) -> dict:
        """Multiplicity of each alphabet state over all nodes (vectorized)."""
        binc = np.bincount(self._sigma, minlength=len(self.alphabet))
        return {q: int(binc[i]) for i, q in enumerate(self.alphabet)}
