"""Topology dynamics: churn plans generalizing decreasing benign faults.

The paper's Section 2 sensitivity framework only ever *deletes* (decreasing
benign faults), and that is what :mod:`repro.runtime.faults` expresses.
Real deployments also see correlated regional outages, adversarial
targeting of high-centrality nodes, and node *arrival* (growth) —
Pritchard's divide-and-conquer follow-up (arXiv 0708.0580) motivates cheap
re-aggregation after exactly these changes.  This module is the general
layer: a :class:`ChurnPlan` is a time-ordered schedule of typed
:class:`TopologyEvent` s —

``node-down``
    delete a node and its incident edges (the classic node fault);
``edge-down``
    delete one edge (the classic edge fault);
``node-up``
    a node joins (or rejoins) the network carrying a boot ``state`` and an
    ``edges`` tuple of partners to attach to — partners not currently
    present are silently skipped, exactly like a preempted fault;
``edge-up``
    one edge appears between two currently-present nodes.

The reference simulator interprets a plan directly (events mutate the live
:class:`~repro.network.graph.Network` before the step whose time has
arrived — it is the conformance oracle).  The vectorized/batched engines
instead *lower* the plan: the union of every topology the schedule can
ever produce (:meth:`ChurnPlan.union_topology`) is exported once into the
construction-time CSR, not-yet-arrived nodes/edges start masked dead, and
each event flips incremental alive flags / stored-entry values — so churn
runs keep the vector fast path.  Legacy :class:`~repro.runtime.faults
.FaultPlan` is now the deletion-only subclass of :class:`ChurnPlan`.

Process generators build the ROADMAP's sustained-churn scenarios:
:func:`regional_outage_plan` (a BFS ball around an epicenter, optionally
recovering), :func:`adversarial_plan` (highest-centrality targets first,
reusing :mod:`repro.network.properties`), :func:`growth_plan` (stochastic
arrivals attaching to existing nodes) and :func:`random_churn_plan`
(a coherent mixed down/up schedule for conformance sweeps and resilience
curves).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

import numpy as np

from repro.network.graph import Network, Node, canonical_edge
from repro.network.state import NetworkState

__all__ = [
    "NODE_DOWN",
    "EDGE_DOWN",
    "NODE_UP",
    "EDGE_UP",
    "TopologyEvent",
    "ChurnPlan",
    "canonical_kind",
    "is_down_event",
    "is_up_event",
    "count_down_events",
    "regional_outage_plan",
    "adversarial_plan",
    "growth_plan",
    "random_churn_plan",
]

NODE_DOWN = "node-down"
EDGE_DOWN = "edge-down"
NODE_UP = "node-up"
EDGE_UP = "edge-up"

#: Legacy :class:`~repro.runtime.faults.FaultEvent` kinds map onto the
#: down half of the event algebra, so old and new events interoperate in
#: one plan.
_LEGACY = {"node": NODE_DOWN, "edge": EDGE_DOWN}
_KINDS = (NODE_DOWN, EDGE_DOWN, NODE_UP, EDGE_UP)


def canonical_kind(kind: str) -> str:
    """Normalize an event kind (legacy ``"node"``/``"edge"`` included)."""
    k = _LEGACY.get(kind, kind)
    if k not in _KINDS:
        raise ValueError(f"unknown topology-event kind {kind!r}")
    return k


def is_down_event(ev) -> bool:
    """True iff the event deletes topology (a classic benign fault)."""
    return canonical_kind(ev.kind) in (NODE_DOWN, EDGE_DOWN)


def is_up_event(ev) -> bool:
    """True iff the event adds topology (node or edge arrival)."""
    return canonical_kind(ev.kind) in (NODE_UP, EDGE_UP)


def count_down_events(events) -> int:
    """How many of ``events`` are deletions (feeds the ``fault_events``
    counter, which keeps its historical deletions-only meaning)."""
    return sum(1 for ev in events if is_down_event(ev))


@dataclass(frozen=True)
class TopologyEvent:
    """One typed topology change at synchronous step ``time``.

    ``target`` is the node id for node events and the ``(u, v)`` pair for
    edge events.  ``node-up`` additionally carries the boot ``state`` the
    arriving node starts in (it must belong to the running automaton's
    alphabet for the array engines) and an ``edges`` tuple of partner node
    ids to attach to; partners absent at arrival time are skipped.
    Legacy kinds ``"node"``/``"edge"`` are canonicalized to the ``-down``
    forms at construction, so :class:`~repro.runtime.faults.FaultEvent`
    schedules translate one-for-one.
    """

    time: int
    kind: str
    target: object
    state: object = None
    edges: tuple = field(default=())

    def __post_init__(self) -> None:
        object.__setattr__(self, "kind", canonical_kind(self.kind))
        object.__setattr__(self, "edges", tuple(self.edges))
        if self.kind == NODE_UP and self.state is None:
            raise ValueError(
                f"node-up event for {self.target!r} needs a boot state"
            )

    def applies_to(self, net: Network) -> bool:
        """True iff the event would change ``net`` (down events can be
        preempted by earlier deletions; up events by earlier arrivals)."""
        if self.kind == NODE_DOWN:
            return self.target in net
        if self.kind == EDGE_DOWN:
            u, v = self.target
            return net.has_edge(u, v)
        if self.kind == NODE_UP:
            return self.target not in net
        u, v = self.target
        return u in net and v in net and not net.has_edge(u, v)

    def apply(self, net: Network, state: Optional[NetworkState] = None) -> bool:
        """Apply the change; returns False when preempted (no-op)."""
        if not self.applies_to(net):
            return False
        if self.kind == NODE_DOWN:
            net.remove_node(self.target)
            if state is not None:
                state.drop([self.target])
        elif self.kind == EDGE_DOWN:
            u, v = self.target
            net.remove_edge(u, v)
        elif self.kind == NODE_UP:
            v = self.target
            net.add_node(v)
            for u in self.edges:
                if u in net and u != v:
                    net.add_edge(v, u)
            if state is not None:
                state.set(v, self.state)
        else:  # EDGE_UP
            u, v = self.target
            net.add_edge(u, v)
        return True


class ChurnPlan:
    """A time-ordered schedule of topology events with a stateful cursor.

    The cursor contract is the one :class:`~repro.runtime.faults.FaultPlan`
    established (and that class is now the deletion-only subclass of this
    one): :meth:`apply_due` advances the cursor, engines auto-
    :meth:`reset` a plan already :attr:`consumed` at construction, and
    same-``time`` events fire in the order given (the sort is stable).
    Events themselves are immutable — resetting re-applies the schedule,
    it does not restore topology, so run each execution on a fresh copy of
    the network.

    Plans accept a mix of :class:`TopologyEvent` and legacy
    :class:`~repro.runtime.faults.FaultEvent` instances.
    """

    def __init__(self, events: Optional[list] = None) -> None:
        self._events = sorted(events or [], key=lambda e: e.time)
        self._cursor = 0
        self.applied: list = []
        self.skipped: list = []

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def events(self) -> list:
        return list(self._events)

    @property
    def has_arrivals(self) -> bool:
        """True iff the plan contains any ``node-up`` event."""
        return any(canonical_kind(e.kind) == NODE_UP for e in self._events)

    @property
    def has_additions(self) -> bool:
        """True iff the plan adds any topology (``node-up`` or ``edge-up``)
        — the condition under which the array engines lower the *union*
        topology instead of the live network's snapshot."""
        return any(is_up_event(e) for e in self._events)

    @property
    def exhausted(self) -> bool:
        return self._cursor >= len(self._events)

    @property
    def consumed(self) -> bool:
        """True once any event has been cursor-passed (applied or skipped)."""
        return self._cursor > 0

    def __len__(self) -> int:
        return len(self._events)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def apply_due(
        self, net: Network, time: int, state: Optional[NetworkState] = None
    ) -> list:
        """Apply every not-yet-applied event with ``event.time <= time``.

        Returns the events that actually changed topology; preempted
        events are recorded in :attr:`skipped`.
        """
        fired: list = []
        while self._cursor < len(self._events) and self._events[self._cursor].time <= time:
            ev = self._events[self._cursor]
            self._cursor += 1
            if ev.apply(net, state):
                fired.append(ev)
                self.applied.append(ev)
            else:
                self.skipped.append(ev)
        return fired

    def reset(self) -> None:
        """Rewind the plan for a fresh execution."""
        self._cursor = 0
        self.applied = []
        self.skipped = []

    def ensure_fresh(self) -> "ChurnPlan":
        """Uphold the cursor contract at an execution boundary.

        Engines (and :func:`~repro.runtime.telemetry.replay`) call this on
        the plan they are handed: a plan already :attr:`consumed` — e.g.
        reused after a manual :meth:`apply_due` or a previous run — is
        :meth:`reset` so the full schedule re-applies from the top instead
        of silently continuing from the stale cursor position.  Returns
        ``self`` for call-site chaining.
        """
        if self.consumed:
            self.reset()
        return self

    # ------------------------------------------------------------------
    # lowering support
    # ------------------------------------------------------------------
    def union_topology(self, net: Network) -> Network:
        """The union of every topology this schedule can produce on ``net``.

        Initial nodes keep their insertion order; arrival nodes are
        appended in event order — the same order
        :meth:`~repro.network.graph.Network.add_node` would give the live
        network, which is what keeps the array engines' draw order aligned
        with the reference interpreter.  Edges whose partner can never be
        present are left out (they could never materialize at runtime
        either).  The result is a fresh :class:`Network` (no symmetry
        declaration) safe to export as the construction-time CSR.
        """
        # dict-level copy (no per-edge canonicalization): union building
        # sits on the engine construction path, so it must stay O(n + m)
        # dict work, not O(m) sorted() calls
        union = net.copy()
        union._symmetry = None  # the union is a different graph
        for ev in self._events:
            kind = canonical_kind(ev.kind)
            if kind == NODE_UP:
                union.add_node(ev.target)
                union.add_edges(
                    (ev.target, u)
                    for u in ev.edges
                    if u in union and u != ev.target
                )
            elif kind == EDGE_UP:
                u, v = ev.target
                if u in union and v in union:
                    union.add_edge(u, v)
        return union

    def boot_states(self) -> dict:
        """``{node: boot_state}`` over the plan's node-up events (last
        event wins) — what the array engines validate against the
        automaton alphabet at construction time."""
        out: dict = {}
        for ev in self._events:
            if canonical_kind(ev.kind) == NODE_UP:
                out[ev.target] = ev.state
        return out


# ----------------------------------------------------------------------
# process generators
# ----------------------------------------------------------------------
RngLike = Union[int, np.random.Generator, None]


def _gen(rng: RngLike) -> np.random.Generator:
    """``Generator`` passthrough, or a fresh one seeded by an int/``None``
    — equal seeds give identical plans."""
    return rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)


def regional_outage_plan(
    net: Network,
    epicenter: Node,
    radius: int,
    time: int = 0,
    *,
    stagger: int = 0,
    recover_after: Optional[int] = None,
    recover_state: object = None,
) -> ChurnPlan:
    """A correlated regional outage: the BFS ball of ``radius`` hops
    around ``epicenter`` goes down together.

    ``stagger`` spreads the wave outward — a node at hop distance ``d``
    fails at ``time + stagger * d`` (0 = simultaneous).  With
    ``recover_after`` the region comes back: each node returns
    ``recover_after`` steps after it failed, booting in ``recover_state``
    and re-attaching to its original neighbours that are present at
    recovery time (mutually recovering neighbours re-link because each
    lists the other).
    """
    if epicenter not in net:
        raise KeyError(f"epicenter {epicenter!r} not in network")
    if recover_after is not None and recover_state is None:
        raise ValueError("recover_after needs a recover_state to boot into")
    dist = net.bfs_distances([epicenter])
    ball = sorted(
        (v for v, d in dist.items() if d <= radius),
        key=lambda v: (dist[v], repr(v)),
    )
    events: list = []
    for v in ball:
        down_t = time + stagger * dist[v]
        events.append(TopologyEvent(down_t, NODE_DOWN, v))
        if recover_after is not None:
            events.append(
                TopologyEvent(
                    down_t + recover_after,
                    NODE_UP,
                    v,
                    state=recover_state,
                    edges=tuple(sorted(net.neighbors(v), key=repr)),
                )
            )
    return ChurnPlan(events)


def adversarial_plan(
    net: Network,
    num_targets: int,
    *,
    centrality: str = "degree",
    start: int = 0,
    interval: int = 1,
) -> ChurnPlan:
    """An adversarial schedule deleting the highest-centrality nodes first.

    ``centrality`` ranks the targets: ``"degree"`` (hubs first),
    ``"articulation"`` (cut vertices before anything else, then by
    degree), or ``"bridge"`` (endpoints of bridges, ranked by how many
    bridges they carry) — the latter two reuse
    :mod:`repro.network.properties`.  Ties break deterministically by node
    repr.  Target ``i`` goes down at ``start + i * interval``.
    """
    if centrality == "degree":
        score = {v: net.degree(v) for v in net}
    elif centrality == "articulation":
        from repro.network.properties import articulation_points

        cuts = articulation_points(net)
        n = net.num_nodes
        score = {v: net.degree(v) + (n if v in cuts else 0) for v in net}
    elif centrality == "bridge":
        from repro.network.properties import bridges

        incident: dict = {v: 0 for v in net}
        for u, v in bridges(net):
            incident[u] += 1
            incident[v] += 1
        n = net.num_nodes
        score = {v: net.degree(v) + n * incident[v] for v in net}
    else:
        raise ValueError(
            f"unknown centrality {centrality!r}; "
            f"choose from 'degree', 'articulation', 'bridge'"
        )
    ranked = sorted(net.nodes(), key=lambda v: (-score[v], repr(v)))
    return ChurnPlan(
        [
            TopologyEvent(start + i * interval, NODE_DOWN, v)
            for i, v in enumerate(ranked[:num_targets])
        ]
    )


def growth_plan(
    net: Network,
    arrivals: int,
    *,
    attach: int = 2,
    start: int = 1,
    interval: int = 1,
    rng: RngLike = None,
    state: object,
    prefix: str = "new",
) -> ChurnPlan:
    """Stochastic growth: ``arrivals`` fresh nodes join one per
    ``interval`` steps from ``start``, each attaching to ``attach``
    uniformly random members of the network as of its arrival (initial
    nodes plus earlier arrivals).  New ids are ``f"{prefix}{i}"`` (ids
    already taken are skipped past).  Equal seeds give identical plans.
    """
    gen = _gen(rng)
    pool = net.nodes()
    events: list = []
    next_id = 0
    for i in range(arrivals):
        while f"{prefix}{next_id}" in net:
            next_id += 1
        v = f"{prefix}{next_id}"
        next_id += 1
        k = min(attach, len(pool))
        partners = (
            tuple(pool[j] for j in sorted(gen.choice(len(pool), size=k, replace=False)))
            if k
            else ()
        )
        events.append(
            TopologyEvent(start + i * interval, NODE_UP, v, state=state, edges=partners)
        )
        pool.append(v)
    return ChurnPlan(events)


def random_churn_plan(
    net: Network,
    num_events: int,
    max_time: int,
    rng: RngLike = None,
    *,
    p_up: float = 0.3,
    boot_state: object = None,
    protect: tuple = (),
) -> ChurnPlan:
    """A coherent random mixed down/up schedule over ``net``.

    Event times are drawn over ``[0, max_time]`` and sorted; the schedule
    is built against a scratch copy of the topology, so each event is
    feasible when it fires: with probability ``p_up`` (and given something
    to restore) the event resurrects a previously-downed node — booting in
    ``boot_state`` and re-attaching its original edges whose partner
    survives — or restores a previously-downed edge; otherwise it deletes
    a random present node or edge.  ``boot_state`` is required whenever a
    node could come back (``p_up > 0``).  ``protect`` lists nodes never
    deleted.  Accepts a ``Generator`` or an int seed; equal seeds give
    identical plans.
    """
    gen = _gen(rng)
    if p_up > 0 and boot_state is None:
        raise ValueError("p_up > 0 needs a boot_state for resurrected nodes")
    protected = set(protect)
    scratch = net.copy()
    original_nbrs = {v: tuple(sorted(net.neighbors(v), key=repr)) for v in net}
    down_nodes: list = []
    down_edges: list = []
    times = sorted(int(t) for t in gen.integers(0, max_time + 1, size=num_events))
    events: list = []
    for t in times:
        want_up = (down_nodes or down_edges) and gen.random() < p_up
        if want_up:
            # prefer the rarer resurrection when both pools are non-empty
            if down_nodes and (not down_edges or gen.integers(2)):
                v = down_nodes.pop(int(gen.integers(len(down_nodes))))
                ev = TopologyEvent(
                    t, NODE_UP, v, state=boot_state, edges=original_nbrs[v]
                )
            else:
                u, v = down_edges.pop(int(gen.integers(len(down_edges))))
                if not (u in scratch and v in scratch):
                    continue  # an endpoint died meanwhile; drop this slot
                ev = TopologyEvent(t, EDGE_UP, (u, v))
        else:
            node_pool = [v for v in scratch.nodes() if v not in protected]
            edge_pool = [
                e
                for e in scratch.edges()
                if e[0] not in protected and e[1] not in protected
            ]
            if node_pool and (not edge_pool or gen.integers(2)):
                v = node_pool[int(gen.integers(len(node_pool)))]
                down_nodes.append(v)
                # the node's current edges die with it; only explicit
                # edge-downs go to the restorable pool
                ev = TopologyEvent(t, NODE_DOWN, v)
            elif edge_pool:
                e = edge_pool[int(gen.integers(len(edge_pool)))]
                down_edges.append(canonical_edge(*e))
                ev = TopologyEvent(t, EDGE_DOWN, e)
            else:
                continue  # nothing left to delete
        ev.apply(scratch)
        events.append(ev)
    return ChurnPlan(events)
