"""Execution traces: what happened, step by step.

A :class:`Trace` records state deltas (which nodes changed, to what) plus
fault events, so tests can assert on the *path* of an execution — e.g. "the
walker occupied exactly one node at every step" — without storing full
snapshots of large networks.

Since the telemetry unification a trace is a thin view over a
:class:`~repro.runtime.telemetry.EventStream`: every recorded step is a
:class:`~repro.runtime.telemetry.StepEvent` (of which the historical
``StepRecord`` name is an alias), the same record type
:class:`~repro.runtime.api.MetricsObserver` emits — one schema for every
consumer, JSONL-serializable via ``trace.stream.to_jsonl(path)``.
"""

from __future__ import annotations

from typing import Optional

from repro.network.state import NetworkState
from repro.runtime.telemetry import EventStream, StepEvent

__all__ = ["Trace", "StepRecord"]

#: One step: the time, the nodes whose state changed (old → new), and any
#: faults applied immediately before the step.  The legacy name for the
#: unified telemetry record (same constructor signature).
StepRecord = StepEvent


class Trace:
    """A step-indexed view over an append-only event stream.

    With ``snapshots=True`` a full copy of the state is kept per step
    (memory-heavy; meant for small-network debugging and visual demos).
    ``snapshots[i]`` always aligns with ``steps[i]``: recording a step
    without passing ``state`` appends a ``None`` placeholder rather than
    silently desynchronizing the two lists.

    Pass a shared :class:`~repro.runtime.telemetry.EventStream` to
    interleave trace records with other producers' events.
    """

    def __init__(
        self, snapshots: bool = False, stream: Optional[EventStream] = None
    ) -> None:
        self.stream = stream if stream is not None else EventStream()
        self._snapshots_enabled = snapshots
        self.snapshots: list[Optional[NetworkState]] = []

    @property
    def steps(self) -> list[StepEvent]:
        """The recorded :class:`StepRecord` sequence (a fresh list)."""
        return self.stream.step_events()

    def record(
        self,
        time: int,
        changes: dict,
        faults: Optional[list] = None,
        state: Optional[NetworkState] = None,
    ) -> None:
        self.stream.emit(StepEvent(time, dict(changes), list(faults or [])))
        if self._snapshots_enabled:
            # None placeholder keeps snapshots[i] aligned with steps[i] even
            # when the producer has no state to offer for this step
            self.snapshots.append(state.copy() if state is not None else None)

    def __len__(self) -> int:
        return len(self.stream.step_events())

    def changed_nodes(self) -> set:
        """Every node that changed state at least once."""
        out: set = set()
        for rec in self.steps:
            out.update(rec.changes)
        return out

    def history_of(self, node) -> list[tuple[int, object, object]]:
        """All (time, old, new) transitions of one node."""
        out = []
        for rec in self.steps:
            if node in rec.changes:
                old, new = rec.changes[node]
                out.append((rec.time, old, new))
        return out

    def total_state_changes(self) -> int:
        return sum(len(rec.changes) for rec in self.steps)
