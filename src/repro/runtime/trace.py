"""Execution traces: what happened, step by step.

A :class:`Trace` records state deltas (which nodes changed, to what) plus
fault events, so tests can assert on the *path* of an execution — e.g. "the
walker occupied exactly one node at every step" — without storing full
snapshots of large networks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.network.state import NetworkState

__all__ = ["Trace", "StepRecord"]


@dataclass
class StepRecord:
    """One step: the time, the nodes whose state changed (old → new), and
    any faults applied immediately before the step."""

    time: int
    changes: dict
    faults: list = field(default_factory=list)

    @property
    def quiescent(self) -> bool:
        """True iff nothing changed in this step."""
        return not self.changes and not self.faults


class Trace:
    """An append-only log of :class:`StepRecord`.

    With ``snapshots=True`` a full copy of the state is kept per step
    (memory-heavy; meant for small-network debugging and visual demos).
    """

    def __init__(self, snapshots: bool = False) -> None:
        self.steps: list[StepRecord] = []
        self._snapshots_enabled = snapshots
        self.snapshots: list[NetworkState] = []

    def record(
        self,
        time: int,
        changes: dict,
        faults: Optional[list] = None,
        state: Optional[NetworkState] = None,
    ) -> None:
        self.steps.append(StepRecord(time, dict(changes), list(faults or [])))
        if self._snapshots_enabled and state is not None:
            self.snapshots.append(state.copy())

    def __len__(self) -> int:
        return len(self.steps)

    def changed_nodes(self) -> set:
        """Every node that changed state at least once."""
        out: set = set()
        for rec in self.steps:
            out.update(rec.changes)
        return out

    def history_of(self, node) -> list[tuple[int, object, object]]:
        """All (time, old, new) transitions of one node."""
        out = []
        for rec in self.steps:
            if node in rec.changes:
                old, new = rec.changes[node]
                out.append((rec.time, old, new))
        return out

    def total_state_changes(self) -> int:
        return sum(len(rec.changes) for rec in self.steps)
