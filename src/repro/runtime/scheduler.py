"""Activation schedulers for the asynchronous FSSGA model.

In the asynchronous model (paper, Section 3.4) nodes activate one at a
time.  A scheduler chooses which live node activates next.  The paper's
timing assumption for the α-synchronizer analysis is that "each node
activates at least once per unit time"; :func:`random_fair_rounds` produces
such a schedule as a sequence of random permutations of the node set.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Optional, Union

import numpy as np

from repro.network.graph import Network, Node
from repro.network.state import NetworkState

__all__ = [
    "Scheduler",
    "RandomScheduler",
    "RoundRobinScheduler",
    "ScriptedScheduler",
    "random_fair_rounds",
]


class Scheduler:
    """Base scheduler: yields the next node to activate."""

    def next_node(
        self,
        net: Network,
        state: NetworkState,
        time: int,
        rng: np.random.Generator,
    ) -> Optional[Node]:
        """The node to activate at ``time`` (None = no node available)."""
        raise NotImplementedError


class RandomScheduler(Scheduler):
    """Uniformly random live node each activation (the usual fair model)."""

    def next_node(self, net, state, time, rng):
        nodes = net.nodes()
        if not nodes:
            return None
        return nodes[int(rng.integers(len(nodes)))]


class RoundRobinScheduler(Scheduler):
    """Cycles through the nodes in a fixed order, skipping dead nodes.

    Guarantees every live node activates once per n activations — the
    strongest fairness the synchronizer analysis needs.
    """

    def __init__(self, order: Optional[Sequence[Node]] = None) -> None:
        self._order = list(order) if order is not None else None
        self._pos = 0

    def next_node(self, net, state, time, rng):
        if self._order is None:
            self._order = net.nodes()
        n = len(self._order)
        for offset in range(n):
            v = self._order[(self._pos + offset) % n]
            if v in net:
                self._pos += offset + 1
                return v
        # no live node: leave _pos untouched so the round-robin order is
        # stable across empty scans.
        return None


class ScriptedScheduler(Scheduler):
    """Replays an explicit activation sequence (the adversary's schedule).

    Useful for reproducing worst-case interleavings in tests.  Dead or
    exhausted entries yield ``None``.
    """

    def __init__(self, sequence: Iterable[Node]) -> None:
        self._seq = list(sequence)
        self._pos = 0

    def next_node(self, net, state, time, rng):
        while self._pos < len(self._seq):
            v = self._seq[self._pos]
            self._pos += 1
            if v in net:
                return v
        return None

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._seq)


def random_fair_rounds(
    net: Network,
    rounds: int,
    rng: Union[int, np.random.Generator, None] = None,
) -> list[Node]:
    """An activation sequence of ``rounds`` random permutations of V.

    Within each unit of time every node activates exactly once, in a fresh
    random order — the paper's "at least once per unit time" assumption.
    """
    gen = rng if isinstance(rng, np.random.Generator) else np.random.default_rng(rng)
    nodes = net.nodes()
    seq: list[Node] = []
    for _ in range(rounds):
        perm = list(nodes)
        gen.shuffle(perm)
        seq.extend(perm)
    return seq
