"""Array-API backend: the step kernel in pure ``xp.*`` calls.

The numpy backend leans on scipy CSR products and ``np.select`` — both
outside the `array API standard <https://data-apis.org/array-api/>`_, so
neither runs on cupy/torch/jax arrays.  This backend re-expresses the
three hot primitives in standard calls only:

* neighbour counts densify the adjacency once (cached per matrix object)
  and use broadcasted ``xp.matmul`` — ``(m, m) @ (..., m, s)`` covers the
  single-replica, batched and quotient shapes in one expression;
* atom evaluation is comparison/remainder ops over the counts tensor,
  memoized per step exactly like the numpy :class:`AtomTable`;
* cascade resolution folds a reversed ``xp.where`` chain (the last write
  wins, so applying clauses in reverse order gives ``np.select``'s
  first-match semantics).

Engines talk numpy at the boundary: inputs are converted with
``xp.asarray`` on entry and the new state vector is converted back with
``np.asarray`` on exit, so with ``namespace=numpy`` (the default) every
conversion is free and the results are bitwise-identical to the numpy
backend — all arithmetic is exact integer/boolean.  A cupy/torch
namespace slots in unmodified, paying two host/device transfers per step
for the state vector while the O(m·s) kernel math runs on the device.

The dense adjacency costs O(m²) memory: fine for the quotient matrix and
conformance-scale networks this backend targets, wrong for huge sparse
graphs — pin ``backend="numpy"`` (or ``"numba"``) there.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime.backends.base import ArrayBackend

__all__ = ["ArrayApiBackend"]


class ArrayApiBackend(ArrayBackend):
    """Step kernel over any array-API namespace (default: numpy)."""

    name = "array-api"

    def __init__(self, namespace=None) -> None:
        self.xp = namespace if namespace is not None else np
        self._adj_cache: Optional[tuple] = None  # (csr object, dense xp array)

    # ------------------------------------------------------------------
    def _dense_adjacency(self, adj):
        """The adjacency as a dense ``xp`` int64 array, cached per object.

        Fault firings replace the engine's live matrix with a fresh CSR, so
        identity caching refreshes exactly when the topology changes; the
        strong reference keeps the keyed object alive (no id reuse).
        """
        if self._adj_cache is not None and self._adj_cache[0] is adj:
            return self._adj_cache[1]
        dense = self.xp.asarray(adj.toarray(), dtype=self.xp.int64)
        self._adj_cache = (adj, dense)
        return dense

    def neighbour_counts(self, adj, sig, n_states: int):
        xp = self.xp
        sigx = xp.asarray(sig)
        one_hot = xp.astype(
            sigx[..., None] == xp.arange(n_states, dtype=sigx.dtype), xp.int64
        )
        return xp.matmul(self._dense_adjacency(adj), one_hot)

    def transition(self, ir, counts, sig, live, draws):
        xp = self.xp
        sigx = xp.asarray(sig)
        livex = xp.asarray(live)
        drawsx = xp.asarray(draws) if draws is not None else None
        memo: dict[int, object] = {}
        shape = counts.shape[:-1]

        def atom_truth(idx):
            arr = memo.get(idx)
            if arr is None:
                atom = ir.atoms[idx]
                col = ir.code.get(atom.state)
                if hasattr(atom, "threshold"):
                    if col is None:  # state never occurs
                        arr = xp.ones(shape, dtype=xp.bool)
                    else:
                        arr = counts[..., col] < atom.threshold
                else:
                    if col is None:
                        arr = xp.full(shape, atom.residue == 0, dtype=xp.bool)
                    else:
                        arr = counts[..., col] % atom.modulus == atom.residue
                memo[idx] = arr
            return arr

        def ctree(tree):
            op = tree[0]
            if op == "atom":
                return atom_truth(tree[1])
            if op == "not":
                return ~ctree(tree[1])
            if op == "and":
                out = xp.ones(shape, dtype=xp.bool)
                for c in tree[1]:
                    out = out & ctree(c)
                return out
            if op == "or":
                out = xp.zeros(shape, dtype=xp.bool)
                for c in tree[1]:
                    out = out | ctree(c)
                return out
            return xp.full(shape, bool(tree[1]), dtype=xp.bool)

        new_sig = sigx
        for (qc, draw), cprog in ir.table.items():
            mask = livex & (sigx == qc)
            if drawsx is not None:
                mask = mask & (drawsx == draw)
            if not bool(xp.any(mask)):
                continue
            # reversed where-chain == np.select first-match semantics
            resolved = xp.full(shape, cprog.default, dtype=sigx.dtype)
            for tree, result in reversed(cprog.clauses):
                resolved = xp.where(
                    ctree(tree),
                    xp.asarray(result, dtype=sigx.dtype),
                    resolved,
                )
            new_sig = xp.where(mask, resolved, new_sig)
        return np.asarray(new_sig)

    def step(self, adj, sig, live, draws, ir):
        counts = self.neighbour_counts(adj, sig, len(ir.alphabet))
        new_sig = self.transition(ir, counts, sig, live, draws)
        if new_sig is sig:  # no cascade fired: hand back a fresh array
            new_sig = np.array(new_sig)
        return new_sig
