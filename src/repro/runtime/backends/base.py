"""The :class:`ArrayBackend` contract every execution backend implements.

A backend owns the three hot primitives of a synchronous FSSGA step —
neighbour-state counting, atom-table evaluation and cascade-table state
transition — plus the RNG-draw and reduction hooks around them.  Engines
own everything else: CSR construction, fault masking, live-node slicing,
replica bookkeeping, telemetry and state decoding.  The boundary is
numpy: engines hand the backend numpy arrays (plus the scipy CSR
adjacency) and get a numpy state vector back, so a backend is free to run
its middle on whatever substrate it likes (a JIT kernel, an accelerator
array library) as long as the returned codes are exact.

All hooks are shape-generic over the leading axes: ``sig`` is ``(m,)``
for the vectorized and quotient engines and ``(R, m)`` for the batched
engine, and ``live`` is ``(m,)``, broadcasting across replicas.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

__all__ = ["ArrayBackend"]


class ArrayBackend:
    """Base class / protocol for pluggable step-kernel backends.

    Subclasses must set :attr:`name` (the ``backend=`` string that selects
    them) and implement :meth:`step`; the granular hooks
    (:meth:`neighbour_counts` / :meth:`transition`) are optional — fused
    backends may not expose them separately.
    """

    #: Registry key; also the tag recorded in telemetry and run manifests.
    name: str = ""

    # -- the three hot primitives ---------------------------------------
    def step(self, adj, sig: np.ndarray, live: np.ndarray,
             draws: Optional[np.ndarray], ir) -> np.ndarray:
        """One synchronous transition: counts → atoms → cascades.

        Parameters
        ----------
        adj:
            ``(m, m)`` scipy CSR adjacency — the live-compacted matrix
            under faults, or the quotient matrix ``Q`` with orbit
            multiplicities.
        sig:
            Integer state codes, ``(m,)`` or ``(R, m)``.
        live:
            ``(m,)`` bool; ``False`` nodes (degree 0) hold their state.
        draws:
            Per-node draws in ``[0, r)``, same shape as ``sig``, or
            ``None`` for deterministic automata.
        ir:
            The :class:`~repro.core.ir.CompiledAutomaton` being executed.

        Returns the successor state codes, same shape as ``sig``.  The
        result must be exact — engines assert bitwise trajectory equality
        across backends.
        """
        raise NotImplementedError

    def neighbour_counts(self, adj, sig: np.ndarray, n_states: int):
        """Optional granular hook: the ``(..., m, s)`` count tensor."""
        raise NotImplementedError(f"{self.name} backend only exposes step()")

    def transition(self, ir, counts, sig, live, draws):
        """Optional granular hook: cascade resolution over ``counts``."""
        raise NotImplementedError(f"{self.name} backend only exposes step()")

    # -- RNG and reduction hooks ----------------------------------------
    def draw(self, rng, randomness: int, size) -> np.ndarray:
        """Draw per-node randomness from ``rng``.

        Every backend must consume ``rng`` identically — one bounded
        ``integers(r, size=m)`` vector per call — or shared-seed runs
        would diverge across backends.  Override only to post-process
        (e.g. move draws to a device), never to change the stream.
        """
        return rng.integers(randomness, size=size)

    def updates(self, new_sig: np.ndarray, sig: np.ndarray) -> int:
        """Reduction hook: number of entries that changed state."""
        return int((new_sig != sig).sum())

    def any_changed(self, new_sig: np.ndarray, sig: np.ndarray) -> bool:
        """Reduction hook: did anything change?  (Cheaper than counting.)"""
        return bool((new_sig != sig).any())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r}>"
