"""The default numpy/scipy backend — the engines' historical hot loops.

This is the code the three array engines used to carry privately, moved
behind the :class:`~repro.runtime.backends.base.ArrayBackend` seam
verbatim: sparse one-hot counting (single vector or stacked replicas),
the lazily memoized atom truth table, and ``np.select`` cascade
resolution.  It is the ``backend="auto"`` choice and the bitwise
reference the other backends are held to.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.runtime.backends.base import ArrayBackend
from repro.runtime.backends.kernels import (
    AtomTable,
    one_hot_counts,
    resolve_compiled,
    stacked_counts,
)

__all__ = ["NumpyBackend"]


class NumpyBackend(ArrayBackend):
    """Sparse-product counting + ``np.select`` cascades (the default)."""

    name = "numpy"

    def neighbour_counts(self, adj, sig: np.ndarray, n_states: int):
        if sig.ndim == 1:
            return one_hot_counts(adj, sig, n_states)
        return stacked_counts(adj, sig, n_states)

    def transition(self, ir, counts, sig, live, draws):
        new_sig = sig.copy()  # isolated nodes keep their state
        table = AtomTable(ir.atoms, counts, ir.code)
        if draws is not None:
            for (qc, i), cprog in ir.table.items():
                mask = live & (sig == qc) & (draws == i)
                if mask.any():
                    resolve_compiled(cprog, table, mask, new_sig)
        else:
            for (qc, _draw), cprog in ir.table.items():
                mask = live & (sig == qc)
                if mask.any():
                    resolve_compiled(cprog, table, mask, new_sig)
        return new_sig

    def step(self, adj, sig: np.ndarray, live: np.ndarray,
             draws: Optional[np.ndarray], ir) -> np.ndarray:
        counts = self.neighbour_counts(adj, sig, len(ir.alphabet))
        return self.transition(ir, counts, sig, live, draws)
