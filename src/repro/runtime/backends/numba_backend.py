"""Optional numba backend: the fused atom-eval + cascade loop, JIT-compiled.

The :class:`~repro.core.ir.CompiledAutomaton` IR — integer-coded states,
a unique-atom feature table, a ``(state, draw) → cascade`` transition
table — is exactly the shape a JIT compiler wants, but numba cannot take
Python objects (propositions, nested ctrees) into nopython mode.  So this
module lowers the IR one level further, to :class:`KernelTables`: flat
integer arrays encoding the atoms (kind/column/parameters), the per-clause
ctrees as postfix bytecode, and the ``(state, draw)`` dispatch as a dense
program-index matrix.  :func:`step_kernel` is then a single fused loop —
per node: CSR neighbour counting into a length-``s`` scratch row, then
first-match cascade resolution interpreting the bytecode — with no
intermediate ``(n, s)`` count table, no boolean temporaries and no numpy
dispatch per clause.  That is the many-small-kernel win motivating the
backend (PAPERS.md, Mosk-Aoyama & Shah's gossip workloads) and the
n ≥ 10^5 scale target of Pritchard's divide-and-conquer follow-up
(arXiv 0708.0580): at those sizes the numpy path is dominated by
allocating and traversing the per-step temporaries the fused loop never
materializes.

``step_kernel`` is deliberately written as *plain Python over numpy
scalars*: with numba installed it is ``njit``-compiled on first use;
without numba the very same function still executes (slowly) under the
interpreter, which is how the conformance suite exercises the bytecode
lowering on numba-free CI.  Table construction is cached per
``CompiledAutomaton.content_hash`` (:func:`kernel_cache_info` /
:func:`clear_kernel_cache`, mirroring
:func:`repro.core.ir.lowering_cache_info`), so a sweep constructing many
engines compiles each automaton's kernel tables once.

Bytecode format — each token is an ``(op, arg)`` pair of int64s, postfix
(operands before operators), evaluated with a small boolean stack:

======  =====================  ==========================================
op      arg                    effect
======  =====================  ==========================================
0       atom index             push the atom's truth value at this node
1       (unused)               pop a; push ``not a``
2       (unused)               pop b, a; push ``a and b``
3       (unused)               pop b, a; push ``a or b``
4       0 or 1                 push the constant
======  =====================  ==========================================

Variadic ``and``/``or`` ctrees are flattened to chains of binary ops;
atoms whose queried state is outside the coded alphabet fold to constants
(a threshold query over a state that never occurs is vacuously true, a
mod query is true iff the residue is 0 — the same semantics as
:func:`repro.runtime.backends.kernels.prop_bool`).
"""

from __future__ import annotations

from typing import NamedTuple, Optional

import numpy as np

from repro.core.ir import BackendLoweringError
from repro.runtime.backends.base import ArrayBackend

try:  # optional dependency — everything here must import without it
    import numba

    HAS_NUMBA = True
except ImportError:  # pragma: no cover - exercised on numba-free CI
    numba = None
    HAS_NUMBA = False

__all__ = [
    "HAS_NUMBA",
    "NumbaBackend",
    "KernelTables",
    "build_kernel_tables",
    "kernel_tables_for",
    "step_kernel",
    "kernel_cache_info",
    "clear_kernel_cache",
]

OP_ATOM, OP_NOT, OP_AND, OP_OR, OP_CONST = 0, 1, 2, 3, 4

ATOM_THRESH, ATOM_MOD, ATOM_TRUE, ATOM_FALSE = 0, 1, 2, 3


class KernelTables(NamedTuple):
    """One automaton's IR flattened to numba-ready integer arrays."""

    prog_of: np.ndarray  # (|Q|, r) int64 — program index or -1 (hold)
    prog_ptr: np.ndarray  # (P+1,) clause-range pointers per program
    prog_default: np.ndarray  # (P,) default result code per program
    clause_result: np.ndarray  # (C,) result code per clause
    clause_code_ptr: np.ndarray  # (C+1,) bytecode-range pointers per clause
    bytecode: np.ndarray  # (2B,) flattened (op, arg) pairs
    atom_kind: np.ndarray  # (A,) ATOM_* tag
    atom_col: np.ndarray  # (A,) counts column (0 where folded constant)
    atom_a: np.ndarray  # (A,) threshold / residue
    atom_b: np.ndarray  # (A,) modulus (1 where unused)
    stack_size: int  # deepest bytecode stack any clause needs
    n_states: int


def _emit_ctree(tree: tuple, out: list) -> int:
    """Append postfix tokens for ``tree`` to ``out``; returns stack need."""
    op = tree[0]
    if op == "atom":
        out.append((OP_ATOM, tree[1]))
        return 1
    if op == "not":
        depth = _emit_ctree(tree[1], out)
        out.append((OP_NOT, 0))
        return depth
    if op in ("and", "or"):
        children = tree[1]
        if not children:  # empty conjunction/disjunction: identity element
            out.append((OP_CONST, 1 if op == "and" else 0))
            return 1
        binop = OP_AND if op == "and" else OP_OR
        depth = _emit_ctree(children[0], out)
        for child in children[1:]:
            # child evaluates on top of the accumulated value: depth + 1
            depth = max(depth, 1 + _emit_ctree(child, out))
            out.append((binop, 0))
        return depth
    out.append((OP_CONST, 1 if tree[1] else 0))  # ("const", bool)
    return 1


def build_kernel_tables(ir) -> KernelTables:
    """Flatten a :class:`~repro.core.ir.CompiledAutomaton` for the kernel."""
    s = len(ir.alphabet)
    r = ir.randomness
    atoms = ir.atoms

    atom_kind = np.empty(len(atoms), dtype=np.int64)
    atom_col = np.zeros(len(atoms), dtype=np.int64)
    atom_a = np.zeros(len(atoms), dtype=np.int64)
    atom_b = np.ones(len(atoms), dtype=np.int64)
    for i, atom in enumerate(atoms):
        col = ir.code.get(atom.state)
        if hasattr(atom, "threshold"):  # ThreshAtom
            if col is None:
                atom_kind[i] = ATOM_TRUE  # state never occurs
            else:
                atom_kind[i] = ATOM_THRESH
                atom_col[i] = col
                atom_a[i] = atom.threshold
        else:  # ModAtom
            if col is None:
                atom_kind[i] = ATOM_TRUE if atom.residue == 0 else ATOM_FALSE
            else:
                atom_kind[i] = ATOM_MOD
                atom_col[i] = col
                atom_a[i] = atom.residue
                atom_b[i] = atom.modulus

    prog_of = np.full((s, r), -1, dtype=np.int64)
    prog_ptr = [0]
    prog_default = []
    clause_result = []
    clause_code_ptr = [0]
    tokens: list = []
    stack_size = 1
    for (qc, draw), cprog in sorted(ir.table.items()):
        prog_of[qc, draw] = len(prog_default)
        for tree, result in cprog.clauses:
            stack_size = max(stack_size, _emit_ctree(tree, tokens))
            clause_code_ptr.append(2 * len(tokens))
            clause_result.append(result)
        prog_ptr.append(len(clause_result))
        prog_default.append(cprog.default)

    bytecode = np.asarray(
        [x for pair in tokens for x in pair], dtype=np.int64
    ).reshape(-1)
    return KernelTables(
        prog_of=prog_of,
        prog_ptr=np.asarray(prog_ptr, dtype=np.int64),
        prog_default=np.asarray(prog_default, dtype=np.int64),
        clause_result=np.asarray(clause_result, dtype=np.int64),
        clause_code_ptr=np.asarray(clause_code_ptr, dtype=np.int64),
        bytecode=bytecode,
        atom_kind=atom_kind,
        atom_col=atom_col,
        atom_a=atom_a,
        atom_b=atom_b,
        stack_size=int(stack_size),
        n_states=s,
    )


# ----------------------------------------------------------------------
# the per-content-hash table cache (mirrors repro.core.ir's lowering cache)
# ----------------------------------------------------------------------
_TABLE_CACHE: dict = {}
_TABLE_CACHE_LIMIT = 128
_STATS = {"hits": 0, "misses": 0}


def kernel_tables_for(ir) -> KernelTables:
    """Cached :func:`build_kernel_tables`, keyed by IR content hash."""
    key = ir.content_hash()
    tables = _TABLE_CACHE.get(key)
    if tables is not None:
        _STATS["hits"] += 1
        return tables
    _STATS["misses"] += 1
    tables = build_kernel_tables(ir)
    if len(_TABLE_CACHE) >= _TABLE_CACHE_LIMIT:
        _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
    _TABLE_CACHE[key] = tables
    return tables


def kernel_cache_info() -> dict:
    """Hit/miss counters and size of the kernel-table cache."""
    return {
        "hits": _STATS["hits"],
        "misses": _STATS["misses"],
        "kernels": len(_TABLE_CACHE),
        "jit": HAS_NUMBA and _JITTED[0] is not None,
    }


def clear_kernel_cache() -> None:
    """Drop the cached kernel tables and reset the counters."""
    _TABLE_CACHE.clear()
    _STATS["hits"] = 0
    _STATS["misses"] = 0


# ----------------------------------------------------------------------
# the fused step loop
# ----------------------------------------------------------------------
def step_kernel(
    indptr,
    indices,
    data,
    sig,
    draws,
    live,
    prog_of,
    prog_ptr,
    prog_default,
    clause_result,
    clause_code_ptr,
    bytecode,
    atom_kind,
    atom_col,
    atom_a,
    atom_b,
    n_states,
    stack_size,
    new_sig,
):
    """One fused synchronous step over an ``(R, m)`` replica stack.

    Per live node: count neighbour states straight off the CSR row into a
    length-``s`` scratch (masked/zeroed entries contribute nothing, exactly
    like the sparse product), then resolve the node's cascade first-match
    by interpreting the clause bytecode — atoms evaluate as cheap scalar
    ops against the scratch row.  Dead (``live=False``) nodes and
    ``(state, draw)`` pairs without a program hold their state, matching
    the numpy path bit for bit.

    Plain Python by construction: :func:`_compiled_kernel` wraps it in
    ``numba.njit`` when numba is importable; tests run it uncompiled.
    """
    n_rep, m = sig.shape
    cnt = np.zeros(n_states, dtype=np.int64)
    stack = np.zeros(stack_size, dtype=np.bool_)
    for rep in range(n_rep):
        for v in range(m):
            q = sig[rep, v]
            new_sig[rep, v] = q
            if not live[v]:
                continue
            p = prog_of[q, draws[rep, v]]
            if p < 0:
                continue  # hold state
            for t in range(n_states):
                cnt[t] = 0
            for e in range(indptr[v], indptr[v + 1]):
                w = data[e]
                if w != 0:  # fault-masked entries are stored zeros
                    cnt[sig[rep, indices[e]]] += w
            res = prog_default[p]
            for c in range(prog_ptr[p], prog_ptr[p + 1]):
                sp = 0
                k = clause_code_ptr[c]
                end = clause_code_ptr[c + 1]
                while k < end:
                    op = bytecode[k]
                    arg = bytecode[k + 1]
                    k += 2
                    if op == 0:  # atom
                        kind = atom_kind[arg]
                        if kind == 0:
                            val = cnt[atom_col[arg]] < atom_a[arg]
                        elif kind == 1:
                            val = cnt[atom_col[arg]] % atom_b[arg] == atom_a[arg]
                        else:
                            val = kind == 2
                        stack[sp] = val
                        sp += 1
                    elif op == 1:  # not
                        stack[sp - 1] = not stack[sp - 1]
                    elif op == 2:  # and
                        stack[sp - 2] = stack[sp - 2] and stack[sp - 1]
                        sp -= 1
                    elif op == 3:  # or
                        stack[sp - 2] = stack[sp - 2] or stack[sp - 1]
                        sp -= 1
                    else:  # const
                        stack[sp] = arg != 0
                        sp += 1
                if stack[0]:
                    res = clause_result[c]
                    break
            new_sig[rep, v] = res
    return new_sig


_JITTED: list = [None]


def _compiled_kernel():
    """The ``njit``-compiled :func:`step_kernel` (compiled once, cached)."""
    if _JITTED[0] is None:
        _JITTED[0] = numba.njit(cache=False, nogil=True)(step_kernel)
    return _JITTED[0]


def run_step(
    adj,
    sig: np.ndarray,
    live: np.ndarray,
    draws: Optional[np.ndarray],
    tables: KernelTables,
    *,
    force_python: bool = False,
) -> np.ndarray:
    """Execute one fused step; accepts ``(m,)`` or ``(R, m)`` state arrays.

    ``draws=None`` (deterministic automata) dispatches every node through
    draw 0 — the only column the deterministic transition table has.
    """
    sig2 = sig if sig.ndim == 2 else sig[np.newaxis, :]
    if draws is None:
        draws2 = np.zeros_like(sig2)
    else:
        draws2 = draws if draws.ndim == 2 else draws[np.newaxis, :]
    new_sig = np.empty_like(sig2)
    kernel = step_kernel if force_python or not HAS_NUMBA else _compiled_kernel()
    kernel(
        adj.indptr,
        adj.indices,
        np.asarray(adj.data, dtype=np.int64),
        np.ascontiguousarray(sig2),
        np.ascontiguousarray(draws2),
        live,
        tables.prog_of,
        tables.prog_ptr,
        tables.prog_default,
        tables.clause_result,
        tables.clause_code_ptr,
        tables.bytecode,
        tables.atom_kind,
        tables.atom_col,
        tables.atom_a,
        tables.atom_b,
        tables.n_states,
        tables.stack_size,
        new_sig,
    )
    return new_sig if sig.ndim == 2 else new_sig[0]


class NumbaBackend(ArrayBackend):
    """The fused JIT step loop (requires numba; pin via ``backend="numba"``).

    ``force_python=True`` runs the *same* bytecode kernel under the plain
    interpreter — orders of magnitude slower, but it lets the conformance
    suite validate the bytecode lowering on hosts without numba (the
    tests label such an instance ``"kernel-python"``).
    """

    name = "numba"

    def __init__(self, force_python: bool = False) -> None:
        if not HAS_NUMBA and not force_python:
            raise BackendLoweringError(
                "backend 'numba' is unavailable: the numba package is not "
                "installed (it is an optional dependency; install it or use "
                "backend='numpy')",
                blocker="numba-unavailable",
            )
        self.force_python = force_python
        if force_python:
            self.name = "kernel-python"

    def step(self, adj, sig: np.ndarray, live: np.ndarray,
             draws: Optional[np.ndarray], ir) -> np.ndarray:
        tables = kernel_tables_for(ir)
        return run_step(
            adj, sig, live, draws, tables, force_python=self.force_python
        )
