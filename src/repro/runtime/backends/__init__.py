"""Pluggable array backends: one shared step kernel, many substrates.

The three array engines (vectorized, batched, quotient) all execute the
same :class:`~repro.core.ir.CompiledAutomaton` IR, and their per-step hot
path decomposes into three primitives — neighbour-count via CSR matvec /
quotient-CSR product, atom-table evaluation, cascade-table state
transition — plus RNG-draw and reduction hooks.  This package owns that
seam:

* :class:`~repro.runtime.backends.base.ArrayBackend` — the contract
  (:meth:`~repro.runtime.backends.base.ArrayBackend.step` and friends);
* :class:`~repro.runtime.backends.numpy_backend.NumpyBackend` — the
  extracted historical numpy/scipy code, the default, bitwise-identical
  to the pre-backend engines;
* :class:`~repro.runtime.backends.array_api.ArrayApiBackend` — the kernel
  in pure array-API calls, so cupy/torch namespaces slot in unmodified;
* :class:`~repro.runtime.backends.numba_backend.NumbaBackend` — an
  optional JIT backend fusing CSR counting, atom evaluation and cascade
  resolution into one compiled loop per automaton, cached by IR content
  hash (:func:`backend_cache_info` mirrors
  :func:`repro.core.ir.lowering_cache_info`).

Selection mirrors engine negotiation: ``backend="auto"`` always resolves
to the numpy default (JIT warm-up only pays off at scale, so faster
backends are opt-in), a pinned name resolves or raises
:class:`~repro.core.ir.BackendLoweringError` with a machine-readable
``blocker`` naming the actual obstruction, and an
:class:`~repro.runtime.backends.base.ArrayBackend` *instance* passes
through untouched (how a cupy/torch namespace or a test double is
injected).  Every engine records the resolved backend's name in its
telemetry tags and every :func:`repro.runtime.api.run` manifest carries
it, so replay re-pins the backend the original run used.
"""

from __future__ import annotations

from typing import Union

from repro.core.ir import BackendLoweringError
from repro.runtime.backends.base import ArrayBackend
from repro.runtime.backends.kernels import (
    AtomTable,
    ctree_bool,
    one_hot_counts,
    prop_bool,
    resolve_compiled,
    stacked_counts,
)
from repro.runtime.backends.array_api import ArrayApiBackend
from repro.runtime.backends.numba_backend import (
    HAS_NUMBA,
    NumbaBackend,
    clear_kernel_cache,
    kernel_cache_info,
)
from repro.runtime.backends.numpy_backend import NumpyBackend

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ArrayApiBackend",
    "NumbaBackend",
    "BackendLoweringError",
    "BACKENDS",
    "DEFAULT_MAX_STEPS",
    "HAS_NUMBA",
    "resolve_backend",
    "available_backends",
    "backend_cache_info",
    "clear_backend_cache",
    "AtomTable",
    "prop_bool",
    "ctree_bool",
    "resolve_compiled",
    "one_hot_counts",
    "stacked_counts",
]

#: The one shared step budget for every engine's open-ended run modes
#: (``run_until_stable`` / ``run_until`` / ``run(until=...)``) — hoisted
#: here so the engines cannot drift apart on the default again.
DEFAULT_MAX_STEPS = 100_000

#: Selectable backend names, in documentation order.
BACKENDS = ("auto", "numpy", "array-api", "numba")

_FACTORIES = {
    "numpy": NumpyBackend,
    "array-api": ArrayApiBackend,
    "numba": NumbaBackend,
}


def available_backends() -> tuple:
    """Names of the backends whose dependencies are importable here."""
    names = ["numpy", "array-api"]
    if HAS_NUMBA:
        names.append("numba")
    return tuple(names)


def resolve_backend(
    backend: Union[str, ArrayBackend, None] = "auto"
) -> ArrayBackend:
    """Resolve a ``backend=`` argument to a live :class:`ArrayBackend`.

    ``"auto"`` (or ``None``) picks the numpy default — the bitwise
    reference; faster backends are opt-in by name.  A pinned name that
    cannot be honoured raises
    :class:`~repro.core.ir.BackendLoweringError` whose ``blocker`` names
    the obstruction (``"numba-unavailable"``), matching the quotient
    engine's negotiation convention; an unknown name raises
    ``ValueError`` listing the choices.  Instances pass through verbatim.
    """
    if isinstance(backend, ArrayBackend):
        return backend
    if backend is None or backend == "auto" or backend == "numpy":
        return NumpyBackend()
    factory = _FACTORIES.get(backend)
    if factory is None:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS} or pass an "
            f"ArrayBackend instance"
        )
    return factory()  # NumbaBackend raises the blocker itself when absent


def backend_cache_info() -> dict:
    """Compile-cache counters for the JIT backend (tables per IR hash)."""
    return kernel_cache_info()


def clear_backend_cache() -> None:
    """Drop the JIT backend's cached kernel tables."""
    clear_kernel_cache()
