"""The shared numpy step-kernel primitives every array engine executes.

This module is the single home of the machinery that used to be duplicated
across the vectorized, batched and quotient engines: proposition
evaluation over a neighbour-count tensor (:func:`prop_bool`), the lazily
memoized per-step atom truth table (:class:`AtomTable`), compiled-tree
evaluation (:func:`ctree_bool`), cascade resolution with ``np.select``
first-match semantics (:func:`resolve_compiled`), and the one-hot
neighbour-count products (:func:`one_hot_counts` for a single state
vector, :func:`stacked_counts` for an ``(R, n)`` replica stack).

Everything here is shape-generic: evaluators operate on any counts tensor
whose *last* axis indexes the alphabet — ``(n, s)`` for the
single-replica and quotient engines, ``(R, n, s)`` for the batched one —
so a single implementation serves all engines with no code divergence.

:class:`~repro.runtime.backends.NumpyBackend` is a thin wrapper over
these functions; the legacy private names (``_AtomTable``,
``_resolve_compiled``, …) are re-exported by
:mod:`repro.runtime.vectorized` so historical imports keep working.
"""

from __future__ import annotations

from collections.abc import Mapping

import numpy as np
from scipy import sparse

from repro.core.ir import CompiledProgram
from repro.core.modthresh import (
    And,
    ModAtom,
    Not,
    Or,
    Proposition,
    ThreshAtom,
    _Const,
)

__all__ = [
    "prop_bool",
    "AtomTable",
    "ctree_bool",
    "resolve_compiled",
    "one_hot_counts",
    "stacked_counts",
]


def prop_bool(prop: Proposition, counts: np.ndarray, code: Mapping) -> np.ndarray:
    """Evaluate a proposition over a counts tensor ``(..., s)`` → bool ``(...)``.

    The leading shape is arbitrary: ``(n,)`` for the single-replica engine,
    ``(R, n)`` for the batched one.
    """
    shape = counts.shape[:-1]
    if isinstance(prop, ThreshAtom):
        col = code.get(prop.state)
        if col is None:
            return np.ones(shape, dtype=bool)  # state never occurs
        return counts[..., col] < prop.threshold
    if isinstance(prop, ModAtom):
        col = code.get(prop.state)
        if col is None:
            return np.full(shape, prop.residue == 0)
        return counts[..., col] % prop.modulus == prop.residue
    if isinstance(prop, And):
        out = np.ones(shape, dtype=bool)
        for c in prop.children:
            out &= prop_bool(c, counts, code)
        return out
    if isinstance(prop, Or):
        out = np.zeros(shape, dtype=bool)
        for c in prop.children:
            out |= prop_bool(c, counts, code)
        return out
    if isinstance(prop, Not):
        return ~prop_bool(prop.child, counts, code)
    if isinstance(prop, _Const):
        return np.full(shape, prop.evaluate(None))  # constant
    raise TypeError(f"unexpected proposition {prop!r}")


class AtomTable:
    """Per-step truth table over the IR's unique feature atoms.

    Each atom evaluates lazily, exactly once, into a boolean array shared by
    every cascade that references it — the common-subexpression payoff of
    the atom-table IR.
    """

    __slots__ = ("atoms", "counts", "code", "shape", "_memo")

    def __init__(self, atoms: tuple, counts: np.ndarray, code: Mapping) -> None:
        self.atoms = atoms
        self.counts = counts
        self.code = code
        self.shape = counts.shape[:-1]
        self._memo: dict[int, np.ndarray] = {}

    def truth(self, idx: int) -> np.ndarray:
        arr = self._memo.get(idx)
        if arr is None:
            arr = prop_bool(self.atoms[idx], self.counts, self.code)
            self._memo[idx] = arr
        return arr


def ctree_bool(tree: tuple, table: AtomTable) -> np.ndarray:
    """Evaluate a compiled proposition tree against the atom truth table."""
    op = tree[0]
    if op == "atom":
        return table.truth(tree[1])
    if op == "not":
        return ~ctree_bool(tree[1], table)
    if op == "and":
        out = np.ones(table.shape, dtype=bool)
        for c in tree[1]:
            out &= ctree_bool(c, table)
        return out
    if op == "or":
        out = np.zeros(table.shape, dtype=bool)
        for c in tree[1]:
            out |= ctree_bool(c, table)
        return out
    return np.full(table.shape, tree[1])  # ("const", bool)


def resolve_compiled(
    cprog: CompiledProgram,
    table: AtomTable,
    mask: np.ndarray,
    new_sigma: np.ndarray,
) -> None:
    """Resolve one IR cascade for the masked entries into ``new_sigma``.

    ``np.select`` has exactly the first-match semantics of a Definition 3.6
    cascade, evaluated for every entry of the leading shape at once.
    """
    if not cprog.clauses:
        new_sigma[mask] = cprog.default
        return
    conds = [ctree_bool(t, table) for t, _ in cprog.clauses]
    out = np.select(
        conds,
        [np.int64(c) for _, c in cprog.clauses],
        default=np.int64(cprog.default),
    )
    new_sigma[mask] = out[mask]


def one_hot_counts(adj, sig: np.ndarray, s: int) -> np.ndarray:
    """Neighbour-count table for one state vector: ``adj @ one_hot(sig)``.

    ``adj`` is an ``(m, m)`` CSR adjacency (or quotient matrix with orbit
    multiplicities); the result is the dense ``(m, s)`` integer table
    ``counts[v, q] = μ_q(Γ(v))``.
    """
    m = sig.shape[0]
    if not m:
        return np.zeros((0, s), dtype=np.int64)
    one_hot = sparse.csr_matrix(
        (np.ones(m, dtype=np.int64), (np.arange(m), sig)), shape=(m, s)
    )
    return np.asarray((adj @ one_hot).todense())


def stacked_counts(adj, sig: np.ndarray, s: int) -> np.ndarray:
    """All replicas' count tables via one sparse product → ``(R, m, s)``.

    The per-replica one-hot matrices are stacked horizontally into an
    ``(m, R·s)`` block matrix ``H`` with ``H[v, r·s + σ_r(v)] = 1``, so
    ``adj @ H`` yields every replica's count table at once.
    """
    nrep, m = sig.shape
    onehot = np.zeros((m, nrep * s), dtype=np.int64)
    rows = np.broadcast_to(np.arange(m), (nrep, m))
    cols = sig + (np.arange(nrep) * s)[:, None]
    onehot[rows.ravel(), cols.ravel()] = 1
    counts = adj @ onehot  # (m, R*s)
    return np.ascontiguousarray(counts.reshape(m, nrep, s).transpose(1, 0, 2))
