"""Symmetry-quotient synchronous engine: one simulated node per orbit.

The paper's symmetry argument (Section 1, applied to the Definition 3.10
synchronous dynamics) is that a symmetric automaton cannot distinguish
automorphic nodes: if π is an automorphism of the network and σ is
orbit-constant, then the successor of σ is orbit-constant too — every node
of an orbit computes the same transition as the orbit's representative.
So a run started in an orbit-constant state never needs more than one
representative per orbit simulated.

The lowering here folds a declared
:class:`~repro.network.symmetry.AutomorphismGroup` into a **quotient CSR**
``Q`` over the ``k`` orbit representatives: ``Q[i, j]`` is the
multiplicity of orbit ``j`` in representative ``i``'s neighbourhood.
Because every node of orbit ``j`` carries the same state, the
representative's true neighbour-state counts are exactly::

    counts = Q @ one_hot(σ_reps)        # (k × s)

so the *same* backend step kernel the full-graph vectorized engine runs
(:class:`~repro.runtime.backends.ArrayBackend` — atom truth table plus
cascade resolution) executes unchanged on the quotient — mod-thresh
counting is exact, not approximated, and a step costs O(k·s + nnz(Q))
instead of O(n·s + m).  Lifted views (:attr:`state`, observer change
dicts in :func:`repro.runtime.api.run`) decode the representative vector
back to all ``n`` nodes via the orbit index.

**Probabilistic convention.**  A quotient step draws *one* value per
orbit (``rng.integers(r, size=k)``, orbits in representative order) and
every node of the orbit shares that draw.  This preserves orbit-constancy
— which independent per-node draws would destroy — and is therefore a
*different stochastic process* from the full-graph engines' one-draw-per-
node convention: symmetry can never break, so e.g. the coin election
kernel would deadlock forever on the quotient.  Consequently
``engine="auto"`` only routes **deterministic** automata here;
probabilistic quotient runs are opt-in via ``engine="quotient"``.  For
conformance testing, :class:`OrbitBroadcastRng` makes a full-graph engine
consume the shared per-orbit convention bitwise: it draws the same
``size=k`` vector per step from the base generator and broadcasts it to
nodes through the orbit index.

Preconditions are re-checked at construction and violations raise
:class:`~repro.core.ir.QuotientLoweringError` with a machine-readable
``blocker`` tag: the network must declare a group (``"no-group"``) whose
generators still are automorphisms of the *current* topology
(``"stale-group"`` — mutations do not revoke a declaration, so a faulted
or hand-edited network is caught here), the initial state must be
orbit-constant (``"init-not-orbit-constant"``), and fault/churn plans
are rejected outright (``"churn-plan"`` when the plan adds topology,
``"fault-plan"`` for deletion-only schedules): any topology event
distinguishes the affected node's orbit members and breaks the symmetry
the quotient depends on.
"""

from __future__ import annotations

from collections.abc import Mapping
from typing import Optional, Union

import numpy as np
from scipy import sparse

from repro.core.automaton import FSSGA, ProbabilisticFSSGA
from repro.core.ir import CompiledAutomaton, QuotientLoweringError, lower
from repro.network.graph import Network
from repro.network.state import NetworkState
from repro.network.symmetry import SymmetryError
from repro.runtime.backends import (
    DEFAULT_MAX_STEPS,
    ArrayBackend,
    resolve_backend,
)
from repro.runtime.churn import ChurnPlan
from repro.runtime.telemetry import MetricsRegistry, coerce_rng

__all__ = ["QuotientSynchronousEngine", "OrbitBroadcastRng"]


class QuotientSynchronousEngine:
    """Synchronous FSSGA evolution on orbit representatives.

    Parameters mirror
    :class:`~repro.runtime.vectorized.VectorizedSynchronousEngine` except
    that ``net`` must carry a declared automorphism group
    (:meth:`~repro.network.graph.Network.declare_symmetry`), ``init`` must
    be orbit-constant, and ``fault_plan`` must be empty — violations raise
    :class:`~repro.core.ir.QuotientLoweringError` naming the blocker.

    Telemetry reflects *quotient-side* work: ``node_updates`` counts
    representative updates (the states actually recomputed) and
    ``rng_draws`` counts per-orbit draws, so the counters quantify the
    n/k saving directly; ``node_updates_lifted`` additionally records the
    full-graph-equivalent update count (sum of changed orbits' sizes) for
    cross-engine comparison.
    """

    def __init__(
        self,
        net: Network,
        programs: Union[Mapping, FSSGA, ProbabilisticFSSGA, CompiledAutomaton],
        init: NetworkState,
        randomness: Optional[int] = None,
        rng: Union[int, np.random.Generator, None] = None,
        fault_plan: Optional[ChurnPlan] = None,
        metrics: Optional[MetricsRegistry] = None,
        backend: Union[str, ArrayBackend, None] = "auto",
    ) -> None:
        if fault_plan is not None and len(fault_plan) > 0:
            if getattr(fault_plan, "has_additions", False):
                raise QuotientLoweringError(
                    "churn plans break symmetry: an arrival (node-up / "
                    "edge-up) changes the node set or edge set, so no "
                    "declared automorphism group can remain valid across "
                    "the run — use a full-graph engine",
                    blocker="churn-plan",
                )
            raise QuotientLoweringError(
                "fault plans break symmetry: a deletion distinguishes the "
                "faulted node's orbit members, so the quotient path cannot "
                "run a faulted schedule — use a full-graph engine",
                blocker="fault-plan",
            )
        group = net.symmetry
        if group is None:
            raise QuotientLoweringError(
                "network declares no automorphism group; call "
                "net.declare_symmetry(...) before requesting the quotient "
                "engine",
                blocker="no-group",
            )
        try:
            # mutations do not revoke a declaration — re-verify here so a
            # stale group is caught at lowering time, not as silent skew
            group.verify(net)
        except SymmetryError as exc:
            raise QuotientLoweringError(
                f"declared automorphism group is stale for the current "
                f"topology: {exc}",
                blocker="stale-group",
            ) from exc

        self._ir = lower(programs, randomness)
        self._probabilistic = self._ir.probabilistic
        self.randomness = self._ir.randomness
        self.alphabet: list = list(self._ir.alphabet)
        self._code = dict(self._ir.code)
        self._programs = dict(self._ir.source_programs)

        self._net = net
        self.partition = net.orbit_partition()
        part = self.partition
        k = part.num_orbits
        self._k = k

        for v in net:
            rep = part.reps[part.orbit_of[v]]
            if init[v] != init[rep]:
                raise QuotientLoweringError(
                    f"initial state is not orbit-constant: node {v!r} has "
                    f"state {init[v]!r} but its orbit representative "
                    f"{rep!r} has {init[rep]!r}",
                    blocker="init-not-orbit-constant",
                )

        # quotient CSR: Q[i, j] = multiplicity of orbit j among rep i's
        # neighbours — the representative's true neighbour counts, grouped
        # by orbit label
        indptr = np.zeros(k + 1, dtype=np.int64)
        cols: list[int] = []
        data: list[int] = []
        degrees = np.zeros(k, dtype=np.int64)
        for i, rep in enumerate(part.reps):
            row: dict[int, int] = {}
            for u in net.neighbors(rep):
                j = part.orbit_of[u]
                row[j] = row.get(j, 0) + 1
            for j in sorted(row):
                cols.append(j)
                data.append(row[j])
            degrees[i] = net.degree(rep)
            indptr[i + 1] = len(cols)
        self.quotient = sparse.csr_matrix(
            (
                np.asarray(data, dtype=np.int64),
                np.asarray(cols, dtype=np.int64),
                indptr,
            ),
            shape=(k, k),
        )
        self._degrees = degrees
        self._sizes = np.asarray(part.sizes, dtype=np.int64)

        sigma = np.empty(k, dtype=np.int64)
        for i, rep in enumerate(part.reps):
            sigma[i] = self._code[init[rep]]
        self._sigma = sigma

        self.rng = coerce_rng(rng)
        self.backend = resolve_backend(backend)
        self.metrics = metrics
        if metrics is not None:
            metrics.set_tag("backend", self.backend.name)
        self.fault_plan = None
        self.last_faults: list = []
        self.time = 0

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Full-graph node count (the lifted view's size)."""
        return self._net.num_nodes

    @property
    def orbit_count(self) -> int:
        """``k``, the number of orbits actually simulated."""
        return self._k

    @property
    def orbit_sizes(self) -> tuple:
        """``|orbit j|`` for each orbit, in representative order."""
        return self.partition.sizes

    @property
    def live_count(self) -> int:
        """Representatives simulated per step (== rng draws per step)."""
        return self._k

    # ------------------------------------------------------------------
    def step(self) -> bool:
        """One synchronous quotient step; True iff any orbit changed."""
        sig = self._sigma
        k = self._k
        live = self._degrees > 0
        if self._probabilistic:
            # one shared draw per orbit (see module docstring): the only
            # convention that keeps the trajectory orbit-constant
            draws = self.backend.draw(self.rng, self.randomness, k)
        else:
            draws = None
        new_sig = self.backend.step(self.quotient, sig, live, draws, self._ir)
        met = self.metrics
        if met is None:
            changed = self.backend.any_changed(new_sig, sig)
        else:
            diff = new_sig != sig
            updates = int(diff.sum())
            changed = updates > 0
            met.inc("steps")
            met.inc("node_updates", updates)
            met.inc("node_updates_lifted", int(self._sizes[diff].sum()))
            if self._probabilistic:
                met.inc("rng_draws", k)
        self._sigma = new_sig
        self.time += 1
        return changed

    def run(self, steps: int) -> None:
        for _ in range(steps):
            self.step()

    def run_until_stable(self, max_steps: int = DEFAULT_MAX_STEPS) -> int:
        """Step to a fixed point; returns steps taken (deterministic only)."""
        for steps in range(1, max_steps + 1):
            if not self.step():
                return steps
        raise RuntimeError(f"no fixed point within {max_steps} steps")

    # ------------------------------------------------------------------
    @property
    def state(self) -> NetworkState:
        """The **lifted** full-graph state: every node decodes through its
        orbit's representative entry."""
        part = self.partition
        sig = self._sigma
        return NetworkState(
            {v: self.alphabet[sig[part.orbit_of[v]]] for v in self._net}
        )

    @property
    def representative_state(self) -> NetworkState:
        """The quotient-side state: representatives only."""
        return NetworkState(
            {
                rep: self.alphabet[self._sigma[i]]
                for i, rep in enumerate(self.partition.reps)
            }
        )

    def state_counts(self) -> dict:
        """Multiplicity of each alphabet state over the *lifted* view —
        orbit sizes weight the representative states, so this agrees with
        the full-graph engines' counts."""
        out = {}
        binc = np.zeros(len(self.alphabet), dtype=np.int64)
        np.add.at(binc, self._sigma, self._sizes)
        for i, q in enumerate(self.alphabet):
            out[q] = int(binc[i])
        return out


class OrbitBroadcastRng:
    """Adapter giving a full-graph engine the quotient draw convention.

    Wraps a base generator and serves the quotient engine's shared
    per-orbit draws to engines that ask for per-node draws: each
    synchronous step consumes exactly one ``integers(r, size=k)`` vector
    from the base generator — the same values, in the same base-stream
    positions, as :class:`QuotientSynchronousEngine` draws — and nodes
    receive their orbit's entry.

    Both engine call patterns are supported:

    * the vectorized engine's single ``integers(r, size=n)`` per step maps
      to ``per_orbit[row_orbit]``;
    * the reference interpreter's ``n`` scalar ``integers(r)`` calls per
      step (nodes in insertion order) are served from a buffered per-orbit
      vector that refreshes every ``n`` calls.

    Only for fault-free networks (the node set must stay fixed) and only
    one call pattern at a time — exactly the cross-engine conformance and
    benchmark setting it exists for.
    """

    def __init__(self, net: Network, rng=None) -> None:
        part = net.orbit_partition()
        order = net.nodes()
        self.base = coerce_rng(rng)
        self._row_orbit = np.asarray(
            [part.orbit_of[v] for v in order], dtype=np.int64
        )
        self._n = len(order)
        self._k = part.num_orbits
        self._buf: Optional[np.ndarray] = None
        self._cursor = 0

    def integers(self, high, size=None):
        if size is None:
            # scalar mode: n calls per step, insertion order
            if self._buf is None or self._cursor >= self._n:
                self._buf = self.base.integers(high, size=self._k)
                self._cursor = 0
            val = int(self._buf[self._row_orbit[self._cursor]])
            self._cursor += 1
            return val
        if size != self._n:
            raise ValueError(
                f"OrbitBroadcastRng serves whole-network draws: expected "
                f"size={self._n}, got {size}"
            )
        per_orbit = self.base.integers(high, size=self._k)
        return per_orbit[self._row_orbit]
